"""E23 — end-to-end message integrity: detection rate vs overhead bits.

The paper's model assumes delivered messages arrive intact; the
integrity layer (:mod:`repro.integrity`) makes that assumption *checked*
instead of trusted.  This bench sweeps the bit-flip rate across the
three integrity modes and measures what detection costs and buys:

* **off** — corrupted frames reach the protocol unchecked.  The
  silent-corruption oracle counts every corrupted delivery that was
  accepted; nonzero acceptances mean the result is untrustworthy.
* **checksum** — 16-bit truncated CRC-32 per frame.  Catches random
  flips at the cost of ~21+16 overhead bits per broadcast frame.
* **mac** — 32-bit truncated seeded HMAC-SHA256.  Catches everything
  that doesn't know the key; double the tag width.

Detection composes with recovery: a rejected frame looks like a lost
frame to the reliable transport, whose NACK path re-fetches it, so
detected corruption costs retransmissions (booked as overhead), never
protocol CC — the ``cc_bits`` column must be flat across modes at rate
0.  The headline assertions: **mac and checksum resolve every delivered
corruption at every rate** (zero unresolved → zero silent-wrong), while
**off accepts corrupted frames as soon as the rate is nonzero**; and
integrity overhead is framing + tag only (mac > checksum > off).

The trajectory point lands in ``BENCH_e23_integrity.json`` at the repo
root (per-(rate, mode) detection/overhead rows).
"""

import json
import os
import random

import pytest

from repro.analysis import format_table
from repro.analysis.runner import make_inputs, run_protocol
from repro.graphs import grid_graph
from repro.integrity import IntegrityConfig
from repro.resilience import RecoveryPolicy, TransportConfig
from repro.sim.faults import MessageCorruption

from _util import emit, once

GRID_SIDE = 4
SEEDS = 4
RATES = (0.0, 0.01, 0.02, 0.05)
MODES = ("off", "checksum", "mac")
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_e23_integrity.json"
)


def _one_run(mode, rate, seed):
    topo = grid_graph(GRID_SIDE, GRID_SIDE)
    rng = random.Random(seed)
    inputs = make_inputs(topo, rng)
    injectors = []
    if rate:
        injectors.append(
            MessageCorruption(bitflip=rate, truncate=rate / 2, seed=seed)
        )
    integrity = None if mode == "off" else IntegrityConfig(mode=mode)
    record = run_protocol(
        "unknown_f",
        topo,
        inputs,
        rng=rng,
        strict=False,
        injectors=injectors,
        recovery=RecoveryPolicy(
            transport=TransportConfig(retransmits=4, backoff_cap=8)
        ),
        integrity=integrity,
    )
    assert record.error is None, record.error
    return record


def run_integrity_study():
    rows = []
    for rate in RATES:
        for mode in MODES:
            delivered = unresolved = rejected = 0
            overhead = cc = exact = partial = silent_wrong = 0
            for seed in range(SEEDS):
                record = _one_run(mode, rate, seed)
                extra = record.extra
                delivered += extra.get("delivered_corruptions", 0)
                unresolved += extra.get("unresolved_corruptions", 0)
                rejected += extra.get("integrity_rejected", 0)
                overhead += extra.get("overhead_bits", 0)
                cc += record.cc_bits
                status = extra.get("status")
                certified = bool(extra.get("certified"))
                if status == "exact" and certified:
                    exact += 1
                    # A certified-exact claim that is wrong, or any
                    # accepted corruption, is the silent-wrong class.
                    if not record.correct:
                        silent_wrong += 1
                elif certified:
                    partial += 1
                if extra.get("unresolved_corruptions", 0) and mode != "off":
                    silent_wrong += 1
            detected = delivered - unresolved
            rows.append(
                {
                    "rate": rate,
                    "mode": mode,
                    "delivered": delivered,
                    "detected": detected,
                    "detection": (
                        round(detected / delivered, 3) if delivered else 1.0
                    ),
                    "unresolved": unresolved,
                    "rejected": rejected,
                    "overhead_bits": round(overhead / SEEDS, 1),
                    "cc_bits": round(cc / SEEDS, 1),
                    "exact": f"{exact}/{SEEDS}",
                    "partial": partial,
                    "silent_wrong": silent_wrong,
                }
            )
    return rows


def _write_trajectory(rows):
    point = {
        "experiment": "E23",
        "topology": f"grid({GRID_SIDE}x{GRID_SIDE})",
        "protocol": "unknown_f",
        "seeds": SEEDS,
        "rows": rows,
    }
    with open(os.path.abspath(TRAJECTORY_PATH), "w") as fh:
        json.dump(point, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.benchmark(group="integrity")
def test_integrity_detection_vs_overhead(benchmark):
    rows = once(benchmark, run_integrity_study)
    emit(
        "e23_integrity",
        format_table(
            rows,
            title=(
                f"E23: corruption detection vs overhead, grid "
                f"{GRID_SIDE}x{GRID_SIDE}, {SEEDS} seeds"
            ),
        ),
    )
    _write_trajectory(rows)

    by_key = {(r["rate"], r["mode"]): r for r in rows}

    # Authenticated modes resolve every delivered corruption at every
    # rate — the zero-silent-wrong contract.  (Runs may honestly degrade
    # to certified partials or uncertified rows under heavy corruption;
    # what they must never do is certify a wrong exact answer or accept
    # a corrupted frame.)
    for rate in RATES:
        for mode in ("checksum", "mac"):
            assert by_key[(rate, mode)]["unresolved"] == 0, (rate, mode)
            assert by_key[(rate, mode)]["silent_wrong"] == 0, (rate, mode)
            assert by_key[(rate, mode)]["detection"] == 1.0, (rate, mode)

    # Unprotected runs accept corrupted frames as soon as corruption
    # flows at all.
    for rate in (0.02, 0.05):
        assert by_key[(rate, "off")]["unresolved"] > 0

    # Integrity costs overhead only, ordered by tag width, and protocol
    # CC stays flat across modes in the clean arm.
    for rate in RATES:
        assert (
            by_key[(rate, "mac")]["overhead_bits"]
            > by_key[(rate, "checksum")]["overhead_bits"]
            > by_key[(rate, "off")]["overhead_bits"]
        )
    clean_cc = {by_key[(0.0, mode)]["cc_bits"] for mode in MODES}
    assert len(clean_cc) == 1
