"""E1 — Figure 1: the CC-vs-TC landscape (analytic curves + measured overlay).

Regenerates the paper's Figure 1: for a fixed ``(N, f)``, the analytic
curves of every known bound over the time-budget axis ``b``, and the
*measured* per-node communication of the three executable protocols
(Algorithm 1 across the ``b`` sweep; brute force and folklore at their
fixed operating points).

Paper's claim (shape): the new upper bound decays like ``f/b`` before
flattening at ``log^2 N``; the new lower bound sits a polylog factor below
it; brute force and folklore are flat points far above the curve.
"""

import random

import pytest

from repro.analysis import figure1_data, figure1_measured, format_series, format_table
from repro.graphs import grid_graph

from _util import emit, once

N_ANALYTIC = 1024
F_ANALYTIC = 128
BS_ANALYTIC = [42, 84, 168, 336, 672, 1344]

MEASURED_TOPOLOGY = grid_graph(6, 6)
F_MEASURED = 8
BS_MEASURED = [42, 84, 168, 336]
SEEDS = range(4)


def build_analytic():
    return figure1_data(N_ANALYTIC, F_ANALYTIC, BS_ANALYTIC)


def build_measured():
    return figure1_measured(
        MEASURED_TOPOLOGY, f=F_MEASURED, bs=BS_MEASURED, seeds=SEEDS
    )


@pytest.mark.benchmark(group="figure1")
def test_figure1_analytic_curves(benchmark):
    data = once(benchmark, build_analytic)
    series = {
        name: [round(v, 1) for v in values]
        for name, values in data.curves.items()
    }
    text = format_series(
        data.bs,
        series,
        x_label="b",
        title=(
            f"Figure 1 (analytic): N={data.n}, f={data.f} — CC bounds vs TC "
            "budget b"
        ),
    )
    emit("figure1_analytic", text)
    # Shape assertions: the paper's landscape.
    ub = data.curves["upper_bound_new"]
    lb = data.curves["lower_bound_new"]
    assert ub == sorted(ub, reverse=True)  # UB decays with b
    assert all(u >= l for u, l in zip(ub, lb))  # bounds bracket
    assert all(
        g <= c for g, c in zip(data.curves["gap_ratio"], data.curves["polylog_ceiling"])
    )  # the polylog-gap headline


@pytest.mark.benchmark(group="figure1")
def test_figure1_measured_overlay(benchmark):
    measured = once(benchmark, build_measured)
    rows = []
    for b, point in zip(BS_MEASURED, measured.tradeoff):
        rows.append(
            {
                "protocol": "algorithm1",
                "b": b,
                "CC mean": round(point.cc_mean, 1),
                "CC max": point.cc_max,
                "TC used (flooding rounds)": round(point.flooding_rounds_mean, 1),
                "correct": point.correct_rate,
            }
        )
    rows.append(
        {
            "protocol": "bruteforce",
            "b": "2c",
            "CC mean": round(measured.bruteforce.cc_mean, 1),
            "CC max": measured.bruteforce.cc_max,
            "TC used (flooding rounds)": round(
                measured.bruteforce.flooding_rounds_mean, 1
            ),
            "correct": measured.bruteforce.correct_rate,
        }
    )
    rows.append(
        {
            "protocol": "folklore",
            "b": "O(f)",
            "CC mean": round(measured.folklore.cc_mean, 1),
            "CC max": measured.folklore.cc_max,
            "TC used (flooding rounds)": round(
                measured.folklore.flooding_rounds_mean, 1
            ),
            "correct": measured.folklore.correct_rate,
        }
    )
    text = format_table(
        rows,
        title=(
            f"Figure 1 (measured): {measured.topology_name}, N={measured.n}, "
            f"f={measured.f}"
        ),
    )
    emit("figure1_measured", text)
    # Who-wins shape: Algorithm 1's CC decreases with b and undercuts brute
    # force at the largest budget; everything stays correct.
    ccs = [p.cc_mean for p in measured.tradeoff]
    assert ccs[0] > ccs[-1]
    assert ccs[-1] < measured.bruteforce.cc_mean
    assert all(p.correct_rate == 1.0 for p in measured.tradeoff)
    assert measured.bruteforce.correct_rate == 1.0
    assert measured.folklore.correct_rate == 1.0
