"""E16 — the topology max in the FT_0 definition.

``FT_0(SUM_N, f, b)`` is defined as the *maximum* over all connected
topologies of the best protocol's CC.  We cannot maximize over all graphs,
but we can sweep structurally extreme families — low-diameter expanders
(hypercube, torus), bottlenecks (cluster-line, lollipop), a sensor field
(geometric), and the grid — and report where Algorithm 1 pays the most.
Every row must stay correct and under the pair-budget ceiling; the spread
across families quantifies how much the topology (not just N, f, b)
matters at these scales.
"""

import math
import random

import pytest

from repro.analysis import format_table
from repro.analysis.sweep import random_schedule_factory, run_point
from repro.core.params import params_for
from repro.graphs import (
    cluster_line_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    random_geometric,
    torus_graph,
)

from _util import emit, once

F, B = 6, 84
SEEDS = range(3)


def topology_suite():
    return [
        grid_graph(6, 6),
        torus_graph(6, 6),
        hypercube_graph(5),
        cluster_line_graph(8, 4),
        lollipop_graph(16, 16),
        random_geometric(36, rng=random.Random(1)),
    ]


def run_topology_sweep():
    rows = []
    points = []
    for topo in topology_suite():
        factory = random_schedule_factory(F, horizon=B * topo.diameter)
        point = run_point(
            "algorithm1",
            topo,
            SEEDS,
            schedule_factory=factory,
            f=F,
            b=B,
            coords={"topology": topo.name},
        )
        points.append((topo, point))
        rows.append(
            {
                "topology": topo.name,
                "N": topo.n_nodes,
                "diameter": topo.diameter,
                "CC mean": round(point.cc_mean, 1),
                "CC max": point.cc_max,
                "TC mean (flooding rounds)": round(
                    point.flooding_rounds_mean, 1
                ),
                "correct": point.correct_rate,
            }
        )
    return points, rows


@pytest.mark.benchmark(group="topologies")
def test_topology_sweep(benchmark):
    points, rows = once(benchmark, run_topology_sweep)
    emit(
        "topology_sweep",
        format_table(
            rows,
            title=f"Algorithm 1 across topology families (f={F}, b={B})",
        ),
    )
    for topo, point in points:
        assert point.correct_rate == 1.0, topo.name
        # Per-node CC stays within min(x, f+1, logN) pair budgets.
        plan_x = (B - 4) // 38
        t = (2 * F) // plan_x
        params = params_for(topo, t=t)
        pair_cap = min(plan_x, F + 1, math.ceil(math.log2(topo.n_nodes)))
        ceiling = (
            params.agg_bit_budget + params.veri_bit_budget
        ) * pair_cap + 64
        assert point.cc_max <= ceiling, topo.name
