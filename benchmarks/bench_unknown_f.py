"""E8 — Early termination: the unknown-``f`` doubling extension.

The paper (Section 1): removing the known-``f`` assumption via the doubling
trick costs a ``logN`` factor and yields early termination — "the overhead
of the protocol will automatically vary depending on the actual number of
failures occurred during its execution".

The bench crashes 0..many nodes and reports the accepted guess, pairs run,
CC, and rounds; all must track the *actual* failure count.
"""

import random

import pytest

from repro.adversary import FailureSchedule, random_failures
from repro.analysis import format_table
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.unknown_f import run_unknown_f
from repro.graphs import grid_graph

from _util import emit, once

TOPOLOGY = grid_graph(6, 6)
SEEDS = 4


def sweep_actual_failures():
    rows = []
    for f_actual in (0, 2, 6, 12, 20):
        ccs, rounds, guesses, correct = [], [], [], 0
        for seed in range(SEEDS):
            rng = random.Random(seed * 7 + f_actual)
            if f_actual == 0:
                schedule = FailureSchedule()
            else:
                schedule = random_failures(
                    TOPOLOGY, f=f_actual, rng=rng, first_round=1, last_round=400
                )
            inputs = {u: rng.randint(0, 9) for u in TOPOLOGY.nodes()}
            out = run_unknown_f(TOPOLOGY, inputs, schedule=schedule)
            ccs.append(out.stats.max_bits)
            rounds.append(out.rounds)
            guesses.append(out.accepted_guess or -1)
            correct += is_correct_result(
                out.result, SUM, TOPOLOGY, inputs, schedule, out.rounds
            )
        rows.append(
            {
                "declared f": "(unknown)",
                "actual budget": f_actual,
                "CC mean": round(sum(ccs) / len(ccs), 1),
                "rounds mean": round(sum(rounds) / len(rounds), 1),
                "accepted guesses": sorted(set(guesses)),
                "correct": f"{correct}/{SEEDS}",
            }
        )
    return rows


@pytest.mark.benchmark(group="unknown_f")
def test_early_termination(benchmark):
    rows = once(benchmark, sweep_actual_failures)
    emit(
        "unknown_f_early_termination",
        format_table(
            rows,
            title=f"Unknown-f doubling on {TOPOLOGY.name}: cost vs actual failures",
        ),
    )
    assert all(row["correct"] == f"{SEEDS}/{SEEDS}" for row in rows)
    ccs = [row["CC mean"] for row in rows]
    # Early termination: the failure-free run is the cheapest; cost rises
    # with the actual number of failures.
    assert ccs[0] == min(ccs)
    assert ccs[-1] > ccs[0]
    rounds = [row["rounds mean"] for row in rows]
    assert rounds[0] == min(rounds)
