"""E17 — Section 3's probabilistic argument, measured.

Theorem 1's analysis: with ``t = floor(2f/x)``, at most ``f/(t+1) < x/2``
intervals can contain more than ``t`` edge failures, so a uniformly random
interval is "clean" with probability at least 1/2; after ``logN``
independent draws the brute-force fallback fires with probability at most
``1/N``, and the number of AGG+VERI pairs actually run is geometric.

The bench builds the *worst* oblivious adversary for this argument — it
packs exactly ``t+1`` failures into as many intervals as the budget
affords — and measures, across many coin seeds: the fallback rate (vs the
``1/N`` bound), the mean pairs run (vs the geometric bound), the pair cap
``min(x, f+1, logN)``, and correctness (always).
"""

import math
import random

import pytest

from repro.adversary import EdgeBudget, FailureSchedule, affordable_nodes
from repro.analysis import format_table
from repro.core.algorithm1 import TradeoffPlan, run_algorithm1
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.params import params_for
from repro.graphs import grid_graph

from _util import emit, once

TOPOLOGY = grid_graph(5, 5)
F, B, C = 8, 308, 2  # x = (308 - 4) / 38 = 8 intervals, t = 2
SEEDS = 40


def poison_intervals(plan: TradeoffPlan, rng: random.Random) -> FailureSchedule:
    """Pack ``t+1`` edge failures into as many intervals as ``f`` affords."""
    t = plan.t
    budget = EdgeBudget(TOPOLOGY, F)
    schedule = FailureSchedule()
    poisoned = 0
    interval = 1
    while budget.remaining >= t + 1 and interval <= plan.x:
        start = plan.interval_start(interval)
        spent = 0
        while spent < t + 1:
            pool = [
                u
                for u in affordable_nodes(budget)
                if budget.cost_of(u) <= (t + 1) - spent
            ]
            if not pool:
                break
            node = rng.choice(pool)
            spent += budget.charge(node)
            schedule.add(node, start)
        if spent >= t + 1:
            poisoned += 1
        interval += 2  # leave every other interval clean
    schedule.poisoned_count = poisoned  # type: ignore[attr-defined]
    return schedule


def run_probability_study():
    base = params_for(TOPOLOGY, c=C)
    plan = TradeoffPlan(params=base, b=B, f=F)
    adversary_rng = random.Random(123)
    schedule = poison_intervals(plan, adversary_rng)
    inputs = {u: 1 for u in TOPOLOGY.nodes()}

    fallbacks, pairs, correct = 0, [], 0
    for seed in range(SEEDS):
        out = run_algorithm1(
            TOPOLOGY,
            inputs,
            f=F,
            b=B,
            schedule=schedule,
            c=C,
            rng=random.Random(seed),
        )
        fallbacks += out.used_bruteforce
        pairs.append(out.pairs_run)
        correct += is_correct_result(
            out.result, SUM, TOPOLOGY, inputs, schedule, out.rounds
        )

    n = TOPOLOGY.n_nodes
    log_n = math.ceil(math.log2(n))
    poisoned = schedule.poisoned_count
    p_clean = 1 - poisoned / plan.x
    rows = [
        {
            "x (intervals)": plan.x,
            "t": plan.t,
            "poisoned intervals": poisoned,
            "P(clean draw)": round(p_clean, 3),
            "paper bound": ">= 1/2",
        },
        {
            "x (intervals)": "fallback rate",
            "t": f"{fallbacks}/{SEEDS}",
            "poisoned intervals": "bound (poisoned/x)^logN",
            "P(clean draw)": round((poisoned / plan.x) ** log_n, 4),
            "paper bound": "<= 1/N = " + str(round(1 / n, 3)),
        },
        {
            "x (intervals)": "mean pairs run",
            "t": round(sum(pairs) / len(pairs), 2),
            "poisoned intervals": "geometric bound 1/P(clean)",
            "P(clean draw)": round(1 / p_clean, 2),
            "paper bound": f"cap min(x,f+1,logN) = {min(plan.x, F + 1, log_n)}",
        },
        {
            "x (intervals)": "correct runs",
            "t": f"{correct}/{SEEDS}",
            "poisoned intervals": "-",
            "P(clean draw)": "-",
            "paper bound": "always (zero error)",
        },
    ]
    return plan, poisoned, fallbacks, pairs, correct, rows


@pytest.mark.benchmark(group="interval_selection")
def test_interval_selection_probability(benchmark):
    plan, poisoned, fallbacks, pairs, correct, rows = once(
        benchmark, run_probability_study
    )
    emit(
        "interval_selection",
        format_table(
            rows,
            title=(
                f"E17: random interval selection vs poisoned intervals "
                f"({TOPOLOGY.name}, f={F}, b={B}, {SEEDS} coin seeds)"
            ),
        ),
    )
    n = TOPOLOGY.n_nodes
    log_n = math.ceil(math.log2(n))
    # The analysis' cornerstone: fewer than half the intervals poisoned.
    assert poisoned <= plan.x // 2
    # Fallback probability bound (generous slack over 1/N for 40 seeds).
    assert fallbacks / SEEDS <= max(3 / n, 0.15)
    # Pair counts: geometric mean bound and the hard cap.
    p_clean = 1 - poisoned / plan.x
    assert sum(pairs) / len(pairs) <= 1 / p_clean + 1
    assert max(pairs) <= min(plan.x, F + 1, log_n)
    # Zero error regardless of coins.
    assert correct == SEEDS
