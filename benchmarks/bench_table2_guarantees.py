"""E2 — Table 2: the AGG/VERI guarantee matrix, validated empirically.

The paper's Table 2:

| scenario                                | AGG                       | VERI        |
| 1. <= t edge failures (implies no LFC)  | correct result            | true        |
| 2. > t edge failures, no LFC            | correct result or abort   | no guarantee|
| 3. > t edge failures, LFC exists        | no guarantee              | false       |

Each scenario is instantiated by a dedicated adversary family over many
seeds; the hard guarantees (bold cells) must hold in 100% of trials.
"""

import random

import pytest

from repro.adversary import chain_failures, predicted_tree, random_failures
from repro.analysis import format_table
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.veri import run_agg_veri_pair
from repro.graphs import grid_graph

from _util import emit, once

TOPOLOGY = grid_graph(6, 6)
T = 3
SEEDS = 10


def has_lfc(topo, schedule, t):
    """Ground-truth LFC oracle (valid for post-construction crash times)."""
    parent, children = predicted_tree(topo)
    failed = schedule.failed_nodes
    alive_connected = topo.alive_component(failed)

    def live_descendant(node):
        stack = [node]
        while stack:
            u = stack.pop()
            for ch in children[u]:
                if ch in failed:
                    stack.append(ch)
                elif ch in alive_connected:
                    return True
        return False

    for tail in failed:
        chain, walker = [], tail
        while walker in failed:
            chain.append(walker)
            walker = parent[walker]
            if walker == -1:
                break
        if len(chain) >= t and live_descendant(tail):
            return True
    return False


def run_scenario1():
    """At most t edge failures."""
    stats = {"trials": 0, "agg_correct": 0, "no_abort": 0, "veri_true": 0}
    end = 12 * 2 * TOPOLOGY.diameter + 7
    for seed in range(SEEDS):
        rng = random.Random(seed)
        schedule = random_failures(
            TOPOLOGY, f=T, rng=rng, first_round=1, last_round=end
        )
        inputs = {u: rng.randint(0, 9) for u in TOPOLOGY.nodes()}
        pair = run_agg_veri_pair(TOPOLOGY, inputs, t=T, schedule=schedule)
        stats["trials"] += 1
        stats["no_abort"] += not pair.agg_aborted
        stats["veri_true"] += pair.veri_output is True
        stats["agg_correct"] += is_correct_result(
            pair.agg_result, SUM, TOPOLOGY, inputs, schedule, end
        )
    return stats


def run_scenario2():
    """More than t edge failures but no LFC."""
    stats = {"trials": 0, "agg_correct_or_abort": 0}
    end = 12 * 2 * TOPOLOGY.diameter + 7
    seed = 0
    while stats["trials"] < SEEDS and seed < SEEDS * 20:
        rng = random.Random(1000 + seed)
        seed += 1
        schedule = random_failures(
            TOPOLOGY, f=4 * T, rng=rng, first_round=1, last_round=end
        )
        if schedule.edge_failures(TOPOLOGY) <= T or has_lfc(TOPOLOGY, schedule, T):
            continue
        inputs = {u: rng.randint(0, 9) for u in TOPOLOGY.nodes()}
        pair = run_agg_veri_pair(TOPOLOGY, inputs, t=T, schedule=schedule)
        stats["trials"] += 1
        ok = pair.agg_aborted or is_correct_result(
            pair.agg_result, SUM, TOPOLOGY, inputs, schedule, end
        )
        stats["agg_correct_or_abort"] += ok
    return stats


def run_scenario3():
    """An LFC exists."""
    stats = {"trials": 0, "veri_false": 0}
    cd = 2 * TOPOLOGY.diameter
    for seed in range(SEEDS * 3):
        if stats["trials"] >= SEEDS:
            break
        schedule = chain_failures(
            TOPOLOGY, chain_length=T, at_round=2 * cd + 2, rng=random.Random(seed)
        )
        if schedule is None or not has_lfc(TOPOLOGY, schedule, T):
            continue
        inputs = {u: 1 for u in TOPOLOGY.nodes()}
        pair = run_agg_veri_pair(TOPOLOGY, inputs, t=T, schedule=schedule)
        stats["trials"] += 1
        stats["veri_false"] += pair.veri_output is False
    return stats


@pytest.mark.benchmark(group="table2")
def test_table2_guarantee_matrix(benchmark):
    def build():
        return run_scenario1(), run_scenario2(), run_scenario3()

    s1, s2, s3 = once(benchmark, build)
    rows = [
        {
            "scenario": "1: <= t failures",
            "guarantee": "AGG correct + no abort; VERI true",
            "held": f"{min(s1['agg_correct'], s1['no_abort'], s1['veri_true'])}/{s1['trials']}",
        },
        {
            "scenario": "2: > t failures, no LFC",
            "guarantee": "AGG correct-or-abort",
            "held": f"{s2['agg_correct_or_abort']}/{s2['trials']}",
        },
        {
            "scenario": "3: LFC exists",
            "guarantee": "VERI false",
            "held": f"{s3['veri_false']}/{s3['trials']}",
        },
    ]
    text = format_table(
        rows,
        title=f"Table 2 guarantees on {TOPOLOGY.name}, t={T}, {SEEDS} trials each",
    )
    emit("table2_guarantees", text)
    assert s1["agg_correct"] == s1["trials"]
    assert s1["no_abort"] == s1["trials"]
    assert s1["veri_true"] == s1["trials"]
    assert s2["agg_correct_or_abort"] == s2["trials"]
    assert s2["trials"] >= 3
    assert s3["veri_false"] == s3["trials"]
    assert s3["trials"] >= 3
