"""E4 — Theorem 1: Algorithm 1's CC shape ``O(f/b log^2 N + log^2 N)``.

Three measured sweeps:

* CC vs ``b`` at fixed ``(N, f)`` — expect hyperbolic decay to a floor;
* CC vs ``f`` at fixed ``(N, b)`` — expect growth toward the small-``x``
  regime;
* CC vs ``N`` at fixed ``(f, b)`` — expect polylog growth (CC/log^2 N
  roughly flat).

Absolute constants are implementation-specific; the assertions check the
paper's *shape*: monotonicity and the predicted normalization flattening.
"""

import math
import random

import pytest

from repro.analysis import format_table, sweep_b, sweep_f
from repro.analysis.fitting import fit_theorem1_b_sweep
from repro.analysis.sweep import random_schedule_factory, run_point
from repro.graphs import grid_graph

from _util import emit, once

SEEDS = range(3)


def run_b_sweep():
    topo = grid_graph(6, 6)
    f = 10
    bs = [42, 84, 168, 336, 672]
    points = sweep_b(topo, f=f, bs=bs, seeds=SEEDS)
    rows = [
        {
            "b": p.coords["b"],
            "CC mean": round(p.cc_mean, 1),
            "CC * b (const if f/b dominates)": round(p.cc_mean * p.coords["b"], 0),
            "TC used": round(p.flooding_rounds_mean, 1),
            "correct": p.correct_rate,
        }
        for p in points
    ]
    return topo, f, points, rows


def run_f_sweep():
    topo = grid_graph(6, 6)
    b = 168
    fs = [1, 4, 8, 16, 24]
    points = sweep_f(topo, fs=fs, b=b, seeds=SEEDS)
    rows = [
        {
            "f": p.coords["f"],
            "CC mean": round(p.cc_mean, 1),
            "correct": p.correct_rate,
        }
        for p in points
    ]
    return topo, b, points, rows


def run_n_sweep():
    b, f = 84, 6
    points = []
    for side in (4, 6, 8, 10, 14, 20):
        topo = grid_graph(side, side)
        factory = random_schedule_factory(f, horizon=b * topo.diameter)
        points.append(
            run_point(
                "algorithm1",
                topo,
                SEEDS,
                schedule_factory=factory,
                f=f,
                b=b,
                coords={"n": topo.n_nodes},
            )
        )
    rows = [
        {
            "N": p.coords["n"],
            "CC mean": round(p.cc_mean, 1),
            "CC / log^2 N": round(
                p.cc_mean / (math.log2(p.coords["n"]) ** 2), 2
            ),
            "correct": p.correct_rate,
        }
        for p in points
    ]
    return points, rows


@pytest.mark.benchmark(group="theorem1")
def test_cc_vs_b(benchmark):
    topo, f, points, rows = once(benchmark, run_b_sweep)
    bs = [p.coords["b"] for p in points]
    ccs = [p.cc_mean for p in points]
    fit = fit_theorem1_b_sweep(bs, ccs, n=topo.n_nodes, f=f)
    table = format_table(rows, title=f"Theorem 1: CC vs b on {topo.name}, f={f}")
    emit(
        "theorem1_cc_vs_b",
        table + f"\nmodel fit: {fit.predict_label()}",
    )
    assert ccs[0] > ccs[-1]  # decay
    assert all(p.correct_rate == 1.0 for p in points)
    # Theorem 1's two-term form explains the measured sweep well.
    assert fit.r_squared > 0.9


@pytest.mark.benchmark(group="theorem1")
def test_cc_vs_f(benchmark):
    topo, b, points, rows = once(benchmark, run_f_sweep)
    emit(
        "theorem1_cc_vs_f",
        format_table(rows, title=f"Theorem 1: CC vs f on {topo.name}, b={b}"),
    )
    ccs = [p.cc_mean for p in points]
    assert ccs[-1] > ccs[0]  # growth in f
    assert all(p.correct_rate == 1.0 for p in points)


@pytest.mark.benchmark(group="theorem1")
def test_cc_vs_n(benchmark):
    points, rows = once(benchmark, run_n_sweep)
    emit(
        "theorem1_cc_vs_n",
        format_table(rows, title="Theorem 1: CC vs N at f=6, b=84"),
    )
    # Polylog scaling: CC normalized by log^2 N stays within a small band
    # while N grows 6x.
    normalized = [row["CC / log^2 N"] for row in rows]
    assert max(normalized) / min(normalized) < 3.0
    assert all(p.correct_rate == 1.0 for p in points)
