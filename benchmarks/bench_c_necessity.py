"""E18 — the diameter-stretch assumption is load-bearing (future work §2).

The paper assumes failures never push the surviving diameter past
``c * d`` and says of its necessity: "we are currently working on a new
lower bound proof that aims to show the necessity of this requirement".
This bench supplies the *empirical* half of that story on a wheel graph:

* the hub makes ``d = 2``; crashing it stretches the survivors' diameter
  to ``n/2`` — a factor far beyond any constant the protocol budgeted;
* with the assumption violated (protocol run at ``c = 1``), the
  speculative floods cannot cross the rim inside the phase windows, the
  witnesses never see the far side's partial sums, and the AGG+VERI pair
  **accepts incorrect results in every trial**;
* with an honest ``c`` covering the stretch, the same crash is handled
  with zero errors.

So the guarantee genuinely consumes the assumption — consistent with the
paper's conjecture that it cannot be dropped.
"""

import random

import pytest

from repro.adversary import FailureSchedule
from repro.analysis import format_table
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.veri import run_agg_veri_pair
from repro.graphs import Topology

from _util import emit, once

RIM = 16
SEEDS = 15


def wheel(n_rim: int) -> Topology:
    """A rim cycle plus a hub adjacent to every rim node (root on the rim)."""
    adjacency = {u: [] for u in range(n_rim + 1)}
    hub = n_rim
    for u in range(n_rim):
        v = (u + 1) % n_rim
        adjacency[u].append(v)
        adjacency[v].append(u)
        adjacency[u].append(hub)
        adjacency[hub].append(u)
    return Topology(adjacency, name=f"wheel({n_rim})")


def run_c_study():
    topo = wheel(RIM)
    hub = RIM
    f = topo.degree(hub)
    rows = []
    outcomes = {}
    for c in (1, 4):
        accepted_wrong = accepted_right = rejected = 0
        for seed in range(SEEDS):
            rng = random.Random(seed)
            inputs = {u: rng.randint(1, 9) for u in topo.nodes()}
            cd = c * topo.diameter
            schedule = FailureSchedule({hub: 2 * cd + 2})
            pair = run_agg_veri_pair(
                topo, inputs, t=f, schedule=schedule, c=c
            )
            end = 12 * cd + 7
            ok = is_correct_result(
                pair.agg_result, SUM, topo, inputs, schedule, end
            )
            if pair.accepted and not ok:
                accepted_wrong += 1
            elif pair.accepted:
                accepted_right += 1
            else:
                rejected += 1
        stretch = topo.remaining_diameter({hub}) / topo.diameter
        rows.append(
            {
                "protocol c": c,
                "actual stretch diam(H)/d": stretch,
                "assumption holds": c >= stretch,
                "accepted + correct": accepted_right,
                "accepted + WRONG": accepted_wrong,
                "rejected (safe)": rejected,
            }
        )
        outcomes[c] = accepted_wrong
    return topo, rows, outcomes


@pytest.mark.benchmark(group="c_necessity")
def test_c_assumption_is_necessary(benchmark):
    topo, rows, outcomes = once(benchmark, run_c_study)
    emit(
        "c_necessity",
        format_table(
            rows,
            title=(
                f"E18: hub crash on {topo.name} (d=2 -> diam(H)=8): the "
                "c*d assumption is load-bearing"
            ),
        ),
    )
    # Violated assumption: zero-error breaks, and not rarely.
    assert outcomes[1] > SEEDS // 2
    # Honest c: zero-error restored on the identical scenario family.
    assert outcomes[4] == 0
