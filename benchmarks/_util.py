"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's artifacts (table/figure/theorem
experiment), prints the rows/series, and also writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]", file=sys.stderr)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
