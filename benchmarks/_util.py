"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's artifacts (table/figure/theorem
experiment), prints the rows/series, and also writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]", file=sys.stderr)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def engine_from_env():
    """An :class:`repro.exec.ExecutionEngine` configured from the
    environment: ``REPRO_JOBS`` (worker processes, default 1) and
    ``REPRO_CACHE_DIR`` (content-addressed result cache, default off).

    Benches route their sweeps through this so ``REPRO_JOBS=4 pytest
    benchmarks/...`` parallelizes — and ``REPRO_CACHE_DIR=...`` makes
    re-runs warm-start — without changing a single result (the engine's
    determinism contract).

    ``REPRO_TRACE_OUT`` / ``REPRO_METRICS_OUT`` additionally arm the
    observability capture (``REPRO_TRACE_DETAIL`` picks the level,
    default ``phases``) for the whole bench process; the artifacts are
    flushed at interpreter exit so one trace covers every engine run
    the bench performed.
    """
    from repro.exec import ExecutionEngine, ResultCache

    _obs_capture_from_env()
    jobs = int(os.environ.get("REPRO_JOBS") or 1)
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    cache = ResultCache(cache_dir) if cache_dir else None
    return ExecutionEngine(jobs=jobs, cache=cache)


_OBS_CAPTURE = None


def _obs_capture_from_env():
    """Activate (once per process) an observability capture when
    ``REPRO_TRACE_OUT`` / ``REPRO_METRICS_OUT`` are set; registered
    with :mod:`atexit` so the files appear even when the bench exits
    through pytest's machinery."""
    global _OBS_CAPTURE
    trace_out = os.environ.get("REPRO_TRACE_OUT")
    metrics_out = os.environ.get("REPRO_METRICS_OUT")
    if _OBS_CAPTURE is not None or (not trace_out and not metrics_out):
        return _OBS_CAPTURE
    import atexit

    from repro.obs import ObsCapture

    seed = int(os.environ.get("REPRO_TRACE_SEED") or 0)
    detail = os.environ.get("REPRO_TRACE_DETAIL") or "phases"
    _OBS_CAPTURE = ObsCapture(seed=seed, detail=detail).activate()

    def _flush(cap=_OBS_CAPTURE, t=trace_out, m=metrics_out):
        cap.deactivate()
        cap.write(trace_out=t, metrics_out=m)

    atexit.register(_flush)
    return _OBS_CAPTURE
