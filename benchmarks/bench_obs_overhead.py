"""E26 — observability overhead: tracing must be (nearly) free.

The subsystem's hot-path contract is that a disabled tracer costs one
module-attribute load per instrumentation site, and that arming spans
never changes what the protocols compute.  This bench measures both:

* **Overhead arms.**  A fixed Algorithm 1 run (6x6 grid, f=8) repeats
  ``REPEATS`` times per arm — baseline (no capture installed), detail
  ``off`` (capture active, spans disarmed), ``phases`` (protocol
  phase/epoch spans), and ``messages`` (plus one instant event per
  broadcast).  Median wall clocks gate the budgets: ``off`` within 2%
  of baseline, ``phases`` within 10%.  ``messages`` is reported but
  ungated — per-broadcast events are a debugging level, priced
  accordingly.
* **Non-perturbation arm.**  Every traced arm's run record must be
  bit-identical to the baseline record: observability is bookkeeping,
  never simulated traffic.

The trajectory point lands in ``BENCH_e26_obs_overhead.json`` at the
repo root (per-arm medians, relative overheads, span/event counts).
"""

import json
import os
import random
import statistics
import time

import pytest

from repro.analysis import format_table, run_protocol
from repro.graphs import grid_graph
from repro.obs import ObsCapture

from _util import emit, once

GRID_SIDE = 6
F = 8
B = 90
REPEATS = 9
# Wall-clock gates as baseline multiples.  The 2% contract for `off`
# is what the issue promises; timer noise on shared CI runners can
# exceed that on a single rep, which is why the gate reads medians
# over REPEATS interleaved rounds.
MAX_OFF_OVERHEAD = 1.02
MAX_PHASES_OVERHEAD = 1.10
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_e26_obs_overhead.json"
)

ARMS = ("baseline", "off", "phases", "messages")


def _one_run(detail):
    """One fixed-seed Algorithm 1 run, optionally under capture.

    Returns ``(wall_s, record_dict, span_count, event_count)``.
    """
    topo = grid_graph(GRID_SIDE, GRID_SIDE)
    inputs = {u: 1 for u in topo.nodes()}
    t0 = time.perf_counter()
    if detail == "baseline":
        record = run_protocol(
            "algorithm1", topo, inputs, f=F, b=B, rng=random.Random(0)
        )
        wall = time.perf_counter() - t0
        return wall, record.as_dict(), 0, 0
    with ObsCapture(seed=0, detail=detail) as cap:
        record = run_protocol(
            "algorithm1", topo, inputs, f=F, b=B, rng=random.Random(0)
        )
    wall = time.perf_counter() - t0
    cap.tracer.close_all()
    return (
        wall,
        record.as_dict(),
        len(cap.tracer.spans),
        len(cap.tracer.events),
    )


def run_overhead_study():
    walls = {arm: [] for arm in ARMS}
    records = {}
    counts = {}
    # Interleave the arms round-robin so slow-host drift (thermal,
    # noisy neighbours) hits every arm equally instead of biasing
    # whichever ran last.
    for _ in range(REPEATS):
        for arm in ARMS:
            wall, record, n_spans, n_events = _one_run(arm)
            walls[arm].append(wall)
            records[arm] = record
            counts[arm] = {"spans": n_spans, "events": n_events}
    study = {"arms": []}
    base = statistics.median(walls["baseline"])
    for arm in ARMS:
        med = statistics.median(walls[arm])
        study["arms"].append(
            {
                "arm": arm,
                "median_s": round(med, 4),
                "overhead": round(med / max(base, 1e-9), 3),
                **counts[arm],
            }
        )
    study["records_identical"] = all(
        records[arm] == records["baseline"] for arm in ARMS
    )
    return study


def _write_trajectory(study):
    point = {
        "experiment": "E26",
        "protocol": "algorithm1",
        "topology": f"grid({GRID_SIDE}x{GRID_SIDE})",
        "f": F,
        "b": B,
        "repeats": REPEATS,
        "rows": study["arms"],
        "records_identical": study["records_identical"],
    }
    with open(os.path.abspath(TRAJECTORY_PATH), "w") as fh:
        json.dump(point, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.benchmark(group="obs")
def test_observability_overhead(benchmark):
    study = once(benchmark, run_overhead_study)
    emit(
        "e26_obs_overhead",
        format_table(
            study["arms"],
            title=(
                f"E26: tracing overhead, algorithm1 on grid "
                f"{GRID_SIDE}x{GRID_SIDE} (f={F}, b={B}, "
                f"median of {REPEATS})"
            ),
        ),
    )
    _write_trajectory(study)

    # Tracing never changes what the protocol computed.
    assert study["records_identical"]

    by_arm = {row["arm"]: row for row in study["arms"]}
    # Armed tracing actually recorded the protocol phases.
    assert by_arm["phases"]["spans"] >= 7  # 4 AGG + 3 VERI at least
    assert by_arm["off"]["spans"] == 0
    assert by_arm["messages"]["events"] > by_arm["phases"]["events"]

    # The hot-path budgets.
    assert by_arm["off"]["overhead"] <= MAX_OFF_OVERHEAD, by_arm["off"]
    assert (
        by_arm["phases"]["overhead"] <= MAX_PHASES_OVERHEAD
    ), by_arm["phases"]
