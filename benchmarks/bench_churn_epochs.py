"""E24 — churn-tolerant epochs: exactly-once aggregation under rejoins.

The paper's model is crash-stop: a failed node is gone forever, and the
protocols' correctness story leans on that (a contribution is counted at
most once because nobody comes back to offer it twice).  This bench
measures what the churn epoch manager (:mod:`repro.resilience.epochs`)
buys when nodes *do* come back:

* **Exactness vs churn rate.**  Random crash/revive schedules at rates
  0–0.2, durable and mixed (25% amnesiac) arms.  Durable churn within
  the budget stays exact; amnesiac churn degrades only to *certified*
  partials (coverage exact, value exact over it) — and the
  :class:`DoubleCountOracle` confirms zero double-counted and zero
  silently lost contributions at every rate.
* **Exactly-once accounting.**  Every booked contribution carries a
  ``(node_id, incarnation)`` nonce; the oracle audits the ledger against
  the ground-truth input multiset.
* **Repair traffic isolation.**  A durable blip's retransmits, NACKs,
  incarnation stamps, announces and handshakes all book as
  ``overhead_bits``: the protocol CC column is unchanged from the clean
  transport baseline, bit for bit.
"""

import random

import pytest

from repro.analysis import format_table
from repro.analysis.runner import make_inputs
from repro.exec.scheduler import WorkUnit, execute_unit
from repro.graphs import grid_graph
from repro.resilience import ChurnPolicy, TransportConfig
from repro.resilience.epochs import run_with_churn
from repro.sim.faults import REJOIN_DURABLE, ChurnSchedule

from _util import emit, once

SEEDS = 5
RATES = (0.0, 0.05, 0.1, 0.2)
HORIZON = 160


def _campaign(topo, rate, amnesiac):
    rows = {
        "exact": 0,
        "partial": 0,
        "uncertified": 0,
        "double": 0,
        "lost": 0,
        "epochs": 0,
        "cc": 0,
        "overhead": 0,
    }
    for seed in range(SEEDS):
        record = execute_unit(
            WorkUnit(
                protocol="unknown_f",
                topology=topo,
                seed=seed,
                schedule={"kind": "none"},
                monitors={"mode": "record", "recovery": False},
                churn={
                    "kind": "random",
                    "rate": rate,
                    "horizon": HORIZON,
                    "amnesiac": amnesiac,
                    "flap_rate": 0.0,
                },
                churn_policy=ChurnPolicy(
                    transport=TransportConfig(retransmits=5)
                ),
            )
        )
        extra = record.extra
        if record.correct and not extra.get("missing"):
            rows["exact"] += 1
        elif extra.get("certified"):
            rows["partial"] += 1
        else:
            rows["uncertified"] += 1
        rows["double"] += extra.get("double_counted", 0)
        rows["lost"] += extra.get("lost_contributions", 0)
        rows["epochs"] += extra.get("epochs", 1)
        rows["cc"] += record.cc_bits
        rows["overhead"] += extra.get("overhead_bits", 0)
    return rows


def run_churn_study():
    topo = grid_graph(4, 4)
    table = []
    for rate in RATES:
        for label, amnesiac in (("durable", 0.0), ("mixed", 0.25)):
            if rate == 0.0 and label == "mixed":
                continue
            rows = _campaign(topo, rate, amnesiac)
            table.append(
                {
                    "churn": rate,
                    "rejoins": label,
                    "seeds": SEEDS,
                    "exact": rows["exact"],
                    "certified partial": rows["partial"],
                    "uncertified": rows["uncertified"],
                    "double-count": rows["double"],
                    "lost": rows["lost"],
                    "mean epochs": round(rows["epochs"] / SEEDS, 2),
                    "CC": rows["cc"] // SEEDS,
                    "overhead": rows["overhead"] // SEEDS,
                }
            )
    return topo, table


def run_cc_isolation_study():
    """Durable blips vs the clean transport baseline, same seeds."""
    topo = grid_graph(4, 4)
    policy = ChurnPolicy(transport=TransportConfig(retransmits=5))
    non_root = sorted(set(topo.nodes()) - {topo.root})
    rows = []
    for seed in range(SEEDS):
        rng = random.Random(seed)
        inputs = make_inputs(topo, rng)
        clean = run_with_churn(
            "unknown_f",
            topo,
            inputs,
            ChurnSchedule(),
            rng=random.Random(seed),
            policy=policy,
        )
        node = non_root[seed % len(non_root)]
        blip = run_with_churn(
            "unknown_f",
            topo,
            inputs,
            ChurnSchedule(
                cycles={node: [(3 + seed, 7 + seed, REJOIN_DURABLE)]},
                root=topo.root,
            ),
            rng=random.Random(seed),
            policy=policy,
        )
        rows.append(
            {
                "seed": seed,
                "blipped node": node,
                "clean CC": clean.stats.max_bits,
                "blip CC": blip.stats.max_bits,
                "clean overhead": clean.stats.max_overhead_bits,
                "blip overhead": blip.stats.max_overhead_bits,
                "exact": blip.result == sum(inputs.values()),
            }
        )
    return rows


@pytest.mark.benchmark(group="churn")
def test_churn_epochs_exactly_once(benchmark):
    topo, table = once(benchmark, run_churn_study)
    emit(
        "e24_churn_epochs",
        format_table(
            table,
            title=(
                f"E24: exactness vs churn rate on {topo.name} "
                f"(unknown_f, epoch manager, {SEEDS} seeds)"
            ),
        ),
    )
    by_key = {(r["churn"], r["rejoins"]): r for r in table}
    # The acceptance bar: durable churn at rate 0.05 is fully exact with
    # zero exactly-once violations.
    assert by_key[(0.05, "durable")]["exact"] == SEEDS
    for row in table:
        assert row["double-count"] == 0
        assert row["lost"] == 0
        # Degradation is honest: no silent-wrong rows hide in the table
        # because uncertified rows are counted, never blended.
        assert (
            row["exact"] + row["certified partial"] + row["uncertified"]
            == SEEDS
        )


@pytest.mark.benchmark(group="churn")
def test_repair_traffic_never_touches_protocol_cc(benchmark):
    rows = once(benchmark, run_cc_isolation_study)
    emit(
        "e24_churn_cc_isolation",
        format_table(
            rows,
            title=(
                "E24: protocol CC under a durable blip vs clean baseline "
                "(all repair traffic booked as overhead)"
            ),
        ),
    )
    for row in rows:
        assert row["blip CC"] == row["clean CC"]
        assert row["blip overhead"] >= row["clean overhead"]
        assert row["exact"]
