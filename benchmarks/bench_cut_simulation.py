"""E13 — the simulation argument behind Section 7's reduction.

A SUM protocol on a topology split into Alice/Bob halves yields a
two-party protocol whose transcript is exactly the traffic broadcast by
cut-adjacent nodes.  The bench runs the real protocols under the cut
harness on bottleneck topologies and reports:

* the cut transcript of brute force (grows ~linearly with N: every value
  crosses) vs AGG (bounded by the boundary nodes' (t+1)logN budgets);
* the per-node bound the simulation argument yields, compared against the
  protocols' actual bottleneck CC (it must be a lower bound).
"""

import pytest

from repro.analysis import format_table
from repro.baselines.bruteforce import BruteForceNode
from repro.core.agg import AggNode
from repro.core.params import params_for
from repro.graphs import cluster_line_graph
from repro.lowerbound.cut_simulation import (
    CutSimulation,
    per_node_cut_lower_bound,
    split_by_bfs_half,
)

from _util import emit, once


def run_cut_study():
    rows = []
    for clusters in (2, 3, 4, 6):
        topo = cluster_line_graph(clusters, 4)
        alice = split_by_bfs_half(topo)

        params_bf = params_for(topo, t=0)
        bf_handlers = {u: BruteForceNode(params_bf, u, 1) for u in topo.nodes()}
        bf_sim = CutSimulation(topo, bf_handlers, alice)
        bf_tr = bf_sim.run(2 * params_bf.cd, stop_on_output=False)

        params_agg = params_for(topo, t=2)
        agg_handlers = {u: AggNode(params_agg, u, 1) for u in topo.nodes()}
        agg_sim = CutSimulation(topo, agg_handlers, alice)
        agg_tr = agg_sim.run(params_agg.agg_rounds, stop_on_output=False)

        bf_cc = bf_sim.network.stats.max_bits
        agg_cc = agg_sim.network.stats.max_bits
        rows.append(
            {
                "N": topo.n_nodes,
                "cut edges": len(bf_sim.cut_edges),
                "bruteforce cut bits": bf_tr.total_bits,
                "AGG cut bits": agg_tr.total_bits,
                "bf per-node bound": round(
                    per_node_cut_lower_bound(bf_tr, len(bf_sim.boundary)), 1
                ),
                "bf actual CC": bf_cc,
                "AGG per-node bound": round(
                    per_node_cut_lower_bound(agg_tr, len(agg_sim.boundary)), 1
                ),
                "AGG actual CC": agg_cc,
            }
        )
    return rows


@pytest.mark.benchmark(group="cut_simulation")
def test_cut_simulation_argument(benchmark):
    rows = once(benchmark, run_cut_study)
    emit(
        "cut_simulation",
        format_table(
            rows,
            title="Two-party simulation across cluster-line cuts (E13)",
        ),
    )
    # The per-node bound derived from the cut is a true lower bound on the
    # protocol's bottleneck CC.
    for row in rows:
        assert row["bf per-node bound"] <= row["bf actual CC"]
        assert row["AGG per-node bound"] <= row["AGG actual CC"]
    # Brute force's cut traffic grows with N; AGG's stays near-flat (its
    # boundary budgets don't depend on N beyond logN).
    bf = [row["bruteforce cut bits"] for row in rows]
    agg = [row["AGG cut bits"] for row in rows]
    assert bf[-1] > 2 * bf[0]
    assert agg[-1] < 2.5 * agg[0]
