"""E27 — Byzantine-tolerant aggregation: equivocation vs the witnesses.

The paper's fault model is crash-stop: a failed node falls silent and
its subtree is *visibly* missing.  A Byzantine node is worse — it stays
in the protocol and lies, and an undetected lie corrupts the aggregate
silently.  This bench measures what the witness defense
(:class:`repro.sim.faults.ByzantineSchedule` equivocation faults,
:mod:`repro.resilience.byzantine` k-witness cross-validation,
accusation/conviction, influence-bounded certification) buys:

* **Detection vs attack mode.**  Fixed compromises exercising every
  behaviour (equivocate / inflate / deflate / replay / omit, plus a
  mixed three-node arm) and random compromise schedules at rates
  0.1-0.2.  Every delivered result must be exact or carry a satisfied
  influence bound (``record.correct``), and the
  :class:`~repro.sim.monitors.ByzantineOracle` must see **zero**
  FALSE-CONVICTION, zero UNDETECTED-EQUIVOCATION, and zero
  INFLUENCE-EXCEEDED verdicts in every arm.
* **The defense is free when clean.**  A zero-compromise schedule
  (``rate: 0``) must leave protocol CC, rounds, and the result
  bit-for-bit identical to a run with no Byzantine layer at all, seed
  for seed — witness echo traffic only ever books as ``overhead_bits``
  and never inflates the paper's CC accounting.

The trajectory point lands in ``BENCH_e27_byzantine.json`` at the repo
root (per-arm exactness, conviction/eviction counts, oracle verdicts,
echo overhead, and the clean-run CC-identity flag).
"""

import json
import os

import pytest

from repro.analysis import format_table
from repro.exec.scheduler import WorkUnit, execute_unit
from repro.graphs import grid_graph
from repro.resilience import ByzantineConfig

from _util import emit, once

SEEDS = 5
F = 1
B = 64
GRID = (4, 4)
#: Behaviour horizon for random schedules — comfortably past the run.
HORIZON = 400
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_e27_byzantine.json"
)

#: (label, byz spec) — fixed single-mode compromises, a mixed arm, and
#: random schedules.  Node choices avoid the root (node 0).
ARMS = (
    ("equivocate", "5:equivocate"),
    ("inflate", "9:inflate=3"),
    ("deflate", "9:deflate=2"),
    ("replay", "6:replay"),
    ("omit", "10:omit"),
    ("mixed x3", "5:equivocate,9:inflate=3,10:omit"),
    ("random 0.1", {"kind": "random", "rate": 0.1, "horizon": HORIZON}),
    ("random 0.2", {"kind": "random", "rate": 0.2, "horizon": HORIZON}),
)


def _unit(topo, seed, byz, byz_config=None):
    return WorkUnit(
        protocol="algorithm1",
        topology=topo,
        seed=seed,
        f=F,
        b=B,
        schedule={"kind": "none"},
        monitors={"mode": "record", "recovery": False},
        byz=byz,
        byz_config=byz_config,
    )


def _campaign(topo, byz):
    rows = {
        "ok": 0,
        "exact": 0,
        "convicted": 0,
        "evicted": 0,
        "false_convictions": 0,
        "undetected": 0,
        "exceeded": 0,
        "epochs": 0,
        "cc": 0,
        "overhead": 0,
    }
    config = ByzantineConfig(witnesses=2, evict_policy="evict")
    for seed in range(SEEDS):
        record = execute_unit(_unit(topo, seed, byz, config))
        extra = record.extra
        if record.correct:
            rows["ok"] += 1
        if record.correct and not extra.get("influence_bound"):
            rows["exact"] += 1
        rows["convicted"] += int(extra.get("convicted") or 0)
        evicted = extra.get("evicted") or 0
        rows["evicted"] += (
            evicted if isinstance(evicted, int) else len(evicted)
        )
        rows["false_convictions"] += extra.get("false_convictions", 0)
        rows["undetected"] += extra.get("undetected_equivocations", 0)
        rows["exceeded"] += extra.get("influence_exceeded", 0)
        rows["epochs"] += int(extra.get("epochs") or 1)
        rows["cc"] += record.cc_bits
        rows["overhead"] += extra.get("overhead_bits", 0)
    return rows


def run_byz_study():
    topo = grid_graph(*GRID)
    table = []
    for label, byz in ARMS:
        rows = _campaign(topo, byz)
        table.append(
            {
                "attack": label,
                "seeds": SEEDS,
                "ok": rows["ok"],
                "exact": rows["exact"],
                "convicted": rows["convicted"],
                "evicted": rows["evicted"],
                "false-conviction": rows["false_convictions"],
                "undetected-equivocation": rows["undetected"],
                "influence-exceeded": rows["exceeded"],
                "epochs": rows["epochs"],
                "CC": rows["cc"] // SEEDS,
                "overhead": rows["overhead"] // SEEDS,
            }
        )
    return topo, table


def run_clean_cc_study():
    """Zero compromises: the byz pipeline must be bit-free overhead."""
    topo = grid_graph(*GRID)
    clean = {"kind": "random", "rate": 0.0, "horizon": HORIZON}
    rows = []
    for seed in range(SEEDS):
        base = execute_unit(_unit(topo, seed, None))
        armed = execute_unit(
            _unit(topo, seed, clean, ByzantineConfig(witnesses=2))
        )
        rows.append(
            {
                "seed": seed,
                "base CC": base.cc_bits,
                "armed CC": armed.cc_bits,
                "base rounds": base.rounds,
                "armed rounds": armed.rounds,
                "identical": (
                    base.cc_bits == armed.cc_bits
                    and base.rounds == armed.rounds
                    and base.result == armed.result
                ),
            }
        )
    return rows


def _write_trajectory(table, cc_rows):
    point = {
        "experiment": "E27",
        "protocol": "algorithm1",
        "topology": f"grid({GRID[0]}x{GRID[1]})",
        "f": F,
        "b": B,
        "seeds": SEEDS,
        "witnesses": 2,
        "rows": table,
        "clean_run_cc_identical": all(r["identical"] for r in cc_rows),
    }
    with open(os.path.abspath(TRAJECTORY_PATH), "w") as fh:
        json.dump(point, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.benchmark(group="byzantine")
def test_byzantine_attacks_detected_or_bounded(benchmark):
    topo, table = once(benchmark, run_byz_study)
    emit(
        "e27_byzantine",
        format_table(
            table,
            title=(
                f"E27: Byzantine attacks vs witness defense on {topo.name} "
                f"(algorithm1, f={F}, b={B}, k=2 witnesses, {SEEDS} seeds)"
            ),
        ),
    )
    cc_rows = run_clean_cc_study()
    emit(
        "e27_byz_cc_isolation",
        format_table(
            cc_rows,
            title=(
                "E27: protocol CC with the byz pipeline armed but zero "
                "compromises vs no byz layer (echo traffic books as "
                "overhead, never CC)"
            ),
        ),
    )
    _write_trajectory(table, cc_rows)

    # The acceptance bar: every delivered result is exact or carries a
    # satisfied influence bound, and the oracle never sees an honest
    # node convicted, an equivocator escape while the result went
    # wrong, or a value outside its certified envelope.
    for row in table:
        assert row["ok"] == SEEDS, row
        assert row["false-conviction"] == 0, row
        assert row["undetected-equivocation"] == 0, row
        assert row["influence-exceeded"] == 0, row

    # Outright lies that cannot hide inside the influence envelope —
    # contradictory variants, selective omission — must end in actual
    # convictions, not just a widened bound.
    by_attack = {row["attack"]: row for row in table}
    assert by_attack["equivocate"]["convicted"] == SEEDS
    assert by_attack["omit"]["convicted"] == SEEDS

    # Zero-compromise runs are bit-identical to the unarmed baseline.
    for row in cc_rows:
        assert row["identical"], row
