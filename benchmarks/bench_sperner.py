"""E7 — Lemma 11 / Theorem 9: the Sperner-capacity rank argument.

* ``rank(M(q)) = q - 1`` exactly, across a wide ``q`` sweep (both the
  floating-point rank and the exact integer-elimination check).
* Exhaustive verification of Theorem 9's family-size bound ``(q-1)^n`` for
  tiny ``(n, q)`` via branch-and-bound max-clique.
* The resulting Lemma 11 lower-bound values ``n log2(1 + 1/(q-1))``.
"""

import math

import pytest

from repro.analysis import format_table
from repro.lowerbound import (
    lemma11_bound,
    lemma11_cover_bound,
    max_diagonal_rectangle,
    max_sperner_family_size,
    min_rectangle_cover,
    rank_is_q_minus_1,
    sperner_rank,
    theorem9_bound,
)

from _util import emit, once


def rank_sweep():
    rows = []
    for q in (2, 3, 4, 5, 8, 16, 32, 64, 128):
        rows.append(
            {
                "q": q,
                "rank(M(q)) numeric": sperner_rank(q),
                "exact check rank = q-1": rank_is_q_minus_1(q),
                "Lemma 11 bound / n": round(lemma11_bound(1, q), 4),
                "paper's weak form 1/(q-1)": round(1 / (q - 1), 4),
            }
        )
    return rows


def exhaustive_sweep():
    rows = []
    for n, q in ((1, 3), (2, 3), (3, 3), (4, 3), (1, 4), (2, 4), (1, 5), (2, 5)):
        measured = max_sperner_family_size(n, q)
        rows.append(
            {
                "n": n,
                "q": q,
                "max |S| (exhaustive)": measured,
                "(q-1)^n bound": theorem9_bound(n, q),
                "bound holds": measured <= theorem9_bound(n, q),
            }
        )
    return rows


@pytest.mark.benchmark(group="sperner")
def test_rank_q_minus_1(benchmark):
    rows = once(benchmark, rank_sweep)
    emit("sperner_rank", format_table(rows, title="Lemma 11: rank(M(q)) = q-1"))
    for row in rows:
        assert row["rank(M(q)) numeric"] == row["q"] - 1
        assert row["exact check rank = q-1"]
        # The bound we compute dominates the paper's weaker n/(q-1) form in
        # natural-log units; in bits it's log2(1+1/(q-1)) >= 1/q for q >= 2.
        assert row["Lemma 11 bound / n"] >= 1 / (2 * row["q"])


def rectangle_sweep():
    rows = []
    for n, q in ((1, 3), (2, 3), (1, 4), (2, 4), (1, 5)):
        c1 = min_rectangle_cover(n, q)
        rows.append(
            {
                "n": n,
                "q": q,
                "max 1-rectangle": max_diagonal_rectangle(n, q),
                "sperner family max": max_sperner_family_size(n, q),
                "exact cover C^1": c1,
                "Lemma 11 bound q^n/(q-1)^n": round(lemma11_cover_bound(n, q), 2),
                "implied N(h) bits": round(math.log2(c1), 2),
            }
        )
    return rows


@pytest.mark.benchmark(group="sperner")
def test_rectangle_cover_chain(benchmark):
    """The full Lemma 11 chain on explicit matrices: max 1-rectangle equals
    the Theorem 9 family maximum, and the exact cover obeys the bound."""
    rows = once(benchmark, rectangle_sweep)
    emit(
        "sperner_rectangles",
        format_table(rows, title="Lemma 11's rectangle argument, exact"),
    )
    for row in rows:
        assert row["max 1-rectangle"] == row["sperner family max"]
        assert row["exact cover C^1"] >= row["Lemma 11 bound q^n/(q-1)^n"]


@pytest.mark.benchmark(group="sperner")
def test_theorem9_exhaustive(benchmark):
    rows = once(benchmark, exhaustive_sweep)
    emit(
        "sperner_exhaustive",
        format_table(rows, title="Theorem 9 verified exhaustively (max-clique)"),
    )
    assert all(row["bound holds"] for row in rows)
    # The bound is reasonably tight: at (n, q) = (3, 3) the family reaches
    # at least half the bound.
    for row in rows:
        if (row["n"], row["q"]) == (3, 3):
            assert row["max |S| (exhaustive)"] * 2 >= row["(q-1)^n bound"]
