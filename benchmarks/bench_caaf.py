"""E9 — CAAF generality (Section 2): one protocol, any operator.

The paper: "our SUM protocol and its guarantees trivially generalizes to
arbitrary CAAFs ... one only needs to replace the addition operator".

The bench runs Algorithm 1 with SUM, COUNT, MAX, and OR under identical
topology/adversary/coins and checks (a) every result is correct for its
operator and (b) the communication profile is essentially operator-
independent (only the value-field width differs).
"""

import random

import pytest

from repro.adversary import random_failures
from repro.analysis import format_table
from repro.core import COUNT, MAX, OR, SUM, run_algorithm1
from repro.core.correctness import is_correct_result
from repro.graphs import grid_graph

from _util import emit, once

TOPOLOGY = grid_graph(6, 6)
SEEDS = 3
F, B = 8, 84


def run_operator_sweep():
    rows = []
    for caaf in (SUM, COUNT, MAX, OR):
        ccs, correct = [], 0
        for seed in range(SEEDS):
            rng = random.Random(seed)
            schedule = random_failures(
                TOPOLOGY, f=F, rng=rng, first_round=1, last_round=B * TOPOLOGY.diameter
            )
            inputs = {u: rng.randint(0, 9) for u in TOPOLOGY.nodes()}
            out = run_algorithm1(
                TOPOLOGY,
                inputs,
                f=F,
                b=B,
                schedule=schedule,
                caaf=caaf,
                rng=random.Random(seed + 77),
            )
            ccs.append(out.stats.max_bits)
            correct += is_correct_result(
                out.result, caaf, TOPOLOGY, inputs, schedule, out.rounds
            )
        rows.append(
            {
                "CAAF": caaf.name,
                "CC mean": round(sum(ccs) / len(ccs), 1),
                "correct": f"{correct}/{SEEDS}",
            }
        )
    return rows


@pytest.mark.benchmark(group="caaf")
def test_caaf_generality(benchmark):
    rows = once(benchmark, run_operator_sweep)
    emit(
        "caaf_generality",
        format_table(
            rows, title=f"Algorithm 1 across CAAFs on {TOPOLOGY.name}, f={F}, b={B}"
        ),
    )
    assert all(row["correct"] == f"{SEEDS}/{SEEDS}" for row in rows)
    # Operator-independence: the CC spread across operators stays within the
    # difference attributable to value-field widths (well under 2x).
    ccs = [row["CC mean"] for row in rows]
    assert max(ccs) / min(ccs) < 2.0
