"""E6 — Section 7's two-party problems: Theorems 8, 10, 12.

Measured series:

* UNIONSIZECP cost vs ``q`` at fixed ``n`` (expect ~``n/q logn`` decay for
  the wrap-position protocol, flat ``n logq`` for the trivial one), against
  the ``Omega(n/q) - O(logn)`` lower bound (Theorem 12).
* UNIONSIZECP cost vs ``n`` at fixed ``q`` (expect linear growth).
* EQUALITYCP via the Theorem 8 reduction: overhead over the oracle is
  ``O(logn + logq)``.
"""

import random
import statistics

import pytest

from repro.analysis import format_table
from repro.lowerbound import (
    ReductionEquality,
    TrivialUnionSize,
    WrapPositionUnionSize,
    lemma11_bound,
    random_instance,
    strings_equal,
    union_size,
    unionsize_lower_bound,
    unionsize_upper_bound,
)

from _util import emit, once

SEEDS = 10


def sweep_q():
    n = 2048
    rng = random.Random(0)
    rows = []
    for q in (2, 4, 8, 16, 32, 64):
        wrap, triv = [], []
        for _ in range(SEEDS):
            x, y = random_instance(n, q, rng)
            truth = union_size(x, y)
            ans, tr = WrapPositionUnionSize(q).run(x, y)
            assert ans == truth
            wrap.append(tr.total_bits)
            ans, tr = TrivialUnionSize(q).run(x, y)
            assert ans == truth
            triv.append(tr.total_bits)
        rows.append(
            {
                "q": q,
                "wrap-position mean bits": round(statistics.fmean(wrap)),
                "trivial mean bits": round(statistics.fmean(triv)),
                "UB shape n/q logn + logq": round(unionsize_upper_bound(n, q)),
                "LB n/q - logn": round(unionsize_lower_bound(n, q)),
            }
        )
    return n, rows


def sweep_n():
    q = 8
    rng = random.Random(1)
    rows = []
    for n in (128, 512, 2048, 8192):
        wrap = []
        for _ in range(SEEDS):
            x, y = random_instance(n, q, rng)
            ans, tr = WrapPositionUnionSize(q).run(x, y)
            assert ans == union_size(x, y)
            wrap.append(tr.total_bits)
        mean = statistics.fmean(wrap)
        rows.append(
            {
                "n": n,
                "wrap-position mean bits": round(mean),
                "LB n/q - logn": round(unionsize_lower_bound(n, q)),
                "EQUALITYCP LB (Lemma 11)": round(lemma11_bound(n, q), 1),
            }
        )
    return q, rows


def reduction_overhead():
    rng = random.Random(2)
    rows = []
    for n, q in ((256, 4), (1024, 8), (4096, 16)):
        oracle = WrapPositionUnionSize(q)
        reduction = ReductionEquality(q, oracle)
        overheads, ok = [], True
        for _ in range(SEEDS):
            x, y = random_instance(n, q, rng)
            answer, tr = reduction.run(x, y)
            ok = ok and (answer == strings_equal(x, y))
            _, tr_oracle = oracle.run(x, y)
            overheads.append(tr.total_bits - tr_oracle.total_bits)
        rows.append(
            {
                "n": n,
                "q": q,
                "mean overhead bits": round(statistics.fmean(overheads), 1),
                "O(logn + logq) scale": n.bit_length() + q.bit_length(),
                "all answers correct": ok,
            }
        )
    return rows


@pytest.mark.benchmark(group="twoparty")
def test_unionsize_vs_q(benchmark):
    n, rows = once(benchmark, sweep_q)
    emit(
        "twoparty_unionsize_vs_q",
        format_table(rows, title=f"UNIONSIZECP, n={n}: measured cost vs q"),
    )
    wrap = [row["wrap-position mean bits"] for row in rows]
    assert wrap == sorted(wrap, reverse=True)  # ~ n/q decay
    for row in rows:
        assert row["wrap-position mean bits"] >= row["LB n/q - logn"]


@pytest.mark.benchmark(group="twoparty")
def test_unionsize_vs_n(benchmark):
    q, rows = once(benchmark, sweep_n)
    emit(
        "twoparty_unionsize_vs_n",
        format_table(rows, title=f"UNIONSIZECP, q={q}: measured cost vs n"),
    )
    wrap = [row["wrap-position mean bits"] for row in rows]
    assert wrap == sorted(wrap)  # grows with n
    # Roughly linear: quadrupling n multiplies cost by ~4 (log factor slack).
    assert 2.5 < wrap[-1] / wrap[-2] < 7
    for row in rows:
        assert row["wrap-position mean bits"] >= row["LB n/q - logn"]


@pytest.mark.benchmark(group="twoparty")
def test_reduction_overhead_logarithmic(benchmark):
    rows = once(benchmark, reduction_overhead)
    emit(
        "twoparty_reduction_overhead",
        format_table(rows, title="Theorem 8 reduction: additive overhead"),
    )
    for row in rows:
        assert row["all answers correct"]
        assert row["mean overhead bits"] <= 4 * row["O(logn + logq) scale"]
