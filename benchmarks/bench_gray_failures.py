"""E25 — gray-failure resilience: slow-but-alive nodes vs the detector.

The paper's fault model is crash-stop: a node is either perfectly on
time or gone forever, and every bound in the paper leans on that
dichotomy.  This bench measures what the gray-failure stack
(:mod:`repro.sim.faults` stalls, :mod:`repro.resilience.detector`
phi-accrual suspicion, adaptive per-link RTO, hedged retransmission)
buys when nodes are merely *degraded*:

* **Exactness vs stall severity.**  Random stall/limp schedules at
  severities 1x-2x across three transport arms (fixed RTO, adaptive
  RTO, adaptive + hedging).  Mild grayness within the retransmit
  budget stays exact, and the :class:`StragglerOracle` confirms zero
  FALSE-SUSPECT (a slow node escalated to confirmed-dead) and zero
  UNBOUNDED-STALL (a degradation the detector never flagged) in every
  arm.
* **Adaptive windows buy rounds.**  Under the same gray schedules the
  adaptive-RTO arm seals its logical rounds early when loss reports
  come back clean, finishing in strictly fewer simulator rounds than
  the fixed-window arm, seed for seed in aggregate.
* **Hedging is free when healthy.**  On a clean run the hedger never
  fires (no suspicion, no hedge), so the protocol CC column is
  bit-for-bit identical to the unhedged baseline and all hedge traffic
  that *does* fire under grayness books as ``overhead_bits``.
"""

import pytest

from repro.analysis import format_table
from repro.exec.scheduler import WorkUnit, execute_unit
from repro.graphs import grid_graph
from repro.resilience import TransportConfig

from _util import emit, once

SEEDS = 5
HORIZON = 160
ARMS = (
    ("fixed", "fixed", False),
    ("adaptive", "adaptive", False),
    ("adaptive+hedge", "adaptive", True),
)


def _unit(topo, seed, rto, hedge, gray):
    return WorkUnit(
        protocol="algorithm1",
        topology=topo,
        seed=seed,
        f=2,
        b=64,
        schedule={"kind": "none"},
        monitors={"mode": "record", "recovery": False},
        transport=TransportConfig(retransmits=2, rto=rto, hedge=hedge),
        gray=gray,
    )


def _campaign(topo, severity, rto, hedge):
    rows = {
        "exact": 0,
        "false_suspects": 0,
        "missed": 0,
        "suspects": 0,
        "stalled": 0,
        "rounds": 0,
        "cc": 0,
        "overhead": 0,
    }
    gray = {
        "kind": "random",
        "rate": 0.3,
        "horizon": HORIZON,
        "max_severity": severity,
    }
    for seed in range(SEEDS):
        record = execute_unit(_unit(topo, seed, rto, hedge, gray))
        extra = record.extra
        if record.correct:
            rows["exact"] += 1
        rows["false_suspects"] += extra.get("false_suspects", 0)
        rows["missed"] += extra.get("missed_degradations", 0)
        rows["suspects"] += extra.get("suspects", 0)
        rows["stalled"] += extra.get("gray_stalled", 0)
        rows["rounds"] += record.rounds
        rows["cc"] += record.cc_bits
        rows["overhead"] += extra.get("overhead_bits", 0)
    return rows


def run_gray_study():
    topo = grid_graph(4, 4)
    table = []
    for severity in (1, 2):
        for label, rto, hedge in ARMS:
            rows = _campaign(topo, severity, rto, hedge)
            table.append(
                {
                    "severity": f"x{severity}",
                    "transport": label,
                    "seeds": SEEDS,
                    "exact": rows["exact"],
                    "false-suspect": rows["false_suspects"],
                    "unbounded-stall": rows["missed"],
                    "suspects": rows["suspects"],
                    "stalled rounds": rows["stalled"],
                    "rounds": rows["rounds"] // SEEDS,
                    "CC": rows["cc"] // SEEDS,
                    "overhead": rows["overhead"] // SEEDS,
                }
            )
    return topo, table


def run_hedge_cc_study():
    """Clean runs, hedged vs unhedged: the same seeds, same CC bits."""
    topo = grid_graph(4, 4)
    rows = []
    for seed in range(SEEDS):
        base = execute_unit(_unit(topo, seed, "fixed", False, None))
        hedged = execute_unit(_unit(topo, seed, "adaptive", True, None))
        rows.append(
            {
                "seed": seed,
                "base CC": base.cc_bits,
                "hedged CC": hedged.cc_bits,
                "base rounds": base.rounds,
                "hedged rounds": hedged.rounds,
                "suspects": hedged.extra.get("suspects", 0),
                "exact": hedged.correct,
            }
        )
    return rows


@pytest.mark.benchmark(group="gray")
def test_gray_failures_stay_exact(benchmark):
    topo, table = once(benchmark, run_gray_study)
    emit(
        "e25_gray_failures",
        format_table(
            table,
            title=(
                f"E25: exactness vs stall severity on {topo.name} "
                f"(algorithm1, phi-accrual detector, {SEEDS} seeds)"
            ),
        ),
    )
    # The acceptance bar: severities <= 2x stay exact in at least 5 of
    # the 6 arms, and the oracle never sees a merely-slow node escalated
    # to confirmed-dead or a degradation it failed to flag.
    fully_exact = sum(1 for row in table if row["exact"] == SEEDS)
    assert fully_exact >= 5
    for row in table:
        assert row["false-suspect"] == 0
        assert row["unbounded-stall"] == 0


@pytest.mark.benchmark(group="gray")
def test_adaptive_rto_beats_fixed_windows(benchmark):
    topo, table = once(benchmark, run_gray_study)
    by_key = {(r["severity"], r["transport"]): r for r in table}
    # Adaptive windows seal early on clean loss reports: strictly fewer
    # simulator rounds than the fixed-window arm at every severity.
    for severity in ("x1", "x2"):
        assert (
            by_key[(severity, "adaptive")]["rounds"]
            < by_key[(severity, "fixed")]["rounds"]
        )


@pytest.mark.benchmark(group="gray")
def test_hedging_is_free_on_clean_runs(benchmark):
    rows = once(benchmark, run_hedge_cc_study)
    emit(
        "e25_gray_hedge_cc",
        format_table(
            rows,
            title=(
                "E25: protocol CC with hedging on a clean run vs baseline "
                "(no suspicion => no hedges => identical bits)"
            ),
        ),
    )
    for row in rows:
        assert row["hedged CC"] == row["base CC"]
        assert row["suspects"] == 0
        assert row["exact"]
