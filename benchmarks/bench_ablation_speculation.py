"""E10 — Ablation: why speculative flooding and witness selection matter.

The paper argues (Section 4.2, Figure 3) that waiting for confirmed
failures before flooding either costs extra flooding rounds per failure
level (breaking O(1) TC) or loses partial sums; and that flooding
*everything* trivially restores correctness but costs O(N logN) like brute
force.  We ablate AGG two ways:

* ``AlwaysFloodAgg`` — every node floods its partial sum: same answers,
  but per-node bits blow up toward brute-force territory.
* ``ConfirmedOnlyAgg`` — a node floods only if its parent is a *confirmed*
  (flooded critical-failure) casualty rather than speculating on silence:
  under the Figure 3 blocker adversary it loses live inputs that real AGG
  recovers.

Measured on the blocker-adversary family; real AGG must be both correct
and cheap.
"""

import random
import statistics

import pytest

from repro.adversary import blocker_failures
from repro.analysis import format_table
from repro.core.agg import AggNode, run_agg
from repro.core.caaf import SUM
from repro.core.correctness import correctness_interval, surviving_nodes
from repro.core.params import params_for
from repro.graphs import grid_graph
from repro.sim.network import Network

from _util import emit, once


class AlwaysFloodAgg(AggNode):
    """Ablation: skip the silence test; every node floods its psum."""

    def _flooding_round(self, p, inbox):
        st = self.state
        if self.is_root and p == 1:
            self._initiate_psum_flood()
        elif st.activated and not self.is_root and p == st.level + 1:
            self._initiate_psum_flood()


class ConfirmedOnlyAgg(AggNode):
    """Ablation: flood only on *confirmed* parent death (no speculation)."""

    def _flooding_round(self, p, inbox):
        st = self.state
        if self.is_root and p == 1:
            self._initiate_psum_flood()
        elif (
            st.activated
            and not self.is_root
            and p == st.level + 1
            and st.parent in st.critical_failures
        ):
            self._initiate_psum_flood()


class NoWitnessAgg(AggNode):
    """Ablation: skip witness selection; the root sums every flooded psum.

    Without the dominated/compulsory labels there is nothing to prevent a
    node's partial sum and its ancestor's from both being counted — the
    double-counting hazard Section 4.3's witnesses exist to prevent.
    """

    def _produce_output(self):
        self.done = True
        if self.aborted:
            self.result = None
            return
        total = self.p.caaf.identity
        for _source, psum in self.flooded_sources.items():
            total = self.p.caaf.op(total, psum)
        self.result = total


def run_variant(node_cls, topo, inputs, t, schedule):
    params = params_for(topo, t=t, max_input=max(list(inputs.values()) + [1]))
    # Disable the abort budget for ablation variants so the cost difference
    # is visible rather than clipped.
    nodes = {u: node_cls(params, u, inputs[u]) for u in topo.nodes()}
    if node_cls is AlwaysFloodAgg:
        for node in nodes.values():
            node.p = params.with_t(topo.n_nodes)
    network = Network(topo.adjacency, nodes, schedule.crash_rounds)
    stats = network.run(params.agg_rounds, stop_on_output=False)
    root = nodes[topo.root]
    return root.result, root.aborted, stats


def run_ablation():
    topo = grid_graph(6, 6)
    t = 12
    cd = 2 * topo.diameter
    variants = {
        "AGG (speculative, paper)": AggNode,
        "always-flood": AlwaysFloodAgg,
        "confirmed-only (no speculation)": ConfirmedOnlyAgg,
        "no-witness (sum all floods)": NoWitnessAgg,
    }
    results = {name: {"cc": [], "correct": 0, "trials": 0} for name in variants}
    # Two scenario flavours per Figure 3's discussion:
    # * blockers at the start of aggregation — floods get lost, descendants
    #   must speculate (kills the confirmed-only variant);
    # * late single crashes at the start of the flooding phase — the dead
    #   node's psum already reached the root, so its children's speculative
    #   floods *overlap* the root's sum (kills the no-witness variant).
    from repro.adversary import FailureSchedule

    scenarios = [
        blocker_failures(topo, f=16, victim=14, at_round=2 * cd + 2),
        blocker_failures(topo, f=16, victim=21, at_round=2 * cd + 2),
        FailureSchedule({7: 4 * cd + 3}),
        FailureSchedule({14: 4 * cd + 3}),
    ]
    for seed, schedule in enumerate(scenarios):
        rng = random.Random(seed)
        inputs = {u: rng.randint(1, 9) for u in topo.nodes()}
        survivors = surviving_nodes(topo, schedule, 10**9)
        lo, hi = correctness_interval(SUM, inputs, survivors)
        for name, cls in variants.items():
            result, aborted, stats = run_variant(cls, topo, inputs, t, schedule)
            results[name]["trials"] += 1
            results[name]["cc"].append(stats.max_bits)
            ok = (not aborted) and result is not None and lo <= result <= hi
            results[name]["correct"] += ok
    rows = [
        {
            "variant": name,
            "correct": f"{data['correct']}/{data['trials']}",
            "CC mean (bits/node)": round(statistics.fmean(data["cc"]), 1),
        }
        for name, data in results.items()
    ]
    return rows, results


@pytest.mark.benchmark(group="ablation")
def test_speculation_ablation(benchmark):
    rows, results = once(benchmark, run_ablation)
    emit(
        "ablation_speculation",
        format_table(
            rows,
            title="Ablating AGG's speculative flooding (Figure 3 blocker adversary)",
        ),
    )
    paper = results["AGG (speculative, paper)"]
    always = results["always-flood"]
    confirmed = results["confirmed-only (no speculation)"]
    no_witness = results["no-witness (sum all floods)"]
    # The paper's design is always correct on this family.
    assert paper["correct"] == paper["trials"]
    # Always-flood is correct too but strictly more expensive.
    assert statistics.fmean(always["cc"]) > statistics.fmean(paper["cc"])
    # Dropping speculation loses correctness on at least one blocker case.
    assert confirmed["correct"] < confirmed["trials"]
    # Dropping witnesses double counts on at least one blocker case.
    assert no_witness["correct"] < no_witness["trials"]
