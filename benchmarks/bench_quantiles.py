"""E11 — the Section 2 reduction: MEDIAN/SELECTION via COUNT binary search.

The paper (citing Patt-Shamir): "MEDIAN and SELECTION can be solved using
COUNT by doing a binary search over the output domain".  The bench runs the
reduction with Algorithm 1 as the COUNT substrate and checks:

* exactness on failure-free runs;
* probe count = ceil(log2(domain)) — the binary-search bound;
* total cost = probes x substrate cost (the reduction's multiplicative
  overhead, as predicted).
"""

import random
import statistics

import pytest

from repro.analysis import format_table
from repro.extensions.quantiles import (
    distributed_median,
    distributed_select,
    probe_budget,
)
from repro.graphs import grid_graph

from _util import emit, once

TOPOLOGY = grid_graph(5, 5)
F, B = 2, 45


def run_selection_sweep():
    rows = []
    rng = random.Random(0)
    inputs = {u: rng.randint(0, 40) for u in TOPOLOGY.nodes()}
    ordered = sorted(inputs.values())
    single_agg_cc = None
    for k in (1, 7, 13, 19, 25):
        out = distributed_select(
            TOPOLOGY, inputs, k=k, f=F, b=B, rng=random.Random(k)
        )
        per_probe_cc = statistics.fmean(
            max(p.cc_bits_per_node.values()) for p in out.probes
        )
        single_agg_cc = per_probe_cc
        rows.append(
            {
                "k": k,
                "selected": out.value,
                "truth": ordered[k - 1],
                "exact": out.value == ordered[k - 1],
                "probes": out.probe_count,
                "probe budget": probe_budget(TOPOLOGY, max(inputs.values())),
                "CC total": out.cc_bits,
                "CC per probe": round(per_probe_cc, 1),
            }
        )
    med = distributed_median(TOPOLOGY, inputs, f=F, b=B, rng=random.Random(9))
    rows.append(
        {
            "k": "median",
            "selected": med.value,
            "truth": ordered[(len(ordered) - 1) // 2],
            "exact": med.value == ordered[(len(ordered) - 1) // 2],
            "probes": med.probe_count,
            "probe budget": probe_budget(TOPOLOGY, max(inputs.values())) + 1,
            "CC total": med.cc_bits,
            "CC per probe": "-",
        }
    )
    return rows


@pytest.mark.benchmark(group="quantiles")
def test_selection_via_count(benchmark):
    rows = once(benchmark, run_selection_sweep)
    emit(
        "quantiles_selection",
        format_table(
            rows,
            title=f"SELECTION/MEDIAN via COUNT on {TOPOLOGY.name}, f={F}, b={B}",
        ),
    )
    assert all(row["exact"] for row in rows)
    for row in rows:
        assert row["probes"] <= row["probe budget"]
