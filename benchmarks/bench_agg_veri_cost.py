"""E3 — Theorems 3 and 6: AGG/VERI time and communication complexity.

Paper's claims:

* AGG terminates within ``11c`` flooding rounds and sends at most
  ``O((t+1) logN)`` bits per node (abort threshold ``(11t+14)(logN+5)``).
* VERI terminates within ``8c`` flooding rounds and sends at most
  ``O((t+1) logN)`` bits per node (threshold ``(5t+7)(3logN+10)``).

The bench sweeps ``t`` (expect CC linear in ``t``) and ``N`` (expect CC
logarithmic in ``N``), and checks the round counts exactly.
"""

import math
import random

import pytest

from repro.adversary import random_failures
from repro.analysis import format_table
from repro.core.agg import run_agg
from repro.core.params import params_for
from repro.core.veri import run_agg_veri_pair
from repro.graphs import grid_graph

from _util import emit, once

C = 2


def sweep_t():
    topo = grid_graph(6, 6)
    rows = []
    for t in (0, 2, 4, 8, 16):
        rng = random.Random(t)
        schedule = random_failures(
            topo, f=t, rng=rng, first_round=1, last_round=7 * C * topo.diameter
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        pair = run_agg_veri_pair(topo, inputs, t=t, schedule=schedule, c=C)
        params = params_for(topo, t=t, c=C)
        rows.append(
            {
                "t": t,
                "AGG CC (max bits)": pair.agg_stats.max_bits,
                "AGG budget": params.agg_bit_budget,
                "VERI CC (max bits)": pair.veri_stats.max_bits,
                "VERI budget": params.veri_bit_budget,
                "AGG flooding rounds": math.ceil(
                    pair.agg_stats.rounds_executed / topo.diameter
                ),
                "VERI flooding rounds": math.ceil(
                    pair.veri_stats.rounds_executed / topo.diameter
                ),
            }
        )
    return topo, rows


def sweep_n():
    rows = []
    for side in (4, 6, 8, 10):
        topo = grid_graph(side, side)
        inputs = {u: 1 for u in topo.nodes()}
        pair = run_agg_veri_pair(topo, inputs, t=2, c=C)
        log_n = math.log2(topo.n_nodes)
        rows.append(
            {
                "N": topo.n_nodes,
                "AGG CC": pair.agg_stats.max_bits,
                "AGG CC / logN": round(pair.agg_stats.max_bits / log_n, 1),
                "VERI CC": pair.veri_stats.max_bits,
                "VERI CC / logN": round(pair.veri_stats.max_bits / log_n, 1),
            }
        )
    return rows


@pytest.mark.benchmark(group="agg_veri_cost")
def test_cost_vs_t(benchmark):
    topo, rows = once(benchmark, sweep_t)
    text = format_table(
        rows, title=f"Theorems 3/6: AGG/VERI cost vs t on {topo.name} (c={C})"
    )
    emit("agg_veri_cost_vs_t", text)
    for row in rows:
        assert row["AGG CC (max bits)"] <= row["AGG budget"] + 16
        assert row["VERI CC (max bits)"] <= row["VERI budget"] + 16
        assert row["AGG flooding rounds"] <= 11 * C
        assert row["VERI flooding rounds"] <= 8 * C
    # Linear-in-t shape: CC grows with t, sublinearly vs the 11t budget line.
    ccs = [row["AGG CC (max bits)"] for row in rows]
    assert ccs == sorted(ccs)


@pytest.mark.benchmark(group="agg_veri_cost")
def test_cost_vs_n(benchmark):
    rows = once(benchmark, sweep_n)
    text = format_table(rows, title="Theorems 3/6: AGG/VERI cost vs N (t=2)")
    emit("agg_veri_cost_vs_n", text)
    # O((t+1) logN): normalized by logN the cost is nearly flat.
    normalized = [row["AGG CC / logN"] for row in rows]
    assert max(normalized) / min(normalized) < 2.0
