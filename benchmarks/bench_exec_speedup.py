"""E22 — the execution engine: parallel speedup without result drift.

The engine's contract is *determinism first*: any ``jobs`` value, any
completion order, and any cache state must produce bit-identical sweep
output.  This bench measures what that contract costs and buys:

* **Compute arm.**  A fixed sweep grid (8x8 grid, 8 units) runs at
  ``jobs`` in {1, 2, 4, 8}; every arm's aggregated points must be
  byte-identical, and on multi-core hosts (``os.cpu_count() >= 4``) the
  4-worker arm must be at least 2x faster than serial.  On single-core
  CI the identity assertions still run — determinism is hardware-
  independent even when speedup is not.
* **Orchestration arm.**  ``pooled_map`` over I/O-bound units (sleeps)
  isolates the scheduling machinery from CPU contention: 4 workers must
  beat 1 by >= 2x on *any* host, because sleeping workers overlap even
  on one core.
* **Warm-cache arm.**  The same grid re-run against a populated
  content-addressed cache must be >= 10x faster than the cold run and
  return byte-identical points — the replay path that makes iterating
  on analysis code free.

The trajectory point lands in ``BENCH_e22_exec_speedup.json`` at the
repo root (compute/orchestration/cache wall clocks and speedups).
"""

import json
import os
import shutil
import tempfile
import time

import pytest

from repro.analysis import format_table
from repro.analysis.sweep import sweep_b
from repro.exec import ExecutionEngine, ResultCache
from repro.exec.pool import pooled_map
from repro.graphs import grid_graph

from _util import emit, once

JOBS_GRID = (1, 2, 4, 8)
GRID_SIDE = 8
F = 8
BS = (90, 180)
SEEDS = 4
SLEEP_S = 0.2
N_SLEEPERS = 8
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_e22_exec_speedup.json"
)


def _fingerprint(points):
    return [json.dumps(p.as_dict(), sort_keys=True) for p in points]


def _sweep(engine):
    topo = grid_graph(GRID_SIDE, GRID_SIDE)
    t0 = time.perf_counter()
    points = sweep_b(
        topo, f=F, bs=list(BS), seeds=range(SEEDS), engine=engine
    )
    return time.perf_counter() - t0, _fingerprint(points)


def _sleeper(delay):
    time.sleep(delay)
    return delay


def run_speedup_study():
    study = {"compute": [], "orchestration": [], "cache": {}}

    fingerprints = {}
    for jobs in JOBS_GRID:
        wall, fingerprint = _sweep(ExecutionEngine(jobs=jobs))
        fingerprints[jobs] = fingerprint
        study["compute"].append({"jobs": jobs, "wall_s": round(wall, 3)})
    base = study["compute"][0]["wall_s"]
    for row in study["compute"]:
        row["speedup"] = round(base / max(row["wall_s"], 1e-9), 2)
    study["compute_identical"] = all(
        fingerprints[jobs] == fingerprints[1] for jobs in JOBS_GRID
    )

    for jobs in (1, 4):
        t0 = time.perf_counter()
        returned = pooled_map(_sleeper, [SLEEP_S] * N_SLEEPERS, jobs=jobs)
        wall = time.perf_counter() - t0
        assert returned == [SLEEP_S] * N_SLEEPERS
        study["orchestration"].append(
            {"jobs": jobs, "wall_s": round(wall, 3)}
        )
    orch_base = study["orchestration"][0]["wall_s"]
    for row in study["orchestration"]:
        row["speedup"] = round(orch_base / max(row["wall_s"], 1e-9), 2)

    cache_dir = tempfile.mkdtemp(prefix="e22-cache-")
    try:
        cache = ResultCache(cache_dir)
        cold_wall, cold_fp = _sweep(ExecutionEngine(jobs=1, cache=cache))
        warm_cache = ResultCache(cache_dir)
        warm_wall, warm_fp = _sweep(ExecutionEngine(jobs=1, cache=warm_cache))
        study["cache"] = {
            "cold_s": round(cold_wall, 3),
            "warm_s": round(warm_wall, 4),
            "speedup": round(cold_wall / max(warm_wall, 1e-9), 1),
            "identical": warm_fp == cold_fp,
            "warm_hits": warm_cache.hits,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return study


def _write_trajectory(study):
    point = {
        "experiment": "E22",
        "units": len(BS) * SEEDS,
        "topology": f"grid({GRID_SIDE}x{GRID_SIDE})",
        "cpu_count": os.cpu_count(),
        "compute": study["compute"],
        "compute_identical": study["compute_identical"],
        "orchestration": study["orchestration"],
        "cache": study["cache"],
    }
    with open(os.path.abspath(TRAJECTORY_PATH), "w") as fh:
        json.dump(point, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.benchmark(group="exec")
def test_engine_speedup_and_determinism(benchmark):
    study = once(benchmark, run_speedup_study)
    rows = (
        [{"arm": "compute", **row} for row in study["compute"]]
        + [{"arm": "orchestration", **row} for row in study["orchestration"]]
        + [
            {
                "arm": "warm-cache",
                "jobs": 1,
                "wall_s": study["cache"]["warm_s"],
                "speedup": study["cache"]["speedup"],
            }
        ]
    )
    emit(
        "e22_exec_speedup",
        format_table(
            rows,
            title=(
                f"E22: engine wall clock, grid {GRID_SIDE}x{GRID_SIDE}, "
                f"{len(BS) * SEEDS} units (host cpus={os.cpu_count()})"
            ),
        ),
    )
    _write_trajectory(study)

    # Determinism is unconditional: every jobs value, and the cached
    # replay, must reproduce the serial points byte-for-byte.
    assert study["compute_identical"]
    assert study["cache"]["identical"]
    assert study["cache"]["warm_hits"] == len(BS) * SEEDS

    # The warm cache replays instead of recomputing on any hardware.
    assert study["cache"]["speedup"] >= 10

    # Sleeping workers overlap even on one core, so the orchestration
    # machinery itself must show real parallelism everywhere.
    orch = {row["jobs"]: row for row in study["orchestration"]}
    assert orch[4]["speedup"] >= 2

    # CPU-bound speedup needs actual cores; single-core CI still proved
    # the identity contract above.
    if (os.cpu_count() or 1) >= 4:
        compute = {row["jobs"]: row for row in study["compute"]}
        assert compute[4]["speedup"] >= 2
