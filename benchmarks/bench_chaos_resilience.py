"""E19 — chaos resilience: injected faults vs. runtime invariant monitors.

The paper's guarantees are proved for *oblivious crash* failures only
(Section 2).  This bench probes what happens outside that model: the
:class:`repro.sim.faults.MessageFaults` middleware drops, duplicates and
delays in-flight messages — faults no theorem covers — while the
:mod:`repro.sim.monitors` stack watches the Section 2 invariants at
runtime.  Two claims:

* **Unmonitored, out-of-model faults cause silent wrong answers.**  With
  message drops the AGG/VERI machinery can be fooled (a lost
  ``failed_parent`` claim hides an LFC), so some runs return a SUM outside
  the correctness interval while claiming success — the exact failure mode
  zero-error protocols exist to exclude.
* **With strict monitors, every such run is converted into an explicit
  abort.**  The :class:`repro.sim.monitors.OracleMonitor` grades the
  root's output on termination and raises
  :class:`repro.sim.monitors.InvariantViolation`, which the crash-safe
  runner captures as a structured error row.  No silent-wrong result
  escapes: each run either produces an oracle-correct SUM or fails loudly.

The same fault sequence (per-seed deterministic RNG) is replayed for both
arms, so the comparison is exact.
"""

import random

import pytest

from repro.analysis import format_table
from repro.analysis.runner import safe_run_protocol, make_inputs
from repro.graphs import grid_graph
from repro.sim.faults import MessageFaults
from repro.sim.monitors import standard_monitors

from _util import emit, once

SEEDS = 8
DROP, DUP, DELAY = 0.05, 0.02, 0.03
PROTOCOLS = ("unknown_f", "algorithm1")


def run_chaos_study():
    topo = grid_graph(5, 5)
    rows = []
    escapes = {}
    for protocol in PROTOCOLS:
        silent_wrong = caught = correct = aborted = 0
        for strict in (False, True):
            for seed in range(SEEDS):
                rng = random.Random(seed)
                inputs = make_inputs(topo, rng)
                faults = MessageFaults(
                    drop=DROP, duplicate=DUP, delay=DELAY, seed=seed
                )
                monitors = (
                    standard_monitors(topo, inputs, mode="strict")
                    if strict
                    else None
                )
                record = safe_run_protocol(
                    protocol,
                    topo,
                    inputs,
                    seed=seed,
                    rng=rng,
                    f=4,
                    b=90 if protocol == "algorithm1" else None,
                    strict=False,
                    injectors=[faults],
                    monitors=monitors,
                )
                if not strict:
                    continue  # the unmonitored arm only sets the stage
                if record.error_kind == "InvariantViolation":
                    caught += 1
                elif record.correct:
                    correct += 1
                elif record.result is None:
                    aborted += 1
                else:
                    silent_wrong += 1
        # Unmonitored arm, tallied separately for the table.
        unmonitored_wrong = 0
        for seed in range(SEEDS):
            rng = random.Random(seed)
            inputs = make_inputs(topo, rng)
            faults = MessageFaults(
                drop=DROP, duplicate=DUP, delay=DELAY, seed=seed
            )
            record = safe_run_protocol(
                protocol,
                topo,
                inputs,
                seed=seed,
                rng=rng,
                f=4,
                b=90 if protocol == "algorithm1" else None,
                strict=False,
                injectors=[faults],
            )
            if record.result is not None and not record.correct:
                unmonitored_wrong += 1
        rows.append(
            {
                "protocol": protocol,
                "seeds": SEEDS,
                "unmonitored silent-wrong": unmonitored_wrong,
                "strict: correct": correct,
                "strict: aborted": aborted,
                "strict: violation caught": caught,
                "strict: silent-wrong": silent_wrong,
            }
        )
        escapes[protocol] = (unmonitored_wrong, silent_wrong, correct + caught + aborted)
    return topo, rows, escapes


@pytest.mark.benchmark(group="chaos_resilience")
def test_monitors_close_the_silent_wrong_gap(benchmark):
    topo, rows, escapes = once(benchmark, run_chaos_study)
    emit(
        "chaos_resilience",
        format_table(
            rows,
            title=(
                f"E19: drop={DROP}/dup={DUP}/delay={DELAY} on {topo.name}: "
                "strict monitors turn silent-wrong into explicit aborts"
            ),
        ),
    )
    for protocol, (unmonitored_wrong, silent_wrong, accounted) in escapes.items():
        # Out-of-model faults do fool the unmonitored protocols...
        assert unmonitored_wrong > 0, protocol
        # ...but under strict monitors nothing escapes silently.
        assert silent_wrong == 0, protocol
        assert accounted == SEEDS, protocol
