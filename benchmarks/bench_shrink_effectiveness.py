"""E20 — shrinker effectiveness: ddmin reduction across chaos failures.

A chaos-found failure drags along every fault decision the injector took
— hundreds of drops/duplicates/delays, nearly all irrelevant.  This bench
measures how far :func:`repro.adversary.shrink.shrink_bundle` compresses
them: seeded chaos runs on a 4x4 grid are auto-captured as repro bundles
(:mod:`repro.sim.recorder`) and each failing bundle is ddmin-minimized.

Reported per failure: events before/after, replay evaluations spent, and
wall time; plus the median reduction across all failures.  The expectation
(matching ddmin folklore) is that most silent-wrong failures minimize to a
*handful* of decisive events — typically a single dropped message whose
loss unbalances the aggregation — making the minimized corpus bundles
human-debuggable.  Every minimized bundle is strict-replayed before being
counted, so the table only contains reductions that reproduce
bit-identically.
"""

import random
import statistics
import tempfile

import pytest

from repro.adversary import shrink_bundle
from repro.analysis import format_table
from repro.analysis.runner import make_inputs, safe_run_protocol
from repro.graphs import grid_graph
from repro.sim import ExecutionRecord, MessageFaults, replay_bundle
from repro.sim.monitors import standard_monitors

from _util import emit, once

SEEDS = 10
DROP, DUP, DELAY = 0.08, 0.03, 0.05
PROTOCOL = "unknown_f"


def run_shrink_study():
    topo = grid_graph(4, 4)
    capture = tempfile.mkdtemp(prefix="shrink-bench-")
    rows = []
    reductions = []
    for seed in range(SEEDS):
        rng = random.Random(seed)
        inputs = make_inputs(topo, rng)
        record = safe_run_protocol(
            PROTOCOL,
            topo,
            inputs,
            seed=seed,
            rng=rng,
            strict=False,
            injectors=[
                MessageFaults(drop=DROP, duplicate=DUP, delay=DELAY,
                              seed=seed)
            ],
            monitors=standard_monitors(topo, inputs, mode="record"),
            capture_dir=capture,
        )
        path = record.extra.get("bundle")
        if path is None:
            continue  # clean run: nothing to shrink
        bundle = ExecutionRecord.load(path)
        result = shrink_bundle(bundle, max_evals=400, max_seconds=60.0)
        assert replay_bundle(result.minimal).reproduced
        reductions.append(result.reduction)
        rows.append(
            {
                "seed": seed,
                "events before": result.original_size,
                "events after": result.shrunk_size,
                "reduction": f"{result.reduction:.0%}",
                "replays": result.evaluations,
                "wall (s)": round(result.wall_seconds, 2),
                "1-minimal": result.complete,
            }
        )
    summary = {
        "failures shrunk": len(rows),
        "median events after": statistics.median(
            r["events after"] for r in rows
        ),
        "median reduction": f"{statistics.median(reductions):.0%}",
    }
    return rows, summary


@pytest.mark.benchmark(group="shrink")
def test_bench_shrink_effectiveness(benchmark):
    rows, summary = once(benchmark, run_shrink_study)
    assert rows, "no chaos failures captured: bench is vacuous"
    # The headline claim: shrinking is dramatic, not cosmetic.
    assert float(summary["median reduction"].rstrip("%")) >= 90.0
    text = format_table(
        rows,
        title=(
            f"E20 shrinker effectiveness: {PROTOCOL} on grid(4x4), "
            f"drop={DROP}/dup={DUP}/delay={DELAY}"
        ),
    )
    text += "\n" + format_table([summary], title="summary")
    emit("e20_shrink_effectiveness", text)


if __name__ == "__main__":
    rows, summary = run_shrink_study()
    print(format_table(rows, title="E20 shrinker effectiveness"))
    print(format_table([summary], title="summary"))
