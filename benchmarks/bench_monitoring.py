"""E15 — continuous monitoring: the deployment loop the paper motivates.

A base station re-aggregates the field every epoch while sensors die.
Every epoch's result must individually satisfy the correctness definition,
and the per-epoch cost should *shrink* as the network loses nodes (fewer
live senders, fewer floods) — the operational payoff of zero-error
fault tolerance.
"""

import random

import pytest

from repro.adversary import random_failures
from repro.analysis import format_table
from repro.extensions.monitoring import drifting_inputs, run_monitoring
from repro.graphs import grid_graph

from _util import emit, once

TOPOLOGY = grid_graph(6, 6)
EPOCHS = 5
F, B = 14, 45


def run_monitoring_study():
    rng = random.Random(0)
    horizon = EPOCHS * B * TOPOLOGY.diameter
    schedule = random_failures(
        TOPOLOGY, f=F, rng=rng, first_round=1, last_round=horizon
    )
    base = {u: rng.randint(10, 40) for u in TOPOLOGY.nodes()}
    outcome = run_monitoring(
        TOPOLOGY,
        drifting_inputs(base, rng),
        epochs=EPOCHS,
        f=F,
        b=B,
        schedule=schedule,
        rng=random.Random(1),
    )
    rows = [
        {
            "epoch": e.epoch,
            "result": e.result,
            "correct": e.correct,
            "survivors": e.survivors,
            "CC (bits/node)": e.cc_bits,
            "rounds": e.rounds,
        }
        for e in outcome.epochs
    ]
    return outcome, rows


@pytest.mark.benchmark(group="monitoring")
def test_continuous_monitoring(benchmark):
    outcome, rows = once(benchmark, run_monitoring_study)
    emit(
        "monitoring",
        format_table(
            rows,
            title=(
                f"Continuous monitoring on {TOPOLOGY.name}: {EPOCHS} epochs, "
                f"f={F}, b={B}, failures persist across epochs"
            ),
        ),
    )
    assert outcome.all_correct
    survivors = [e.survivors for e in outcome.epochs]
    assert survivors == sorted(survivors, reverse=True)
    # Once the population stabilizes, cost stabilizes too (no failure-free
    # epoch pays for past failures).
    assert outcome.epochs[-1].cc_bits <= max(e.cc_bits for e in outcome.epochs)
