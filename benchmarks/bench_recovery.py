"""E21 — the self-healing runtime buys back exactness outside the model.

E19 established that out-of-model message faults make the paper's
protocols silently wrong (unmonitored) or honestly abortive (strict
monitors).  This bench measures what the :mod:`repro.resilience` layer
recovers, and what it costs:

* **Exactness vs drop rate.**  The same per-seed fault sequences run with
  and without the reliable-transport shim.  The raw arm's exact-result
  rate collapses as drops rise; the transport arm stays exact until the
  retransmit budget is genuinely exhausted, and every budget exhaustion
  is *visible* (live gaps void certification — nothing silent).
* **Separated overhead.**  The transport books frame headers, NACKs and
  retransmitted payloads as ``overhead_bits``, never as protocol CC, so
  the per-node bottleneck cost the paper bounds is unchanged; the bench
  reports both columns side by side.
* **Root failover.**  A third arm crashes the root mid-run and lets the
  recovery runtime elect a new epoch root: runs end certified-partial
  with coverage exactly the surviving component — the model's only
  unprotected node no longer takes the whole computation down with it.
"""

import random

import pytest

from repro.analysis import format_table
from repro.analysis.runner import make_inputs, safe_run_protocol
from repro.adversary.schedule import FailureSchedule
from repro.graphs import grid_graph
from repro.resilience import RecoveryPolicy, TransportConfig
from repro.sim.faults import MessageFaults

from _util import emit, once

SEEDS = 6
DROPS = (0.02, 0.05, 0.10)
TRANSPORT = TransportConfig(retransmits=5, backoff_cap=2)


def _arm(topo, drop, seed, **kwargs):
    rng = random.Random(seed)
    inputs = make_inputs(topo, rng)
    record = safe_run_protocol(
        "unknown_f",
        topo,
        inputs,
        seed=seed,
        rng=rng,
        strict=False,
        injectors=[MessageFaults(drop=drop, seed=seed)],
        **kwargs,
    )
    exact = record.result == sum(inputs.values())
    return record, exact


def run_recovery_study():
    topo = grid_graph(5, 5)
    rows = []
    for drop in DROPS:
        raw_exact = xport_exact = 0
        raw_cc = xport_cc = xport_overhead = 0
        uncertified = 0
        for seed in range(SEEDS):
            record, exact = _arm(topo, drop, seed)
            raw_exact += exact
            raw_cc += record.cc_bits
            record, exact = _arm(topo, drop, seed, transport=TRANSPORT)
            xport_exact += exact
            xport_cc += record.cc_bits
            xport_overhead += record.extra.get("overhead_bits", 0)
            uncertified += record.extra.get("live_gaps", 0) > 0
        rows.append(
            {
                "drop": drop,
                "seeds": SEEDS,
                "raw exact": raw_exact,
                "transport exact": xport_exact,
                "uncertifiable": uncertified,
                "raw CC": raw_cc // SEEDS,
                "transport CC": xport_cc // SEEDS,
                "overhead": xport_overhead // SEEDS,
            }
        )
    return topo, rows


def run_failover_study():
    topo = grid_graph(5, 5)
    rows = []
    for seed in range(SEEDS):
        rng = random.Random(seed)
        inputs = make_inputs(topo, rng)
        record = safe_run_protocol(
            "unknown_f",
            topo,
            inputs,
            schedule=FailureSchedule({topo.root: 25}),
            seed=seed,
            rng=rng,
            strict=False,
            injectors=[MessageFaults(drop=0.05, seed=seed)],
            recovery=RecoveryPolicy.default(),
        )
        rows.append(
            {
                "seed": seed,
                "status": record.extra.get("status"),
                "certified": record.extra.get("certified"),
                "coverage": record.extra.get("coverage"),
                "elected root": record.extra.get("elected_root"),
                "epochs": record.extra.get("epochs"),
                "in bounds": record.correct,
            }
        )
    return rows


@pytest.mark.benchmark(group="recovery")
def test_transport_buys_back_exactness(benchmark):
    topo, rows = once(benchmark, run_recovery_study)
    emit(
        "e21_recovery_tradeoff",
        format_table(
            rows,
            title=(
                f"E21: exactness and overhead vs drop rate on {topo.name} "
                f"(unknown_f, retransmits={TRANSPORT.retransmits})"
            ),
        ),
    )
    by_drop = {r["drop"]: r for r in rows}
    # At the reference rate the transport arm is fully exact while the
    # raw arm loses runs; overhead stays separated from protocol CC.
    assert by_drop[0.05]["transport exact"] == SEEDS
    assert by_drop[0.05]["raw exact"] < SEEDS
    for row in rows:
        assert row["overhead"] > 0
        # Exhausted budgets are visible, never silent: each inexact
        # transport run must be flagged uncertifiable.
        assert SEEDS - row["transport exact"] <= row["uncertifiable"]


@pytest.mark.benchmark(group="recovery")
def test_root_failover_certifies_survivors(benchmark):
    rows = once(benchmark, run_failover_study)
    emit(
        "e21_root_failover",
        format_table(
            rows,
            title="E21: root crash at round 25 + --recover (grid 5x5)",
        ),
    )
    assert all(r["certified"] for r in rows)
    assert all(r["in bounds"] for r in rows)
    assert all(r["elected root"] is not None for r in rows)
