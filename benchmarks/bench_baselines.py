"""E5 — the introduction's baseline claims.

* Brute force: O(1) TC (2c flooding rounds) and O(N logN) CC, tolerates
  arbitrary failures.
* Folklore repeat: O(f) TC and O(f logN) CC.
* Plain TAG: cheap but silently incorrect under failures — the motivation
  for the whole problem.
"""

import math
import random

import pytest

from repro.adversary import random_failures
from repro.analysis import format_table, run_protocol
from repro.graphs import grid_graph
from repro.sim.message import id_bits

from _util import emit, once

SEEDS = 6


def bruteforce_scaling():
    rows = []
    for side in (4, 6, 8, 10):
        topo = grid_graph(side, side)
        inputs = {u: 1 for u in topo.nodes()}
        rec = run_protocol("bruteforce", topo, inputs)
        n = topo.n_nodes
        rows.append(
            {
                "N": n,
                "CC": rec.cc_bits,
                "CC / (N logN)": round(rec.cc_bits / (n * id_bits(n)), 2),
                "TC (flooding rounds)": rec.flooding_rounds,
            }
        )
    return rows


def folklore_scaling():
    topo = grid_graph(6, 6)
    rows = []
    for f in (1, 4, 8, 16):
        ccs, tcs = [], []
        epoch_rounds = 2 * 2 * topo.diameter + 2
        for seed in range(SEEDS):
            rng = random.Random(seed)
            schedule = random_failures(
                topo, f=f, rng=rng, first_round=1, last_round=(f + 1) * epoch_rounds
            )
            inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
            rec = run_protocol("folklore", topo, inputs, schedule=schedule, f=f)
            assert rec.correct
            ccs.append(rec.cc_bits)
            tcs.append(rec.flooding_rounds)
        rows.append(
            {
                "f": f,
                "CC mean": round(sum(ccs) / len(ccs), 1),
                "CC max": max(ccs),
                "CC bound ~ f logN": round((f + 1) * 3 * id_bits(topo.n_nodes) * 4),
                "TC max (flooding rounds)": max(tcs),
                "TC bound ~ 5(f+1)": 5 * (f + 1),
            }
        )
    return topo, rows


def tag_incorrectness():
    topo = grid_graph(5, 5)
    rows = []
    for f in (4, 8, 16):
        wrong = 0
        for seed in range(SEEDS * 2):
            rng = random.Random(seed)
            schedule = random_failures(
                topo, f=f, rng=rng, first_round=1,
                last_round=2 * 2 * topo.diameter + 2,
            )
            inputs = {u: 100 for u in topo.nodes()}
            rec = run_protocol("tag", topo, inputs, schedule=schedule)
            wrong += not rec.correct
        rows.append(
            {
                "f": f,
                "TAG incorrect runs": f"{wrong}/{SEEDS * 2}",
            }
        )
    return rows


@pytest.mark.benchmark(group="baselines")
def test_bruteforce_nlogn(benchmark):
    rows = once(benchmark, bruteforce_scaling)
    emit(
        "baselines_bruteforce",
        format_table(rows, title="Brute force: CC ~ N logN, TC = 2c flooding rounds"),
    )
    normalized = [row["CC / (N logN)"] for row in rows]
    assert max(normalized) / min(normalized) < 3
    assert all(row["TC (flooding rounds)"] == 4 for row in rows)


@pytest.mark.benchmark(group="baselines")
def test_folklore_f_logn(benchmark):
    topo, rows = once(benchmark, folklore_scaling)
    emit(
        "baselines_folklore",
        format_table(rows, title=f"Folklore repeat on {topo.name}: CC ~ f logN, TC ~ f"),
    )
    # CC and TC grow with f.
    ccs = [row["CC max"] for row in rows]
    assert ccs[-1] >= ccs[0]
    for row in rows:
        assert row["TC max (flooding rounds)"] <= row["TC bound ~ 5(f+1)"]


def gossip_contrast():
    from repro.adversary import FailureSchedule
    from repro.baselines.gossip import run_gossip

    topo = grid_graph(5, 5)
    inputs = {u: 0 for u in topo.nodes()}
    inputs[topo.root] = 100
    rows = []
    for label, schedule in (
        ("failure-free", FailureSchedule()),
        ("4 early crashes", FailureSchedule({12: 3, 13: 3, 17: 3, 18: 3})),
    ):
        out = run_gossip(topo, inputs, rounds=200, schedule=schedule)
        rows.append(
            {
                "scenario": label,
                "gossip estimate": round(out.estimate, 2),
                "true sum": out.true_sum,
                "in correctness interval": out.within_correctness_interval(
                    topo, inputs, schedule
                ),
                "CC (bits/node)": out.stats.max_bits,
            }
        )
    return rows


@pytest.mark.benchmark(group="baselines")
def test_gossip_is_approximate_not_zero_error(benchmark):
    """The related-work contrast: push-sum gossip converges beautifully
    failure-free but leaves the correctness interval under early crashes —
    the failure mode the paper's protocols exclude by construction."""
    rows = once(benchmark, gossip_contrast)
    emit(
        "baselines_gossip",
        format_table(rows, title="Push-sum gossip vs the zero-error bar"),
    )
    assert rows[0]["in correctness interval"]
    assert not rows[1]["in correctness interval"]


@pytest.mark.benchmark(group="baselines")
def test_tag_silently_wrong(benchmark):
    rows = once(benchmark, tag_incorrectness)
    emit(
        "baselines_tag",
        format_table(rows, title="Plain TAG under mid-aggregation failures"),
    )
    total_wrong = sum(int(row["TAG incorrect runs"].split("/")[0]) for row in rows)
    assert total_wrong >= 1  # TAG really does lose inputs
