"""E12 — empirical worst-case search and the zero-error falsification test.

The paper's CC is worst-case over oblivious adversaries.  This bench
hill-climbs over failure schedules to estimate the worst measured CC for
Algorithm 1, and doubles as a falsification harness for the zero-error
claim: across every schedule the search visits, the output must remain
correct.  The found worst case is compared against the failure-free cost
and against the per-pair budget ceiling.
"""

import random

import pytest

from repro.adversary.schedule import FailureSchedule
from repro.adversary.search import (
    make_algorithm1_evaluator,
    search_worst_adversary,
)
from repro.analysis import format_table
from repro.core.params import params_for
from repro.graphs import grid_graph

from _util import emit, once

TOPOLOGY = grid_graph(5, 5)
F, B = 6, 60


def run_search():
    rng = random.Random(0)
    inputs = {u: rng.randint(0, 9) for u in TOPOLOGY.nodes()}
    evaluator = make_algorithm1_evaluator(TOPOLOGY, inputs, f=F, b=B)
    baseline_cc, baseline_rounds, _ = evaluator(
        FailureSchedule(), random.Random(1)
    )
    result = search_worst_adversary(
        evaluator,
        TOPOLOGY,
        f=F,
        horizon=B * TOPOLOGY.diameter,
        rng=random.Random(2),
        restarts=3,
        steps_per_restart=6,
    )
    return baseline_cc, baseline_rounds, result


@pytest.mark.benchmark(group="adversary_search")
def test_worst_case_search(benchmark):
    baseline_cc, baseline_rounds, result = once(benchmark, run_search)
    plan_t = (2 * F) // ((B - 4) // 38)
    params = params_for(TOPOLOGY, t=plan_t)
    ceiling = params.agg_bit_budget + params.veri_bit_budget
    rows = [
        {
            "schedule": "failure-free",
            "CC (bits/node)": baseline_cc,
            "rounds": baseline_rounds,
            "incorrect runs": 0,
        },
        {
            "schedule": f"worst found ({len(result.schedule)} crashes)",
            "CC (bits/node)": result.cc_bits,
            "rounds": result.rounds,
            "incorrect runs": result.incorrect_runs,
        },
    ]
    text = format_table(
        rows,
        title=(
            f"Worst-case adversary search on {TOPOLOGY.name} "
            f"(f={F}, b={B}, {result.trials} protocol runs); "
            f"per-pair budget ceiling = {ceiling} bits x pairs"
        ),
    )
    emit("adversary_search", text)
    # Failures cost communication: the search finds something worse than
    # the failure-free run.
    assert result.cc_bits >= baseline_cc
    # Zero-error claim survives the falsification attempt.
    assert result.incorrect_runs == 0
    # The worst case stays within min(x, f+1, logN) pair budgets + fallback.
    import math

    pair_cap = min((B - 4) // 38, F + 1, math.ceil(math.log2(TOPOLOGY.n_nodes)))
    assert result.cc_bits <= ceiling * pair_cap + TOPOLOGY.n_nodes * 32
