"""E14 — Theorem 2's second term: the Theta(logN/logb) timing channel.

The ``Omega(logN / logb)`` term of Theorem 2 comes from [7]: conveying the
SUM result's ``Omega(logN)`` bits of entropy within ``b`` rounds requires
``Omega(logN / logb)`` transmitted bits, because message *timing* carries
at most ``log b`` bits per transmission.  The bench runs both directions:

* the constructive encoder's measured transmissions per ``(N, b)``;
* the exact counting lower bound over the encoder's horizon;
* agreement of both with the ``logN / logb`` curve.
"""

import math
import random

import pytest

from repro.analysis import format_table
from repro.lowerbound.timing_encoding import (
    beacons_needed,
    decode_by_timing,
    encode_by_timing,
    min_messages_for,
    sum_output_entropy_bits,
    theorem2_second_term,
)

from _util import emit, once


def run_timing_study():
    rng = random.Random(0)
    rows = []
    for n in (1 << 10, 1 << 16, 1 << 20):
        k = sum_output_entropy_bits(n)
        for b in (4, 64, 1024):
            # Round-trip a few random values to certify the code works.
            for _ in range(5):
                value = rng.randrange(1 << k)
                rounds = encode_by_timing(value, k, b)
                assert decode_by_timing(rounds, k, b) == value
            sent = beacons_needed(k, b)
            horizon = max(b, sent * b)
            lower = min_messages_for(k, horizon)
            rows.append(
                {
                    "N": n,
                    "b": b,
                    "entropy bits k=logN": k,
                    "encoder bits sent": sent,
                    "counting LB (horizon)": lower,
                    "logN/logb": round(theorem2_second_term(n, b), 2),
                }
            )
    return rows


@pytest.mark.benchmark(group="timing")
def test_timing_channel(benchmark):
    rows = once(benchmark, run_timing_study)
    emit(
        "timing_encoding",
        format_table(
            rows, title="Theorem 2 term 2: timing codes (logN bits in b rounds)"
        ),
    )
    for row in rows:
        # Upper >= lower always; both within constant factors of logN/logb.
        assert row["encoder bits sent"] >= row["counting LB (horizon)"]
        curve = row["logN/logb"]
        assert row["encoder bits sent"] <= 3 * curve + 2
        assert row["counting LB (horizon)"] >= curve / 4 - 1
    # Fixed N: cost decreases as b grows (the tradeoff's time axis).
    for n in (1 << 10, 1 << 16, 1 << 20):
        series = [r["encoder bits sent"] for r in rows if r["N"] == n]
        assert series == sorted(series, reverse=True)
