#!/usr/bin/env python
"""Beyond CAAFs: MEDIAN, SELECTION, and AVERAGE on the same machinery.

Section 2 of the paper notes that MEDIAN and SELECTION — which are *not*
commutative-and-associative aggregates — reduce to COUNT by binary search
over the output domain, and AVERAGE is the ratio of two CAAFs.  This
example runs those reductions with Algorithm 1 as the fault-tolerant
COUNT/SUM substrate, under live crash failures.

Run:  python examples/median_selection.py
"""

import random

from repro.adversary import random_failures
from repro.analysis import format_table
from repro.extensions import (
    distributed_average,
    distributed_median,
    distributed_select,
    probe_budget,
)
from repro.graphs import random_geometric


def main() -> None:
    rng = random.Random(16)
    topology = random_geometric(80, rng=rng)
    inputs = {u: rng.randint(0, 60) for u in topology.nodes()}
    ordered = sorted(inputs.values())
    print(f"network: {topology} diameter d={topology.diameter}")
    print(
        f"selection needs at most {probe_budget(topology, max(inputs.values()))} "
        "COUNT probes (binary search over the value domain)\n"
    )

    f, b = 6, 45
    schedule = random_failures(topology, f=f, rng=rng, first_round=1, last_round=4000)
    print(
        f"adversary: {len(schedule)} crashes / "
        f"{schedule.edge_failures(topology)} edge failures across the query\n"
    )

    rows = []
    for k in (1, len(ordered) // 4, len(ordered) // 2, len(ordered)):
        out = distributed_select(
            topology, inputs, k=k, f=f, b=b, schedule=schedule, rng=random.Random(k)
        )
        rows.append(
            {
                "query": f"select k={k}",
                "answer": out.value,
                "failure-free truth": ordered[k - 1],
                "probes": out.probe_count,
                "rounds": out.total_rounds,
                "CC (bits/node)": out.cc_bits,
            }
        )

    med = distributed_median(
        topology, inputs, f=f, b=b, schedule=schedule, rng=random.Random(99)
    )
    rows.append(
        {
            "query": "median",
            "answer": med.value,
            "failure-free truth": ordered[(len(ordered) - 1) // 2],
            "probes": med.probe_count,
            "rounds": med.total_rounds,
            "CC (bits/node)": med.cc_bits,
        }
    )

    avg = distributed_average(
        topology, inputs, f=f, b=b, schedule=schedule, rng=random.Random(7)
    )
    rows.append(
        {
            "query": "average",
            "answer": round(avg.value, 2),
            "failure-free truth": round(sum(ordered) / len(ordered), 2),
            "probes": avg.probe_count,
            "rounds": avg.total_rounds,
            "CC (bits/node)": avg.cc_bits,
        }
    )

    print(format_table(rows, title="non-CAAF queries via COUNT/SUM reductions"))
    print(
        "\nEach probe is a full zero-error aggregation, so every count is"
        "\nexact for a population bracketed between the survivors and the"
        "\noriginal membership — answers can only drift by what the crashed"
        "\nnodes contributed."
    )


if __name__ == "__main__":
    main()
