#!/usr/bin/env python
"""Hunting for counterexamples to the zero-error claim (and failing).

Theorem 1 claims Algorithm 1 *never* outputs an incorrect result — under
any oblivious adversary within the edge budget.  This example attacks the
claim three ways and reports that every attack comes back empty-handed:

1. hill-climbing adversary search maximizing communication (the costliest
   schedules are the most "interesting" ones);
2. targeted structural attacks (hub / articulation / depth);
3. a battery of random schedules.

It also shows what the attacks *do* achieve: more communication — with
the worst found schedule compared against the failure-free baseline.

Run:  python examples/zero_error_hunt.py
"""

import random

from repro.adversary import targeted_failures
from repro.adversary.search import (
    make_algorithm1_evaluator,
    search_worst_adversary,
)
from repro.analysis import format_table, run_protocol
from repro.adversary import random_failures
from repro.graphs import grid_graph


def main() -> None:
    topology = grid_graph(5, 5)
    f, b = 6, 60
    rng = random.Random(13)
    inputs = {u: rng.randint(0, 9) for u in topology.nodes()}
    print(f"target: {topology}, f={f}, b={b}\n")

    rows = []
    incorrect = 0

    # Attack 1: communication-maximizing search.
    evaluator = make_algorithm1_evaluator(topology, inputs, f=f, b=b)
    search = search_worst_adversary(
        evaluator,
        topology,
        f=f,
        horizon=b * topology.diameter,
        rng=rng,
        restarts=3,
        steps_per_restart=6,
    )
    incorrect += search.incorrect_runs
    rows.append(
        {
            "attack": f"hill-climb ({search.trials} runs)",
            "worst CC found": search.cc_bits,
            "incorrect results": search.incorrect_runs,
        }
    )

    # Attack 2: structural attacks.
    for strategy in ("degree", "articulation", "deep"):
        schedule = targeted_failures(topology, f=f, at_round=40, strategy=strategy)
        record = run_protocol(
            "algorithm1",
            topology,
            inputs,
            schedule=schedule,
            f=f,
            b=b,
            rng=random.Random(strategy),
        )
        incorrect += not record.correct
        rows.append(
            {
                "attack": f"targeted:{strategy}",
                "worst CC found": record.cc_bits,
                "incorrect results": int(not record.correct),
            }
        )

    # Attack 3: random battery.
    battery_cc = 0
    for seed in range(12):
        r = random.Random(1000 + seed)
        schedule = random_failures(
            topology, f=f, rng=r, first_round=1, last_round=b * topology.diameter
        )
        record = run_protocol(
            "algorithm1", topology, inputs, schedule=schedule, f=f, b=b,
            rng=random.Random(seed),
        )
        incorrect += not record.correct
        battery_cc = max(battery_cc, record.cc_bits)
    rows.append(
        {
            "attack": "random battery (12 schedules)",
            "worst CC found": battery_cc,
            "incorrect results": 0,
        }
    )

    baseline = run_protocol(
        "algorithm1", topology, inputs, f=f, b=b, rng=random.Random(0)
    )
    print(format_table(rows, title="zero-error falsification attempts"))
    print(
        f"\nfailure-free baseline CC: {baseline.cc_bits} bits/node — the"
        f"\nattacks raise cost (up to {max(r['worst CC found'] for r in rows)}"
        " bits) but never correctness."
    )
    print(f"\ntotal incorrect results across all attacks: {incorrect}")
    assert incorrect == 0, "zero-error claim falsified?!"


if __name__ == "__main__":
    main()
