#!/usr/bin/env python
"""Walking through Section 7: why Theorem 2's lower bound holds.

Demonstrates each rung of the paper's lower-bound ladder, executably:

1. UNIONSIZECP under the cycle promise, with the trivial and wrap-position
   protocols — measured cost vs the Omega(n/q) lower bound (Theorem 12).
2. EQUALITYCP solved via the Theorem 8 reduction, whose overhead is only
   O(log n + log q) on top of the UNIONSIZECP oracle.
3. Lemma 11's Sperner matrix: rank(M(q)) = q - 1, exactly, for many q.
4. Theorem 9 verified exhaustively for tiny (n, q) by max-clique search.
5. The Figure 1 landscape: the new upper and lower bounds bracket the
   achievable region within a polylog gap.

Run:  python examples/lower_bound_demo.py
"""

import random
import statistics

from repro.analysis import format_series, format_table
from repro.analysis.figure1 import figure1_data
from repro.lowerbound import (
    ReductionEquality,
    TrivialUnionSize,
    WrapPositionUnionSize,
    lemma11_bound,
    max_sperner_family_size,
    random_instance,
    rank_is_q_minus_1,
    sperner_rank,
    strings_equal,
    theorem9_bound,
    union_size,
    unionsize_lower_bound,
    unionsize_upper_bound,
)


def step1_unionsize(rng: random.Random) -> None:
    n, seeds = 1024, 10
    rows = []
    for q in (2, 4, 8, 16, 32):
        trivial_costs, wrap_costs = [], []
        for _ in range(seeds):
            x, y = random_instance(n, q, rng)
            truth = union_size(x, y)
            ans, tr = TrivialUnionSize(q).run(x, y)
            assert ans == truth
            trivial_costs.append(tr.total_bits)
            ans, tr = WrapPositionUnionSize(q).run(x, y)
            assert ans == truth
            wrap_costs.append(tr.total_bits)
        rows.append(
            {
                "q": q,
                "trivial bits": round(statistics.fmean(trivial_costs)),
                "wrap-position bits": round(statistics.fmean(wrap_costs)),
                "UB shape n/q*logn+logq": round(unionsize_upper_bound(n, q)),
                "LB Omega(n/q)-O(logn)": round(unionsize_lower_bound(n, q)),
            }
        )
    print(format_table(rows, title=f"1. UNIONSIZECP, n={n}: cost falls as 1/q"))


def step2_reduction(rng: random.Random) -> None:
    n, q = 512, 8
    oracle = WrapPositionUnionSize(q)
    reduction = ReductionEquality(q, oracle)
    rows = []
    for label, make in (
        ("Y = X", lambda: (lambda x: (x, x))(tuple(rng.randrange(q) for _ in range(n)))),
        ("random promise pair", lambda: random_instance(n, q, rng)),
    ):
        x, y = make()
        answer, tr = reduction.run(x, y)
        assert answer == strings_equal(x, y)
        _, oracle_tr = oracle.run(x, y)
        rows.append(
            {
                "instance": label,
                "equal?": answer,
                "total bits": tr.total_bits,
                "oracle bits": oracle_tr.total_bits,
                "reduction overhead": tr.total_bits - oracle_tr.total_bits,
            }
        )
    print()
    print(
        format_table(
            rows,
            title=f"2. Theorem 8 reduction, n={n}, q={q}: overhead is O(logn+logq)",
        )
    )


def step3_rank() -> None:
    rows = [
        {
            "q": q,
            "rank(M(q))": sperner_rank(q),
            "q-1": q - 1,
            "exact check": rank_is_q_minus_1(q),
            "Lemma 11 bound per char": round(lemma11_bound(1, q), 4),
        }
        for q in (2, 3, 4, 8, 16, 64)
    ]
    print()
    print(format_table(rows, title="3. Lemma 11: rank(M(q)) = q - 1, exactly"))


def step4_theorem9() -> None:
    rows = []
    for n, q in ((1, 3), (2, 3), (3, 3), (1, 4), (2, 4)):
        measured = max_sperner_family_size(n, q)
        rows.append(
            {
                "n": n,
                "q": q,
                "max family |S| (exhaustive)": measured,
                "Theorem 9 bound (q-1)^n": theorem9_bound(n, q),
                "holds": measured <= theorem9_bound(n, q),
            }
        )
    print()
    print(format_table(rows, title="4. Theorem 9, exhaustively for tiny (n, q)"))


def step5_landscape() -> None:
    n, f = 4096, 256
    bs = [42, 84, 168, 336, 672]
    data = figure1_data(n, f, bs)
    series = {
        "new UB": [round(v, 1) for v in data.curves["upper_bound_new"]],
        "new LB": [round(v, 1) for v in data.curves["lower_bound_new"]],
        "old LB": [round(v, 3) for v in data.curves["lower_bound_old"]],
        "UB/LB gap": [round(v, 1) for v in data.curves["gap_ratio"]],
        "polylog ceiling": [round(v, 1) for v in data.curves["polylog_ceiling"]],
    }
    print()
    print(
        format_series(
            bs,
            series,
            x_label="b",
            title=f"5. Figure 1 landscape, N={n}, f={f}: gap stays under log^2N*logb",
        )
    )


def main() -> None:
    rng = random.Random(2611475)  # the paper's DOI suffix
    step1_unionsize(rng)
    step2_reduction(rng)
    step3_rank()
    step4_theorem9()
    step5_landscape()


if __name__ == "__main__":
    main()
