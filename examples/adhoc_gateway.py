#!/usr/bin/env python
"""Ad hoc network scenario: gateway computing MAX during a regional blackout.

The paper's second motivating deployment: a wireless ad hoc network whose
gateway node must learn an aggregate — here the MAX temperature alarm, a
non-SUM CAAF — while an entire neighbourhood fails at once (the Figure 3
"blocker" scenario that speculative flooding exists for).

Run:  python examples/adhoc_gateway.py
"""

import random

from repro.adversary import blocker_failures
from repro.analysis import format_table
from repro.core import MAX, run_algorithm1
from repro.core.correctness import correctness_interval, surviving_nodes
from repro.graphs import clustered_graph


def main() -> None:
    rng = random.Random(99)

    # 6 cliques of 6 radios joined by a backbone ring; node 0 is the gateway.
    topology = clustered_graph(6, 6)
    print(f"ad hoc network: {topology} diameter d={topology.diameter}")

    # Temperature readings; one remote cluster runs hot.
    inputs = {u: rng.randint(15, 40) for u in topology.nodes()}
    hot_cluster = range(18, 24)
    for u in hot_cluster:
        inputs[u] = rng.randint(70, 95)
    print(f"ground-truth MAX reading: {max(inputs.values())}")

    # A regional blackout: a cluster head and its neighbourhood die together
    # right as tree aggregation is underway — the worst case for naive
    # aggregation, and exactly what speculative flooding recovers from.
    f = 16
    cd = 2 * topology.diameter
    schedule = blocker_failures(topology, f=f, victim=12, at_round=2 * cd + 2)
    print(
        f"blackout: nodes {sorted(schedule.failed_nodes)} fail at round "
        f"{min(schedule.crash_rounds.values())} "
        f"({schedule.edge_failures(topology)} edge failures, budget {f})"
    )

    rows = []
    for b in (45, 135):
        out = run_algorithm1(
            topology,
            inputs,
            f=f,
            b=b,
            schedule=schedule,
            caaf=MAX,
            rng=random.Random(b),
        )
        survivors = surviving_nodes(topology, schedule, out.rounds)
        lo, hi = correctness_interval(MAX, inputs, survivors)
        rows.append(
            {
                "b": b,
                "MAX reported": out.result,
                "valid interval": f"[{lo}, {hi}]",
                "correct": lo <= out.result <= hi,
                "CC (bits/node)": out.stats.max_bits,
                "pairs": out.pairs_run,
                "fallback": out.used_bruteforce,
            }
        )
    print()
    print(format_table(rows, title="Algorithm 1 computing MAX (a CAAF)"))
    print(
        "\nThe same protocol computes any commutative-and-associative"
        "\naggregate: only the operator changed (Section 2 of the paper)."
    )


if __name__ == "__main__":
    main()
