#!/usr/bin/env python
"""A base station monitoring a decaying sensor grid, epoch after epoch.

The paper's deployments never aggregate once: the base station re-reads
the field on a schedule while sensors die.  This example runs Algorithm 1
in back-to-back epochs over a single failure timeline — readings drift
between epochs, crashed sensors stay crashed — and shows that every
epoch's SUM is individually correct while the surviving population (and
the answer) decays.

Run:  python examples/continuous_monitoring.py
"""

import random

from repro.adversary import spread_failures
from repro.analysis import format_table, sparkline
from repro.extensions import drifting_inputs, run_monitoring
from repro.graphs import grid_graph


def main() -> None:
    rng = random.Random(4)
    topology = grid_graph(7, 7)
    print(f"sensor field: {topology} diameter d={topology.diameter}")

    # Sensors die in waves spread across the first epochs.  Each epoch of
    # Algorithm 1 at b=45 finishes within ~25 flooding rounds.
    f = 16
    epoch_rounds = 25 * topology.diameter
    schedule = spread_failures(
        topology, f=f, rng=rng, horizon=4 * epoch_rounds
    )
    print(
        f"decay: {len(schedule)} sensors fail over the first ~4 epochs "
        f"({schedule.edge_failures(topology)} edge failures, budget {f})\n"
    )

    base_readings = {u: rng.randint(15, 25) for u in topology.nodes()}
    outcome = run_monitoring(
        topology,
        drifting_inputs(base_readings, rng, jitter=2),
        epochs=6,
        f=f,
        b=45,
        schedule=schedule,
        rng=random.Random(5),
    )

    rows = [
        {
            "epoch": e.epoch,
            "SUM": e.result,
            "correct": e.correct,
            "live sensors": e.survivors,
            "CC (bits/node)": e.cc_bits,
        }
        for e in outcome.epochs
    ]
    print(format_table(rows, title="six monitoring epochs over a decaying grid"))
    print(f"\nsurvivors per epoch: {sparkline([e.survivors for e in outcome.epochs])}")
    print(f"SUM per epoch:       {sparkline([e.result for e in outcome.epochs])}")
    print(
        "\nEvery epoch is zero-error: the reported SUM always brackets the"
        "\nlive population's readings, so the base station can trust trends"
        "\neven while the network decays."
    )


if __name__ == "__main__":
    main()
