#!/usr/bin/env python
"""Exporting reproduction artifacts: ASCII chart + LaTeX tables.

A reproduction is only useful if its numbers travel: this example
regenerates the Figure 1 data, renders it as a terminal chart, emits a
camera-ready LaTeX table, and prints the full experiment index — the
artifacts a write-up would pull in directly.

Run:  python examples/paper_tables.py
"""

from repro.analysis import (
    figure1_data,
    format_latex_table,
    format_table,
    index_table,
    plot_series,
)


def main() -> None:
    n, f = 4096, 256
    bs = [42, 84, 168, 336, 672]
    data = figure1_data(n, f, bs)

    curves = {
        "new upper bound": data.curves["upper_bound_new"],
        "new lower bound": data.curves["lower_bound_new"],
        "old lower bound": [max(v, 1e-3) for v in data.curves["lower_bound_old"]],
        "folklore": data.curves["folklore"],
    }
    print(
        plot_series(
            bs,
            curves,
            title=f"Figure 1 (N={n}, f={f}): CC bounds vs time budget b",
            width=64,
            height=16,
        )
    )

    rows = [
        {
            "b": b,
            "upper bound": round(data.curves["upper_bound_new"][i], 1),
            "lower bound": round(data.curves["lower_bound_new"][i], 1),
            "gap": round(data.curves["gap_ratio"][i], 1),
            "polylog ceiling": round(data.curves["polylog_ceiling"][i], 1),
        }
        for i, b in enumerate(bs)
    ]
    print()
    print("--- LaTeX export (drop into a paper) ---")
    print(
        format_latex_table(
            rows,
            caption=f"Bounds on FT$_0$(SUM, f={f}, b) for N={n}.",
            label="tab:figure1",
        )
    )

    print()
    print(
        format_table(
            index_table(),
            title="the reproduction's experiment index (DESIGN.md E1..E16)",
        )
    )


if __name__ == "__main__":
    main()
