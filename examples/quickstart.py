#!/usr/bin/env python
"""Quickstart: fault-tolerant SUM with a tunable communication-time tradeoff.

Builds a small grid network, injects crash failures within an edge-failure
budget ``f``, and runs the paper's Algorithm 1 under a time budget of ``b``
flooding rounds.  Shows that the result is always correct and how the
per-node communication falls as ``b`` grows.

Run:  python examples/quickstart.py
"""

import random

from repro import FailureSchedule, SUM, Topology, run_algorithm1
from repro.adversary import random_failures
from repro.analysis import format_table
from repro.core.correctness import correctness_interval, surviving_nodes
from repro.graphs import grid_graph


def main() -> None:
    rng = random.Random(7)

    # An 6x6 grid: node 0 (a corner) is the root / base station.
    topology = grid_graph(6, 6)
    print(f"topology: {topology}  diameter d={topology.diameter}")

    # Every node holds a reading.
    inputs = {u: rng.randint(0, 50) for u in topology.nodes()}
    print(f"ground-truth SUM of all inputs: {sum(inputs.values())}")

    # An oblivious adversary crashes nodes within an edge-failure budget.
    f = 8
    schedule = random_failures(
        topology, f=f, rng=rng, first_round=1, last_round=600
    )
    print(
        f"adversary: {len(schedule)} crashes, "
        f"{schedule.edge_failures(topology)} edge failures (budget f={f})"
    )

    rows = []
    for b in (45, 90, 180, 360):
        out = run_algorithm1(
            topology, inputs, f=f, b=b, schedule=schedule, rng=random.Random(b)
        )
        survivors = surviving_nodes(topology, schedule, out.rounds)
        lo, hi = correctness_interval(SUM, inputs, survivors)
        rows.append(
            {
                "b (flooding rounds budget)": b,
                "result": out.result,
                "valid interval": f"[{lo}, {hi}]",
                "correct": lo <= out.result <= hi,
                "CC (max bits/node)": out.stats.max_bits,
                "TC (flooding rounds used)": out.flooding_rounds,
                "AGG+VERI pairs": out.pairs_run,
            }
        )

    print()
    print(
        format_table(
            rows,
            title="Algorithm 1: communication falls as the time budget grows",
        )
    )
    print(
        "\nEvery result lands in the correctness interval; larger b lets the"
        "\nprotocol use a smaller per-interval tolerance t = floor(2f/x),"
        "\nshrinking the bits each node must send (Theorem 1)."
    )


if __name__ == "__main__":
    main()
