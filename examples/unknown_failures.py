#!/usr/bin/env python
"""Early termination: the unknown-``f`` doubling protocol.

The paper notes (Section 1) that the known-``f`` assumption can be removed
with a doubling trick, and that the resulting protocol's overhead
automatically scales with the number of failures that *actually* occur.
This example crashes 0, 2, 6, and then many nodes and shows the per-node
communication growing with actual failures — not with any a-priori bound.

Run:  python examples/unknown_failures.py
"""

import random

from repro.adversary import FailureSchedule, random_failures
from repro.analysis import format_table
from repro.core import run_unknown_f
from repro.core.correctness import is_correct_result
from repro.core.caaf import SUM
from repro.graphs import grid_graph


def main() -> None:
    topology = grid_graph(6, 6)
    print(f"topology: {topology} diameter d={topology.diameter}\n")

    rows = []
    for f_actual in (0, 2, 6, 14):
        rng = random.Random(f_actual)
        inputs = {u: rng.randint(0, 30) for u in topology.nodes()}
        if f_actual == 0:
            schedule = FailureSchedule()
        else:
            schedule = random_failures(
                topology, f=f_actual, rng=rng, first_round=1, last_round=300
            )
        out = run_unknown_f(topology, inputs, schedule=schedule)
        correct = is_correct_result(
            out.result, SUM, topology, inputs, schedule, out.rounds
        )
        rows.append(
            {
                "actual edge failures": schedule.edge_failures(topology),
                "result": out.result,
                "correct": correct,
                "accepted guess t": out.accepted_guess,
                "pairs run": out.pairs_run,
                "CC (bits/node)": out.stats.max_bits,
                "rounds": out.rounds,
            }
        )

    print(
        format_table(
            rows,
            title="Unknown-f doubling: cost tracks the failures that happen",
        )
    )
    print(
        "\nNo failure bound was given to the protocol: guesses t = 1, 2, 4,"
        "\n... run until an AGG+VERI pair is accepted, which Theorems 5 and 7"
        "\nguarantee is safe, so the answer is always correct and the cost is"
        "\ndominated by the first sufficient guess."
    )


if __name__ == "__main__":
    main()
