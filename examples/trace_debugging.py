#!/usr/bin/env python
"""Watching AGG work: execution tracing of the speculative-flooding dance.

Attaches a :class:`repro.sim.Tracer` to an AGG run where a node and its
neighbourhood crash mid-aggregation (the paper's Figure 3 scenario), then
uses the trace to answer the questions one asks while studying the
protocol:

* when did the crash happen, and who flooded a critical_failure claim?
* which nodes initiated speculative partial-sum floods, and when?
* what determinations did the witnesses issue?
* how many bits flowed per phase?

Run:  python examples/trace_debugging.py
"""

from repro.adversary import blocker_failures
from repro.analysis import format_table
from repro.core.agg import AggNode
from repro.core.params import params_for
from repro.graphs import grid_graph
from repro.sim import Network, Tracer


def main() -> None:
    topology = grid_graph(5, 5)
    t = 12
    cd = 2 * topology.diameter
    schedule = blocker_failures(
        topology, f=12, victim=12, at_round=2 * cd + 2
    )
    print(f"topology: {topology}")
    print(
        f"blocker adversary: nodes {sorted(schedule.failed_nodes)} crash at "
        f"round {min(schedule.crash_rounds.values())} "
        "(start of the aggregation phase)\n"
    )

    params = params_for(topology, t=t)
    inputs = {u: 1 for u in topology.nodes()}
    nodes = {u: AggNode(params, u, inputs[u]) for u in topology.nodes()}
    tracer = Tracer()
    network = Network(topology.adjacency, nodes, schedule.crash_rounds, tracer=tracer)
    network.run(params.agg_rounds, stop_on_output=False)
    root = nodes[topology.root]
    print(f"AGG result: {root.result} (25 nodes, {len(schedule)} crashed)\n")

    print("--- crash and critical-failure timeline ---")
    print(tracer.timeline(kinds={"critical_failure"}, limit=12))

    print("\n--- speculative partial-sum floods (initiations only) ---")
    initiators = [
        e
        for e in tracer.sends_of_kind("flooded_psum")
        if any(
            p.kind == "flooded_psum" and p.payload[0] == e.node for p in e.parts
        )
    ]
    rows = [
        {
            "round": e.round,
            "initiator": e.node,
            "its level": nodes[e.node].state.level,
            "psum flooded": next(
                p.payload[1]
                for p in e.parts
                if p.kind == "flooded_psum" and p.payload[0] == e.node
            ),
        }
        for e in initiators
    ]
    print(format_table(rows))

    print("\n--- witness determinations received by the root ---")
    det_rows = [
        {"label": label, "about node": source}
        for (label, source) in sorted(root.determinations)
    ]
    print(format_table(det_rows))

    print("\n--- traffic by message kind ---")
    hist = tracer.kind_histogram()
    print(
        format_table(
            [{"kind": k, "parts broadcast": v} for k, v in sorted(hist.items())]
        )
    )

    bits = tracer.bits_per_round()
    busiest = max(bits, key=bits.get)
    print(
        f"\nbusiest round: r{busiest} with {bits[busiest]} bits network-wide "
        f"(phases: construction <= r{2*params.cd+1}, aggregation <= "
        f"r{4*params.cd+2}, flooding <= r{6*params.cd+3}, selection after)"
    )


if __name__ == "__main__":
    main()
