#!/usr/bin/env python
"""Sensor-network scenario: base station aggregating a field of sensors.

The paper's motivating deployment: a wireless sensor network whose base
station (root) must learn the SUM of all sensor readings while sensors die.
We model the field as a random geometric graph, crash sensors at random
within an edge-failure budget, and compare all four protocols:

* plain TAG (tree aggregation) — fast and cheap but silently loses readings;
* brute force — always correct, O(1) time, but O(N logN) bits per node;
* folklore repeat — correct, O(f logN) bits, but O(f) time;
* Algorithm 1 — correct, tunable time budget, O(f/b log^2 N + log^2 N) bits.

Run:  python examples/sensor_network.py
"""

import random
import statistics

from repro.adversary import random_failures
from repro.analysis import format_table, make_inputs, run_protocol
from repro.graphs import random_geometric


def main() -> None:
    rng = random.Random(2014)
    n, f, b, seeds = 120, 12, 60, 8

    topology = random_geometric(n, rng=rng)
    print(
        f"sensor field: {topology} diameter d={topology.diameter}, "
        f"root = node {topology.root} (closest to the corner base station)"
    )

    per_protocol = {"tag": [], "bruteforce": [], "folklore": [], "algorithm1": []}
    for seed in range(seeds):
        run_rng = random.Random(seed)
        inputs = make_inputs(topology, run_rng, max_input=100)
        schedule = random_failures(
            topology, f=f, rng=run_rng, first_round=1, last_round=b * topology.diameter
        )
        for name in per_protocol:
            rec = run_protocol(
                name,
                topology,
                inputs,
                schedule=schedule,
                f=f,
                b=b,
                rng=random.Random(seed * 31 + 1),
            )
            per_protocol[name].append(rec)

    rows = []
    for name, records in per_protocol.items():
        rows.append(
            {
                "protocol": name,
                "correct": f"{sum(r.correct for r in records)}/{len(records)}",
                "CC mean (bits/node)": round(
                    statistics.fmean(r.cc_bits for r in records), 1
                ),
                "CC max": max(r.cc_bits for r in records),
                "TC mean (flooding rounds)": round(
                    statistics.fmean(r.flooding_rounds for r in records), 1
                ),
            }
        )
    print()
    print(format_table(rows, title=f"N={n}, f={f}, b={b}, {seeds} seeds"))
    print(
        "\nTAG is cheapest but can be wrong; the three fault-tolerant"
        "\nprotocols are always correct, and Algorithm 1 undercuts brute"
        "\nforce's per-node bits by exploiting the time budget."
    )


if __name__ == "__main__":
    main()
