"""The unified observability subsystem: spans, metrics, exporters.

Covers the tracer's determinism contract (seed-derived ids, balanced
B/E by construction, byte-identical JSONL for a fixed seed), the typed
metrics registry and its compatibility facade over ``SimStats`` link
accounting, every export sink plus its own validator/linter, the
non-perturbation guarantee (tracing never changes CC/rounds), and the
``repro-agg obs`` CLI verb.
"""

import json
import random

import pytest

from repro.analysis import run_protocol
from repro.cli import main
from repro.graphs import grid_graph
from repro.obs import ObsCapture, MetricsRegistry, merge_counter_tree
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.spans import SpanTracer

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:
    HAVE_HYPOTHESIS = False


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Never leak an activated tracer/registry across tests."""
    yield
    obs_spans.deactivate()
    obs_metrics.deactivate()


# --------------------------------------------------------------------- #
# span tracer
# --------------------------------------------------------------------- #


class TestSpanTracer:
    def test_ids_are_seed_derived(self):
        a, b = SpanTracer(seed=7), SpanTracer(seed=7)
        assert a.trace_id == b.trace_id
        assert a.begin("x") == b.begin("x")
        assert SpanTracer(seed=8).trace_id != a.trace_id

    def test_rejects_unknown_detail(self):
        with pytest.raises(ValueError):
            SpanTracer(detail="verbose")

    def test_parent_child_nesting(self):
        tr = SpanTracer()
        outer = tr.begin("outer", round=0)
        inner = tr.begin("inner", round=1)
        tr.end(round=2)
        tr.end(round=3)
        spans = {s["sid"]: s for s in tr.spans}
        assert spans[inner]["parent"] == outer
        assert spans[outer]["parent"] is None
        assert spans[outer]["t0"] == 0 and spans[outer]["t1"] == 3

    def test_tracks_are_independent(self):
        tr = SpanTracer()
        a = tr.begin("a", tid=1, round=0)
        b = tr.begin("b", tid=2, round=0)
        tr.end(tid=1, round=5)
        tr.end(tid=2, round=5)
        spans = {s["sid"]: s for s in tr.spans}
        # Different tids never nest into each other.
        assert spans[a]["parent"] is None
        assert spans[b]["parent"] is None

    def test_unmatched_end_is_tolerated(self):
        tr = SpanTracer()
        assert tr.end(round=3) is None

    def test_end_never_precedes_begin(self):
        tr = SpanTracer()
        tr.begin("x", round=10)
        span = tr.end(round=2)  # clock regression: clamp, don't invert
        assert span["t1"] >= span["t0"]

    def test_close_all_balances_aborted_runs(self):
        tr = SpanTracer()
        tr.begin("outer", round=0)
        tr.begin("inner", round=4)
        assert tr.close_all() == 2
        assert all(s["t1"] is not None for s in tr.spans)
        doc = obs_export.chrome_trace(tr)
        assert obs_export.validate_chrome_trace(doc) == []

    def test_max_round_high_water(self):
        tr = SpanTracer()
        tr.begin("x", round=0)
        tr.event("tick", round=42)
        tr.end()  # no round: closes at the high-water mark
        assert tr.spans[0]["t1"] == 42

    def test_process_groups(self):
        tr = SpanTracer()
        pid = tr.push_process("unit-a")
        sid = tr.begin("work", round=0)
        tr.end(round=1)
        tr.pop_process()
        sid2 = tr.begin("after", round=1)
        tr.end(round=2)
        spans = {s["sid"]: s for s in tr.spans}
        assert pid >= 2 and tr.processes[pid] == "unit-a"
        assert spans[sid]["pid"] == pid
        assert spans[sid2]["pid"] == 0

    def test_span_context_manager(self):
        tr = SpanTracer()
        with tr.span("block", round=0):
            tr.event("inside", round=7)
        assert tr.spans[0]["t1"] == 7

    def test_activation_sets_module_guards(self):
        assert not obs_spans.enabled
        obs_spans.activate(SpanTracer(detail="messages"))
        assert obs_spans.enabled and obs_spans.messages
        obs_spans.activate(SpanTracer(detail="off"))
        assert not obs_spans.enabled and not obs_spans.messages
        assert obs_spans.active() is not None
        obs_spans.deactivate()
        assert obs_spans.active() is None


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        c.inc(protocol="a")
        c.inc(2, protocol="a")
        c.inc(protocol="b")
        assert c.samples() == [
            ("hits_total", (("protocol", "a"),), 3),
            ("hits_total", (("protocol", "b"),), 1),
        ]

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("g")
        g.set(1)
        g.set(5)
        assert g.samples() == [("g", (), 5)]

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        samples = dict(
            ((name, labels), value) for name, labels, value in h.samples()
        )
        assert samples[("h_bucket", (("le", "1"),))] == 1
        assert samples[("h_bucket", (("le", "10"),))] == 2
        assert samples[("h_bucket", (("le", "+Inf"),))] == 3
        assert samples[("h_count", ())] == 3
        assert samples[("h_sum", ())] == 105.5

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(5.0, 1.0))
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_kind_conflicts_are_errors(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_sample_order_ignores_recording_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m").inc(link="1>2")
        a.counter("m").inc(link="0>1")
        b.counter("m").inc(link="0>1")
        b.counter("m").inc(link="1>2")
        assert a.as_samples() == b.as_samples()

    def test_record_run_facade(self):
        reg = MetricsRegistry()
        obs_metrics.record_run(
            reg,
            protocol="algorithm1",
            cc_bits=300,
            rounds=150,
            flooding_rounds=20,
            correct=True,
            overhead_bits=64,
            extra={"retransmissions": 3, "suspects": 1, "violations": ()},
            link_stats={"attempts": {"0>1": 2}, "budget": 4},
        )
        samples = {
            (name, labels): value
            for name, labels, value in reg.as_samples()
        }
        proto = (("protocol", "algorithm1"),)
        assert samples[("repro_runs_total", proto)] == 1
        assert samples[("repro_run_cc_bits", proto)] == 300
        assert samples[("repro_transport_retransmissions_total", proto)] == 3
        assert samples[("repro_detector_suspects_total", proto)] == 1
        assert (
            samples[
                (
                    "repro_transport_link_retransmit_attempts_total",
                    (("link", "0>1"),),
                )
            ]
            == 2
        )
        assert samples[("repro_transport_retransmit_budget", ())] == 4

    def test_record_unit_latency_zero_samples(self):
        reg = MetricsRegistry()
        obs_metrics.record_unit_latency(reg, [], jobs=4)  # must not raise
        samples = {name for name, _, _ in reg.as_samples()}
        assert "repro_exec_unit_wall_p50_seconds" not in samples
        assert "repro_exec_jobs" in samples

    def test_record_unit_latency_percentiles(self):
        reg = MetricsRegistry()
        obs_metrics.record_unit_latency(reg, [1.0, 2.0, 3.0, 4.0], jobs=2)
        samples = {
            name: value for name, _, value in reg.as_samples()
        }
        assert samples["repro_exec_unit_wall_p50_seconds"] == 2.5
        assert samples["repro_exec_unit_wall_seconds_count"] == 4


class TestMergeCounterTree:
    """Satellite: the single merge rule behind SimStats.absorb."""

    def test_numeric_leaves_add(self):
        mine = {"attempts": {"0>1": 2}, "budget": 3}
        merge_counter_tree(
            mine, {"attempts": {"0>1": 1, "1>2": 5}, "budget": 4}
        )
        assert mine == {"attempts": {"0>1": 3, "1>2": 5}, "budget": 4}

    def test_non_numeric_overwrites(self):
        mine = {"cfg": {"mode": "fixed"}}
        merge_counter_tree(mine, {"cfg": {"mode": "adaptive"}})
        assert mine["cfg"]["mode"] == "adaptive"

    def test_matches_legacy_manual_merge(self):
        """Regression: byte-for-byte the same result as the hand-rolled
        loop ``SimStats.absorb`` used before the extraction."""

        def legacy(mine, other):
            for section, leaves in other.items():
                if isinstance(leaves, dict):
                    dst = mine.setdefault(section, {})
                    for leaf, n in leaves.items():
                        prev = dst.get(leaf, 0)
                        if isinstance(n, (int, float)) and isinstance(
                            prev, (int, float)
                        ):
                            dst[leaf] = prev + n
                        else:
                            dst[leaf] = n
                else:
                    mine[section] = leaves
            return mine

        rng = random.Random(0)
        for _ in range(50):
            a = {
                "attempts": {
                    f"{rng.randrange(4)}>{rng.randrange(4)}": rng.randrange(9)
                    for _ in range(rng.randrange(4))
                },
                "budget": rng.randrange(5),
            }
            b = {
                "attempts": {
                    f"{rng.randrange(4)}>{rng.randrange(4)}": rng.randrange(9)
                    for _ in range(rng.randrange(4))
                },
                "cap_hits": {"0>1": rng.randrange(3)},
            }
            import copy

            assert merge_counter_tree(
                copy.deepcopy(a), copy.deepcopy(b)
            ) == legacy(copy.deepcopy(a), copy.deepcopy(b))

    def test_simstats_absorb_still_merges_links(self):
        from repro.sim.stats import SimStats

        a, b = SimStats(), SimStats()
        a.link_stats = {"attempts": {"0>1": 2}, "budget": 3}
        b.link_stats = {"attempts": {"0>1": 1, "2>3": 4}, "budget": 3}
        a.absorb(b)
        assert a.link_stats["attempts"] == {"0>1": 3, "2>3": 4}


# --------------------------------------------------------------------- #
# exporters and the obs-verb analysis helpers
# --------------------------------------------------------------------- #


def _sample_tracer():
    tr = SpanTracer(seed=3)
    with tr.span("run", cat="protocol", round=0):
        tr.begin("phase_a", round=0)
        tr.event("mark", round=2, detail="x")
        tr.end(round=5)
        tr.begin("phase_b", round=5)
        tr.end(round=9)
    return tr


def _sample_registry():
    reg = MetricsRegistry()
    reg.counter("repro_runs_total", "runs").inc(protocol="algorithm1")
    reg.gauge("repro_run_cc_bits", "cc").set(300, protocol="algorithm1")
    reg.histogram(
        "repro_run_rounds_hist", "rounds", buckets=(100.0, 200.0)
    ).observe(150)
    return reg


class TestExporters:
    def test_jsonl_lines_are_valid_json(self):
        lines = obs_export.jsonl_lines(_sample_tracer(), _sample_registry())
        rows = [json.loads(line) for line in lines]
        assert rows[0]["type"] == "meta"
        assert {"span", "event", "metric"} <= {r["type"] for r in rows}

    def test_jsonl_excludes_wall_by_default(self):
        tracer = _sample_tracer()
        assert "wall_ns" not in "".join(obs_export.jsonl_lines(tracer))
        assert "wall_ns" in "".join(
            obs_export.jsonl_lines(tracer, include_wall=True)
        )

    def test_chrome_trace_validates(self):
        doc = obs_export.chrome_trace(_sample_tracer())
        assert obs_export.validate_chrome_trace(doc) == []
        names = {e.get("name") for e in doc["traceEvents"]}
        assert {"run", "phase_a", "phase_b", "mark", "process_name"} <= names

    def test_prometheus_text_lints_clean(self):
        text = obs_export.prometheus_text(_sample_registry())
        assert obs_export.lint_prometheus(text) == []
        assert '# TYPE repro_runs_total counter' in text
        assert 'le="+Inf"' in text

    def test_render_span_tree(self):
        out = obs_export.render_span_tree(_sample_tracer())
        assert "run" in out and "phase_a" in out
        # nesting is visible as deeper indentation
        run_line = next(l for l in out.splitlines() if "run " in l)
        child = next(l for l in out.splitlines() if "phase_a" in l)
        assert len(child) - len(child.lstrip()) > len(run_line) - len(
            run_line.lstrip()
        )

    def test_render_metrics_table(self):
        out = obs_export.render_metrics_table(_sample_registry())
        assert "repro_runs_total" in out
        assert obs_export.render_metrics_table(MetricsRegistry()) == (
            "(no metrics recorded)"
        )

    def test_write_and_load_both_formats(self, tmp_path):
        tracer = _sample_tracer()
        chrome = str(tmp_path / "t.json")
        jsonl = str(tmp_path / "t.jsonl")
        obs_export.write_chrome_trace(chrome, tracer)
        obs_export.write_jsonl(jsonl, tracer)
        a = obs_export.summarize_trace(obs_export.load_trace(chrome))
        b = obs_export.summarize_trace(obs_export.load_trace(jsonl))
        assert a["by_name"] == b["by_name"]
        assert a["spans"] == b["spans"] == 3


class TestTraceAnalysis:
    def test_summarize(self):
        summary = obs_export.summarize_trace(
            obs_export.chrome_trace(_sample_tracer())["traceEvents"]
        )
        assert summary["spans"] == 3
        assert summary["by_name"]["phase_a"]["total_us"] == 5000.0
        assert summary["instants_by_name"] == {"mark": 1}

    def test_diff_sorted_by_delta(self):
        a = {"by_name": {"x": {"total_us": 10.0}, "y": {"total_us": 5.0}}}
        b = {"by_name": {"x": {"total_us": 12.0}, "y": {"total_us": 50.0}}}
        rows = obs_export.diff_summaries(a, b)
        assert rows[0][0] == "y"  # |45| before |2|
        assert rows == [("y", 5.0, 50.0), ("x", 10.0, 12.0)]

    def test_top_spans(self):
        events = obs_export.chrome_trace(_sample_tracer())["traceEvents"]
        top = obs_export.top_spans(events, k=2)
        assert [s["name"] for s in top] == ["run", "phase_a"]
        assert obs_export.top_spans(events, k=0) == []

    def test_validate_catches_unbalanced(self):
        doc = {
            "traceEvents": [
                {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 0},
                {"ph": "E", "pid": 0, "tid": 0, "ts": 1},
                {"ph": "E", "pid": 0, "tid": 0, "ts": 2},
                {"ph": "B", "name": "b", "pid": 0, "tid": 1, "ts": 0},
            ]
        }
        errors = obs_export.validate_chrome_trace(doc)
        assert any("E without matching B" in e for e in errors)
        assert any("unclosed B" in e for e in errors)

    def test_validate_catches_malformed(self):
        assert obs_export.validate_chrome_trace([]) != []
        errors = obs_export.validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "ts": 0}, {"ph": "B", "ts": -5}]}
        )
        assert len(errors) >= 2

    def test_lint_catches_problems(self):
        bad = "\n".join(
            [
                "# TYPE m counter",
                "m{l=unquoted} 1",  # malformed labels
                "orphan 2",  # no TYPE
                "m 1",
                "m 1",  # duplicate
            ]
        )
        errors = obs_export.lint_prometheus(bad)
        assert any("malformed sample" in e for e in errors)
        assert any("no TYPE" in e for e in errors)
        assert any("duplicate" in e for e in errors)

    def test_lint_catches_histogram_without_inf(self):
        bad = "\n".join(
            [
                "# TYPE h histogram",
                'h_bucket{le="1"} 1',
                "h_sum 1",
                "h_count 1",
            ]
        )
        assert any(
            "+Inf" in e for e in obs_export.lint_prometheus(bad)
        )


# --------------------------------------------------------------------- #
# end-to-end capture: determinism + non-perturbation
# --------------------------------------------------------------------- #


def _traced_run(detail="phases", seed=0):
    topo = grid_graph(4, 4)
    inputs = {u: 1 for u in topo.nodes()}
    with ObsCapture(seed=seed, detail=detail) as cap:
        record = run_protocol(
            "algorithm1",
            topo,
            inputs,
            f=2,
            b=45,
            rng=random.Random(seed),
        )
    cap.tracer.close_all()
    return record, cap


class TestEndToEnd:
    def test_phase_spans_present(self):
        record, cap = _traced_run()
        names = {s["name"] for s in cap.tracer.spans}
        assert "algorithm1" in names
        assert "agg.tree_construction" in names
        assert "agg.tree_aggregation" in names
        assert "veri.failed_parent" in names
        assert record.correct

    def test_phase_spans_nest_under_protocol_root(self):
        _, cap = _traced_run()
        spans = {s["sid"]: s for s in cap.tracer.spans}
        root = next(
            s for s in cap.tracer.spans if s["name"] == "algorithm1"
        )
        for s in cap.tracer.spans:
            if s["name"].startswith(("agg.", "veri.")):
                assert spans[s["parent"]]["sid"] == root["sid"]

    def test_chrome_export_of_real_run_validates(self):
        _, cap = _traced_run(detail="messages")
        doc = obs_export.chrome_trace(cap.tracer)
        assert obs_export.validate_chrome_trace(doc) == []
        assert any(
            e.get("cat") == "message" for e in doc["traceEvents"]
        )

    def test_metrics_recorded_through_runner(self):
        _, cap = _traced_run()
        samples = {name for name, _, _ in cap.registry.as_samples()}
        assert "repro_runs_total" in samples
        assert "repro_run_cc_bits" in samples
        text = obs_export.prometheus_text(cap.registry)
        assert obs_export.lint_prometheus(text) == []

    def test_tracing_never_perturbs_protocol_accounting(self):
        """The headline guarantee: CC/rounds are bit-for-bit identical
        with tracing off, at phases detail, and at messages detail."""
        baseline = run_protocol(
            "algorithm1",
            grid_graph(4, 4),
            {u: 1 for u in grid_graph(4, 4).nodes()},
            f=2,
            b=45,
            rng=random.Random(0),
        ).as_dict()
        for detail in ("off", "phases", "messages"):
            record, _ = _traced_run(detail=detail)
            assert record.as_dict() == baseline, detail

    def test_same_seed_byte_identical_jsonl(self):
        _, cap_a = _traced_run(seed=3)
        _, cap_b = _traced_run(seed=3)
        assert obs_export.jsonl_lines(
            cap_a.tracer, cap_a.registry
        ) == obs_export.jsonl_lines(cap_b.tracer, cap_b.registry)

    if HAVE_HYPOTHESIS:

        @given(seed=st.integers(min_value=0, max_value=2**16))
        @settings(max_examples=10, deadline=None)
        def test_byte_identity_property(self, seed):
            """Same seed -> byte-identical JSONL export, any seed."""
            _, a = _traced_run(seed=seed)
            _, b = _traced_run(seed=seed)
            assert obs_export.jsonl_lines(
                a.tracer, a.registry
            ) == obs_export.jsonl_lines(b.tracer, b.registry)

    def test_disabled_by_default(self):
        assert not obs_spans.enabled
        assert not obs_metrics.enabled
        record = run_protocol(
            "algorithm1",
            grid_graph(4, 4),
            {u: 1 for u in grid_graph(4, 4).nodes()},
            f=2,
            b=45,
            rng=random.Random(0),
        )
        assert record.correct


# --------------------------------------------------------------------- #
# progress telemetry (satellite)
# --------------------------------------------------------------------- #


class TestProgressLatency:
    def test_latency_summary_none_before_samples(self):
        from repro.exec.progress import ProgressTracker

        tracker = ProgressTracker()
        assert tracker.latency_summary() is None
        # zero completed units must render, not divide by zero
        assert "0/0" in tracker.render()

    def test_latency_summary_values(self):
        from repro.exec.progress import ProgressTracker

        tracker = ProgressTracker()
        for wall in (1.0, 2.0, 3.0):
            tracker(
                {"event": "unit_finished", "index": 0, "wall_s": wall}
            )
        summary = tracker.latency_summary()
        assert summary["p50"] == 2.0
        assert summary["mean"] == 2.0
        assert "p50" in tracker.render()

    def test_render_clamps_overflow(self):
        from repro.exec.progress import ProgressTracker

        tracker = ProgressTracker()
        # events without an engine_started header: done > total
        tracker({"event": "unit_finished", "index": 0, "wall_s": 0.1})
        bar = tracker.render(width=10)
        assert bar.count("#") <= 10

    def test_export_final_latency_into_registry(self):
        from repro.exec.progress import export_final_latency

        reg = MetricsRegistry()
        obs_metrics.activate(reg)
        try:
            export_final_latency([0.5, 1.5], jobs=3)
        finally:
            obs_metrics.deactivate()
        samples = {
            name: value for name, _, value in reg.as_samples()
        }
        assert samples["repro_exec_jobs"] == 3
        assert samples["repro_exec_unit_wall_p50_seconds"] == 1.0

    def test_export_final_latency_noop_when_disabled(self):
        from repro.exec.progress import export_final_latency

        export_final_latency([1.0])  # no active registry: silently skips


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestObsCli:
    def _run_traced(self, tmp_path, trace_name="t.json"):
        trace = str(tmp_path / trace_name)
        prom = str(tmp_path / "m.prom")
        rc = main(
            [
                "run",
                "--topology",
                "grid:4x4",
                "-f",
                "2",
                "-b",
                "45",
                "--trace-out",
                trace,
                "--metrics-out",
                prom,
            ]
        )
        assert rc == 0
        return trace, prom

    def test_run_writes_artifacts(self, tmp_path, capsys):
        trace, prom = self._run_traced(tmp_path)
        doc = json.load(open(trace))
        assert obs_export.validate_chrome_trace(doc) == []
        assert obs_export.lint_prometheus(open(prom).read()) == []
        capsys.readouterr()

    def test_jsonl_extension_selects_jsonl(self, tmp_path, capsys):
        trace, _ = self._run_traced(tmp_path, trace_name="t.jsonl")
        first = open(trace).readline()
        assert json.loads(first)["type"] == "meta"
        capsys.readouterr()

    def test_obs_summarize_and_top(self, tmp_path, capsys):
        trace, _ = self._run_traced(tmp_path)
        capsys.readouterr()
        assert main(["obs", "summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "agg.tree_construction" in out
        assert main(["obs", "top", trace, "-k", "3"]) == 0
        assert "algorithm1" in capsys.readouterr().out

    def test_obs_diff(self, tmp_path, capsys):
        trace, _ = self._run_traced(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", trace, trace]) == 0
        assert "delta" in capsys.readouterr().out

    def test_obs_validate_good_and_bad(self, tmp_path, capsys):
        trace, prom = self._run_traced(tmp_path)
        capsys.readouterr()
        assert main(["obs", "validate", trace, "--prom", prom]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {"ph": "E", "pid": 0, "tid": 0, "ts": 1}
                    ]
                }
            )
        )
        assert main(["obs", "validate", str(bad)]) == 1
        capsys.readouterr()

    def test_trace_detail_off_still_writes_metrics(self, tmp_path, capsys):
        prom = str(tmp_path / "m.prom")
        rc = main(
            [
                "run",
                "--topology",
                "grid:4x4",
                "-f",
                "2",
                "-b",
                "45",
                "--trace-detail",
                "off",
                "--metrics-out",
                prom,
            ]
        )
        assert rc == 0
        text = open(prom).read()
        assert "repro_runs_total" in text
        capsys.readouterr()

    def test_cli_same_seed_byte_identity(self, tmp_path, capsys):
        a, _ = self._run_traced(tmp_path, trace_name="a.jsonl")
        b, _ = self._run_traced(tmp_path, trace_name="b.jsonl")
        assert open(a).read() == open(b).read()
        capsys.readouterr()
