"""Lemma 11's rectangle argument, verified end to end on small matrices."""

import math

import pytest

from repro.lowerbound.rectangles import (
    ONE,
    UNDEFINED,
    ZERO,
    all_strings,
    build_matrix,
    diagonal_set_is_valid_rectangle,
    lemma11_cover_bound,
    matrix_entry,
    max_diagonal_rectangle,
    min_rectangle_cover,
    rectangle_is_one_monochromatic,
)
from repro.lowerbound.sperner import max_sperner_family_size, theorem9_bound


class TestMatrixStructure:
    def test_diagonal_is_ones(self):
        for x in all_strings(2, 3):
            assert matrix_entry(x, x, 3) == ONE

    def test_promise_violations_are_undefined(self):
        assert matrix_entry((0,), (2,), 3) == UNDEFINED

    def test_promise_respecting_unequal_is_zero(self):
        assert matrix_entry((0,), (1,), 3) == ZERO

    def test_matrix_cell_count(self):
        m = build_matrix(2, 3)
        assert len(m) == 81

    def test_matrix_size_cap(self):
        with pytest.raises(ValueError):
            build_matrix(6, 3)

    def test_entry_classification_partition(self):
        m = build_matrix(1, 4)
        ones = sum(1 for v in m.values() if v == ONE)
        zeros = sum(1 for v in m.values() if v == ZERO)
        undefined = sum(1 for v in m.values() if v is UNDEFINED)
        assert ones == 4  # the diagonal
        assert zeros == 4  # the promise's +1 offsets
        assert ones + zeros + undefined == 16


class TestRectangles:
    def test_single_diagonal_cell_is_rectangle(self):
        for x in all_strings(1, 3):
            assert diagonal_set_is_valid_rectangle([x], 3)

    def test_cycle_neighbours_cannot_share_a_rectangle(self):
        # Z[(0,),(1,)] is a 0-entry -> the rectangle {0,1}x{0,1} has a 0.
        assert not diagonal_set_is_valid_rectangle([(0,), (1,)], 3)

    def test_rectangle_checker_on_mixed_rows_cols(self):
        assert rectangle_is_one_monochromatic([(0,)], [(0,), (2,)], 3)
        assert not rectangle_is_one_monochromatic([(0,)], [(0,), (1,)], 3)

    @pytest.mark.parametrize(
        "n,q", [(1, 3), (2, 3), (3, 3), (1, 4), (2, 4), (1, 5)]
    )
    def test_lemma11_observation_rectangles_equal_sperner_families(self, n, q):
        # The proof's pivot: a diagonal set fits one rectangle iff it is a
        # Theorem 9 family, so the maxima coincide.
        assert max_diagonal_rectangle(n, q) == max_sperner_family_size(n, q)

    @pytest.mark.parametrize("n,q", [(1, 3), (2, 3), (1, 4), (2, 4)])
    def test_max_rectangle_within_theorem9_bound(self, n, q):
        assert max_diagonal_rectangle(n, q) <= theorem9_bound(n, q)


class TestExactCovers:
    @pytest.mark.parametrize("n,q", [(1, 3), (2, 3), (1, 4), (1, 5)])
    def test_cover_respects_lemma11_bound(self, n, q):
        c1 = min_rectangle_cover(n, q)
        assert c1 >= lemma11_cover_bound(n, q)

    def test_cover_lower_bounds_nondeterministic_cc(self):
        # N(h) >= log2 C^1(h): for (2,3) the cover needs 3 rectangles, so
        # EQUALITYCP_{2,3} needs > 1.5 bits nondeterministically.
        c1 = min_rectangle_cover(2, 3)
        assert math.log2(c1) > 1.5

    def test_cover_at_most_diagonal_size(self):
        # Singleton rectangles always cover.
        for n, q in [(1, 3), (1, 4)]:
            assert min_rectangle_cover(n, q) <= q**n

    def test_cover_size_cap(self):
        with pytest.raises(ValueError):
            min_rectangle_cover(5, 4)

    def test_cover_times_max_rectangle_covers_diagonal(self):
        # Counting consistency: C^1 * max_rectangle >= q^n.
        for n, q in [(1, 3), (2, 3), (1, 4)]:
            c1 = min_rectangle_cover(n, q)
            assert c1 * max_diagonal_rectangle(n, q) >= q**n
