"""Model fitting for the scaling experiments."""

import math

import pytest

from repro.analysis.fitting import (
    fit_affine,
    fit_linear_basis,
    fit_power_law,
    fit_theorem1_b_sweep,
    shape_report,
)


class TestPowerLaw:
    def test_recovers_exact_exponent(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        a, k = fit.coefficients
        assert a == pytest.approx(3, rel=1e-6)
        assert k == pytest.approx(2, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_decaying_exponent(self):
        xs = [10, 20, 40, 80]
        ys = [100 / x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.coefficients[1] == pytest.approx(-1, rel=1e-6)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 3])


class TestAffine:
    def test_recovers_line(self):
        xs = [0, 1, 2, 3]
        ys = [5 + 2 * x for x in xs]
        fit = fit_affine(xs, ys)
        a, b = fit.coefficients
        assert a == pytest.approx(5)
        assert b == pytest.approx(2)

    def test_r_squared_penalizes_noise(self):
        fit_clean = fit_affine([0, 1, 2, 3], [0, 1, 2, 3])
        fit_noisy = fit_affine([0, 1, 2, 3], [0, 3, 1, 4])
        assert fit_clean.r_squared > fit_noisy.r_squared


class TestTheorem1Fit:
    def test_recovers_planted_coefficients(self):
        n, f = 1024, 64
        log2n = math.log2(n) ** 2
        bs = [42, 84, 168, 336, 672]
        ccs = [2.0 * (f / b) * log2n + 0.5 * log2n for b in bs]
        fit = fit_theorem1_b_sweep(bs, ccs, n, f)
        alpha, beta = fit.coefficients
        assert alpha == pytest.approx(2.0, rel=1e-6)
        assert beta == pytest.approx(0.5, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_non_negative_coefficients_enforced(self):
        # Increasing data can't be explained by the decaying f/b term; the
        # projected fit must zero it out rather than go negative.
        n, f = 256, 32
        bs = [42, 84, 168]
        ccs = [10.0, 20.0, 40.0]
        fit = fit_theorem1_b_sweep(bs, ccs, n, f)
        assert all(c >= 0 for c in fit.coefficients)

    def test_fits_real_measured_series_well(self):
        # The series measured in benchmarks/results/theorem1_cc_vs_b.txt.
        bs = [42, 84, 168, 336, 672]
        ccs = [567.7, 370.0, 285.7, 244.0, 232.0]
        fit = fit_theorem1_b_sweep(bs, ccs, n=36, f=10)
        assert fit.r_squared > 0.98

    def test_shape_report_keys(self):
        report = shape_report(
            [42, 84, 168], [500.0, 300.0, 200.0], n=36, f=10
        )
        assert set(report) == {"theorem1_r2", "alpha", "beta", "decay_exponent"}
        assert -2 < report["decay_exponent"] < 0


class TestLinearBasis:
    def test_constant_series(self):
        fit = fit_linear_basis([5.0, 5.0, 5.0], [[1.0, 1.0, 1.0]], model="const")
        assert fit.coefficients[0] == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_label_rendering(self):
        fit = fit_linear_basis([1.0, 2.0], [[1.0, 2.0]], model="a*x")
        assert "a*x" in fit.predict_label()
        assert "R^2" in fit.predict_label()
