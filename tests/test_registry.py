"""The experiment registry stays in sync with benches and docs."""

import os

import pytest

from repro.analysis.registry import (
    EXPERIMENTS,
    benchmarks_dir,
    by_id,
    index_table,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")


class TestRegistry:
    def test_all_ids_unique_and_sequential(self):
        ids = [e.exp_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))
        assert ids == [f"E{i}" for i in range(1, len(ids) + 1)]

    def test_by_id(self):
        assert by_id("E2").paper_artifact == "Table 2"
        with pytest.raises(KeyError):
            by_id("E99")

    def test_every_bench_module_exists(self):
        for experiment in EXPERIMENTS:
            path = os.path.join(BENCH_DIR, experiment.bench_module)
            assert os.path.exists(path), experiment.exp_id

    def test_every_bench_module_is_registered(self):
        registered = {e.bench_module for e in EXPERIMENTS}
        on_disk = {
            f
            for f in os.listdir(BENCH_DIR)
            if f.startswith("bench_") and f.endswith(".py")
        }
        assert on_disk == registered

    def test_results_files_are_emitted_by_their_bench(self):
        # Each registered results file name must appear in its bench's
        # source (the emit() call).
        for experiment in EXPERIMENTS:
            path = os.path.join(BENCH_DIR, experiment.bench_module)
            with open(path) as fh:
                source = fh.read()
            for results_file in experiment.results_files:
                stem = results_file[: -len(".txt")]
                assert stem in source, (experiment.exp_id, results_file)

    def test_experiments_md_documents_every_id(self):
        with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as fh:
            text = fh.read()
        for experiment in EXPERIMENTS:
            assert f"{experiment.exp_id} —" in text or f"| {experiment.exp_id} |" in text, (
                experiment.exp_id
            )

    def test_design_md_documents_every_id(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as fh:
            text = fh.read()
        for experiment in EXPERIMENTS:
            assert f"| {experiment.exp_id} |" in text, experiment.exp_id

    def test_index_table_shape(self):
        rows = index_table()
        assert len(rows) == len(EXPERIMENTS)
        assert set(rows[0]) == {"id", "paper artifact", "bench", "claim"}
