"""Targeted adversary families (hub / articulation / depth attacks)."""

import random

import networkx as nx
import pytest

from repro.adversary import articulation_points, targeted_failures
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.algorithm1 import run_algorithm1
from repro.graphs import (
    barbell_graph,
    caterpillar_graph,
    gnp_connected,
    grid_graph,
    path_graph,
    star_graph,
)


def to_nx(topology):
    g = nx.Graph()
    g.add_nodes_from(topology.adjacency)
    for u, vs in topology.adjacency.items():
        g.add_edges_from((u, v) for v in vs)
    return g


class TestArticulationPoints:
    def test_path_interior_nodes(self):
        topo = path_graph(6)
        assert articulation_points(topo) == {1, 2, 3, 4}

    def test_grid_has_none(self):
        assert articulation_points(grid_graph(4, 4)) == set()

    def test_star_hub(self):
        assert articulation_points(star_graph(6)) == {0}

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_on_random_graphs(self, seed):
        topo = gnp_connected(30, rng=random.Random(seed))
        assert articulation_points(topo) == set(
            nx.articulation_points(to_nx(topo))
        )

    def test_matches_networkx_on_structured_graphs(self):
        for topo in (barbell_graph(4, 3), caterpillar_graph(6, 2)):
            assert articulation_points(topo) == set(
                nx.articulation_points(to_nx(topo))
            )


class TestTargetedFailures:
    def test_degree_attack_hits_hubs_first(self):
        topo = grid_graph(4, 4)
        schedule = targeted_failures(topo, f=4, at_round=5, strategy="degree")
        # The cheapest max-degree victim is an interior node (degree 4).
        assert all(topo.degree(u) == 4 for u in schedule.failed_nodes)
        assert schedule.edge_failures(topo) <= 4

    def test_articulation_attack_prefers_cut_nodes(self):
        topo = caterpillar_graph(6, 1)
        schedule = targeted_failures(
            topo, f=4, at_round=5, strategy="articulation"
        )
        arts = articulation_points(topo)
        assert schedule.failed_nodes & arts

    def test_deep_attack_hits_far_nodes(self):
        topo = path_graph(8)
        schedule = targeted_failures(topo, f=2, at_round=5, strategy="deep")
        assert 7 in schedule.failed_nodes

    def test_budget_always_respected(self):
        for strategy in ("degree", "articulation", "deep"):
            for f in (1, 3, 7):
                topo = grid_graph(4, 4)
                schedule = targeted_failures(topo, f=f, at_round=3, strategy=strategy)
                assert schedule.edge_failures(topo) <= f
                assert 0 not in schedule.failed_nodes

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            targeted_failures(grid_graph(3, 3), f=2, at_round=1, strategy="random")

    def test_all_crashes_at_given_round(self):
        schedule = targeted_failures(grid_graph(4, 4), f=6, at_round=42)
        assert set(schedule.crash_rounds.values()) == {42}


class TestProtocolsUnderTargetedAttacks:
    @pytest.mark.parametrize("strategy", ["degree", "articulation", "deep"])
    def test_algorithm1_correct_under_every_attack(self, strategy):
        topo = caterpillar_graph(5, 2)
        f = 6
        schedule = targeted_failures(topo, f=f, at_round=30, strategy=strategy)
        inputs = {u: 3 for u in topo.nodes()}
        out = run_algorithm1(
            topo, inputs, f=f, b=60, schedule=schedule, rng=random.Random(1)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    def test_articulation_attack_partitions_more_than_random(self):
        # Sanity on the attack's intent: targeting articulation points
        # strands more nodes than equal-budget hub attacks on a
        # bottleneck-free-hub topology.
        topo = caterpillar_graph(8, 2)
        f = 4
        art = targeted_failures(topo, f=f, at_round=5, strategy="articulation")
        deg = targeted_failures(topo, f=f, at_round=5, strategy="degree")
        stranded_art = topo.n_nodes - len(topo.alive_component(art.failed_nodes)) - len(art.failed_nodes)
        stranded_deg = topo.n_nodes - len(topo.alive_component(deg.failed_nodes)) - len(deg.failed_nodes)
        assert stranded_art >= stranded_deg
