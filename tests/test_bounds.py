"""Closed-form bound formulas (the Figure 1 curves)."""

import pytest

from repro.lowerbound import bounds


class TestUpperBound:
    def test_simple_form_dominates_tight_form(self):
        for n, f, b in [(256, 64, 50), (1024, 512, 100), (64, 8, 42)]:
            assert bounds.upper_bound_new(n, f, b) <= bounds.upper_bound_new_simple(
                n, f, b
            ) + 1e-9

    def test_decreasing_in_b(self):
        values = [bounds.upper_bound_new(1024, 256, b) for b in (42, 84, 336, 1344)]
        assert values == sorted(values, reverse=True)

    def test_floor_at_log_squared(self):
        # Once b >> f the bound approaches min(f, logN) * logN-ish terms;
        # it never drops below logN (some output must reach the root).
        import math

        n = 4096
        assert bounds.upper_bound_new(n, 1, 10**6) >= math.log2(n)

    def test_increasing_in_f(self):
        values = [bounds.upper_bound_new(1024, f, 50) for f in (1, 16, 256)]
        assert values == sorted(values)


class TestLowerBounds:
    def test_new_dominates_old(self):
        # The factor-b improvement of Theorem 2 over [4].
        for n, f, b in [(256, 128, 16), (4096, 1024, 64), (64, 32, 8)]:
            assert bounds.lower_bound_new(n, f, b) > bounds.lower_bound_old(n, f, b)

    def test_new_has_log_term_even_without_failures_pressure(self):
        # The Omega(logN / logb) term from [7].
        assert bounds.lower_bound_new(2**20, 1, 4) >= 20 / 2 - 1

    def test_old_decays_quadratically(self):
        a = bounds.lower_bound_old(256, 1000, 10)
        b = bounds.lower_bound_old(256, 1000, 20)
        assert a / b == pytest.approx(4 * bounds._log2(20) / bounds._log2(10), rel=0.1)


class TestGap:
    def test_gap_is_polylog(self):
        # The headline: UB/LB <= log^2 N * log b.
        for n in (64, 1024, 2**16):
            for f in (1, n // 16, n):
                for b in (42, 168, 1344):
                    assert bounds.gap_ratio(n, f, b) <= bounds.polylog_gap_ceiling(
                        n, b
                    )

    def test_baselines_sit_above_new_upper_bound_region(self):
        # At matching TC points the baselines are never cheaper than the new
        # bound's curve: brute force at b = O(1)-scale, folklore at b = f.
        n, f = 4096, 256
        assert bounds.upper_bound_bruteforce(n, f, 21) >= bounds.upper_bound_new(
            n, f, 21
        )
        assert bounds.upper_bound_folklore(n, f, f) >= bounds.upper_bound_new(
            n, f, f
        )


class TestTwoPartyBounds:
    def test_unionsize_bounds_bracket(self):
        for n in (256, 4096):
            for q in (2, 8, 64):
                assert bounds.unionsize_lower_bound(n, q) <= bounds.unionsize_upper_bound(
                    n, q
                )

    def test_unionsize_lower_bound_clamped_at_zero(self):
        assert bounds.unionsize_lower_bound(8, 64) == 0.0

    def test_equality_lower_bound_positive(self):
        assert bounds.equality_lower_bound(100, 2) == pytest.approx(100.0)


class TestCurveRegistry:
    def test_all_curves_sampleable(self):
        bs = [42, 84]
        for name in bounds.CURVES:
            points = bounds.sample_curve(name, 256, 32, bs)
            assert [p.b for p in points] == bs
            assert all(p.value >= 0 for p in points)

    def test_agg_veri_budget_linear_in_t(self):
        n = 1024
        d0 = bounds.agg_veri_budget(n, 1) - bounds.agg_veri_budget(n, 0)
        d1 = bounds.agg_veri_budget(n, 2) - bounds.agg_veri_budget(n, 1)
        assert d0 == pytest.approx(d1)

    def test_crossover_at_f(self):
        assert bounds.crossover_b(1024, 77) == 77
