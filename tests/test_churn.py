"""Churn-tolerant epochs: crash-recovery nodes, flaps, exactly-once.

Acceptance properties (ISSUE 7):

* Under crash-recovery churn with durable rejoins within the ``f``
  budget, the epoch manager reports the **exact** SUM with zero
  DOUBLE-COUNT verdicts, and the protocol CC is unchanged from the
  no-churn transport baseline (every repair byte — retransmits, NACKs,
  incarnation stamps, announce/handshake mini-runs — is booked under
  ``overhead_bits``).
* With amnesiac rejoins the result is exact when a neighbour snapshot
  survives, and an honestly certified partial otherwise — never a
  silently wrong total (the :class:`DoubleCountOracle` grades every
  certified claim against the ground-truth input multiset).
* An epoch whose output matches no contributor subset is discarded
  wholesale and rerun; nothing from it is booked, so the retry can
  neither double-count nor drop a contribution.
"""

import random

import pytest

from repro.analysis.runner import run_protocol
from repro.analysis.sweep import point_units, run_point
from repro.exec.scheduler import execute_unit, materialize_churn
from repro.graphs import grid_graph
from repro.resilience import ChurnPolicy, TransportConfig
from repro.resilience.epochs import neutral_input, run_with_churn
from repro.sim.faults import (
    REJOIN_AMNESIAC,
    REJOIN_DURABLE,
    ChurnSchedule,
    random_churn,
)
from repro.sim.monitors import DoubleCountOracle, FBudgetMonitor

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the toolchain
    HAVE_HYPOTHESIS = False


# --------------------------------------------------------------------- #
# Spec grammar and schedule validation.
# --------------------------------------------------------------------- #


class TestChurnSpec:
    def test_crash_revive_flap_round_trip(self):
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r7:amnesiac,flap:1-2@r2-r5"
        )
        assert ch.cycles == {5: [(3, 7, REJOIN_AMNESIAC)]}
        assert ch.flaps == [(1, 2, 2, 5)]
        again = ChurnSchedule.from_jsonable(ch.as_jsonable())
        assert again.cycles == ch.cycles
        assert again.flaps == ch.flaps

    def test_revive_defaults_to_durable(self):
        ch = ChurnSchedule.from_spec("4:crash@r2,4:revive@r6")
        assert ch.cycles[4] == [(2, 6, REJOIN_DURABLE)]

    def test_crash_without_revive_is_permanent(self):
        ch = ChurnSchedule.from_spec("4:crash@r2")
        assert ch.cycles[4] == [(2, None, REJOIN_DURABLE)]
        assert ch.crash_rounds == {4: 2}

    def test_rejects_revive_before_crash(self):
        with pytest.raises(ValueError, match="strictly after"):
            ChurnSchedule(cycles={3: [(5, 5, REJOIN_DURABLE)]})

    def test_rejects_recrash_while_down(self):
        with pytest.raises(ValueError):
            ChurnSchedule(
                cycles={3: [(2, 8, REJOIN_DURABLE), (5, 9, REJOIN_DURABLE)]}
            )

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown rejoin mode"):
            ChurnSchedule(cycles={3: [(2, 5, "flaky")]})

    def test_rejects_bad_spec_with_grammar(self):
        with pytest.raises(ValueError, match="accepted grammar"):
            ChurnSchedule.from_spec("5:explode@r3")

    def test_rejects_empty_flap_window(self):
        with pytest.raises(ValueError):
            ChurnSchedule(flaps=[(1, 2, 5, 3)])

    def test_root_crash_rejected_without_sanction(self):
        with pytest.raises(ValueError, match="root"):
            ChurnSchedule.from_spec("0:crash@r2,0:revive@r5", root=0)

    def test_validate_rejects_unknown_node_and_edge(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError):
            ChurnSchedule(cycles={99: [(2, 5, REJOIN_DURABLE)]}).validate(
                topo
            )
        with pytest.raises(ValueError):
            ChurnSchedule(flaps=[(0, 8, 2, 4)]).validate(topo)

    def test_incarnation_counts_completed_revives(self):
        ch = ChurnSchedule(
            cycles={
                5: [(2, 4, REJOIN_DURABLE), (7, 9, REJOIN_AMNESIAC)]
            }
        )
        assert ch.incarnation_at(5, 3) == 0
        assert ch.incarnation_at(5, 5) == 1
        assert ch.incarnation_at(5, 20) == 2
        assert ch.incarnation_at(1, 20) == 0

    def test_shifted_drops_past_events_keeps_incarnations(self):
        ch = ChurnSchedule(
            cycles={5: [(2, 4, REJOIN_DURABLE), (7, 9, REJOIN_DURABLE)]},
            flaps=[(1, 2, 3, 8)],
        )
        view = ch.shifted(5)
        assert view.cycles[5] == [(2, 4, REJOIN_DURABLE)]
        assert view.flaps == [(1, 2, 1, 3)]
        assert view.incarnation_base.get(5) == 1

    def test_random_churn_is_seed_deterministic(self):
        topo = grid_graph(3, 3)
        a = random_churn(topo, 0.3, random.Random(11), horizon=40)
        b = random_churn(topo, 0.3, random.Random(11), horizon=40)
        assert a.cycles == b.cycles
        assert a.flaps == b.flaps
        assert topo.root not in a.cycles

    def test_random_churn_rate_zero_is_empty(self):
        topo = grid_graph(3, 3)
        ch = random_churn(topo, 0.0, random.Random(1), horizon=40)
        assert not ch.cycles and not ch.flaps


class TestChurnPolicy:
    def test_default_carries_a_transport(self):
        policy = ChurnPolicy.default()
        assert policy.transport is not None
        assert policy.snapshots

    def test_jsonable_round_trip(self):
        policy = ChurnPolicy(
            transport=TransportConfig(retransmits=2),
            max_epochs=3,
            heartbeat_gap=4,
            snapshots=False,
        )
        assert ChurnPolicy.from_jsonable(policy.as_jsonable()) == policy

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ChurnPolicy(max_epochs=0)
        with pytest.raises(ValueError):
            ChurnPolicy(heartbeat_gap=0)


# --------------------------------------------------------------------- #
# The epoch manager on real protocol runs.
# --------------------------------------------------------------------- #


class TestDurableChurn:
    def setup_method(self):
        self.topo = grid_graph(3, 3)
        self.inputs = {u: u + 1 for u in self.topo.nodes()}
        self.expected = sum(self.inputs.values())
        self.policy = ChurnPolicy(transport=TransportConfig(retransmits=3))

    def test_blip_is_exact_in_one_epoch(self):
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r6", root=self.topo.root
        )
        out = run_with_churn(
            "unknown_f",
            self.topo,
            self.inputs,
            ch,
            rng=random.Random(7),
            policy=self.policy,
        )
        assert out.result == self.expected
        assert out.partial.certified
        assert len(out.epochs) == 1
        assert sum(t.rejoins_durable for t in out.transports) == 1

    def test_protocol_cc_unchanged_by_churn(self):
        """Every repair byte is overhead: the blipped run's protocol CC
        equals the clean transport baseline bit-for-bit."""
        clean = run_with_churn(
            "unknown_f",
            self.topo,
            self.inputs,
            ChurnSchedule(),
            rng=random.Random(7),
            policy=self.policy,
        )
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r6", root=self.topo.root
        )
        blip = run_with_churn(
            "unknown_f",
            self.topo,
            self.inputs,
            ch,
            rng=random.Random(7),
            policy=self.policy,
        )
        assert blip.stats.max_bits == clean.stats.max_bits
        assert blip.stats.max_overhead_bits > clean.stats.max_overhead_bits

    def test_exactly_once_nonce_per_rejoined_node(self):
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r6", root=self.topo.root
        )
        oracle = DoubleCountOracle(self.inputs, mode="strict")
        out = run_with_churn(
            "unknown_f",
            self.topo,
            self.inputs,
            ch,
            rng=random.Random(7),
            policy=self.policy,
            oracle=oracle,
        )
        booked = {node: inc for node, inc, _v in out.ledger.as_entries()}
        assert set(booked) == set(self.topo.nodes())
        assert oracle.double_counts == 0
        assert oracle.lost_contributions == 0

    def test_permanent_crash_certifies_partial_or_exact(self):
        ch = ChurnSchedule.from_spec("5:crash@r3", root=self.topo.root)
        out = run_with_churn(
            "unknown_f",
            self.topo,
            self.inputs,
            ch,
            rng=random.Random(7),
            policy=self.policy,
        )
        assert out.partial.certified
        covered = set(out.partial.coverage or self.topo.nodes())
        assert out.result == sum(
            self.inputs[u] for u in covered
        )


class TestAmnesiacChurn:
    def setup_method(self):
        self.topo = grid_graph(3, 3)
        self.inputs = {u: u + 1 for u in self.topo.nodes()}
        self.expected = sum(self.inputs.values())
        self.policy = ChurnPolicy(transport=TransportConfig(retransmits=3))

    def test_snapshot_recovery_makes_amnesiac_exact(self):
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r9:amnesiac", root=self.topo.root
        )
        out = run_with_churn(
            "unknown_f",
            self.topo,
            self.inputs,
            ch,
            rng=random.Random(7),
            policy=self.policy,
        )
        assert out.result == self.expected
        assert out.partial.certified
        assert 5 in out.recovered
        assert out.partial.extra["handshakes"] >= 1
        # The recovered node is booked under its post-revive incarnation.
        incs = {n: i for n, i, _v in out.ledger.as_entries()}
        assert incs[5] == 1

    def test_without_snapshots_contribution_is_honestly_lost(self):
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r9:amnesiac", root=self.topo.root
        )
        policy = ChurnPolicy(
            transport=TransportConfig(retransmits=3), snapshots=False
        )
        oracle = DoubleCountOracle(self.inputs, mode="record")
        out = run_with_churn(
            "unknown_f",
            self.topo,
            self.inputs,
            ch,
            rng=random.Random(7),
            policy=policy,
            oracle=oracle,
        )
        assert 5 in out.lost
        # Never silently wrong: either uncertified, or certified over a
        # coverage that excludes the lost node — and the oracle agrees.
        if out.partial.certified:
            assert 5 not in set(out.partial.coverage or ())
            assert oracle.double_counts == 0

    def test_neutral_input_rejects_count(self):
        from repro.core.caaf import COUNT, MAX, SUM

        assert neutral_input(SUM) == 0
        assert neutral_input(MAX) is not None
        with pytest.raises(ValueError):
            neutral_input(COUNT)


class TestEpochRetry:
    """A tainted epoch is discarded wholesale and rerun."""

    def test_drop_faults_trigger_discard_then_exact(self):
        from repro.cli import parse_topology
        from repro.exec.scheduler import WorkUnit

        topo = parse_topology("grid:3x3", 0)
        unit = WorkUnit(
            protocol="unknown_f",
            topology=topo,
            seed=1,
            schedule={"kind": "none"},
            inject="drop=0.02",
            monitors={"mode": "record", "recovery": False},
            churn={
                "kind": "random",
                "rate": 0.05,
                "horizon": 168,
                "amnesiac": 0.0,
                "flap_rate": 0.0,
            },
        )
        record = execute_unit(unit)
        assert record.correct
        assert record.extra["certified"]
        assert record.extra["epochs_discarded"] >= 1
        assert record.extra["double_counted"] == 0
        assert record.extra["lost_contributions"] == 0

    def test_budget_exhaustion_stays_certified_partial(self):
        topo = grid_graph(3, 3)
        inputs = {u: u + 1 for u in topo.nodes()}
        # The amnesiac node revives far beyond a single epoch's horizon,
        # so a one-epoch budget must stop while it is still pending.
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r900:amnesiac", root=topo.root
        )
        policy = ChurnPolicy(
            transport=TransportConfig(retransmits=3), max_epochs=1
        )
        out = run_with_churn(
            "unknown_f",
            topo,
            inputs,
            ch,
            rng=random.Random(7),
            policy=policy,
        )
        assert out.partial.certified
        assert "budget exhausted" in out.partial.reason
        assert 5 not in set(out.partial.coverage or ())
        assert out.result == sum(
            inputs[u] for u in set(out.partial.coverage or ())
        )


# --------------------------------------------------------------------- #
# Flap windows against the f budget (per-transition semantics).
# --------------------------------------------------------------------- #


class TestFlapBudget:
    def test_same_link_flapping_twice_charges_two_events(self):
        topo = grid_graph(3, 3)
        inputs = {u: 1 for u in topo.nodes()}
        monitor = FBudgetMonitor(topo, f=1, mode="record")
        ch = ChurnSchedule.from_spec(
            "flap:1-2@r2-r4,flap:1-2@r6-r8", root=topo.root
        )
        record = run_protocol(
            "unknown_f",
            topo,
            inputs,
            rng=random.Random(3),
            churn=ch,
            churn_policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
            monitors=(monitor,),
        )
        assert monitor.events_used == 2
        assert any("exceed the budget" in e.message for e in monitor.violations)
        assert record.result is not None

    def test_single_flap_within_budget_is_clean(self):
        topo = grid_graph(3, 3)
        inputs = {u: 1 for u in topo.nodes()}
        monitor = FBudgetMonitor(topo, f=1, mode="strict")
        run_protocol(
            "unknown_f",
            topo,
            inputs,
            rng=random.Random(3),
            churn=ChurnSchedule.from_spec("flap:1-2@r2-r4", root=topo.root),
            churn_policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
            monitors=(monitor,),
        )
        assert monitor.events_used == 1
        assert not monitor.violations


# --------------------------------------------------------------------- #
# The oracle itself.
# --------------------------------------------------------------------- #


class TestDoubleCountOracle:
    def test_double_booking_is_a_double_count(self):
        oracle = DoubleCountOracle({1: 5, 2: 7}, mode="record")
        oracle.grade_ledger(
            [(1, 0, 5), (2, 0, 7)], double_booked=[(1, 1, 5)]
        )
        assert oracle.double_counts == 1
        assert oracle.violations[0].rule == "double-count"

    def test_misbooked_value_is_a_double_count(self):
        oracle = DoubleCountOracle({1: 5}, mode="record")
        oracle.grade_ledger([(1, 0, 6)])
        assert oracle.double_counts == 1

    def test_certified_shortfall_is_lost_contribution(self):
        oracle = DoubleCountOracle({1: 5, 2: 7}, mode="record")
        oracle.grade_final(5, {1, 2}, certified=True)
        assert oracle.lost_contributions == 1
        assert oracle.violations[0].rule == "lost-contribution"

    def test_recoverable_node_outside_coverage_is_lost(self):
        oracle = DoubleCountOracle({1: 5, 2: 7}, mode="record")
        oracle.grade_final(5, {1}, certified=True, recoverable={2})
        assert oracle.lost_contributions == 1

    def test_uncertified_claims_are_not_graded(self):
        oracle = DoubleCountOracle({1: 5, 2: 7}, mode="record")
        oracle.grade_final(99, {1, 2}, certified=False)
        assert oracle.double_counts == 0
        assert oracle.lost_contributions == 0


# --------------------------------------------------------------------- #
# Runner / engine / sweep integration.
# --------------------------------------------------------------------- #


class TestChurnIntegration:
    def setup_method(self):
        self.topo = grid_graph(3, 3)
        self.inputs = {u: u + 1 for u in self.topo.nodes()}

    def test_runner_routes_churn_and_reports_oracle_fields(self):
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r9:amnesiac", root=self.topo.root
        )
        record = run_protocol(
            "unknown_f",
            self.topo,
            self.inputs,
            rng=random.Random(7),
            churn=ch,
            churn_policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
        )
        assert record.correct
        assert record.extra["double_counted"] == 0
        assert record.extra["lost_contributions"] == 0
        assert record.extra["epochs"] >= 1

    def test_churn_excludes_recovery_and_integrity(self):
        from repro.resilience import RecoveryPolicy

        ch = ChurnSchedule(root=self.topo.root)
        with pytest.raises(ValueError, match="immortal root"):
            run_protocol(
                "unknown_f",
                self.topo,
                self.inputs,
                churn=ch,
                recovery=RecoveryPolicy.default(),
            )
        with pytest.raises(ValueError, match="integrity"):
            run_protocol(
                "unknown_f",
                self.topo,
                self.inputs,
                churn=ch,
                integrity="checksum",
            )

    def test_spec_string_coerced_by_runner(self):
        record = run_protocol(
            "unknown_f",
            self.topo,
            self.inputs,
            rng=random.Random(7),
            churn="5:crash@r3,5:revive@r6",
            churn_policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
        )
        assert record.correct

    def test_serial_and_engine_derive_identical_churn(self):
        spec = {
            "kind": "random",
            "rate": 0.2,
            "horizon": 60,
            "amnesiac": 0.5,
            "flap_rate": 0.1,
        }
        for seed in (0, 3, 9):
            serial = materialize_churn(
                spec, self.topo, self._seeded(seed)
            )
            units = point_units(
                "unknown_f",
                self.topo,
                [seed],
                schedule_spec={"kind": "none"},
                churn=spec,
            )
            rng = random.Random(seed)
            from repro.analysis.runner import make_inputs
            from repro.exec.scheduler import build_churn, build_schedule

            make_inputs(self.topo, rng)
            build_schedule(units[0], self.topo, rng)
            engine = build_churn(units[0], self.topo, rng)
            assert engine.cycles == serial.cycles
            assert engine.flaps == serial.flaps

    def _seeded(self, seed):
        """Consume rng exactly as the serial sweep does before churn."""
        from repro.analysis.runner import make_inputs
        from repro.adversary.schedule import FailureSchedule

        rng = random.Random(seed)
        make_inputs(self.topo, rng)
        return rng

    def test_sweep_rows_carry_exactly_once_columns(self):
        point = run_point(
            "unknown_f",
            self.topo,
            range(3),
            coords={"churn": 0.1},
            churn={
                "kind": "random",
                "rate": 0.1,
                "horizon": 60,
                "amnesiac": 0.25,
                "flap_rate": 0.0,
            },
        )
        assert point.churn_rows == 3
        assert point.double_counts == 0
        assert point.lost_contributions == 0
        row = point.as_dict()
        assert "exact_rows" in row and "double_counts" in row


# --------------------------------------------------------------------- #
# Record / replay of churn runs (bundle v3).
# --------------------------------------------------------------------- #


class TestChurnBundles:
    def test_flap_budget_failure_captures_and_replays(self, tmp_path):
        from repro.analysis.runner import safe_run_protocol
        from repro.sim.monitors import standard_monitors
        from repro.sim.replay import replay_bundle

        topo = grid_graph(3, 3)
        inputs = {u: u + 1 for u in topo.nodes()}
        ch = ChurnSchedule.from_spec(
            "flap:1-2@r2-r4,flap:1-2@r6-r8", root=topo.root
        )
        monitors = standard_monitors(
            topo, inputs, f=1, mode="record", churn=True
        )
        record = safe_run_protocol(
            "unknown_f",
            topo,
            inputs,
            seed=5,
            rng=random.Random(5),
            f=1,
            monitors=monitors,
            capture_dir=str(tmp_path),
            churn=ch,
            churn_policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
        )
        assert record.extra.get("violations"), "f=1 must flag two flaps"
        bundle = record.extra.get("bundle")
        assert bundle, "a failing churn run must capture a bundle"
        outcome = replay_bundle(bundle)
        assert outcome.reproduced

    def test_bundle_records_churn_params(self, tmp_path):
        from repro.analysis.runner import safe_run_protocol
        from repro.sim.monitors import standard_monitors
        from repro.sim.recorder import ExecutionRecord

        topo = grid_graph(3, 3)
        inputs = {u: u + 1 for u in topo.nodes()}
        ch = ChurnSchedule.from_spec(
            "flap:1-2@r2-r4,flap:1-2@r6-r8", root=topo.root
        )
        record = safe_run_protocol(
            "unknown_f",
            topo,
            inputs,
            seed=5,
            rng=random.Random(5),
            f=1,
            monitors=standard_monitors(
                topo, inputs, f=1, mode="record", churn=True
            ),
            capture_dir=str(tmp_path),
            churn=ch,
            churn_policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
        )
        bundle = ExecutionRecord.load(record.extra["bundle"])
        assert bundle.version >= 3
        params = bundle.params
        assert params["churn"]["flaps"] == [[1, 2, 2, 4], [1, 2, 6, 8]]
        assert params["churn_policy"]["transport"]["retransmits"] == 3


# --------------------------------------------------------------------- #
# Properties.
# --------------------------------------------------------------------- #

if HAVE_HYPOTHESIS:

    _topo = grid_graph(3, 3)
    _non_root = sorted(set(_topo.nodes()) - {_topo.root})

    @st.composite
    def durable_churn(draw):
        """1-2 durable crash/revive cycles on distinct non-root nodes."""
        nodes = draw(
            st.lists(
                st.sampled_from(_non_root),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        cycles = {}
        for node in nodes:
            crash = draw(st.integers(min_value=2, max_value=12))
            gap = draw(st.integers(min_value=1, max_value=8))
            cycles[node] = [(crash, crash + gap, REJOIN_DURABLE)]
        return ChurnSchedule(cycles=cycles, root=_topo.root)

    @st.composite
    def mixed_churn(draw):
        """Cycles in either mode, possibly never reviving."""
        nodes = draw(
            st.lists(
                st.sampled_from(_non_root),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        cycles = {}
        for node in nodes:
            crash = draw(st.integers(min_value=2, max_value=12))
            revives = draw(st.booleans())
            mode = draw(st.sampled_from([REJOIN_DURABLE, REJOIN_AMNESIAC]))
            gap = draw(st.integers(min_value=1, max_value=10))
            cycles[node] = [(crash, crash + gap if revives else None, mode)]
        return ChurnSchedule(cycles=cycles, root=_topo.root)

    class TestChurnProperties:
        @settings(
            max_examples=12,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(churn=durable_churn(), seed=st.integers(0, 2**16))
        def test_durable_churn_within_budget_is_exact(self, churn, seed):
            """Durable rejoins never cost a contribution: the SUM is
            exact and every node books exactly one nonce."""
            inputs = {u: (u * 3 + seed) % 17 + 1 for u in _topo.nodes()}
            oracle = DoubleCountOracle(inputs, mode="strict")
            out = run_with_churn(
                "unknown_f",
                _topo,
                inputs,
                churn,
                rng=random.Random(seed),
                policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
                oracle=oracle,
            )
            assert out.result == sum(inputs.values())
            assert out.partial.certified
            assert oracle.double_counts == 0
            assert oracle.lost_contributions == 0

        @settings(
            max_examples=12,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(churn=mixed_churn(), seed=st.integers(0, 2**16))
        def test_mixed_churn_is_never_silently_wrong(self, churn, seed):
            """Exact, or a certified partial whose value equals the
            aggregate over its claimed coverage — never a wrong total."""
            inputs = {u: (u * 5 + seed) % 23 + 1 for u in _topo.nodes()}
            oracle = DoubleCountOracle(inputs, mode="strict")
            out = run_with_churn(
                "unknown_f",
                _topo,
                inputs,
                churn,
                rng=random.Random(seed),
                policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
                oracle=oracle,
            )
            assert oracle.double_counts == 0
            if out.partial.certified and out.result is not None:
                covered = set(out.partial.coverage or ())
                assert out.result == sum(inputs[u] for u in covered)
