"""Unit tests for the flood primitive: dedup, same-round forwarding, reach."""

from typing import Sequence

import pytest

from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.sim.flooding import FloodManager
from repro.sim.message import Envelope, Part
from repro.sim.network import Network
from repro.sim.node import NodeHandler


class Flooder(NodeHandler):
    """Forwards all floods; optionally initiates one at a given round."""

    def __init__(self, initiate_part=None, initiate_round=None):
        self.floods = FloodManager({"f"})
        self.initiate_part = initiate_part
        self.initiate_round = initiate_round
        self.first_seen = {}

    def on_round(self, rnd: int, inbox: Sequence[Envelope]):
        for env in self.floods.absorb(inbox, rnd):
            self.first_seen.setdefault(env.part.content_key, rnd)
        if self.initiate_part is not None and rnd == self.initiate_round:
            self.floods.initiate(self.initiate_part, rnd)
        return self.floods.emit()


class TestFloodManager:
    def test_absorb_queues_first_receipt(self):
        fm = FloodManager({"f"})
        part = Part("f", (1,), 2)
        fresh = fm.absorb([Envelope(0, part)], rnd=3)
        assert len(fresh) == 1
        assert fm.emit() == [part]

    def test_absorb_ignores_duplicates(self):
        fm = FloodManager({"f"})
        part = Part("f", (1,), 2)
        fm.absorb([Envelope(0, part)])
        fm.emit()
        assert fm.absorb([Envelope(2, part)]) == []
        assert fm.emit() == []

    def test_duplicate_from_different_source_ignored(self):
        # The paper: "potentially initiated by a different source".
        fm = FloodManager({"f"})
        fm.absorb([Envelope(0, Part("f", (1,), 2))])
        fm.emit()
        assert fm.absorb([Envelope(9, Part("f", (1,), 2))]) == []

    def test_non_flood_kinds_pass_through_untouched(self):
        fm = FloodManager({"f"})
        assert fm.absorb([Envelope(0, Part("other", (), 1))]) == []
        assert fm.emit() == []

    def test_initiate_deduplicates(self):
        fm = FloodManager({"f"})
        part = Part("f", (1,), 2)
        assert fm.initiate(part)
        assert not fm.initiate(part)
        assert fm.emit() == [part]

    def test_initiate_after_absorb_is_noop(self):
        # A witness whose determination already arrived only participates in
        # one flooding (Section 4.3).
        fm = FloodManager({"f"})
        part = Part("f", (1,), 2)
        fm.absorb([Envelope(0, part)])
        assert not fm.initiate(part)
        assert fm.emit() == [part]  # forwarded once, not twice

    def test_initiate_rejects_unregistered_kind(self):
        fm = FloodManager({"f"})
        with pytest.raises(ValueError):
            fm.initiate(Part("other", (), 1))

    def test_has_seen_and_contents(self):
        fm = FloodManager({"f"})
        fm.absorb([Envelope(0, Part("f", (1,), 2))])
        fm.initiate(Part("f", (2,), 2))
        assert fm.has_seen("f", (1,))
        assert fm.has_seen("f", (2,))
        assert sorted(fm.contents("f")) == [(1,), (2,)]

    def test_first_seen_round_recorded(self):
        fm = FloodManager({"f"})
        fm.absorb([Envelope(0, Part("f", (1,), 2))], rnd=7)
        assert fm.first_seen_round[("f", (1,))] == 7


class TestFloodPropagation:
    def test_flood_reaches_distance_x_at_round_x_after_initiation(self):
        # Same-round forwarding: initiation at round r reaches distance x at
        # round r + x — the timing the paper's wave arguments rely on.
        topo = path_graph(6)
        part = Part("f", ("hello",), 3)
        nodes = {0: Flooder(part, initiate_round=1)}
        nodes.update({i: Flooder() for i in range(1, 6)})
        net = Network(topo.adjacency, nodes)
        net.run(7, stop_on_output=False)
        for i in range(1, 6):
            assert nodes[i].first_seen[part.content_key] == 1 + i

    def test_flood_reaches_every_node_within_diameter(self):
        topo = grid_graph(4, 5)
        part = Part("f", ("x",), 3)
        nodes = {0: Flooder(part, initiate_round=1)}
        nodes.update({u: Flooder() for u in topo.nodes() if u != 0})
        net = Network(topo.adjacency, nodes)
        net.run(topo.diameter + 1, stop_on_output=False)
        for u in topo.non_root_nodes():
            assert part.content_key in nodes[u].first_seen

    def test_each_node_forwards_each_content_once(self):
        topo = cycle_graph(8)
        part = Part("f", ("x",), 3)
        nodes = {0: Flooder(part, initiate_round=1)}
        nodes.update({u: Flooder() for u in topo.nodes() if u != 0})
        net = Network(topo.adjacency, nodes)
        net.run(12, stop_on_output=False)
        # One content, forwarded once per node -> parts_sent[u] == 1.
        for u in topo.nodes():
            assert net.stats.parts_sent.get(u, 0) == 1

    def test_two_simultaneous_floods_both_reach_everyone(self):
        topo = cycle_graph(9)
        a, b = Part("f", ("a",), 3), Part("f", ("b",), 3)
        nodes = {
            0: Flooder(a, initiate_round=1),
            4: Flooder(b, initiate_round=1),
        }
        nodes.update(
            {u: Flooder() for u in topo.nodes() if u not in (0, 4)}
        )
        net = Network(topo.adjacency, nodes)
        net.run(12, stop_on_output=False)
        for u in topo.nodes():
            seen = nodes[u].first_seen if u not in (0, 4) else None
            if seen is not None:
                assert a.content_key in seen and b.content_key in seen

    def test_flood_does_not_cross_crashed_cut(self):
        topo = path_graph(5)
        part = Part("f", ("x",), 3)
        nodes = {0: Flooder(part, initiate_round=1)}
        nodes.update({i: Flooder() for i in range(1, 5)})
        net = Network(topo.adjacency, nodes, crash_rounds={2: 1})
        net.run(8, stop_on_output=False)
        assert part.content_key in nodes[1].first_seen
        assert part.content_key not in nodes[3].first_seen
        assert part.content_key not in nodes[4].first_seen
