"""Property tests for the concrete wire codec (random payloads/params)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.core.codec import decode_part, encode_part, encoding_fits_declared_size
from repro.core.params import ProtocolParams

SETTINGS = dict(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def params_strategy(draw):
    n = draw(st.integers(2, 2000))
    return ProtocolParams(
        n_nodes=n,
        root=0,
        diameter=draw(st.integers(1, 20)),
        c=draw(st.integers(1, 3)),
        t=draw(st.integers(0, 10)),
        max_input=draw(st.integers(0, 5000)),
    )


class TestCodecProperties:
    @settings(**SETTINGS)
    @given(p=params_strategy(), data=st.data())
    def test_flooded_psum_round_trip(self, p, data):
        source = data.draw(st.integers(0, p.n_nodes - 1))
        psum = data.draw(st.integers(0, max(0, (1 << p.psum_bits) - 1)))
        sender = data.draw(st.integers(0, p.n_nodes - 1))
        part = wire.flooded_psum(p, source, psum)
        got = decode_part(p, encode_part(p, sender, part))
        assert got == (sender, "flooded_psum", (source, psum))

    @settings(**SETTINGS)
    @given(p=params_strategy(), data=st.data())
    def test_tree_construct_round_trip(self, p, data):
        level = data.draw(st.integers(0, p.cd))
        chain_len = data.draw(st.integers(0, 2 * p.t))
        ancestors = tuple(
            data.draw(st.integers(0, p.n_nodes - 1)) for _ in range(chain_len)
        )
        part = wire.tree_construct(p, level, ancestors)
        sender = data.draw(st.integers(0, p.n_nodes - 1))
        got_sender, kind, payload = decode_part(p, encode_part(p, sender, part))
        assert (got_sender, kind) == (sender, "tree_construct")
        assert payload == (level, ancestors)

    @settings(**SETTINGS)
    @given(p=params_strategy(), data=st.data())
    def test_failed_parent_round_trip(self, p, data):
        ids = [data.draw(st.integers(0, p.n_nodes - 1)) for _ in range(3)]
        depth = data.draw(st.integers(0, p.cd))
        part = wire.failed_parent(p, ids[0], depth, ids[1])
        got = decode_part(p, encode_part(p, ids[2], part))
        assert got == (ids[2], "failed_parent", (ids[0], depth, ids[1]))

    @settings(**SETTINGS)
    @given(p=params_strategy(), data=st.data())
    def test_every_encoding_fits_declared_size(self, p, data):
        sender = data.draw(st.integers(0, p.n_nodes - 1))
        parts = [
            wire.ack(p, sender),
            wire.aggregation(
                p, data.draw(st.integers(0, max(0, (1 << p.psum_bits) - 1))), 0
            ),
            wire.critical_failure(p, sender),
            wire.determination(p, wire.KEEP, sender),
            wire.agg_abort(p),
            wire.detect_failed_parent(p),
            wire.failed_child(p, sender),
            wire.veri_overflow(p),
        ]
        for part in parts:
            assert encoding_fits_declared_size(p, sender, part), part.kind
