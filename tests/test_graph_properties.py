"""Graph property computations, cross-validated against networkx."""

import random

import networkx as nx
import pytest

from repro.graphs import properties
from repro.graphs.generators import gnp_connected, grid_graph, path_graph


def to_nx(adjacency):
    g = nx.Graph()
    g.add_nodes_from(adjacency)
    for u, vs in adjacency.items():
        g.add_edges_from((u, v) for v in vs)
    return g


class TestBfsLevels:
    def test_path_levels(self):
        adj = path_graph(5).adjacency
        assert properties.bfs_levels(adj, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_excluded_nodes_block(self):
        adj = path_graph(5).adjacency
        levels = properties.bfs_levels(adj, 0, excluded={2})
        assert set(levels) == {0, 1}

    def test_excluded_source_gives_empty(self):
        adj = path_graph(3).adjacency
        assert properties.bfs_levels(adj, 0, excluded={0}) == {}

    def test_matches_networkx(self):
        topo = gnp_connected(30, rng=random.Random(3))
        ours = properties.bfs_levels(topo.adjacency, 0)
        theirs = nx.single_source_shortest_path_length(to_nx(topo.adjacency), 0)
        assert ours == dict(theirs)


class TestConnectivity:
    def test_connected_graph(self):
        assert properties.is_connected(path_graph(4).adjacency)

    def test_disconnected_graph(self):
        assert not properties.is_connected({0: [1], 1: [0], 2: []})

    def test_empty_graph_is_connected(self):
        assert properties.is_connected({})

    def test_component_of(self):
        adj = {0: [1], 1: [0], 2: [3], 3: [2]}
        assert properties.component_of(adj, 0) == {0, 1}
        assert properties.component_of(adj, 2) == {2, 3}

    def test_component_respects_exclusions(self):
        adj = path_graph(5).adjacency
        assert properties.component_of(adj, 0, excluded={2}) == {0, 1}


class TestDiameter:
    @pytest.mark.parametrize(
        "topo,expected",
        [
            (path_graph(6), 5),
            (grid_graph(3, 3), 4),
        ],
    )
    def test_known_diameters(self, topo, expected):
        assert properties.diameter(topo.adjacency) == expected

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(5):
            topo = gnp_connected(25, rng=random.Random(seed))
            assert properties.diameter(topo.adjacency) == nx.diameter(
                to_nx(topo.adjacency)
            )

    def test_induced_subgraph_diameter(self):
        adj = path_graph(6).adjacency
        assert properties.diameter(adj, nodes={0, 1, 2}) == 2

    def test_disconnected_subgraph_raises(self):
        adj = path_graph(6).adjacency
        with pytest.raises(ValueError):
            properties.diameter(adj, nodes={0, 5})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            properties.diameter({}, nodes=set())

    def test_eccentricity(self):
        adj = path_graph(5).adjacency
        assert properties.eccentricity(adj, 0) == 4
        assert properties.eccentricity(adj, 2) == 2


class TestEdgesAndValidation:
    def test_edge_count(self):
        assert properties.edge_count(grid_graph(3, 3).adjacency) == 12

    def test_edges_sorted_pairs(self):
        edges = properties.edges(path_graph(3).adjacency)
        assert edges == [(0, 1), (1, 2)]

    def test_subgraph_without(self):
        sub = properties.subgraph_without(path_graph(4).adjacency, {1})
        assert set(sub) == {0, 2, 3}
        assert sub[0] == []
        assert sub[2] == [3]

    def test_validate_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            properties.validate_undirected({0: [0]})

    def test_validate_rejects_asymmetry(self):
        with pytest.raises(ValueError, match="not symmetric"):
            properties.validate_undirected({0: [1], 1: []})

    def test_validate_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            properties.validate_undirected({0: [1, 1], 1: [0]})

    def test_validate_rejects_dangling_edge(self):
        with pytest.raises(ValueError, match="outside"):
            properties.validate_undirected({0: [7]})
