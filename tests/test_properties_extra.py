"""Additional hypothesis property tests across the substrate modules."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.schedule import FailureSchedule
from repro.analysis.cost_model import predict_agg_costs, within_paper_budget
from repro.core.caaf import COUNT, MAX, OR, SUM
from repro.core.correctness import (
    achievable_results_exhaustive,
    correctness_interval,
)
from repro.core.params import ProtocolParams
from repro.graphs import Topology, path_graph
from repro.lowerbound.timing_encoding import (
    beacons_needed,
    decode_by_timing,
    encode_by_timing,
)
from repro.sim.flooding import FloodManager
from repro.sim.message import Envelope, Part

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestFloodManagerProperties:
    @settings(**SETTINGS)
    @given(
        events=st.lists(
            st.tuples(
                st.booleans(),  # True = initiate, False = absorb
                st.integers(0, 5),  # content id
                st.integers(0, 9),  # sender
            ),
            max_size=40,
        )
    )
    def test_each_content_emitted_at_most_once(self, events):
        fm = FloodManager({"f"})
        emitted = []
        for initiate, content, sender in events:
            part = Part("f", (content,), 3)
            if initiate:
                fm.initiate(part)
            else:
                fm.absorb([Envelope(sender, part)])
            emitted.extend(fm.emit())
        keys = [p.content_key for p in emitted]
        assert len(keys) == len(set(keys))

    @settings(**SETTINGS)
    @given(
        contents=st.lists(st.integers(0, 10), min_size=1, max_size=30)
    )
    def test_everything_seen_is_known(self, contents):
        fm = FloodManager({"f"})
        for content in contents:
            fm.absorb([Envelope(0, Part("f", (content,), 1))])
        fm.emit()
        for content in set(contents):
            assert fm.has_seen("f", (content,))
            assert ("f", (content,)) in fm.known


class TestCorrectnessProperties:
    @settings(**SETTINGS)
    @given(
        values=st.lists(st.integers(0, 100), min_size=1, max_size=8),
        survivor_mask=st.lists(st.booleans(), min_size=1, max_size=8),
    )
    def test_interval_endpoints_are_achievable(self, values, survivor_mask):
        inputs = {i: v for i, v in enumerate(values)}
        survivors = {
            i for i, keep in enumerate(survivor_mask[: len(values)]) if keep
        }
        survivors &= set(inputs)
        lo, hi = correctness_interval(SUM, inputs, survivors)
        achievable = achievable_results_exhaustive(SUM, inputs, survivors)
        assert lo in achievable
        assert hi in achievable
        assert all(lo <= r <= hi for r in achievable)

    @settings(**SETTINGS)
    @given(
        values=st.lists(st.integers(0, 50), min_size=1, max_size=8),
        survivor_mask=st.lists(st.booleans(), min_size=1, max_size=8),
    )
    def test_monotone_caafs_have_endpoint_intervals(self, values, survivor_mask):
        inputs = {i: v for i, v in enumerate(values)}
        survivors = {
            i for i, keep in enumerate(survivor_mask[: len(values)]) if keep
        }
        survivors &= set(inputs)
        for caaf in (SUM, COUNT, MAX, OR):
            lo, hi = correctness_interval(caaf, inputs, survivors)
            achievable = achievable_results_exhaustive(caaf, inputs, survivors)
            assert min(achievable) == lo
            assert max(achievable) == hi


class TestScheduleProperties:
    @settings(**SETTINGS)
    @given(
        crashes=st.dictionaries(
            st.integers(1, 7), st.integers(1, 200), max_size=6
        ),
        split=st.integers(1, 199),
    )
    def test_window_partition_totals(self, crashes, split):
        topo = path_graph(8)
        schedule = FailureSchedule(crashes)
        first = schedule.edge_failures_in_window(topo, 1, split)
        second = schedule.edge_failures_in_window(topo, split + 1, 10**9)
        assert first + second == schedule.edge_failures(topo)

    @settings(**SETTINGS)
    @given(
        crashes=st.dictionaries(
            st.integers(1, 7), st.integers(1, 200), max_size=6
        )
    )
    def test_failed_by_is_monotone(self, crashes):
        schedule = FailureSchedule(crashes)
        prev = set()
        for rnd in range(0, 201, 20):
            current = schedule.failed_by(rnd)
            assert prev <= current
            prev = current


class TestTimingEncodingProperties:
    @settings(**SETTINGS)
    @given(
        k=st.integers(1, 48),
        b=st.integers(2, 2048),
        data=st.data(),
    )
    def test_round_trip_everywhere(self, k, b, data):
        value = data.draw(st.integers(0, (1 << k) - 1))
        rounds = encode_by_timing(value, k, b)
        assert decode_by_timing(rounds, k, b) == value
        assert len(rounds) == beacons_needed(k, b)
        # Beacon rounds are strictly increasing across windows.
        assert rounds == sorted(rounds)


class TestCostModelProperties:
    @settings(**SETTINGS)
    @given(
        n=st.integers(2, 4096),
        d=st.integers(1, 30),
        t=st.integers(0, 40),
    )
    def test_paper_budgets_dominate_model_at_tolerable_failures(self, n, d, t):
        params = ProtocolParams(n_nodes=n, root=0, diameter=d, c=2, t=t)
        assert within_paper_budget(params, failures=t)

    @settings(**SETTINGS)
    @given(
        n=st.integers(2, 1024),
        t=st.integers(0, 16),
        f1=st.integers(0, 10),
        f2=st.integers(0, 10),
    )
    def test_model_monotone_in_failures(self, n, t, f1, f2):
        params = ProtocolParams(n_nodes=n, root=0, diameter=4, c=2, t=t)
        lo, hi = sorted((f1, f2))
        assert (
            predict_agg_costs(params, lo).total
            <= predict_agg_costs(params, hi).total
        )
