"""LaTeX rendering of experiment tables."""

import pytest

from repro.analysis.latex import (
    escape,
    format_latex_series,
    format_latex_table,
)


class TestEscape:
    def test_special_characters(self):
        assert escape("a_b") == r"a\_b"
        assert escape("100%") == r"100\%"
        assert escape("x&y") == r"x\&y"
        assert escape("{q}") == r"\{q\}"

    def test_plain_text_unchanged(self):
        assert escape("hello world") == "hello world"

    def test_backslash(self):
        assert "textbackslash" in escape("a\\b")


class TestTable:
    ROWS = [
        {"protocol": "algorithm1", "CC": 342.5, "correct": True},
        {"protocol": "brute_force", "CC": 1013, "correct": False},
    ]

    def test_structure(self):
        tex = format_latex_table(self.ROWS, caption="Costs", label="tab:cc")
        assert tex.startswith(r"\begin{table}[t]")
        assert r"\caption{Costs}" in tex
        assert r"\label{tab:cc}" in tex
        assert r"\toprule" in tex
        assert tex.rstrip().endswith(r"\end{table}")

    def test_column_alignment(self):
        tex = format_latex_table(self.ROWS)
        # protocol is text (l), CC numeric (r), correct boolean (l).
        assert r"\begin{tabular}{lrl}" in tex

    def test_booleans_render_as_marks(self):
        tex = format_latex_table(self.ROWS)
        assert r"\checkmark" in tex
        assert r"$\times$" in tex

    def test_underscores_escaped_in_cells(self):
        tex = format_latex_table(self.ROWS)
        assert r"brute\_force" in tex

    def test_no_booktabs_fallback(self):
        tex = format_latex_table(self.ROWS, booktabs=False)
        assert r"\hline" in tex
        assert r"\toprule" not in tex

    def test_column_selection(self):
        tex = format_latex_table(self.ROWS, columns=["CC"])
        assert "protocol" not in tex

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            format_latex_table([])

    def test_float_formatting_trims_zeroes(self):
        tex = format_latex_table([{"v": 2.50}])
        assert "2.5 " in tex or r"2.5 \\" in tex


class TestSeries:
    def test_series_table(self):
        tex = format_latex_series(
            [42, 84],
            {"UB": [404.8, 252.4], "LB": [2.4, 1.8]},
            caption="Figure 1",
        )
        assert "UB" in tex and "LB" in tex
        assert "404.8" in tex
        assert r"\caption{Figure 1}" in tex
