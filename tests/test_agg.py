"""AGG (Algorithm 2): tree construction, aggregation, speculative flooding,
witness selection, abort — and Theorems 3, 4, 5."""

import random

import pytest

from repro.adversary import (
    FailureSchedule,
    blocker_failures,
    chain_failures,
    predicted_tree,
    random_failures,
)
from repro.core.agg import run_agg
from repro.core.caaf import COUNT, MAX, SUM
from repro.core.correctness import is_correct_result
from repro.graphs import (
    balanced_tree,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from tests.conftest import indexed_inputs, unit_inputs


class TestTreeConstruction:
    def test_levels_match_bfs_distances(self, grid44):
        out = run_agg(grid44, unit_inputs(grid44), t=2)
        for u, node in out.nodes.items():
            assert node.state.activated
            assert node.state.level == grid44.levels[u]

    def test_parents_match_predicted_tree(self, grid44):
        out = run_agg(grid44, unit_inputs(grid44), t=2)
        parent, _ = predicted_tree(grid44)
        for u, node in out.nodes.items():
            if u != grid44.root:
                assert node.state.parent == parent[u]

    def test_children_are_inverse_of_parents(self, grid55):
        out = run_agg(grid55, unit_inputs(grid55), t=1)
        for u, node in out.nodes.items():
            for child in node.state.children:
                assert out.nodes[child].state.parent == u

    def test_ancestor_lists_follow_tree_paths(self, grid55):
        t = 3
        out = run_agg(grid55, unit_inputs(grid55), t=t)
        parent, _ = predicted_tree(grid55)
        for u, node in out.nodes.items():
            anc = node.state.ancestors
            assert anc[0] == u
            assert len(anc) == 2 * t + 1
            walker = u
            for entry in anc[1:]:
                expected = parent[walker] if parent[walker] != -1 else None
                assert entry == expected
                if expected is None:
                    break
                walker = expected

    def test_max_level_is_subtree_depth(self, path8):
        out = run_agg(path8, unit_inputs(path8), t=1)
        # On a path rooted at 0, node u's subtree reaches the far end.
        for u, node in out.nodes.items():
            assert node.state.max_level == 7

    def test_dead_before_start_never_activates(self, grid44):
        schedule = FailureSchedule({15: 1})
        out = run_agg(grid44, unit_inputs(grid44), t=4, schedule=schedule)
        assert not out.nodes[15].state.activated


class TestFailureFreeAggregation:
    @pytest.mark.parametrize("t", [0, 1, 4])
    def test_exact_sum_on_grid(self, grid44, t):
        inputs = indexed_inputs(grid44)
        out = run_agg(grid44, inputs, t=t)
        assert out.result == sum(inputs.values())
        assert not out.aborted

    def test_exact_sum_on_all_small_topologies(self, small_topologies):
        for topo in small_topologies:
            inputs = indexed_inputs(topo)
            out = run_agg(topo, inputs, t=2)
            assert out.result == sum(inputs.values()), topo.name

    def test_only_root_floods_psum_when_no_failures(self, grid55):
        out = run_agg(grid55, unit_inputs(grid55), t=2)
        root = out.nodes[grid55.root]
        assert set(root.flooded_sources) == {grid55.root}

    def test_max_caaf(self, grid44):
        inputs = {u: (u * 7) % 23 for u in grid44.nodes()}
        out = run_agg(grid44, inputs, t=1, caaf=MAX)
        assert out.result == max(inputs.values())

    def test_count_caaf(self, grid44):
        inputs = {u: 999 for u in grid44.nodes()}
        out = run_agg(grid44, inputs, t=1, caaf=COUNT)
        assert out.result == grid44.n_nodes


class TestTheorem3Complexity:
    def test_terminates_within_7cd_plus_4_rounds(self, grid44):
        out = run_agg(grid44, unit_inputs(grid44), t=1, c=2)
        assert out.stats.rounds_executed == 7 * 2 * grid44.diameter + 4

    def test_cc_within_abort_budget(self, small_topologies):
        for topo in small_topologies:
            for t in (0, 2):
                out = run_agg(topo, indexed_inputs(topo), t=t)
                budget = next(iter(out.nodes.values())).p.agg_bit_budget
                assert out.stats.max_bits <= budget + 16, (topo.name, t)

    def test_cc_grows_linearly_in_t(self, grid55):
        # O((t+1) logN): the failure-free cost is dominated by the 2t
        # ancestor ids in tree_construct.
        ccs = [
            run_agg(grid55, unit_inputs(grid55), t=t).stats.max_bits
            for t in (0, 4, 8)
        ]
        assert ccs[0] < ccs[1] < ccs[2]
        step1, step2 = ccs[1] - ccs[0], ccs[2] - ccs[1]
        assert abs(step1 - step2) <= max(step1, step2) * 0.5


class TestTheorem4UnderTolerableFailures:
    """At most t edge failures => AGG never aborts, result always correct."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_failures_grid(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        t = 6
        schedule = random_failures(
            topo, f=t, rng=rng, first_round=1, last_round=7 * 2 * topo.diameter + 4
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_agg(topo, inputs, t=t, schedule=schedule)
        assert not out.aborted
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_failures_cycle(self, seed):
        topo = cycle_graph(14)
        rng = random.Random(100 + seed)
        t = 4
        schedule = random_failures(
            topo,
            f=t,
            rng=rng,
            first_round=1,
            last_round=7 * 2 * topo.diameter + 4,
            respect_c=2,
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_agg(topo, inputs, t=t, schedule=schedule)
        assert not out.aborted
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )

    def test_single_leaf_failure_detected_as_critical(self):
        topo = balanced_tree(2, 15)
        cd = 2 * topo.diameter
        # Node 7 (a leaf in the aggregation tree) dies mid-aggregation.
        schedule = FailureSchedule({7: 2 * cd + 2})
        inputs = indexed_inputs(topo)
        out = run_agg(topo, inputs, t=2, schedule=schedule)
        root = out.nodes[topo.root]
        assert 7 in root.state.critical_failures
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )


class TestSpeculativeFlooding:
    def test_blocked_parent_triggers_descendant_floods(self):
        # Figure 3's scenario: a node and its neighbourhood die together
        # during aggregation, so descendants must flood speculatively.
        topo = grid_graph(5, 5)
        cd = 2 * topo.diameter
        # Victim 12 (the grid centre) is far from the root, so its blocked
        # descendants stay connected and must speculatively flood.
        schedule = blocker_failures(topo, f=12, victim=12, at_round=2 * cd + 2)
        inputs = indexed_inputs(topo)
        out = run_agg(topo, inputs, t=12, schedule=schedule)
        root = out.nodes[topo.root]
        assert len(root.flooded_sources) > 1  # someone besides the root flooded
        assert not out.aborted
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )

    def test_no_excessive_floods_without_failures(self, grid55):
        out = run_agg(grid55, unit_inputs(grid55), t=3)
        # Exactly one flooded psum (the root's) and one determination.
        root = out.nodes[grid55.root]
        assert len(root.flooded_sources) == 1
        assert len(root.determinations) == 1

    def test_flood_count_bounded_by_failures(self):
        topo = grid_graph(5, 5)
        cd = 2 * topo.diameter
        rng = random.Random(17)
        schedule = random_failures(
            topo, f=8, rng=rng, first_round=2 * cd + 2, last_round=4 * cd + 2
        )
        out = run_agg(topo, indexed_inputs(topo), t=8, schedule=schedule)
        root = out.nodes[topo.root]
        n_failures = schedule.edge_failures(topo)
        # "the total number of floodings is linear with the number of edge
        # failures" — allow the constant some slack.
        assert len(root.flooded_sources) <= 2 * n_failures + 1


class TestNoDoubleCounting:
    """The representative set never double counts an input."""

    @pytest.mark.parametrize("seed", range(10))
    def test_result_never_exceeds_total(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(1000 + seed)
        schedule = random_failures(
            topo, f=12, rng=rng, first_round=1, last_round=200
        )
        inputs = {u: 1 for u in topo.nodes()}
        out = run_agg(topo, inputs, t=12, schedule=schedule)
        if out.result is not None:
            assert out.result <= topo.n_nodes


class TestAbortMechanism:
    def test_aborted_run_returns_none(self):
        # t=0 with many failures on a dense graph forces the tiny budget.
        topo = grid_graph(6, 6)
        rng = random.Random(3)
        cd = 2 * topo.diameter
        schedule = random_failures(
            topo, f=20, rng=rng, first_round=2 * cd + 2, last_round=6 * cd
        )
        out = run_agg(topo, unit_inputs(topo), t=0, schedule=schedule)
        if out.aborted:
            assert out.result is None

    def test_abort_bounds_cc_even_under_heavy_failures(self):
        topo = grid_graph(6, 6)
        for seed in range(5):
            rng = random.Random(seed)
            cd = 2 * topo.diameter
            schedule = random_failures(
                topo, f=30, rng=rng, first_round=2 * cd + 2, last_round=7 * cd
            )
            out = run_agg(topo, unit_inputs(topo), t=1, schedule=schedule)
            budget = next(iter(out.nodes.values())).p.agg_bit_budget
            assert out.stats.max_bits <= budget + 16


class TestTheorem5NoLfc:
    """Without a long failure chain, AGG outputs correctly or aborts."""

    @pytest.mark.parametrize("seed", range(8))
    def test_correct_or_abort_under_scattered_failures(self, seed):
        # Scattered single-node failures cannot build a chain of t=4
        # consecutive tree ancestors.
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        t = 4
        schedule = random_failures(
            topo, f=2, rng=rng, first_round=1, last_round=300
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_agg(topo, inputs, t=t, schedule=schedule)
        assert out.aborted or is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )
