"""CAAF operators and domain-size accounting (Section 2 definitions)."""

import pytest

from repro.core.caaf import (
    ALL_CAAFS,
    AND,
    CAAF,
    COUNT,
    MAX,
    MIN,
    OR,
    SUM,
    XOR,
    bounded_min,
    by_name,
)


class TestSum:
    def test_combine(self):
        assert SUM.combine([1, 2, 3]) == 6

    def test_identity(self):
        assert SUM.combine([]) == 0

    def test_aggregate_inputs(self):
        assert SUM.aggregate_inputs([5, 7]) == 12

    def test_value_bits_scale_with_n_times_max(self):
        assert SUM.value_bits_for(100, 100) >= 13  # 10^4 needs 14 bits

    def test_monotone(self):
        assert SUM.monotone


class TestCount:
    def test_counts_nodes_not_values(self):
        assert COUNT.aggregate_inputs([17, 0, 99]) == 3

    def test_value_bits_scale_with_n_only(self):
        assert COUNT.value_bits_for(1000, 10**9) == COUNT.value_bits_for(1000, 1)


class TestMaxMin:
    def test_max(self):
        assert MAX.aggregate_inputs([3, 9, 1]) == 9

    def test_max_identity_for_nonnegative(self):
        assert MAX.combine([]) == 0

    def test_min(self):
        assert MIN.aggregate_inputs([3, 9, 1]) == 1

    def test_bounded_min_identity(self):
        m = bounded_min(100)
        assert m.combine([]) == 100
        assert m.aggregate_inputs([42, 77]) == 42

    def test_max_bits_ignore_n(self):
        assert MAX.value_bits_for(10**6, 255) == 8


class TestBooleanOps:
    def test_or(self):
        assert OR.aggregate_inputs([0, 0, 5]) == 1
        assert OR.aggregate_inputs([0, 0]) == 0

    def test_and(self):
        assert AND.aggregate_inputs([1, 1, 1]) == 1
        assert AND.aggregate_inputs([1, 0, 1]) == 0

    def test_xor_parity(self):
        assert XOR.aggregate_inputs([1, 1, 1]) == 1
        assert XOR.aggregate_inputs([1, 3, 1]) == 1  # prepared to parity bits
        assert XOR.aggregate_inputs([1, 1]) == 0

    def test_xor_not_monotone(self):
        assert not XOR.monotone

    def test_single_bit_domains(self):
        for caaf in (OR, AND, XOR):
            assert caaf.value_bits_for(1000, 1000) == 1


class TestAssociativityCommutativity:
    """The defining CAAF laws, exercised over concrete operand triples."""

    @pytest.mark.parametrize("caaf", ALL_CAAFS, ids=lambda c: c.name)
    def test_commutative(self, caaf):
        for a, b in [(0, 1), (3, 7), (12, 12)]:
            assert caaf.op(a, b) == caaf.op(b, a)

    @pytest.mark.parametrize("caaf", ALL_CAAFS, ids=lambda c: c.name)
    def test_associative(self, caaf):
        for a, b, c in [(0, 1, 2), (5, 5, 5), (9, 2, 7)]:
            assert caaf.op(caaf.op(a, b), c) == caaf.op(a, caaf.op(b, c))

    @pytest.mark.parametrize("caaf", [SUM, COUNT, MAX, OR, XOR], ids=lambda c: c.name)
    def test_identity_is_neutral(self, caaf):
        for v in (0, 1, 13):
            assert caaf.op(caaf.identity, v) == v

    @pytest.mark.parametrize("caaf", ALL_CAAFS, ids=lambda c: c.name)
    def test_order_invariance_of_combine(self, caaf):
        values = [caaf.prepare(v) for v in (4, 1, 9, 0, 7)]
        assert caaf.combine(values) == caaf.combine(list(reversed(values)))


class TestRegistry:
    def test_by_name(self):
        assert by_name("SUM") is SUM
        assert by_name("MAX") is MAX

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("MEDIAN")  # MEDIAN is not a CAAF (Section 2)

    def test_repr(self):
        assert "SUM" in repr(SUM)
