"""The full matrix: topology families x adversary families x protocols.

A final integration sweep asserting the library's one non-negotiable
invariant — zero-error correctness — across every combination the suite
ships, with model validation on every cell.  Sizes are kept small so the
whole matrix stays fast.
"""

import random

import pytest

from repro.adversary import (
    FailureSchedule,
    blocker_failures,
    random_failures,
    spread_failures,
    targeted_failures,
)
from repro.analysis import run_protocol
from repro.graphs import (
    balanced_tree,
    cluster_line_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    random_geometric,
)
from repro.sim.validation import validate_model

TOPOLOGIES = [
    grid_graph(4, 4),
    cycle_graph(12),
    balanced_tree(2, 15),
    hypercube_graph(4),
    cluster_line_graph(4, 4),
    random_geometric(18, rng=random.Random(3)),
]

F, B = 4, 60


def adversary_menu(topo, seed):
    rng = random.Random(seed)
    horizon = B * topo.diameter
    menu = {
        "none": FailureSchedule(),
        "random": random_failures(topo, F, rng, last_round=horizon),
        "spread": spread_failures(topo, F, rng, horizon=horizon),
        "targeted": targeted_failures(topo, F, at_round=horizon // 3),
    }
    victim = next(
        (u for u in topo.non_root_nodes() if topo.degree(u) <= F), None
    )
    if victim is not None:
        menu["blocker"] = blocker_failures(
            topo, F, victim=victim, at_round=max(1, horizon // 4)
        )
    return menu


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
@pytest.mark.parametrize("adversary", ["none", "random", "spread", "targeted"])
def test_algorithm1_matrix(topo, adversary):
    schedule = adversary_menu(topo, seed=11)[adversary]
    rng = random.Random(17)
    inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
    violations = validate_model(topo, inputs=inputs, schedule=schedule, f=F, b=B)
    assert not violations, violations
    record = run_protocol(
        "algorithm1",
        topo,
        inputs,
        schedule=schedule,
        f=F,
        b=B,
        rng=random.Random(23),
        strict=True,
    )
    assert record.correct, (topo.name, adversary, record.result)
    assert record.flooding_rounds <= B


@pytest.mark.parametrize("topo", TOPOLOGIES[:4], ids=lambda t: t.name)
@pytest.mark.parametrize("protocol", ["bruteforce", "folklore", "unknown_f"])
def test_other_protocols_matrix(topo, protocol):
    schedule = adversary_menu(topo, seed=29)["random"]
    rng = random.Random(31)
    inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
    record = run_protocol(
        protocol,
        topo,
        inputs,
        schedule=schedule,
        f=F if protocol == "folklore" else None,
        rng=random.Random(37),
    )
    assert record.correct, (topo.name, protocol, record.result)


@pytest.mark.parametrize("topo", TOPOLOGIES[:3], ids=lambda t: t.name)
def test_blocker_cells_where_available(topo):
    menu = adversary_menu(topo, seed=41)
    if "blocker" not in menu:
        pytest.skip("no affordable blocker victim on this topology")
    schedule = menu["blocker"]
    inputs = {u: 1 for u in topo.nodes()}
    record = run_protocol(
        "algorithm1",
        topo,
        inputs,
        schedule=schedule,
        f=F,
        b=B,
        rng=random.Random(43),
    )
    assert record.correct
