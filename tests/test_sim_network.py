"""Unit tests for the synchronous network: delivery, crashes, accounting."""

from typing import List, Sequence

import pytest

from repro.sim.message import Envelope, Part
from repro.sim.network import Network
from repro.sim.node import NodeHandler, RelayNode, SilentNode


class Beacon(NodeHandler):
    """Sends one fixed part every round; records everything received."""

    def __init__(self, part: Part, rounds=None):
        self.part = part
        self.rounds = rounds
        self.received: List[Envelope] = []
        self.seen_rounds: List[int] = []

    def on_round(self, rnd: int, inbox: Sequence[Envelope]):
        self.received.extend(inbox)
        self.seen_rounds.append(rnd)
        if self.rounds is None or rnd in self.rounds:
            return [self.part]
        return []


def line3():
    return {0: [1], 1: [0, 2], 2: [1]}


class TestDelivery:
    def test_message_arrives_next_round(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part, rounds={1}), 1: RelayNode(), 2: RelayNode()}
        net = Network(line3(), nodes)
        net.step()
        assert nodes[1].received == []  # nothing in flight yet at round 1
        net.step()
        assert [e.part for e in nodes[1].received] == [part]

    def test_local_broadcast_reaches_all_neighbours(self):
        part = Part("ping", (), 4)
        adj = {0: [1, 2, 3], 1: [0], 2: [0], 3: [0]}
        nodes = {0: Beacon(part, rounds={1})}
        nodes.update({i: RelayNode() for i in (1, 2, 3)})
        net = Network(adj, nodes)
        net.step()
        net.step()
        for i in (1, 2, 3):
            assert [e.part for e in nodes[i].received] == [part]

    def test_non_neighbours_do_not_receive_directly(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part, rounds={1}), 1: SilentNode(), 2: RelayNode()}
        net = Network(line3(), nodes)
        net.step()
        net.step()
        net.step()
        assert nodes[2].received == []  # node 1 stayed silent

    def test_relay_forwards_exactly_once(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part, rounds={1, 2}), 1: RelayNode(), 2: RelayNode()}
        net = Network(line3(), nodes)
        for _ in range(4):
            net.step()
        # Node 2 received the single forwarded copy despite two sends by 0.
        assert [e.part for e in nodes[2].received] == [part]

    def test_sender_does_not_receive_own_broadcast(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part, rounds={1}), 1: SilentNode(), 2: SilentNode()}
        net = Network(line3(), nodes)
        net.step()
        net.step()
        assert nodes[0].received == []

    def test_missing_handler_rejected(self):
        with pytest.raises(ValueError):
            Network(line3(), {0: SilentNode()})


class TestCrashSemantics:
    def test_crashed_node_does_not_send(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part), 1: RelayNode(), 2: RelayNode()}
        net = Network(line3(), nodes, crash_rounds={0: 1})
        for _ in range(3):
            net.step()
        assert nodes[1].received == []

    def test_message_sent_before_crash_is_delivered(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part, rounds={1}), 1: RelayNode(), 2: RelayNode()}
        net = Network(line3(), nodes, crash_rounds={0: 2})
        net.step()  # round 1: node 0 sends, then dies at round 2
        net.step()  # round 2: delivery still happens
        assert [e.part for e in nodes[1].received] == [part]

    def test_crashed_node_does_not_receive(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part, rounds={1}), 1: RelayNode(), 2: RelayNode()}
        net = Network(line3(), nodes, crash_rounds={1: 2})
        net.step()
        net.step()
        assert nodes[1].received == []

    def test_crash_blocks_forwarding_path(self):
        part = Part("ping", (), 4)
        nodes = {0: Beacon(part, rounds={1}), 1: RelayNode(), 2: RelayNode()}
        net = Network(line3(), nodes, crash_rounds={1: 1})
        for _ in range(4):
            net.step()
        assert nodes[2].received == []

    def test_is_alive_and_alive_nodes(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)}, {1: 3})
        assert net.is_alive(1, 2)
        assert not net.is_alive(1, 3)
        net.round = 5
        assert net.alive_nodes() == [0, 2]


class TestAdjacencyValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop at node 1"):
            Network({0: [1], 1: [0, 1]}, {0: SilentNode(), 1: SilentNode()})

    def test_unknown_neighbour_rejected(self):
        with pytest.raises(ValueError, match="unknown neighbour 9"):
            Network({0: [1, 9], 1: [0]}, {0: SilentNode(), 1: SilentNode()})

    def test_asymmetry_rejected(self):
        with pytest.raises(ValueError, match="not symmetric"):
            Network(
                {0: [1], 1: [0, 2], 2: []},
                {i: SilentNode() for i in range(3)},
            )

    def test_missing_handler_rejected(self):
        with pytest.raises(ValueError, match="no handler"):
            Network(line3(), {0: SilentNode()})

    def test_valid_graph_accepted(self):
        Network(line3(), {i: SilentNode() for i in range(3)})


class TestRunArguments:
    def test_negative_max_rounds_rejected(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        with pytest.raises(ValueError, match="max_rounds"):
            net.run(-1)

    def test_zero_max_rounds_executes_nothing(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        stats = net.run(0, stop_on_output=False)
        assert stats.rounds_executed == 0
        assert net.round == 0

    def test_schedule_crash_rejects_unknown_node(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        with pytest.raises(ValueError, match="unknown node"):
            net.schedule_crash(9, 2)

    def test_schedule_crash_rejects_executed_rounds(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        net.step()
        with pytest.raises(ValueError, match="already executed"):
            net.schedule_crash(1, 1)

    def test_schedule_crash_keeps_earliest_round(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        net.schedule_crash(1, 5)
        net.schedule_crash(1, 8)
        assert net.crash_rounds[1] == 5


class TestFloodingRoundsEdgeCases:
    def test_zero_rounds_executed_is_zero(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        stats = net.run(0, stop_on_output=False)
        assert stats.flooding_rounds(3) == 0

    def test_diameter_one_counts_every_round(self):
        adj = {0: [1], 1: [0]}  # complete graph on 2 nodes: d = 1
        net = Network(adj, {0: SilentNode(), 1: SilentNode()})
        stats = net.run(5, stop_on_output=False)
        assert stats.flooding_rounds(1) == 5

    def test_exact_multiple_has_no_remainder(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        stats = net.run(6, stop_on_output=False)
        assert stats.flooding_rounds(3) == 2

    def test_invalid_diameter_rejected(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        stats = net.run(1, stop_on_output=False)
        with pytest.raises(ValueError):
            stats.flooding_rounds(0)


class TestAccounting:
    def test_bits_and_parts_counted(self):
        part = Part("ping", (), 9)
        nodes = {0: Beacon(part, rounds={1, 2}), 1: SilentNode(), 2: SilentNode()}
        net = Network(line3(), nodes)
        net.step()
        net.step()
        assert net.stats.bits_of(0) == 18
        assert net.stats.parts_sent[0] == 2
        assert net.stats.broadcasts[0] == 2

    def test_silent_node_costs_nothing(self):
        nodes = {i: SilentNode() for i in range(3)}
        net = Network(line3(), nodes)
        net.run(5, stop_on_output=False)
        assert net.stats.total_bits == 0
        assert net.stats.rounds_executed == 5

    def test_max_bits_is_bottleneck(self):
        a, b = Part("a", (), 3), Part("b", (), 30)
        nodes = {
            0: Beacon(a, rounds={1}),
            1: Beacon(b, rounds={1}),
            2: SilentNode(),
        }
        net = Network(line3(), nodes)
        net.run(2, stop_on_output=False)
        assert net.stats.max_bits == 30

    def test_flooding_rounds_rounds_up(self):
        nodes = {i: SilentNode() for i in range(3)}
        net = Network(line3(), nodes)
        stats = net.run(7, stop_on_output=False)
        assert stats.flooding_rounds(3) == 3

    def test_top_senders_ranked(self):
        a, b = Part("a", (), 3), Part("b", (), 30)
        nodes = {
            0: Beacon(a, rounds={1}),
            1: Beacon(b, rounds={1}),
            2: SilentNode(),
        }
        net = Network(line3(), nodes)
        net.run(2, stop_on_output=False)
        assert net.stats.top_senders(1) == [(1, 30)]


class TestStopOnOutput:
    def test_stops_when_handler_done(self):
        class Stopper(SilentNode):
            def __init__(self, at):
                self.at = at
                self.rnd = 0

            def on_round(self, rnd, inbox):
                self.rnd = rnd
                return []

            def wants_to_stop(self):
                return self.rnd >= self.at

        nodes = {0: Stopper(3), 1: SilentNode(), 2: SilentNode()}
        net = Network(line3(), nodes)
        stats = net.run(10, stop_on_output=True)
        assert stats.rounds_executed == 3

    def test_stop_disabled_runs_to_budget(self):
        nodes = {i: SilentNode() for i in range(3)}
        net = Network(line3(), nodes)
        stats = net.run(10, stop_on_output=False)
        assert stats.rounds_executed == 10
