"""Cross-module integration scenarios tying the whole system together."""

import random

import pytest

from repro.adversary import (
    FailureSchedule,
    blocker_failures,
    chain_failures,
    concentrated_failures,
    random_failures,
)
from repro.analysis import figure1_data, run_protocol, sweep_b
from repro.baselines import run_bruteforce, run_folklore, run_plain_tag
from repro.core import COUNT, MAX, OR, SUM, run_agg_veri_pair, run_algorithm1
from repro.core.correctness import correctness_interval, is_correct_result, surviving_nodes
from repro.graphs import (
    balanced_tree,
    barbell_graph,
    clustered_graph,
    grid_graph,
    random_geometric,
)
from repro.lowerbound import bounds


class TestEndToEndScenarios:
    def test_sensor_field_all_protocols_agree_when_failure_free(self):
        topo = random_geometric(60, rng=random.Random(1))
        inputs = {u: u % 13 for u in topo.nodes()}
        expected = sum(inputs.values())
        assert run_bruteforce(topo, inputs).result == expected
        assert run_folklore(topo, inputs, f=3).result == expected
        assert run_plain_tag(topo, inputs).result == expected
        assert (
            run_algorithm1(topo, inputs, f=3, b=45, rng=random.Random(2)).result
            == expected
        )

    def test_bottleneck_topology_survives_bridge_failure(self):
        topo = barbell_graph(5, 3)
        inputs = {u: 1 for u in topo.nodes()}
        # Kill a bridge node: the far clique gets partitioned and its
        # inputs legitimately drop out of s1.
        schedule = FailureSchedule({6: 30})
        out = run_algorithm1(
            topo, inputs, f=2, b=45, schedule=schedule, rng=random.Random(0)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    def test_cluster_blackout_with_all_caafs(self):
        topo = clustered_graph(4, 5)
        rng = random.Random(3)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        schedule = blocker_failures(topo, f=14, victim=10, at_round=50)
        for caaf in (SUM, COUNT, MAX, OR):
            out = run_algorithm1(
                topo,
                inputs,
                f=14,
                b=45,
                schedule=schedule,
                caaf=caaf,
                rng=random.Random(4),
            )
            assert is_correct_result(
                out.result, caaf, topo, inputs, schedule, out.rounds
            ), caaf.name

    def test_deep_tree_with_chain_failure_still_correct(self):
        topo = balanced_tree(2, 31)
        t_chain = 3
        schedule = chain_failures(
            topo, chain_length=t_chain, at_round=100, rng=random.Random(5)
        )
        assert schedule is not None
        inputs = {u: 1 for u in topo.nodes()}
        f = schedule.edge_failures(topo)
        out = run_algorithm1(
            topo, inputs, f=f, b=60, schedule=schedule, rng=random.Random(6)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)


class TestPaperNarrativeChecks:
    def test_tradeoff_beats_bruteforce_cc_for_large_b(self):
        # Figure 1's headline: for the same correctness guarantee, spending
        # time buys communication.
        topo = grid_graph(6, 6)
        inputs = {u: 1 for u in topo.nodes()}
        rng = random.Random(7)
        f = 6
        schedule = random_failures(topo, f, rng, first_round=1, last_round=400)
        bf = run_bruteforce(topo, inputs, schedule=schedule)
        alg = run_algorithm1(
            topo, inputs, f=f, b=800, schedule=schedule, rng=random.Random(8)
        )
        assert alg.stats.max_bits < bf.stats.max_bits

    def test_interval_concentration_beaten_by_random_selection(self):
        # The adversary kills one specific interval; Algorithm 1's random
        # selection routes around it with high probability across seeds.
        topo = grid_graph(5, 5)
        inputs = {u: 1 for u in topo.nodes()}
        b = 120
        plan_rounds = 19 * 2 * topo.diameter
        schedule = concentrated_failures(
            topo, 8, random.Random(9), window=(1, plan_rounds)
        )
        fallbacks = 0
        for seed in range(6):
            out = run_algorithm1(
                topo, inputs, f=8, b=b, schedule=schedule, rng=random.Random(seed)
            )
            fallbacks += out.used_bruteforce
            assert is_correct_result(
                out.result, SUM, topo, inputs, schedule, out.rounds
            )
        assert fallbacks <= 2  # most coin flips dodge the poisoned interval

    def test_tag_failure_rate_vs_fault_tolerant_protocols(self):
        # E5's table: TAG silently loses inputs, others never do.
        topo = grid_graph(5, 5)
        tag_wrong = 0
        for seed in range(10):
            rng = random.Random(seed)
            schedule = random_failures(
                topo, f=10, rng=rng, first_round=1,
                last_round=2 * 2 * topo.diameter + 2,
            )
            inputs = {u: 100 for u in topo.nodes()}
            rec_tag = run_protocol("tag", topo, inputs, schedule=schedule)
            rec_bf = run_protocol("bruteforce", topo, inputs, schedule=schedule)
            tag_wrong += not rec_tag.correct
            assert rec_bf.correct
        # Failures mid-aggregation usually hurt TAG at least once in 10.
        assert tag_wrong >= 1

    def test_measured_cc_between_analytic_bounds_shape(self):
        # The measured Algorithm 1 CC decreases in b, like the UB curve, and
        # stays above the (constant-free) LB curve.
        topo = grid_graph(5, 5)
        f = 6
        points = sweep_b(topo, f=f, bs=[42, 168, 672], seeds=range(3))
        ccs = [p.cc_mean for p in points]
        assert ccs[0] > ccs[-1]
        n = topo.n_nodes
        for b, cc in zip([42, 168, 672], ccs):
            assert cc >= bounds.lower_bound_new(n, f, b)

    def test_figure1_curve_relationships(self):
        data = figure1_data(1024, 128, [42, 84, 168, 336])
        ub = data.curves["upper_bound_new"]
        lb = data.curves["lower_bound_new"]
        old_lb = data.curves["lower_bound_old"]
        for u, l, o in zip(ub, lb, old_lb):
            assert u >= l >= o


class TestCorrectnessIntervalIntegration:
    def test_partition_shrinks_interval_lower_end(self):
        topo = grid_graph(4, 4)
        inputs = {u: 10 for u in topo.nodes()}
        schedule = FailureSchedule({1: 5, 4: 5, 5: 5})  # cut the root's corner
        survivors = surviving_nodes(topo, schedule, 100)
        lo, hi = correctness_interval(SUM, inputs, survivors)
        assert lo == 10 * len(survivors)
        assert hi == 160

    def test_all_protocol_outputs_land_in_interval(self):
        topo = grid_graph(4, 4)
        rng = random.Random(11)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        schedule = random_failures(topo, f=5, rng=rng, first_round=1, last_round=100)
        for name, kwargs in [
            ("bruteforce", {}),
            ("folklore", {"f": 5}),
            ("algorithm1", {"f": 5, "b": 45}),
            ("unknown_f", {}),
        ]:
            rec = run_protocol(
                name, topo, inputs, schedule=schedule, rng=random.Random(12), **kwargs
            )
            assert rec.correct, name
