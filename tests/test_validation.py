"""Model-assumption validation diagnostics."""

import pytest

from repro.adversary import FailureSchedule
from repro.graphs import cycle_graph, grid_graph
from repro.sim.validation import Violation, assert_model, validate_model


class TestCleanConfigurations:
    def test_minimal_clean(self, grid44):
        assert validate_model(grid44) == []

    def test_full_clean(self, grid44):
        schedule = FailureSchedule({5: 10})
        inputs = {u: u for u in grid44.nodes()}
        violations = validate_model(
            grid44, inputs=inputs, schedule=schedule, f=4, b=50, c=2
        )
        assert violations == []

    def test_assert_model_silent_when_clean(self, grid44):
        assert_model(grid44, inputs={u: 1 for u in grid44.nodes()})


class TestViolations:
    def test_root_crash(self, grid44):
        violations = validate_model(grid44, schedule=FailureSchedule({0: 5}))
        assert any(v.rule == "root-safe" for v in violations)

    def test_unknown_nodes(self, grid44):
        violations = validate_model(grid44, schedule=FailureSchedule({99: 5}))
        assert any(v.rule == "known-nodes" for v in violations)

    def test_f_budget_overrun(self, grid44):
        schedule = FailureSchedule({5: 1, 6: 1, 9: 1})
        violations = validate_model(grid44, schedule=schedule, f=2)
        assert any(v.rule == "f-budget" for v in violations)

    def test_c_stretch(self):
        topo = cycle_graph(12)
        schedule = FailureSchedule({6: 2})
        violations = validate_model(topo, schedule=schedule, c=1)
        assert any(v.rule == "c-stretch" for v in violations)
        assert validate_model(topo, schedule=schedule, c=2) == []

    def test_missing_inputs(self, grid44):
        violations = validate_model(grid44, inputs={0: 1})
        assert any(v.rule == "input-domain" for v in violations)

    def test_negative_input(self, grid44):
        inputs = {u: 1 for u in grid44.nodes()}
        inputs[3] = -2
        violations = validate_model(grid44, inputs=inputs)
        assert any("negative" in v.message for v in violations)

    def test_superpolynomial_input(self, grid44):
        inputs = {u: 1 for u in grid44.nodes()}
        inputs[3] = 16**4  # N^4 > N^3 default bound
        violations = validate_model(grid44, inputs=inputs)
        assert any("polynomial" in v.message for v in violations)

    def test_b_too_small(self, grid44):
        violations = validate_model(grid44, b=41, c=2)
        assert any(v.rule == "b-feasible" for v in violations)

    def test_assert_model_raises_with_all_diagnostics(self, grid44):
        schedule = FailureSchedule({0: 1, 99: 1})
        with pytest.raises(ValueError) as err:
            assert_model(grid44, schedule=schedule, b=10)
        text = str(err.value)
        assert "root-safe" in text
        assert "known-nodes" in text
        assert "b-feasible" in text

    def test_violation_str(self):
        v = Violation("rule-x", "something broke")
        assert str(v) == "[rule-x] something broke"
