"""Execution tracing: event capture, queries, and rendering."""

import pytest

from repro.core.agg import AggNode
from repro.core.params import params_for
from repro.graphs import grid_graph, path_graph
from repro.sim import Network, Part, Tracer, attach_tracer
from repro.sim.node import RelayNode, SilentNode


class Beacon(SilentNode):
    def __init__(self, part, at=1):
        self.part = part
        self.at = at

    def on_round(self, rnd, inbox):
        return [self.part] if rnd == self.at else []


def line3():
    return {0: [1], 1: [0, 2], 2: [1]}


class TestEventCapture:
    def test_send_events(self):
        part = Part("ping", (), 4)
        tracer = Tracer()
        net = Network(
            line3(),
            {0: Beacon(part), 1: RelayNode(), 2: RelayNode()},
            tracer=tracer,
        )
        net.run(3, stop_on_output=False)
        # Beacon at round 1, node 1 forwards at round 2, node 2 at round 3.
        assert len(tracer.sends) == 3
        assert tracer.sends[0].node == 0
        assert tracer.sends[0].round == 1
        assert tracer.sends[0].bits == 4

    def test_deliver_events(self):
        part = Part("ping", (), 4)
        tracer = Tracer()
        net = Network(
            line3(),
            {0: Beacon(part), 1: RelayNode(), 2: SilentNode()},
            tracer=tracer,
        )
        net.run(3, stop_on_output=False)
        received_by_1 = tracer.deliveries_to(1)
        assert len(received_by_1) == 1
        assert received_by_1[0].sender == 0

    def test_deliveries_can_be_disabled(self):
        part = Part("ping", (), 4)
        tracer = Tracer(record_deliveries=False)
        net = Network(
            line3(),
            {0: Beacon(part), 1: RelayNode(), 2: RelayNode()},
            tracer=tracer,
        )
        net.run(3, stop_on_output=False)
        assert tracer.deliveries == []
        assert tracer.sends  # sends still captured

    def test_crash_events_once(self):
        tracer = Tracer()
        net = Network(
            line3(),
            {i: SilentNode() for i in range(3)},
            crash_rounds={1: 2},
            tracer=tracer,
        )
        net.run(4, stop_on_output=False)
        assert tracer.crashes == [(2, 1)]

    def test_attach_tracer_to_existing_network(self):
        net = Network(line3(), {i: SilentNode() for i in range(3)})
        tracer = attach_tracer(net)
        net.run(2, stop_on_output=False)
        assert tracer.sends == []


class TestQueries:
    def _traced_agg(self):
        topo = grid_graph(4, 4)
        params = params_for(topo, t=1)
        nodes = {u: AggNode(params, u, 1) for u in topo.nodes()}
        tracer = Tracer()
        net = Network(topo.adjacency, nodes, tracer=tracer)
        net.run(params.agg_rounds, stop_on_output=False)
        return topo, params, tracer

    def test_kind_histogram_covers_agg_phases(self):
        _topo, _params, tracer = self._traced_agg()
        hist = tracer.kind_histogram()
        assert hist["tree_construct"] == 16  # one beacon per node
        assert hist["ack"] == 15  # every non-root acks
        assert hist["flooded_psum"] >= 15  # root's flood forwarded by all

    def test_first_send_of_kind(self):
        _topo, _params, tracer = self._traced_agg()
        first = tracer.first_send_of_kind("tree_construct")
        assert first.node == 0 and first.round == 1

    def test_first_delivery_round_matches_distance(self):
        topo, params, tracer = self._traced_agg()
        # flooded_psum starts at the root in round 4cd+3; node 15 is at
        # distance 6, so it first hears it 6 rounds later.
        start = 4 * params.cd + 3
        event = tracer.first_delivery(15, "flooded_psum")
        assert event.round == start + topo.levels[15]

    def test_bits_per_round_totals_match_stats(self):
        topo = grid_graph(3, 3)
        params = params_for(topo, t=0)
        nodes = {u: AggNode(params, u, 1) for u in topo.nodes()}
        tracer = Tracer()
        net = Network(topo.adjacency, nodes, tracer=tracer)
        net.run(params.agg_rounds, stop_on_output=False)
        assert sum(tracer.bits_per_round().values()) == net.stats.total_bits

    def test_sends_by_node(self):
        _topo, _params, tracer = self._traced_agg()
        assert all(e.node == 3 for e in tracer.sends_by(3))


class TestHookContracts:
    """The three tracer hooks fire in the right rounds with the right
    payloads — on both the exact and the fault-injection delivery paths."""

    def test_on_send_round_node_parts_bits(self):
        part = Part("ping", ("payload",), 6)
        tracer = Tracer()
        net = Network(
            line3(),
            {0: Beacon(part, at=2), 1: SilentNode(), 2: SilentNode()},
            tracer=tracer,
        )
        net.run(3, stop_on_output=False)
        assert len(tracer.sends) == 1
        event = tracer.sends[0]
        assert event.round == 2
        assert event.node == 0
        assert event.parts == (part,)
        assert event.bits == 6

    def test_on_deliver_fires_one_round_after_send(self):
        part = Part("ping", ("payload",), 6)
        tracer = Tracer()
        net = Network(
            line3(),
            {0: Beacon(part, at=2), 1: SilentNode(), 2: SilentNode()},
            tracer=tracer,
        )
        net.run(3, stop_on_output=False)
        assert len(tracer.deliveries) == 1
        event = tracer.deliveries[0]
        assert event.round == 3  # sent in 2, delivered in 3
        assert event.sender == 0
        assert event.receiver == 1
        assert event.part is part

    def test_on_crash_fires_in_the_crash_round_only(self):
        tracer = Tracer()
        net = Network(
            line3(),
            {i: SilentNode() for i in range(3)},
            crash_rounds={2: 3, 1: 5},
            tracer=tracer,
        )
        net.run(6, stop_on_output=False)
        assert tracer.crashes == [(3, 2), (5, 1)]

    def test_no_delivery_to_dead_receiver(self):
        part = Part("ping", (), 4)
        tracer = Tracer()
        net = Network(
            line3(),
            {0: Beacon(part, at=1), 1: SilentNode(), 2: SilentNode()},
            crash_rounds={1: 2},
            tracer=tracer,
        )
        net.run(2, stop_on_output=False)
        assert tracer.deliveries == []  # only neighbour died before delivery

    def test_hooks_fire_on_scheduled_delivery_path(self):
        from repro.sim.faults import MessageFaults

        part = Part("ping", (), 4)
        tracer = Tracer()
        # All-zero rates: path switches to scheduled delivery, but events
        # must match the exact-model run.
        net = Network(
            line3(),
            {0: Beacon(part, at=1), 1: RelayNode(), 2: SilentNode()},
            tracer=tracer,
            injectors=[MessageFaults(seed=0)],
        )
        net.run(3, stop_on_output=False)
        assert [(e.round, e.node) for e in tracer.sends] == [(1, 0), (2, 1)]
        assert (3, 1, 2) in [
            (e.round, e.sender, e.receiver) for e in tracer.deliveries
        ]


class TestTimeline:
    def test_timeline_renders_and_filters(self):
        part = Part("ping", ("x",), 4)
        tracer = Tracer()
        net = Network(
            line3(),
            {0: Beacon(part), 1: RelayNode(), 2: RelayNode()},
            crash_rounds={2: 3},
            tracer=tracer,
        )
        net.run(4, stop_on_output=False)
        text = tracer.timeline()
        assert "node   0 sends" in text
        assert "CRASHES" in text
        only_node2 = tracer.timeline(node=2)
        assert "node   0" not in only_node2

    def test_timeline_truncates(self):
        part = Part("p", (), 1)

        class Chatty(SilentNode):
            def on_round(self, rnd, inbox):
                return [part]

        tracer = Tracer()
        net = Network(line3(), {i: Chatty() for i in range(3)}, tracer=tracer)
        net.run(10, stop_on_output=False)
        text = tracer.timeline(limit=5)
        assert "truncated" in text

    def test_timeline_empty(self):
        tracer = Tracer()
        assert "no matching events" in tracer.timeline()
