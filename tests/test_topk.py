"""Top-k queries built from COUNT probes."""

import random

import pytest

from repro.adversary import random_failures
from repro.extensions.topk import distributed_topk
from repro.graphs import grid_graph, path_graph


class TestTopK:
    def test_exact_on_distinct_values(self):
        topo = grid_graph(4, 4)
        inputs = {u: u * 3 for u in topo.nodes()}
        out = distributed_topk(topo, inputs, k=4, f=1, b=45, rng=random.Random(0))
        assert out.values == sorted(inputs.values(), reverse=True)[:4]

    def test_exact_with_ties(self):
        topo = grid_graph(4, 4)
        inputs = {u: u % 4 for u in topo.nodes()}
        out = distributed_topk(topo, inputs, k=6, f=1, b=45, rng=random.Random(1))
        assert out.values == sorted(inputs.values(), reverse=True)[:6]

    def test_k_equals_population(self):
        topo = path_graph(5)
        inputs = {0: 9, 1: 1, 2: 5, 3: 5, 4: 2}
        out = distributed_topk(topo, inputs, k=5, f=1, b=45, rng=random.Random(2))
        assert out.values == [9, 5, 5, 2, 1]

    def test_values_are_non_increasing(self):
        topo = grid_graph(4, 4)
        rng = random.Random(3)
        inputs = {u: rng.randint(0, 40) for u in topo.nodes()}
        out = distributed_topk(topo, inputs, k=7, f=1, b=45, rng=rng)
        assert out.values == sorted(out.values, reverse=True)

    def test_memoization_bounds_probe_count(self):
        # Probes are memoized per threshold: for k ranks over a domain D
        # the probe count stays well under k * log D.
        topo = grid_graph(4, 4)
        inputs = {u: u for u in topo.nodes()}
        out = distributed_topk(topo, inputs, k=5, f=1, b=45, rng=random.Random(4))
        import math

        naive = 5 * math.ceil(math.log2(max(inputs.values()) + 1))
        assert out.probes <= naive

    def test_bruteforce_substrate(self):
        topo = grid_graph(3, 3)
        inputs = {u: u for u in topo.nodes()}
        out = distributed_topk(topo, inputs, k=3, f=1, protocol="bruteforce")
        assert out.values == [8, 7, 6]

    def test_cost_accounting(self):
        topo = grid_graph(3, 3)
        inputs = {u: u for u in topo.nodes()}
        out = distributed_topk(topo, inputs, k=2, f=1, b=45, rng=random.Random(5))
        assert out.cc_bits > 0
        assert out.total_rounds > 0

    def test_rejects_bad_k(self):
        topo = grid_graph(3, 3)
        inputs = {u: 1 for u in topo.nodes()}
        with pytest.raises(ValueError):
            distributed_topk(topo, inputs, k=0, f=1, b=45)
        with pytest.raises(ValueError):
            distributed_topk(topo, inputs, k=10, f=1, b=45)

    @pytest.mark.parametrize("seed", range(3))
    def test_rank_consistent_under_failures(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        inputs = {u: rng.randint(0, 30) for u in topo.nodes()}
        schedule = random_failures(
            topo, f=4, rng=rng, first_round=1, last_round=5000
        )
        out = distributed_topk(
            topo, inputs, k=3, f=4, b=45, schedule=schedule,
            rng=random.Random(seed),
        )
        survivors = topo.alive_component(schedule.failed_nodes)
        all_sorted = sorted(inputs.values(), reverse=True)
        surv_sorted = sorted((inputs[u] for u in survivors), reverse=True)
        for rank, value in enumerate(out.values, start=1):
            hi = all_sorted[rank - 1]
            lo = surv_sorted[min(rank, len(surv_sorted)) - 1]
            assert min(lo, hi) <= value <= max(lo, hi)
