"""Runtime invariant monitors: strict vs. record modes, every rule."""

import math
import random

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.graphs import grid_graph, path_graph
from repro.sim import Network, Part
from repro.sim.monitors import (
    CCEnvelopeMonitor,
    FBudgetMonitor,
    InvariantViolation,
    Monitor,
    MonitorEvent,
    OracleMonitor,
    RootSafetyMonitor,
    standard_monitors,
    theorem1_cc_envelope,
    violations_of,
)
from repro.sim.node import NodeHandler, SilentNode


class Chatty(SilentNode):
    def __init__(self, bits=8):
        self.bits = bits

    def on_round(self, rnd, inbox):
        return [Part("ping", (rnd,), self.bits)]


class RootWithResult(SilentNode):
    def __init__(self, result, at=2):
        self.result = None
        self._value = result
        self.at = at

    def on_round(self, rnd, inbox):
        if rnd >= self.at:
            self.result = self._value
        return []


def silent_net(topology, monitors, crash_rounds=None, root_handler=None):
    handlers = {u: SilentNode() for u in topology.nodes()}
    if root_handler is not None:
        handlers[topology.root] = root_handler
    return Network(
        topology.adjacency,
        handlers,
        crash_rounds=crash_rounds,
        monitors=monitors,
    )


class TestMonitorBase:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            Monitor(mode="lenient")

    def test_report_records_and_raises_in_strict(self):
        monitor = Monitor(mode="strict")
        with pytest.raises(InvariantViolation) as err:
            monitor.report("boom", rnd=3)
        assert err.value.rule == "invariant"
        assert err.value.round == 3
        assert not monitor.ok

    def test_record_mode_accumulates_without_raising(self):
        monitor = Monitor(mode="record")
        monitor.report("one", rnd=1)
        monitor.report("two", rnd=2)
        assert [e.message for e in monitor.violations] == ["one", "two"]
        assert violations_of([monitor]) == monitor.violations

    def test_event_str_mentions_rule_and_round(self):
        event = MonitorEvent("f-budget", 7, "over")
        assert "f-budget" in str(event) and "7" in str(event)


class TestRootSafety:
    def test_trips_when_root_dies(self):
        topo = path_graph(4)
        net = silent_net(
            topo,
            [RootSafetyMonitor(topo.root, mode="record")],
            crash_rounds={topo.root: 2},
        )
        net.run(4, stop_on_output=False)
        events = violations_of(net.monitors)
        assert len(events) == 1  # reported once, not per round
        assert events[0].rule == "root-safe"
        assert events[0].round == 2

    def test_strict_raises_mid_run(self):
        topo = path_graph(4)
        net = silent_net(
            topo,
            [RootSafetyMonitor(topo.root, mode="strict")],
            crash_rounds={topo.root: 2},
        )
        with pytest.raises(InvariantViolation, match="root"):
            net.run(4, stop_on_output=False)

    def test_quiet_when_root_lives(self):
        topo = path_graph(4)
        net = silent_net(
            topo,
            [RootSafetyMonitor(topo.root, mode="strict")],
            crash_rounds={2: 2},
        )
        net.run(4, stop_on_output=False)
        assert net.monitors[0].ok


class TestFBudget:
    def test_within_budget_is_quiet(self):
        topo = path_graph(5)
        # Crashing an endpoint of degree 1 costs 1 edge.
        net = silent_net(
            topo, [FBudgetMonitor(topo, f=1, mode="strict")], crash_rounds={4: 2}
        )
        net.run(3, stop_on_output=False)
        assert net.monitors[0].ok

    def test_overspend_detected_at_crash_round(self):
        topo = grid_graph(3, 3)
        centre = 4  # degree 4 in a 3x3 grid
        net = silent_net(
            topo,
            [FBudgetMonitor(topo, f=3, mode="record")],
            crash_rounds={centre: 2},
        )
        net.run(4, stop_on_output=False)
        events = violations_of(net.monitors)
        assert len(events) == 1
        assert "exceed" in events[0].message
        assert events[0].round == 2


class TestCCEnvelope:
    def test_requires_positive_bound(self):
        with pytest.raises(ValueError, match="positive"):
            CCEnvelopeMonitor(0)

    def test_trips_when_bits_exceed_bound(self):
        topo = path_graph(3)
        handlers = {u: Chatty(bits=10) for u in topo.nodes()}
        net = Network(
            topo.adjacency,
            handlers,
            monitors=[CCEnvelopeMonitor(25, mode="record")],
        )
        net.run(5, stop_on_output=False)
        events = violations_of(net.monitors)
        assert len(events) == 1
        assert events[0].round == 3  # 30 bits > 25 after the third round

    def test_theorem1_envelope_holds_on_clean_runs(self):
        topo = grid_graph(4, 4)
        rng = random.Random(0)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        bound = theorem1_cc_envelope(topo, f=3, b=60)
        out = run_algorithm1(
            topo,
            inputs,
            f=3,
            b=60,
            rng=random.Random(1),
            monitors=[CCEnvelopeMonitor(bound, mode="strict")],
        )
        assert out.result == sum(inputs.values())

    def test_theorem1_envelope_is_finite_and_positive(self):
        topo = grid_graph(4, 4)
        bound = theorem1_cc_envelope(topo, f=3, b=60)
        assert 0 < bound < math.inf
        assert theorem1_cc_envelope(topo, f=3, b=60, include_fallback=False) < bound


class TestOracle:
    def test_none_result_is_not_a_violation(self):
        topo = path_graph(3)
        net = silent_net(topo, [OracleMonitor(topo, {0: 1, 1: 1, 2: 1})])
        net.run(2, stop_on_output=False)
        assert net.monitors[0].ok

    def test_correct_result_passes(self):
        topo = path_graph(3)
        inputs = {0: 1, 1: 2, 2: 3}
        net = silent_net(
            topo,
            [OracleMonitor(topo, inputs, mode="strict")],
            root_handler=RootWithResult(6),
        )
        net.run(3, stop_on_output=False)
        assert net.monitors[0].ok

    def test_wrong_result_raises_at_finalize(self):
        topo = path_graph(3)
        inputs = {0: 1, 1: 2, 2: 3}
        net = silent_net(
            topo,
            [OracleMonitor(topo, inputs, mode="strict")],
            root_handler=RootWithResult(99),
        )
        with pytest.raises(InvariantViolation, match="correctness interval"):
            net.run(3, stop_on_output=False)

    def test_interval_respects_crashed_survivors(self):
        # Node 2 dead from round 1: any value in [sum(s1), sum(s2)] = [3, 6]
        # is acceptable.
        topo = path_graph(3)
        inputs = {0: 1, 1: 2, 2: 3}
        net = silent_net(
            topo,
            [OracleMonitor(topo, inputs, mode="strict")],
            crash_rounds={2: 1},
            root_handler=RootWithResult(3),
        )
        net.run(3, stop_on_output=False)
        assert net.monitors[0].ok


class TestStandardStack:
    def test_composition_follows_arguments(self):
        topo = grid_graph(3, 3)
        inputs = {u: 1 for u in topo.nodes()}
        rules = [m.rule for m in standard_monitors(topo, inputs)]
        assert rules == ["root-safe", "oracle"]
        rules = [
            m.rule
            for m in standard_monitors(topo, inputs, f=2, cc_bound=100.0)
        ]
        assert rules == ["root-safe", "f-budget", "oracle", "cc-envelope"]

    def test_mode_propagates(self):
        topo = grid_graph(3, 3)
        inputs = {u: 1 for u in topo.nodes()}
        assert all(
            m.mode == "record"
            for m in standard_monitors(topo, inputs, mode="record")
        )
