"""End-to-end message integrity: corruption faults, authenticated frames,
quarantine, the silent-corruption oracle, replay, and cache identity.

The headline guarantees under test:

* a corrupted frame under ``--integrity mac`` is *always* rejected (zero
  unresolved corruptions) and recovery re-fetches the dropped frame, so
  the run still completes exactly or degrades to a certified partial;
* protocol CC accounting is bit-identical with the integrity layer on —
  framing is booked purely as ``overhead_bits``;
* a persistently corrupt link is quarantined into the model's own
  failed-edge class instead of poisoning the run forever;
* corrupted runs record/replay bit-exactly;
* the exec cache token separates corruption/integrity config (the v2
  auto-enumerated schema).
"""

import ast
import random

import pytest

from repro.analysis.runner import make_inputs, run_protocol, safe_run_protocol
from repro.exec import WorkUnit, unit_cache_hash, unit_cache_token
from repro.exec.cache import CACHE_VERSION, EXCLUDED_FIELDS
from repro.graphs import grid_graph
from repro.integrity import (
    BLAMED_REASONS,
    CHECKSUM_BITS,
    IntegrityConfig,
    IntegrityCoordinator,
    MAC_BITS,
    REASON_DIGEST,
    REASON_STALE,
    as_integrity,
    compute_tag,
    unresolved_corruptions,
)
from repro.resilience import RecoveryPolicy, TransportConfig
from repro.sim import ExecutionRecord, replay_bundle
from repro.sim.faults import (
    MessageCorruption,
    MessageFaults,
    corruption_sources,
    flip_int_leaf,
)
from repro.sim.monitors import CorruptionOracleMonitor, standard_monitors


def grid44():
    return grid_graph(4, 4)


def run_corrupted(
    topo,
    seed=2,
    corrupt=None,
    integrity=None,
    recover=True,
    protocol="unknown_f",
    **kwargs,
):
    rng = random.Random(seed)
    inputs = make_inputs(topo, rng)
    injectors = [corrupt] if corrupt is not None else []
    recovery = None
    if recover:
        recovery = RecoveryPolicy(
            transport=TransportConfig(retransmits=3, backoff_cap=4)
        )
    return run_protocol(
        protocol,
        topo,
        inputs,
        rng=rng,
        strict=False,
        injectors=injectors,
        recovery=recovery,
        integrity=integrity,
        **kwargs,
    )


# --------------------------------------------------------------------- #
# The corruption fault class.
# --------------------------------------------------------------------- #


class TestCorruptionSpec:
    def test_from_spec_parses_modes_and_rates(self):
        inj = MessageCorruption.from_spec(
            "bitflip:0.02,truncate:0.01,stale:0.005", seed=7
        )
        assert (inj.bitflip, inj.truncate, inj.stale) == (0.02, 0.01, 0.005)
        assert inj.seed == 7

    def test_equals_separator_accepted(self):
        inj = MessageCorruption.from_spec("bitflip=0.5")
        assert inj.bitflip == 0.5

    def test_unknown_mode_names_token_and_grammar(self):
        with pytest.raises(ValueError) as exc:
            MessageCorruption.from_spec("bitrot:0.1")
        assert "bitrot" in str(exc.value)
        assert MessageCorruption.SPEC_GRAMMAR in str(exc.value)

    def test_repeated_mode_rejected(self):
        with pytest.raises(ValueError):
            MessageCorruption.from_spec("bitflip:0.1,bitflip:0.2")

    def test_non_numeric_rate_rejected(self):
        with pytest.raises(ValueError):
            MessageCorruption.from_spec("bitflip:lots")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError):
            MessageCorruption.from_spec("bitflip:1.5")
        with pytest.raises(ValueError):
            MessageCorruption(bitflip=-0.1)

    def test_empty_fragments_tolerated(self):
        inj = MessageCorruption.from_spec("bitflip:0.1,,stale:0.2,")
        assert inj.bitflip == 0.1 and inj.stale == 0.2


class TestFlipIntLeaf:
    def test_flips_exactly_one_int_leaf(self):
        rng = random.Random(3)
        payload = (4, ("x", 9), 2)
        flipped = flip_int_leaf(payload, rng)
        diffs = [
            (a, b)
            for a, b in zip(_leaves(payload), _leaves(flipped))
            if a != b
        ]
        assert len(diffs) == 1
        a, b = diffs[0]
        assert isinstance(a, int) and isinstance(b, int) and a != b

    def test_no_int_leaves_returns_none(self):
        assert flip_int_leaf((), random.Random(0)) is None
        assert flip_int_leaf(("abort",), random.Random(0)) is None

    def test_bools_are_not_flippable_leaves(self):
        assert flip_int_leaf((True, False), random.Random(0)) is None

    def test_result_reprs_round_trip(self):
        # The record/replay layer stores corrupted payloads as repr()
        # and rebuilds them with ast.literal_eval.
        rng = random.Random(11)
        for payload in [(5,), (1, (2, (3, "s"))), (0, None, 7)]:
            flipped = flip_int_leaf(payload, rng)
            assert ast.literal_eval(repr(flipped)) == flipped


def _leaves(value):
    if isinstance(value, tuple):
        out = []
        for item in value:
            out.extend(_leaves(item))
        return out
    return [value]


class TestCorruptionInjection:
    def test_per_seed_determinism(self):
        counts = []
        for _ in range(2):
            inj = MessageCorruption(bitflip=0.1, stale=0.05, seed=5)
            run_corrupted(grid44(), seed=2, corrupt=inj, recover=False)
            counts.append((inj.counts.as_dict(), list(inj.delivered_corruptions)))
        assert counts[0] == counts[1]
        assert sum(counts[0][0].values()) > 0

    def test_budget_caps_respected(self):
        inj = MessageCorruption(bitflip=1.0, seed=1, max_bitflips=3)
        run_corrupted(grid44(), corrupt=inj, recover=False)
        assert inj.counts.bitflips == 3

    def test_protected_nodes_never_corrupted(self):
        topo = grid44()
        inj = MessageCorruption(bitflip=1.0, seed=1, protect=range(16))
        run_corrupted(topo, corrupt=inj, recover=False)
        assert inj.counts.total == 0

    def test_link_scale_concentrates_corruption(self):
        inj = MessageCorruption(
            bitflip=0.01, seed=3, link_scale={(1, 0): 100.0}
        )
        run_corrupted(grid44(), corrupt=inj, recover=False)
        links = {(s, r) for (s, r, _key) in inj._corrupt}
        assert (1, 0) in links

    def test_delivered_corruptions_recorded_with_epoch_and_round(self):
        inj = MessageCorruption(bitflip=0.2, seed=2)
        run_corrupted(grid44(), corrupt=inj, recover=False)
        assert inj.delivered_corruptions
        for epoch, rnd, sender, receiver, key in inj.delivered_corruptions:
            assert epoch >= 0 and rnd >= 1
            assert isinstance(key, tuple) and isinstance(key[0], str)


# --------------------------------------------------------------------- #
# Frames: tags, config, coordinator.
# --------------------------------------------------------------------- #


class TestIntegrityConfig:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            IntegrityConfig(mode="crc")

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            IntegrityConfig(quarantine_threshold=0)

    def test_digest_bits_by_mode(self):
        assert IntegrityConfig(mode="checksum").digest_bits == CHECKSUM_BITS
        assert IntegrityConfig(mode="mac").digest_bits == MAC_BITS

    def test_jsonable_round_trip(self):
        cfg = IntegrityConfig(mode="checksum", key_seed=9, quarantine_threshold=4)
        assert IntegrityConfig.from_jsonable(cfg.as_jsonable()) == cfg

    def test_as_integrity_coercions(self):
        assert as_integrity(None) is None
        assert as_integrity(IntegrityConfig(mode="off")) is None
        coord = as_integrity(IntegrityConfig(mode="mac"))
        assert isinstance(coord, IntegrityCoordinator)
        assert as_integrity(coord) is coord

    def test_coordinator_rejects_off(self):
        with pytest.raises(ValueError):
            IntegrityCoordinator(IntegrityConfig(mode="off"))


class TestComputeTag:
    def test_deterministic(self):
        cfg = IntegrityConfig(mode="mac", key_seed=4)
        inner = (("aggregation", (3, 57)),)
        assert compute_tag(cfg, 3, 9, inner) == compute_tag(cfg, 3, 9, inner)

    def test_key_seed_changes_mac(self):
        inner = (("ack", (1,)),)
        a = compute_tag(IntegrityConfig(mode="mac", key_seed=1), 1, 1, inner)
        b = compute_tag(IntegrityConfig(mode="mac", key_seed=2), 1, 1, inner)
        assert a != b

    def test_checksum_ignores_key_but_binds_content(self):
        inner = (("ack", (1,)),)
        a = compute_tag(IntegrityConfig(mode="checksum", key_seed=1), 1, 1, inner)
        b = compute_tag(IntegrityConfig(mode="checksum", key_seed=2), 1, 1, inner)
        assert a == b
        c = compute_tag(
            IntegrityConfig(mode="checksum"), 1, 1, (("ack", (2,)),)
        )
        assert a != c

    def test_tag_binds_sender_and_seq(self):
        cfg = IntegrityConfig(mode="mac")
        inner = (("ack", (1,)),)
        base = compute_tag(cfg, 3, 9, inner)
        assert compute_tag(cfg, 4, 9, inner) != base
        assert compute_tag(cfg, 3, 10, inner) != base

    def test_tag_width_respected(self):
        cfg = IntegrityConfig(mode="checksum")
        for seq in range(50):
            assert 0 <= compute_tag(cfg, 1, seq, ()) < (1 << CHECKSUM_BITS)


# --------------------------------------------------------------------- #
# End-to-end: detection, recovery, accounting, quarantine, oracle.
# --------------------------------------------------------------------- #


class TestEndToEndDetection:
    def test_mac_rejects_every_delivered_corruption(self):
        inj = MessageCorruption(bitflip=0.05, truncate=0.02, seed=2)
        coord = as_integrity(IntegrityConfig(mode="mac"))
        record = run_corrupted(grid44(), seed=2, corrupt=inj, integrity=coord)
        assert record.error is None
        assert record.extra["delivered_corruptions"] > 0
        assert record.extra["unresolved_corruptions"] == 0
        assert record.extra["integrity_rejected"] >= (
            record.extra["delivered_corruptions"]
        )
        assert set(coord.rejected) <= {
            "bad-structure", "bad-digest", "sender-mismatch",
            "stale-replay", "unframed", "quarantined",
        }

    def test_detection_composes_with_recovery(self):
        # Dropped-as-corrupt frames look like missing frames to the
        # transport, whose NACK path re-fetches them: the run still
        # finishes with the right answer.
        inj = MessageCorruption(bitflip=0.05, seed=3)
        record = run_corrupted(
            grid44(), seed=3, corrupt=inj, integrity=IntegrityConfig(mode="mac")
        )
        assert record.result is not None
        assert record.correct
        assert record.extra["certified"]

    def test_stale_replays_rejected_by_seq_monotonicity(self):
        inj = MessageCorruption(stale=0.2, seed=4)
        coord = as_integrity(IntegrityConfig(mode="mac"))
        record = run_corrupted(grid44(), seed=4, corrupt=inj, integrity=coord)
        # Replays of already-accepted frames are caught by the per-link
        # seq check; a replay whose fresher copy never arrived is
        # authentic content one round late (== honest delay), so it lands
        # in the stale ledger and is never silent *corruption*.
        assert record.extra["unresolved_corruptions"] == 0
        assert record.extra["delivered_corruptions"] == 0
        assert inj.delivered_stales
        assert coord.rejected.get(REASON_STALE, 0) > 0

    def test_stale_replay_is_not_blamed_on_the_link(self):
        # Authentic content at the wrong time is indistinguishable from
        # honest delay; it must not push a link toward quarantine.
        assert REASON_STALE not in BLAMED_REASONS
        assert REASON_DIGEST in BLAMED_REASONS

    def test_without_integrity_corruption_goes_unresolved(self):
        inj = MessageCorruption(bitflip=0.05, seed=2)
        record = run_corrupted(grid44(), seed=2, corrupt=inj, integrity=None)
        assert record.extra["delivered_corruptions"] > 0
        assert record.extra["unresolved_corruptions"] > 0


class TestAccountingUnchanged:
    def test_integrity_framing_is_pure_overhead(self):
        # Same seed, no corruption: protocol CC must be bit-identical
        # with and without the integrity layer; framing shows up only in
        # overhead_bits.
        base = run_corrupted(grid44(), seed=5, integrity=None)
        mac = run_corrupted(
            grid44(), seed=5, integrity=IntegrityConfig(mode="mac")
        )
        checksum = run_corrupted(
            grid44(), seed=5, integrity=IntegrityConfig(mode="checksum")
        )
        assert mac.cc_bits == base.cc_bits
        assert checksum.cc_bits == base.cc_bits
        assert mac.result == base.result
        assert mac.extra["overhead_bits"] > base.extra.get("overhead_bits", 0)
        # mac tags are wider than checksums.
        assert mac.extra["overhead_bits"] > checksum.extra["overhead_bits"]

    def test_clean_run_verifies_every_frame(self):
        coord = as_integrity(IntegrityConfig(mode="mac"))
        record = run_corrupted(grid44(), seed=6, integrity=coord)
        assert record.correct
        # Local broadcast: one sent frame is verified once per receiving
        # neighbour, so verified >= frames.
        assert coord.frames > 0
        assert coord.verified >= coord.frames
        assert sum(coord.rejected.values()) == 0


class TestQuarantine:
    def test_persistently_corrupt_link_is_quarantined(self):
        topo = grid44()
        inj = MessageCorruption(
            bitflip=0.01, seed=1, link_scale={(1, 0): 1000.0, (5, 4): 1000.0}
        )
        record = run_corrupted(
            topo,
            seed=1,
            corrupt=inj,
            integrity=IntegrityConfig(mode="mac", quarantine_threshold=3),
        )
        quarantined = {tuple(l) for l in record.extra["quarantined_links"]}
        assert quarantined & {(1, 0), (5, 4)}
        assert record.extra["unresolved_corruptions"] == 0

    def test_quarantine_never_certifies_a_wrong_answer(self):
        # Frames starved by the quarantine are real data loss: the run
        # must degrade to an *uncertified* partial, never claim a
        # certified result that is wrong.
        inj = MessageCorruption(
            bitflip=0.01, seed=1, link_scale={(1, 0): 1000.0}
        )
        record = run_corrupted(
            grid44(),
            seed=1,
            corrupt=inj,
            integrity=IntegrityConfig(mode="mac", quarantine_threshold=3),
        )
        if record.extra["certified"] and record.extra["status"] == "exact":
            assert record.correct
        assert record.extra["unresolved_corruptions"] == 0

    def test_noisy_links_are_not_quarantined(self):
        # The score counts *consecutive* blamed rejections, so random
        # noise at CI rates never crosses the threshold even on long
        # runs — only persistent corrupters do.
        inj = MessageCorruption(bitflip=0.05, seed=3)
        record = run_corrupted(
            grid44(), seed=3, corrupt=inj, integrity=IntegrityConfig(mode="mac")
        )
        assert record.extra["quarantined_links"] == []
        assert record.correct and record.extra["certified"]


class TestCorruptionOracle:
    def test_oracle_flags_silent_acceptance(self):
        topo = grid44()
        rng = random.Random(2)
        inputs = make_inputs(topo, rng)
        inj = MessageCorruption(bitflip=0.05, seed=2)
        monitors = standard_monitors(
            topo, inputs, mode="record", corruption=[inj], integrity=None
        )
        record = safe_run_protocol(
            "unknown_f", topo, inputs, seed=2, rng=rng, strict=False,
            injectors=[inj], monitors=monitors,
        )
        oracle = next(
            m for m in monitors if isinstance(m, CorruptionOracleMonitor)
        )
        assert oracle.violations
        assert all(v.rule == "silent-corruption" for v in oracle.violations)
        assert "never rejected" in oracle.violations[0].message

    def test_oracle_silent_when_integrity_rejects_everything(self):
        topo = grid44()
        rng = random.Random(2)
        inputs = make_inputs(topo, rng)
        inj = MessageCorruption(bitflip=0.05, seed=2)
        record = run_corrupted(
            topo, seed=2, corrupt=inj, integrity=IntegrityConfig(mode="mac")
        )
        assert record.extra["unresolved_corruptions"] == 0

    def test_multiset_matcher_counts_duplicates(self):
        # Two identical delivered corruptions need two rejections.
        class Source:
            delivered_corruptions = [
                (0, 3, 1, 0, ("ack", (1,))),
                (0, 3, 1, 0, ("ack", (1,))),
            ]

        coord = as_integrity(IntegrityConfig(mode="mac"))
        coord._rejection_log.append((0, 3, 1, 0, ("ack", (1,))))
        unresolved = unresolved_corruptions([Source()], coord)
        assert len(unresolved) == 1


# --------------------------------------------------------------------- #
# Record / replay of corrupted runs.
# --------------------------------------------------------------------- #


class TestCorruptedReplay:
    def _capture(self, tmp_path, integrity):
        topo = grid44()
        rng = random.Random(3)
        inputs = make_inputs(topo, rng)
        injectors = [
            MessageFaults(drop=0.03, seed=3),
            MessageCorruption(bitflip=0.05, stale=0.02, seed=3),
        ]
        record = safe_run_protocol(
            "unknown_f", topo, inputs, seed=3, rng=rng, strict=False,
            injectors=injectors,
            recovery=RecoveryPolicy(
                transport=TransportConfig(retransmits=3, backoff_cap=4)
            ),
            integrity=integrity,
            capture_dir=str(tmp_path),
        )
        assert record.extra.get("bundle"), record.error
        return record, record.extra["bundle"]

    def test_corrupted_run_replays_bit_exactly(self, tmp_path):
        record, path = self._capture(tmp_path, IntegrityConfig(mode="mac"))
        assert record.extra["delivered_corruptions"] > 0
        outcome = replay_bundle(path)
        assert outcome.reproduced
        assert (
            outcome.record.extra["delivered_corruptions"]
            == record.extra["delivered_corruptions"]
        )
        assert outcome.record.extra["unresolved_corruptions"] == 0

    def test_replay_is_idempotent(self, tmp_path):
        _record, path = self._capture(tmp_path, IntegrityConfig(mode="mac"))
        first = replay_bundle(path)
        second = replay_bundle(path)
        assert first.record.as_dict() == second.record.as_dict()

    def test_unprotected_corrupted_run_also_replays(self, tmp_path):
        record, path = self._capture(tmp_path, None)
        outcome = replay_bundle(path, check_outcome=False)
        assert outcome.record.result == record.result

    def test_bundle_params_carry_integrity_config(self, tmp_path):
        _record, path = self._capture(
            tmp_path, IntegrityConfig(mode="checksum", key_seed=3)
        )
        bundle = ExecutionRecord.load(path)
        assert bundle.params["integrity"]["mode"] == "checksum"
        assert bundle.params["integrity"]["key_seed"] == 3


# --------------------------------------------------------------------- #
# Cache identity (the satellite bugfix).
# --------------------------------------------------------------------- #


class TestCacheIdentity:
    def _unit(self, **kwargs):
        defaults = dict(
            protocol="unknown_f",
            topology=grid_graph(3, 3),
            seed=0,
            f=2,
            b=42,
        )
        defaults.update(kwargs)
        return WorkUnit(**defaults)

    def test_corrupt_spec_changes_the_hash(self):
        base = self._unit()
        assert unit_cache_hash(base) == unit_cache_hash(self._unit())
        assert unit_cache_hash(self._unit(corrupt="bitflip:0.02")) != (
            unit_cache_hash(base)
        )
        assert unit_cache_hash(self._unit(corrupt="bitflip:0.02")) != (
            unit_cache_hash(self._unit(corrupt="bitflip:0.05"))
        )

    def test_integrity_config_changes_the_hash(self):
        base = self._unit()
        mac = self._unit(integrity=IntegrityConfig(mode="mac"))
        checksum = self._unit(integrity=IntegrityConfig(mode="checksum"))
        assert unit_cache_hash(mac) != unit_cache_hash(base)
        assert unit_cache_hash(mac) != unit_cache_hash(checksum)

    def test_coordinator_and_config_hash_identically(self):
        cfg = IntegrityConfig(mode="mac", key_seed=2)
        assert unit_cache_hash(self._unit(integrity=cfg)) == unit_cache_hash(
            self._unit(integrity=as_integrity(cfg))
        )

    def test_schema_enumerates_every_field(self):
        import dataclasses

        token = unit_cache_token(self._unit())
        assert token["version"] == CACHE_VERSION
        expected = sorted(
            f.name
            for f in dataclasses.fields(WorkUnit)
            if f.name not in EXCLUDED_FIELDS
        )
        assert token["schema"] == expected
        # Every schema field is present in the token itself, so a field
        # added later can never be silently missing from the identity.
        for name in expected:
            assert name in token

    def test_v1_style_token_mismatches_on_read(self, tmp_path):
        from repro.exec import ResultCache, execute_unit

        cache = ResultCache(str(tmp_path))
        unit = self._unit()
        path = cache.put(unit, execute_unit(unit))
        import json

        with open(path) as fh:
            entry = json.load(fh)
        entry["token"].pop("corrupt")  # simulate a pre-corruption entry
        entry["token"]["schema"] = [
            n for n in entry["token"]["schema"] if n != "corrupt"
        ]
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert cache.get(unit) is None


# --------------------------------------------------------------------- #
# Property: a single bit-flip under mac is never silently wrong.
# --------------------------------------------------------------------- #

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - property tests skip gracefully
    HAVE_HYPOTHESIS = False


PROPERTY_TOPOLOGIES = None
if HAVE_HYPOTHESIS:
    from repro.graphs import (
        balanced_tree,
        cycle_graph,
        hypercube_graph,
        random_geometric,
    )

    PROPERTY_TOPOLOGIES = [
        grid_graph(3, 3),
        grid_graph(4, 4),
        cycle_graph(10),
        balanced_tree(2, 15),
        hypercube_graph(3),
        random_geometric(12, rng=random.Random(3)),
    ]


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestSingleBitflipProperty:
    """ISSUE acceptance property: under ``--integrity mac``, any single
    bit-flip on the wire is either rejected-and-recovered (the run stays
    exact and correct) or degrades honestly — it is *never* silently
    wrong, on any topology in the stress matrix."""

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        topo_index=st.integers(0, 5),
        seed=st.integers(0, 2**20),
        protocol=st.sampled_from(["unknown_f", "algorithm1"]),
    )
    def test_single_bitflip_never_silently_wrong(
        self, topo_index, seed, protocol
    ):
        topo = PROPERTY_TOPOLOGIES[topo_index]
        rng = random.Random(seed)
        inputs = make_inputs(topo, rng)
        inj = MessageCorruption(bitflip=1.0, seed=seed, max_bitflips=1)
        kwargs = {}
        if protocol == "algorithm1":
            kwargs = dict(f=2, b=42)
        record = run_protocol(
            protocol,
            topo,
            inputs,
            rng=rng,
            strict=False,
            injectors=[inj],
            recovery=RecoveryPolicy(
                transport=TransportConfig(retransmits=4, backoff_cap=8)
            ),
            integrity=IntegrityConfig(mode="mac"),
            **kwargs,
        )
        # The corrupted copy must never be silently accepted...
        assert record.error is None, record.error
        assert record.extra["unresolved_corruptions"] == 0
        # ...and a result the runtime certifies as exact must be correct.
        if record.extra.get("certified") and record.extra.get("status") == "exact":
            assert record.correct
        # With a single flip and an intact retransmit budget the NACK
        # path always recovers the dropped frame: the run ends exact.
        assert record.correct, (topo.name, seed, protocol)
