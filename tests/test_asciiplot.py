"""ASCII chart rendering."""

import pytest

from repro.analysis.asciiplot import GLYPHS, plot_series, sparkline


class TestPlotSeries:
    def test_basic_render(self):
        text = plot_series(
            [1, 2, 3],
            {"up": [1, 10, 100], "down": [100, 10, 1]},
            title="T",
            width=30,
            height=8,
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert any("*" in line for line in lines)  # first series glyph
        assert any("o" in line for line in lines)  # second series glyph
        assert "x" not in GLYPHS[:2]

    def test_legend_lists_series(self):
        text = plot_series([1, 2], {"alpha": [1, 2], "beta": [2, 1]})
        assert "alpha" in text and "beta" in text

    def test_log_scale_skips_non_positive(self):
        text = plot_series([1, 2], {"s": [0, 10]}, log_y=True)
        assert "10" in text  # renders without error

    def test_linear_scale(self):
        text = plot_series([1, 2, 3], {"s": [1, 2, 3]}, log_y=False)
        assert "linear scale" in text

    def test_monotone_series_renders_monotone_columns(self):
        text = plot_series(
            [1, 2, 3, 4], {"s": [1, 10, 100, 1000]}, width=40, height=10
        )
        cols = [
            line.index("*")
            for line in text.splitlines()
            if line.startswith("|") and "*" in line
        ]
        # Higher values sit on upper lines and later columns, so scanning
        # downward the marks move left.
        assert cols == sorted(cols, reverse=True)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            plot_series([], {})
        with pytest.raises(ValueError):
            plot_series([1], {"s": [0]}, log_y=True)


class TestSparkline:
    def test_monotone_shape(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert line[0] < line[-1]  # block glyphs are ordered code points

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        line = sparkline(list(range(400)), width=40)
        assert len(line) == 40
