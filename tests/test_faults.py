"""Fault-injection middleware: determinism, budgets, model equivalence.

The acceptance property for the chaos layer lives here too: under message
drop/duplicate/delay with strict monitors, Algorithm 1 and the unknown-f
wrapper either produce an oracle-correct SUM or fail with an explicit
``InvariantViolation`` — and both outcomes actually occur.
"""

import random
import re

import pytest

from repro.adversary import FailureSchedule
from repro.analysis.runner import make_inputs, run_protocol, safe_run_protocol
from repro.core.algorithm1 import run_algorithm1
from repro.graphs import grid_graph
from repro.sim import Network, Part
from repro.sim.faults import FaultInjector, MessageFaults, ScheduledCrashes
from repro.sim.monitors import InvariantViolation, standard_monitors
from repro.sim.node import NodeHandler, RelayNode, SilentNode


class Beacon(SilentNode):
    def __init__(self, part, at=1):
        self.part = part
        self.at = at

    def on_round(self, rnd, inbox):
        return [self.part] if rnd == self.at else []


class Recorder(NodeHandler):
    """Remembers every delivery as (round, sender, kind)."""

    def __init__(self):
        self.received = []

    def on_round(self, rnd, inbox):
        for env in inbox:
            self.received.append((rnd, env.sender, env.part.kind))
        return []


def line3():
    return {0: [1], 1: [0, 2], 2: [1]}


def chatty_network(injector, rounds=20):
    """Node 0 broadcasts every round; node 2 records what arrives."""

    class Chatty(SilentNode):
        def on_round(self, rnd, inbox):
            return [Part("ping", (rnd,), 8)]

    recorder = Recorder()
    net = Network(
        line3(),
        {0: Chatty(), 1: RelayNode(), 2: recorder},
        injectors=[injector] if injector else (),
    )
    net.run(rounds, stop_on_output=False)
    return recorder.received


class TestMessageFaultsSpec:
    def test_from_spec_parses_all_keys(self):
        mf = MessageFaults.from_spec(
            "drop=0.1,dup=0.05,delay=0.2,reorder=0.3,max_delay=4", seed=9
        )
        assert mf.drop == 0.1
        assert mf.duplicate == 0.05
        assert mf.delay == 0.2
        assert mf.reorder == 0.3
        assert mf.max_delay == 4
        assert mf.seed == 9

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            MessageFaults.from_spec("corrupt=0.5")

    def test_from_spec_requires_key_value(self):
        with pytest.raises(ValueError, match="needs key=value"):
            MessageFaults.from_spec("drop")

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="drop rate"):
            MessageFaults(drop=1.5)
        with pytest.raises(ValueError, match="max_delay"):
            MessageFaults(max_delay=0)

    def test_bad_fragment_names_token_and_grammar(self):
        """Every malformed fragment is named verbatim, with the grammar."""
        for spec, bad_token in [
            ("drop=0.1,corrupt=0.5", "corrupt=0.5"),
            ("drop", "drop"),
            ("drop=fast", "drop=fast"),
            ("max_delay=2.5", "max_delay=2.5"),
            ("drop=0.1,drop=0.2", "drop=0.2"),
            ("dup=0.1,duplicate=0.2", "duplicate=0.2"),  # alias collision
        ]:
            with pytest.raises(ValueError) as exc_info:
                MessageFaults.from_spec(spec)
            message = str(exc_info.value)
            assert repr(bad_token) in message, (spec, message)
            assert MessageFaults.SPEC_GRAMMAR in message

    def test_good_fragments_before_bad_do_not_mask_the_error(self):
        with pytest.raises(ValueError, match="not a number"):
            MessageFaults.from_spec("drop=0.1,delay=lots")

    def test_empty_fragments_are_tolerated(self):
        mf = MessageFaults.from_spec("drop=0.1,,")
        assert mf.drop == 0.1

    def test_dash_alias_for_max_delay(self):
        assert MessageFaults.from_spec("max-delay=3").max_delay == 3


class TestRootCrashRejection:
    """All three scheduling paths refuse to crash the root, identically.

    The Section 2 model says the root never fails; a crash schedule that
    touches it is a configuration bug, and every entry point must say so
    with the same message: ``FailureSchedule.validate``,
    ``ScheduledCrashes``, and ``Network.schedule_crash``.
    """

    def _topology(self):
        from repro.graphs import path_graph

        return path_graph(4)  # root 0

    def test_failure_schedule_validate_rejects_root(self):
        from repro.sim.network import ROOT_CRASH_ERROR

        topology = self._topology()
        with pytest.raises(ValueError, match=re.escape(ROOT_CRASH_ERROR)):
            FailureSchedule({topology.root: 3}).validate(topology)

    def test_scheduled_crashes_reject_root_at_construction(self):
        from repro.sim.network import ROOT_CRASH_ERROR

        topology = self._topology()
        with pytest.raises(ValueError, match=re.escape(ROOT_CRASH_ERROR)):
            ScheduledCrashes({topology.root: 3}, root=topology.root)

    def test_scheduled_crashes_reject_root_at_attach(self):
        from repro.sim.network import ROOT_CRASH_ERROR

        net = Network(line3(), {u: SilentNode() for u in range(3)}, root=0)
        crashes = ScheduledCrashes({0: 3})  # root unknown until attach
        with pytest.raises(ValueError, match=re.escape(ROOT_CRASH_ERROR)):
            crashes.attach(net)

    def test_network_schedule_crash_rejects_root(self):
        from repro.sim.network import ROOT_CRASH_ERROR

        net = Network(line3(), {u: SilentNode() for u in range(3)}, root=0)
        with pytest.raises(ValueError, match=re.escape(ROOT_CRASH_ERROR)):
            net.schedule_crash(0, 5)

    def test_all_three_paths_raise_the_same_message(self):
        from repro.sim.network import ROOT_CRASH_ERROR

        topology = self._topology()
        messages = set()
        for trigger in (
            lambda: FailureSchedule({0: 3}).validate(topology),
            lambda: ScheduledCrashes({0: 3}, root=0),
            lambda: Network(
                line3(), {u: SilentNode() for u in range(3)}, root=0
            ).schedule_crash(0, 5),
        ):
            with pytest.raises(ValueError) as exc_info:
                trigger()
            messages.add(str(exc_info.value))
        assert messages == {ROOT_CRASH_ERROR}

    def test_non_root_crashes_still_accepted(self):
        net = Network(line3(), {u: SilentNode() for u in range(3)}, root=0)
        net.schedule_crash(2, 5)
        assert net.crash_rounds[2] == 5


class TestFaultKinds:
    def test_drops_lose_messages(self):
        clean = chatty_network(None)
        dropped = chatty_network(MessageFaults(drop=0.5, seed=1))
        assert len(dropped) < len(clean)

    def test_duplicates_add_messages(self):
        clean = chatty_network(None)
        duped = chatty_network(MessageFaults(duplicate=0.9, seed=1))
        assert len(duped) > len(clean)

    def test_delays_shift_arrival_rounds(self):
        delayed = chatty_network(MessageFaults(delay=1.0, max_delay=3, seed=1))
        # Every copy was delayed by >= 1 round: nothing from node 1 (the
        # relay's earliest hop lands at round 3) before round 4.
        assert delayed
        assert all(rnd >= 4 for rnd, _s, _k in delayed)

    def test_per_seed_determinism(self):
        runs = [
            chatty_network(
                MessageFaults(drop=0.3, duplicate=0.2, delay=0.2, seed=42)
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        different = chatty_network(
            MessageFaults(drop=0.3, duplicate=0.2, delay=0.2, seed=43)
        )
        assert different != runs[0]

    def test_budget_caps_respected(self):
        mf = MessageFaults(drop=1.0, max_drops=3, seed=0)
        received = chatty_network(mf)
        assert mf.counts.drops == 3
        assert received  # everything after the cap is delivered

    def test_protected_nodes_never_faulted(self):
        mf = MessageFaults(drop=1.0, protect=(0, 1, 2), seed=0)
        protected = chatty_network(mf)
        clean = chatty_network(None)
        assert protected == clean
        assert mf.counts.total == 0

    def test_counts_as_dict(self):
        mf = MessageFaults(drop=1.0, max_drops=2, seed=0)
        chatty_network(mf)
        assert mf.counts.as_dict()["drops"] == 2
        assert mf.counts.total == 2


class FixedDelay(FaultInjector):
    """Delay every copy from ``sender`` by exactly ``by`` rounds."""

    modifies_delivery = True

    def __init__(self, sender, by):
        super().__init__()
        self.sender = sender
        self.by = by

    def on_transmit(self, due, sender, receiver, part):
        if sender == self.sender:
            return [(due + self.by, part)]
        return [(due, part)]


class TestDelayedCopiesFromCrashedSenders:
    """Regression: a delayed copy must die with its sender.

    In the model a delivery at round ``r`` corresponds to a broadcast at
    ``r - 1``; a sender dead by then cannot have produced it.  The delay
    fault used to resurrect such ghost copies, letting a crashed node
    keep talking past its crash round.
    """

    def crashed_chatty(self, injector, crash_round):
        class Chatty(SilentNode):
            def on_round(self, rnd, inbox):
                return [Part("ping", (rnd,), 8)]

        recorder = Recorder()
        net = Network(
            line3(),
            {0: Chatty(), 1: recorder, 2: SilentNode()},
            crash_rounds={0: crash_round},
            injectors=[injector] if injector else (),
        )
        net.run(12, stop_on_output=False)
        return recorder.received

    def test_ghost_copy_past_crash_round_is_dropped(self):
        # Sender 0 crashes at round 5: its last broadcast is round 4,
        # normally delivered at round 5.  A +4 delay would land copies at
        # rounds 6..9 — all after the crash; none may arrive.
        received = self.crashed_chatty(FixedDelay(0, by=4), crash_round=5)
        assert all(rnd <= 5 for rnd, s, _k in received if s == 0)
        assert not any(rnd > 5 for rnd, s, _k in received if s == 0)

    def test_delivery_exactly_at_crash_round_survives(self):
        # A +1 delay moves the round-3 broadcast (due 4) to round 5 — the
        # crash round itself, i.e. the last in-model delivery; it stays.
        received = self.crashed_chatty(FixedDelay(0, by=1), crash_round=5)
        rounds = [rnd for rnd, s, _k in received if s == 0]
        assert 5 in rounds
        assert all(rnd <= 5 for rnd in rounds)

    def test_random_delays_never_resurrect_a_crashed_sender(self):
        for seed in range(6):
            received = self.crashed_chatty(
                MessageFaults(delay=1.0, max_delay=3, seed=seed),
                crash_round=4,
            )
            assert all(rnd <= 4 for rnd, s, _k in received if s == 0), (
                f"seed {seed}: ghost delivery after the sender's crash"
            )


class TestScheduledCrashes:
    def test_equivalent_to_crash_rounds_argument(self):
        def run_with(**kwargs):
            recorder = Recorder()
            net = Network(
                line3(),
                {
                    0: Beacon(Part("ping", (), 4)),
                    1: RelayNode(),
                    2: recorder,
                },
                **kwargs,
            )
            net.run(4, stop_on_output=False)
            return recorder.received

        legacy = run_with(crash_rounds={1: 2})
        injected = run_with(injectors=[ScheduledCrashes({1: 2})])
        assert legacy == injected

    def test_accepts_failure_schedule(self):
        schedule = FailureSchedule({1: 3})
        net = Network(
            line3(),
            {i: SilentNode() for i in range(3)},
            injectors=[ScheduledCrashes(schedule)],
        )
        assert net.crash_rounds == {1: 3}

    def test_earliest_round_wins_when_composed(self):
        net = Network(
            line3(),
            {i: SilentNode() for i in range(3)},
            crash_rounds={1: 5},
            injectors=[ScheduledCrashes({1: 2})],
        )
        assert net.crash_rounds[1] == 2


class TestFastPathEquivalence:
    def test_crash_only_injector_keeps_exact_delivery(self):
        inert = FaultInjector()
        net = Network(line3(), {i: SilentNode() for i in range(3)}, injectors=[inert])
        assert not net._faulty_delivery

    def test_noop_message_faults_matches_clean_run(self):
        # All rates zero: the scheduled-delivery path must reproduce the
        # exact-model inboxes (delivery next round, broadcast order).
        clean = chatty_network(None)
        noop = chatty_network(MessageFaults(seed=5))
        assert noop == clean

    def test_algorithm1_bitexact_with_inert_injector(self):
        topo = grid_graph(4, 4)
        rng = random.Random(3)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        base = run_algorithm1(topo, inputs, f=3, b=60, rng=random.Random(1))
        with_inert = run_algorithm1(
            topo,
            inputs,
            f=3,
            b=60,
            rng=random.Random(1),
            injectors=[FaultInjector()],
        )
        assert with_inert.result == base.result
        assert with_inert.stats.max_bits == base.stats.max_bits
        assert with_inert.rounds == base.rounds


class TestAcceptanceAbortOrCorrect:
    """Under injected faults + strict monitors: correct output or loud death.

    Seeds are chosen so each protocol demonstrates BOTH outcomes at least
    once over the seed range (guarded by assertions below).
    """

    SEEDS = range(8)
    RATES = dict(drop=0.05, duplicate=0.02, delay=0.03)

    def _outcomes(self, protocol, b=None):
        topo = grid_graph(5, 5)
        outcomes = []
        for seed in self.SEEDS:
            rng = random.Random(seed)
            inputs = make_inputs(topo, rng)
            monitors = standard_monitors(topo, inputs, mode="strict")
            try:
                record = run_protocol(
                    protocol,
                    topo,
                    inputs,
                    f=4,
                    b=b,
                    rng=rng,
                    strict=False,
                    injectors=[MessageFaults(seed=seed, **self.RATES)],
                    monitors=monitors,
                )
            except InvariantViolation as exc:
                outcomes.append(("violation", exc.rule))
                continue
            assert record.correct or record.result is None, (
                f"seed {seed}: silently wrong result {record.result}"
            )
            outcomes.append(("correct" if record.correct else "abort", None))
        return outcomes

    def test_algorithm1_aborts_or_is_correct(self):
        outcomes = self._outcomes("algorithm1", b=90)
        kinds = {kind for kind, _ in outcomes}
        assert "correct" in kinds
        assert "violation" in kinds

    def test_unknown_f_aborts_or_is_correct(self):
        outcomes = self._outcomes("unknown_f")
        kinds = {kind for kind, _ in outcomes}
        assert "correct" in kinds
        assert "violation" in kinds

    def test_safe_runner_turns_violation_into_error_row(self):
        topo = grid_graph(5, 5)
        seen_error = seen_correct = False
        for seed in self.SEEDS:
            rng = random.Random(seed)
            inputs = make_inputs(topo, rng)
            record = safe_run_protocol(
                "unknown_f",
                topo,
                inputs,
                seed=seed,
                rng=rng,
                strict=False,
                injectors=[MessageFaults(seed=seed, **self.RATES)],
                monitors=standard_monitors(topo, inputs, mode="strict"),
            )
            if record.failed:
                assert record.error_kind == "InvariantViolation"
                assert record.correct is False
                seen_error = True
            else:
                assert record.correct or record.result is None
                seen_correct = seen_correct or record.correct
        assert seen_error and seen_correct
