"""VERI (Algorithm 3): failed-parent/child detection, LFC detection,
one-sided error — Theorems 6 and 7 and the Table 2 guarantee matrix."""

import random

import pytest

from repro.adversary import (
    FailureSchedule,
    chain_failures,
    predicted_tree,
    random_failures,
)
from repro.core.agg import run_agg
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result, surviving_nodes
from repro.core.params import params_for
from repro.core.veri import VeriNode, run_agg_veri_pair
from repro.graphs import balanced_tree, cycle_graph, grid_graph, path_graph
from repro.sim.network import Network
from tests.conftest import indexed_inputs, unit_inputs


def run_pair(topo, inputs, t, schedule=None, c=2):
    return run_agg_veri_pair(topo, inputs, t=t, schedule=schedule, c=c)


def has_lfc(topo, schedule, t, c=2):
    """Ground-truth LFC oracle against the predicted failure-free tree.

    Valid when construction completes before any crash (our chain
    adversaries guarantee that): an LFC is a root-ward tree path of ``t``
    crashed nodes whose deepest element keeps a live, root-connected
    descendant in the same fragment.
    """
    parent, children = predicted_tree(topo)
    failed = schedule.failed_nodes
    alive_connected = topo.alive_component(failed)

    def live_descendant_exists(node):
        stack = [node]
        while stack:
            u = stack.pop()
            for ch in children[u]:
                if ch in failed:
                    stack.append(ch)
                elif ch in alive_connected:
                    return True
        return False

    for tail in failed:
        chain = []
        walker = tail
        while walker in failed:
            chain.append(walker)
            walker = parent[walker]
            if walker == -1:
                break
        if len(chain) >= t and live_descendant_exists(tail):
            return True
    return False


class TestTheorem6Complexity:
    def test_terminates_within_5cd_plus_3_rounds(self, grid44):
        pair = run_pair(grid44, unit_inputs(grid44), t=1)
        assert pair.veri_stats.rounds_executed == 5 * 2 * grid44.diameter + 3

    def test_cc_within_overflow_budget(self, small_topologies):
        for topo in small_topologies:
            pair = run_pair(topo, indexed_inputs(topo), t=2)
            params = params_for(topo, t=2)
            assert pair.veri_stats.max_bits <= params.veri_bit_budget + 16

    def test_failure_free_veri_is_cheap(self, grid55):
        # Without failures only the detect bits and leaf waves circulate.
        pair = run_pair(grid55, unit_inputs(grid55), t=3)
        params = params_for(grid55, t=0)
        assert pair.veri_stats.max_bits <= params.veri_bit_budget


class TestTheorem7TrueSide:
    """At most t edge failures => VERI outputs true."""

    def test_no_failures_true(self, small_topologies):
        for topo in small_topologies:
            pair = run_pair(topo, unit_inputs(topo), t=2)
            assert pair.veri_output is True, topo.name

    @pytest.mark.parametrize("seed", range(8))
    def test_tolerable_failures_true(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        t = 6
        horizon = 12 * 2 * topo.diameter + 7
        schedule = random_failures(
            topo, f=t, rng=rng, first_round=1, last_round=horizon
        )
        pair = run_pair(topo, {u: 1 for u in topo.nodes()}, t=t, schedule=schedule)
        assert pair.veri_output is True
        assert not pair.agg_aborted

    def test_accepted_pair_result_is_correct(self):
        # Line 4 of Algorithm 1 relies on acceptance implying correctness.
        for seed in range(6):
            topo = grid_graph(5, 5)
            rng = random.Random(40 + seed)
            schedule = random_failures(
                topo, f=8, rng=rng, first_round=1, last_round=400
            )
            inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
            pair = run_pair(topo, inputs, t=8, schedule=schedule)
            if pair.accepted:
                end = 12 * 2 * topo.diameter + 7
                assert is_correct_result(
                    pair.agg_result, SUM, topo, inputs, schedule, end
                )


class TestTheorem7FalseSide:
    """An LFC exists => VERI outputs false."""

    @pytest.mark.parametrize("t", [2, 3, 4])
    def test_chain_during_aggregation_detected(self, t):
        topo = grid_graph(6, 6)
        cd = 2 * topo.diameter
        schedule = chain_failures(
            topo, chain_length=t, at_round=2 * cd + 2, rng=random.Random(t)
        )
        assert schedule is not None
        if not has_lfc(topo, schedule, t):
            pytest.skip("constructed chain's tail lost all live descendants")
        pair = run_pair(topo, unit_inputs(topo), t=t, schedule=schedule)
        assert pair.veri_output is False

    def test_chain_during_veri_detected(self):
        # The chain fails between AGG and VERI: AGG's result misses the
        # chain's subtree, the subtree is still connected via grid shortcuts,
        # and VERI must notice.
        topo = grid_graph(6, 6)
        t = 3
        agg_rounds = 7 * 2 * topo.diameter + 4
        schedule = chain_failures(
            topo, chain_length=t, at_round=agg_rounds + 1, rng=random.Random(9)
        )
        assert schedule is not None
        if not has_lfc(topo, schedule, t):
            pytest.skip("constructed chain's tail lost all live descendants")
        pair = run_pair(topo, unit_inputs(topo), t=t, schedule=schedule)
        assert pair.veri_output is False

    def test_lfc_oracle_matches_on_no_failure(self):
        topo = grid_graph(4, 4)
        assert not has_lfc(topo, FailureSchedule(), 2)


class TestTable2Scenarios:
    """The paper's guarantee matrix, checked over many seeded trials."""

    def test_scenario1_no_more_than_t_failures(self):
        topo = grid_graph(5, 5)
        t = 5
        for seed in range(6):
            rng = random.Random(seed)
            schedule = random_failures(
                topo, f=t, rng=rng, first_round=1, last_round=500
            )
            inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
            pair = run_pair(topo, inputs, t=t, schedule=schedule)
            end = 12 * 2 * topo.diameter + 7
            assert not pair.agg_aborted
            assert pair.veri_output is True
            assert is_correct_result(
                pair.agg_result, SUM, topo, inputs, schedule, end
            )

    def test_scenario2_many_failures_no_lfc(self):
        # More than t edge failures but scattered: AGG must output correct
        # or abort (VERI may say anything).
        topo = grid_graph(6, 6)
        t = 3
        for seed in range(6):
            rng = random.Random(200 + seed)
            schedule = random_failures(
                topo, f=10, rng=rng, first_round=1, last_round=500
            )
            if has_lfc(topo, schedule, t):
                continue
            inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
            pair = run_pair(topo, inputs, t=t, schedule=schedule)
            end = 12 * 2 * topo.diameter + 7
            assert pair.agg_aborted or is_correct_result(
                pair.agg_result, SUM, topo, inputs, schedule, end
            )

    def test_scenario3_lfc_exists(self):
        topo = grid_graph(6, 6)
        t = 2
        cd = 2 * topo.diameter
        found = 0
        for seed in range(8):
            schedule = chain_failures(
                topo, chain_length=t, at_round=2 * cd + 2, rng=random.Random(seed)
            )
            if schedule is None or not has_lfc(topo, schedule, t):
                continue
            found += 1
            pair = run_pair(topo, unit_inputs(topo), t=t, schedule=schedule)
            assert pair.veri_output is False
        assert found >= 3  # the scenario family must actually materialize


class TestDetectionMechanics:
    def test_failed_parent_claims_reach_root(self):
        topo = grid_graph(5, 5)
        agg_rounds = 7 * 2 * topo.diameter + 4
        # Node 12's death right after AGG makes its children orphans in VERI.
        schedule = FailureSchedule({12: agg_rounds + 1})
        agg = run_agg(topo, unit_inputs(topo), t=3, schedule=schedule)
        params = agg.nodes[0].p
        veri_nodes = {
            u: VeriNode(params, u, agg.nodes[u].state) for u in topo.nodes()
        }
        shifted = {u: max(1, r - params.agg_rounds) for u, r in schedule.crash_rounds.items()}
        net = Network(topo.adjacency, veri_nodes, shifted)
        net.run(params.veri_rounds, stop_on_output=False)
        claimed = {v for (v, _x, _c) in veri_nodes[0].failed_parent_claims}
        assert 12 in claimed

    def test_failed_child_claims_reach_root(self):
        topo = grid_graph(5, 5)
        agg_rounds = 7 * 2 * topo.diameter + 4
        schedule = FailureSchedule({12: agg_rounds + 1})
        agg = run_agg(topo, unit_inputs(topo), t=3, schedule=schedule)
        params = agg.nodes[0].p
        veri_nodes = {
            u: VeriNode(params, u, agg.nodes[u].state) for u in topo.nodes()
        }
        shifted = {u: max(1, r - params.agg_rounds) for u, r in schedule.crash_rounds.items()}
        net = Network(topo.adjacency, veri_nodes, shifted)
        net.run(params.veri_rounds, stop_on_output=False)
        assert 12 in veri_nodes[0].failed_children

    def test_no_spurious_claims_without_failures(self, grid55):
        agg = run_agg(grid55, unit_inputs(grid55), t=2)
        params = agg.nodes[0].p
        veri_nodes = {
            u: VeriNode(params, u, agg.nodes[u].state) for u in grid55.nodes()
        }
        net = Network(grid55.adjacency, veri_nodes, {})
        net.run(params.veri_rounds, stop_on_output=False)
        root = veri_nodes[grid55.root]
        assert root.failed_parent_claims == set()
        assert root.failed_children == set()
        assert root.output is True

    def test_single_orphan_is_not_an_lfc_tail(self):
        # One failed parent with live children, chain length 1 < t: VERI
        # should still answer true (not_lfc_tail determinations arrive).
        topo = grid_graph(5, 5)
        t = 3
        cd = 2 * topo.diameter
        schedule = FailureSchedule({12: 2 * cd + 2})
        pair = run_pair(topo, unit_inputs(topo), t=t, schedule=schedule)
        assert pair.veri_output is True
