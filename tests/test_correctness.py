"""The Section 2 result-correctness oracle."""

import pytest

from repro.adversary import FailureSchedule
from repro.core.caaf import MAX, MIN, SUM, XOR, bounded_min
from repro.core.correctness import (
    achievable_results_exhaustive,
    correctness_interval,
    exact_aggregate,
    exact_sum,
    is_correct_result,
    surviving_nodes,
)
from repro.graphs import path_graph, star_graph


class TestSurvivors:
    def test_no_failures_everyone_survives(self):
        topo = path_graph(5)
        assert surviving_nodes(topo, FailureSchedule(), 100) == set(range(5))

    def test_crashed_nodes_excluded(self):
        topo = path_graph(5)
        s = FailureSchedule({4: 10})
        assert surviving_nodes(topo, s, 10) == {0, 1, 2, 3}

    def test_crash_after_end_does_not_count(self):
        topo = path_graph(5)
        s = FailureSchedule({4: 50})
        assert surviving_nodes(topo, s, 10) == set(range(5))

    def test_partitioned_nodes_count_as_failed(self):
        # The model: disconnected-from-root == failed.
        topo = path_graph(5)
        s = FailureSchedule({2: 5})
        assert surviving_nodes(topo, s, 10) == {0, 1}


class TestInterval:
    def test_sum_interval(self):
        inputs = {0: 1, 1: 2, 2: 3}
        assert correctness_interval(SUM, inputs, {0, 1}) == (3, 6)

    def test_max_interval(self):
        inputs = {0: 1, 1: 9, 2: 3}
        assert correctness_interval(MAX, inputs, {0, 2}) == (3, 9)

    def test_min_interval_order_agnostic(self):
        caaf = bounded_min(100)
        inputs = {0: 5, 1: 2}
        lo, hi = correctness_interval(caaf, inputs, {0})
        assert (lo, hi) == (2, 5)

    def test_interval_degenerate_when_all_survive(self):
        inputs = {0: 1, 1: 2}
        assert correctness_interval(SUM, inputs, {0, 1}) == (3, 3)


class TestExhaustive:
    def test_enumerates_all_subsets(self):
        inputs = {0: 1, 1: 2, 2: 4}
        results = achievable_results_exhaustive(SUM, inputs, survivors={0})
        assert results == {1, 3, 5, 7}

    def test_non_monotone_xor(self):
        inputs = {0: 1, 1: 1, 2: 1}
        results = achievable_results_exhaustive(XOR, inputs, survivors={0})
        assert results == {0, 1}

    def test_caps_optional_count(self):
        inputs = {u: 1 for u in range(30)}
        with pytest.raises(ValueError, match="exhaustive"):
            achievable_results_exhaustive(SUM, inputs, survivors=set())


class TestIsCorrect:
    def _setup(self):
        topo = path_graph(4)
        inputs = {0: 10, 1: 20, 2: 30, 3: 40}
        schedule = FailureSchedule({3: 5})
        return topo, inputs, schedule

    def test_none_is_never_correct(self):
        topo, inputs, schedule = self._setup()
        assert not is_correct_result(None, SUM, topo, inputs, schedule, 10)

    def test_interval_endpoints_correct(self):
        topo, inputs, schedule = self._setup()
        assert is_correct_result(60, SUM, topo, inputs, schedule, 10)
        assert is_correct_result(100, SUM, topo, inputs, schedule, 10)

    def test_inside_but_unachievable_sum_fails_exhaustive_check(self):
        # Footnote 6's strict definition: 75 is inside [60, 100] but equals
        # no subset aggregate.
        topo, inputs, schedule = self._setup()
        assert is_correct_result(75, SUM, topo, inputs, schedule, 10)
        assert not is_correct_result(
            75, SUM, topo, inputs, schedule, 10, exhaustive=True
        )

    def test_outside_interval_incorrect(self):
        topo, inputs, schedule = self._setup()
        assert not is_correct_result(59, SUM, topo, inputs, schedule, 10)
        assert not is_correct_result(101, SUM, topo, inputs, schedule, 10)

    def test_non_monotone_uses_exhaustive_automatically(self):
        topo = path_graph(3)
        inputs = {0: 1, 1: 1, 2: 1}
        schedule = FailureSchedule({2: 2})
        # XOR of survivors {0,1} = 0; including node 2 gives 1.
        assert is_correct_result(0, XOR, topo, inputs, schedule, 10)
        assert is_correct_result(1, XOR, topo, inputs, schedule, 10)
        assert not is_correct_result(2, XOR, topo, inputs, schedule, 10)

    def test_exact_helpers(self):
        inputs = {0: 3, 1: 4}
        assert exact_sum(inputs) == 7
        assert exact_aggregate(MAX, inputs) == 4
