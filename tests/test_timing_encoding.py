"""Timing codes: the executable Omega(logN/logb) story (Theorem 2, term 2)."""

import math
import random

import pytest

from repro.lowerbound.timing_encoding import (
    beacons_needed,
    bits_per_beacon,
    decode_by_timing,
    encode_by_timing,
    min_messages_for,
    sum_output_entropy_bits,
    theorem2_second_term,
    timing_channel_capacity,
    transmitted_bits,
)


class TestEncoderDecoder:
    @pytest.mark.parametrize("b", [2, 4, 7, 16, 100])
    def test_round_trip_exhaustive_small_values(self, b):
        k = 6
        for value in range(1 << k):
            rounds = encode_by_timing(value, k, b)
            assert decode_by_timing(rounds, k, b) == value

    def test_round_trip_random_large_values(self):
        rng = random.Random(0)
        for _ in range(30):
            k = rng.randint(1, 40)
            b = rng.randint(2, 512)
            value = rng.randrange(1 << k)
            rounds = encode_by_timing(value, k, b)
            assert decode_by_timing(rounds, k, b) == value

    def test_transmitted_bits_match_formula(self):
        k, b = 20, 16  # 4 payload bits per beacon -> 5 beacons
        rounds = encode_by_timing(12345, k, b)
        assert transmitted_bits(rounds) == beacons_needed(k, b) == 5

    def test_beacons_shrink_as_b_grows(self):
        k = 30
        counts = [beacons_needed(k, b) for b in (2, 8, 64, 1024)]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 3  # 30 bits / 10 bits-per-beacon

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_by_timing(8, 3, 4)

    def test_decode_rejects_out_of_window_beacon(self):
        with pytest.raises(ValueError):
            decode_by_timing([99], 2, 4)

    def test_zero_bits_needs_no_beacons(self):
        assert beacons_needed(0, 8) == 0
        assert encode_by_timing(0, 0, 8) == []


class TestCapacityBound:
    def test_capacity_formula(self):
        assert timing_channel_capacity(4, 1) == 4 * 2
        assert timing_channel_capacity(4, 2) == 6 * 4
        assert timing_channel_capacity(3, 5) == 0  # more messages than rounds

    def test_min_messages_is_consistent_with_capacity(self):
        for k in (1, 4, 10):
            for horizon in (64, 256):
                m = min_messages_for(k, horizon)
                assert timing_channel_capacity(horizon, m) >= (1 << k)
                if m > 0:
                    assert timing_channel_capacity(horizon, m - 1) < (1 << k)

    def test_encoder_respects_the_lower_bound(self):
        # The constructive encoder, over its actual horizon, can never beat
        # the counting bound.
        for k in (8, 16, 24):
            for b in (4, 32, 256):
                horizon = beacons_needed(k, b) * b
                assert beacons_needed(k, b) >= min_messages_for(k, horizon)

    def test_lower_bound_scales_like_k_over_log_rounds(self):
        k = 20
        for horizon in (64, 1024, 16384):
            m = min_messages_for(k, horizon)
            predicted = k / math.log2(2 * horizon)
            assert m >= predicted - 1
            assert m <= 2 * predicted + 2

    def test_impossible_parameters_rejected(self):
        with pytest.raises(ValueError):
            min_messages_for(10, 2)  # 2 rounds cannot convey 10 bits


class TestTheorem2Connection:
    def test_sum_entropy_floor(self):
        assert sum_output_entropy_bits(1024) == 10

    def test_second_term_decreases_in_b(self):
        values = [theorem2_second_term(1 << 20, b) for b in (4, 64, 4096)]
        assert values == sorted(values, reverse=True)

    def test_second_term_matches_encoder_cost_shape(self):
        # The constructive scheme transmits Theta(logN/logb) bits for the
        # root to learn a logN-bit output.
        n = 1 << 16
        for b in (4, 64, 1024):
            k = sum_output_entropy_bits(n)
            actual = beacons_needed(k, b)
            bound = theorem2_second_term(n, b)
            assert bound / 2 <= actual <= 3 * bound + 2
