"""Algorithm 1: plan arithmetic, interval selection, and Theorem 1."""

import math
import random

import pytest

from repro.adversary import (
    FailureSchedule,
    concentrated_failures,
    random_failures,
    spread_failures,
)
from repro.core.algorithm1 import TradeoffPlan, run_algorithm1
from repro.core.caaf import MAX, SUM
from repro.core.correctness import is_correct_result
from repro.core.params import params_for
from repro.graphs import cycle_graph, grid_graph, path_graph
from tests.conftest import indexed_inputs, unit_inputs


def make_plan(topo, b, f, c=2):
    return TradeoffPlan(params=params_for(topo, c=c), b=b, f=f)


class TestPlanArithmetic:
    def test_x_formula(self, grid44):
        plan = make_plan(grid44, b=100, f=10)
        assert plan.x == (100 - 4) // 38

    def test_t_formula(self, grid44):
        plan = make_plan(grid44, b=100, f=10)
        assert plan.t == (2 * 10) // plan.x

    def test_minimum_b_accepted(self, grid44):
        plan = make_plan(grid44, b=42, f=1)
        assert plan.x == 1

    def test_b_below_21c_rejected(self, grid44):
        with pytest.raises(ValueError, match="21c"):
            make_plan(grid44, b=41, f=1)

    def test_f_zero_rejected(self, grid44):
        with pytest.raises(ValueError, match="f >= 1"):
            make_plan(grid44, b=50, f=0)

    def test_intervals_fit_before_bruteforce(self, grid44):
        plan = make_plan(grid44, b=120, f=5)
        last_end = plan.interval_start(plan.x) + plan.interval_rounds - 1
        assert last_end <= plan.bruteforce_start - 1

    def test_interval_out_of_range_rejected(self, grid44):
        plan = make_plan(grid44, b=120, f=5)
        with pytest.raises(ValueError):
            plan.interval_start(plan.x + 1)

    def test_total_rounds_is_bd(self, grid44):
        plan = make_plan(grid44, b=120, f=5)
        assert plan.total_rounds == 120 * grid44.diameter

    def test_selection_draws_logN_values(self, grid44):
        plan = make_plan(grid44, b=800, f=5)
        selected = plan.select_intervals(random.Random(0))
        assert 1 <= len(selected) <= math.ceil(math.log2(16))
        assert selected == sorted(set(selected))
        assert all(1 <= i <= plan.x for i in selected)

    def test_selection_varies_with_coins(self, grid44):
        plan = make_plan(grid44, b=800, f=5)
        picks = {tuple(plan.select_intervals(random.Random(s))) for s in range(20)}
        assert len(picks) > 1


class TestFailureFreeRuns:
    def test_exact_sum(self, grid44):
        inputs = indexed_inputs(grid44)
        out = run_algorithm1(grid44, inputs, f=3, b=50, rng=random.Random(0))
        assert out.result == sum(inputs.values())
        assert not out.used_bruteforce

    def test_terminates_at_first_selected_interval(self, grid44):
        out = run_algorithm1(
            grid44, unit_inputs(grid44), f=3, b=200, rng=random.Random(1)
        )
        assert out.winning_interval == out.selected_intervals[0]
        assert out.pairs_run == 1

    def test_tc_within_budget(self, grid44):
        for b in (42, 90, 200):
            out = run_algorithm1(
                grid44, unit_inputs(grid44), f=2, b=b, rng=random.Random(2)
            )
            assert out.rounds <= b * grid44.diameter
            assert out.flooding_rounds <= b

    def test_works_on_path_and_cycle(self):
        for topo in (path_graph(8), cycle_graph(9)):
            inputs = indexed_inputs(topo)
            out = run_algorithm1(topo, inputs, f=2, b=45, rng=random.Random(3))
            assert out.result == sum(inputs.values()), topo.name

    def test_max_caaf_supported(self, grid44):
        inputs = {u: (u * 13) % 31 for u in grid44.nodes()}
        out = run_algorithm1(
            grid44, inputs, f=2, b=50, caaf=MAX, rng=random.Random(4)
        )
        assert out.result == max(inputs.values())


class TestAlwaysCorrect:
    """Theorem 1's correctness claim: the output is always correct."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_adversaries(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        f = 8
        b = 80
        schedule = random_failures(
            topo, f=f, rng=rng, first_round=1, last_round=b * topo.diameter
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_algorithm1(
            topo, inputs, f=f, b=b, schedule=schedule, rng=random.Random(seed + 99)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    @pytest.mark.parametrize("seed", range(5))
    def test_concentrated_adversaries(self, seed):
        # All failures inside one early interval: the random interval
        # selection must still find a clean interval or fall back.
        topo = grid_graph(5, 5)
        rng = random.Random(1000 + seed)
        b = 80
        plan_probe = make_plan(topo, b=b, f=10)
        window = (1, plan_probe.interval_rounds)
        schedule = concentrated_failures(topo, 10, rng, window=window)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_algorithm1(
            topo, inputs, f=10, b=b, schedule=schedule, rng=random.Random(seed)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    @pytest.mark.parametrize("seed", range(5))
    def test_spread_adversaries(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(2000 + seed)
        b = 120
        schedule = spread_failures(topo, 8, rng, horizon=b * topo.diameter)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_algorithm1(
            topo, inputs, f=8, b=b, schedule=schedule, rng=random.Random(seed)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)


class TestCommunicationShape:
    def test_cc_decreases_with_b(self):
        # Theorem 1: CC ~ f/b log^2 N + log^2 N falls as b grows (until the
        # log^2 N floor).  Compare the extreme budgets.
        topo = grid_graph(5, 5)
        f = 10
        inputs = unit_inputs(topo)
        small_b = run_algorithm1(topo, inputs, f=f, b=42, rng=random.Random(0))
        large_b = run_algorithm1(topo, inputs, f=f, b=800, rng=random.Random(0))
        assert large_b.stats.max_bits < small_b.stats.max_bits

    def test_pairs_bounded_by_selection(self, grid55):
        out = run_algorithm1(
            grid55, unit_inputs(grid55), f=4, b=400, rng=random.Random(7)
        )
        assert out.pairs_run <= math.ceil(math.log2(grid55.n_nodes))

    def test_unselected_intervals_cost_nothing(self, grid44):
        # With a huge b, the first selected interval may be late; before it,
        # no node sends anything, so CC only reflects one pair.
        out = run_algorithm1(
            grid44, unit_inputs(grid44), f=1, b=500, rng=random.Random(3)
        )
        plan = out.plan
        pair_budget = (
            params_for(grid44, t=plan.t).agg_bit_budget
            + params_for(grid44, t=plan.t).veri_bit_budget
        )
        assert out.stats.max_bits <= pair_budget * out.pairs_run + 32


class TestBruteforceFallback:
    def test_fallback_produces_correct_result(self):
        # Force the fallback by concentrating failures into EVERY interval:
        # use f large and windows covering the whole horizon densely, plus a
        # deterministic rng seed whose selected intervals all contain
        # failures.  Simpler: make all AGG pairs fail by crashing many nodes
        # early, exceeding every interval's tolerance.
        topo = grid_graph(5, 5)
        b = 42  # x = 1, t = 2f
        f = 16
        rng = random.Random(5)
        schedule = concentrated_failures(
            topo, f, rng, window=(1, 7 * 2 * topo.diameter)
        )
        inputs = {u: 1 for u in topo.nodes()}
        out = run_algorithm1(
            topo, inputs, f=f, b=b, schedule=schedule, rng=random.Random(5)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    def test_no_fallback_without_failures(self, grid44):
        out = run_algorithm1(
            grid44, unit_inputs(grid44), f=2, b=50, rng=random.Random(0)
        )
        assert not out.used_bruteforce


class TestModelValidation:
    def test_schedule_over_budget_rejected(self, grid44):
        schedule = FailureSchedule({5: 1, 6: 1, 9: 1, 10: 1})
        with pytest.raises(ValueError, match="budget"):
            run_algorithm1(grid44, unit_inputs(grid44), f=1, b=50, schedule=schedule)

    def test_root_failure_rejected(self, grid44):
        schedule = FailureSchedule({0: 5})
        with pytest.raises(ValueError, match="root"):
            run_algorithm1(grid44, unit_inputs(grid44), f=5, b=50, schedule=schedule)
