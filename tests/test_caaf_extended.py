"""GCD/LCM CAAFs and running non-standard operators through the protocols."""

import math
import random

import pytest

from repro.core import run_agg, run_algorithm1
from repro.core.caaf import GCD, bounded_lcm
from repro.graphs import grid_graph, path_graph


class TestGcd:
    def test_combine(self):
        assert GCD.aggregate_inputs([12, 18, 24]) == 6

    def test_identity_is_neutral(self):
        assert GCD.op(0, 42) == 42
        assert GCD.combine([]) == 0

    def test_coprime_inputs(self):
        assert GCD.aggregate_inputs([7, 13, 5]) == 1

    def test_laws(self):
        for a, b, c in [(12, 18, 24), (0, 5, 10), (9, 9, 9)]:
            assert GCD.op(a, b) == GCD.op(b, a)
            assert GCD.op(GCD.op(a, b), c) == GCD.op(a, GCD.op(b, c))

    def test_domain_bits_bounded_by_max_input(self):
        assert GCD.value_bits_for(10**6, 255) == 8

    def test_through_agg(self):
        topo = grid_graph(4, 4)
        inputs = {u: 6 * (u + 1) for u in topo.nodes()}
        out = run_agg(topo, inputs, t=1, caaf=GCD, max_input=max(inputs.values()))
        assert out.result == math.gcd(*inputs.values())

    def test_through_algorithm1(self):
        topo = path_graph(6)
        inputs = {u: 10 * (u % 3 + 1) for u in topo.nodes()}
        out = run_algorithm1(
            topo, inputs, f=1, b=45, caaf=GCD, rng=random.Random(0)
        )
        expected = 0
        for v in inputs.values():
            expected = math.gcd(expected, v)
        assert out.result == expected


class TestBoundedLcm:
    def test_combine_within_bound(self):
        lcm = bounded_lcm(1000)
        assert lcm.aggregate_inputs([4, 6, 10]) == 60

    def test_identity(self):
        lcm = bounded_lcm(100)
        assert lcm.combine([]) == 1
        assert lcm.op(1, 42) == 42

    def test_saturates_at_cap(self):
        lcm = bounded_lcm(50)
        assert lcm.aggregate_inputs([49, 48]) == 51  # overflow sentinel

    def test_saturation_is_absorbing_and_associative(self):
        lcm = bounded_lcm(50)
        cap = 51
        assert lcm.op(cap, 7) == cap
        for a, b, c in [(49, 48, 2), (10, 20, 30), (51, 51, 3)]:
            assert lcm.op(lcm.op(a, b), c) == lcm.op(a, lcm.op(b, c))

    def test_zero_inputs_clamped_to_one(self):
        lcm = bounded_lcm(100)
        assert lcm.aggregate_inputs([0, 5]) == 5

    def test_wire_width_is_capped(self):
        lcm = bounded_lcm(255)
        assert lcm.value_bits_for(10**6, 255) == 9  # fits cap = 256

    def test_through_agg(self):
        topo = grid_graph(3, 3)
        inputs = {u: (u % 3) + 2 for u in topo.nodes()}  # values 2..4
        lcm = bounded_lcm(1000)
        out = run_agg(topo, inputs, t=1, caaf=lcm, max_input=1000)
        assert out.result == 12  # lcm(2, 3, 4)
