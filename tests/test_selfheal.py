"""The self-healing runtime: transport, failover, certified partials.

Acceptance properties (ISSUE 3):

* Under the E19 chaos matrix (drop 0.05 / dup 0.02 / delay 0.03) with the
  reliable transport, Algorithm 1 and the unknown-``f`` wrapper return the
  **exact** SUM — zero aborts — with retransmit overhead accounted
  separately from protocol CC.
* With a crashed root and recovery enabled, a new epoch under an elected
  root completes and the certified coverage set equals exactly the
  surviving component's node set.
* Property (hypothesis): for any bounded message-fault schedule with
  ``D`` drops and ``L`` delays in total, a retransmit budget of
  ``D + L + 1`` guarantees every logical round delivers exactly the
  fault-free inbox sequence, with zero gaps.
"""

import random

import pytest

from repro.adversary.schedule import FailureSchedule
from repro.analysis.runner import make_inputs, run_protocol, safe_run_protocol
from repro.analysis.sweep import aggregate
from repro.core.algorithm1 import run_algorithm1
from repro.core.unknown_f import run_unknown_f
from repro.graphs import grid_graph, random_regular
from repro.graphs import properties
from repro.resilience import (
    RecoveryPolicy,
    ReliableTransport,
    TransportConfig,
    certify,
    run_with_recovery,
)
from repro.sim.faults import MessageFaults
from repro.sim.monitors import standard_monitors

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the toolchain
    HAVE_HYPOTHESIS = False


# --------------------------------------------------------------------- #
# Transport configuration.
# --------------------------------------------------------------------- #


class TestTransportConfig:
    def test_nack_slots_backoff_doubles_up_to_cap(self):
        cfg = TransportConfig(retransmits=4, backoff_cap=8)
        assert cfg.nack_slots == (2, 4, 8, 16)
        assert cfg.window == 17

    def test_linear_slots_with_cap_two(self):
        cfg = TransportConfig(retransmits=4, backoff_cap=2)
        assert cfg.nack_slots == (2, 4, 6, 8)
        assert cfg.window == 9

    def test_zero_retransmits_still_windows_for_detection(self):
        cfg = TransportConfig(retransmits=0)
        assert cfg.nack_slots == ()
        assert cfg.window == 2

    def test_jsonable_round_trip(self):
        cfg = TransportConfig(retransmits=3, backoff_cap=4)
        assert TransportConfig.from_jsonable(cfg.as_jsonable()) == cfg

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TransportConfig(retransmits=-1)
        with pytest.raises(ValueError):
            TransportConfig(retransmits=1, backoff_cap=0)


class TestRecoveryPolicy:
    def test_default_carries_a_transport(self):
        policy = RecoveryPolicy.default()
        assert policy.transport is not None
        assert policy.failover

    def test_jsonable_round_trip(self):
        policy = RecoveryPolicy(
            transport=TransportConfig(retransmits=2), max_epochs=2
        )
        assert RecoveryPolicy.from_jsonable(policy.as_jsonable()) == policy

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_epochs=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(election_stretch=0)


# --------------------------------------------------------------------- #
# Transport semantics on real protocol runs.
# --------------------------------------------------------------------- #


class TestTransportEquivalence:
    """A clean transport run is the protocol run, plus framed envelopes."""

    def setup_method(self):
        self.topo = grid_graph(4, 4)
        self.inputs = {u: u + 1 for u in self.topo.nodes()}
        self.expected = sum(self.inputs.values())

    def test_clean_run_same_result_and_protocol_bits(self):
        plain = run_unknown_f(self.topo, self.inputs)
        framed = run_unknown_f(
            self.topo, self.inputs, transport=TransportConfig(retransmits=2)
        )
        assert framed.result == plain.result == self.expected
        # Frame headers and NACKs are booked as overhead, so the
        # *protocol* bottleneck CC is identical to the raw model run.
        assert framed.stats.bits_sent == plain.stats.bits_sent
        assert framed.stats.max_overhead_bits > 0
        assert plain.stats.max_overhead_bits == 0

    def test_overhead_never_negative_per_part(self):
        framed = run_unknown_f(
            self.topo, self.inputs, transport=TransportConfig(retransmits=1)
        )
        assert all(v >= 0 for v in framed.stats.overhead_bits.values())

    def test_drops_recovered_exactly(self):
        out = run_unknown_f(
            self.topo,
            self.inputs,
            injectors=(MessageFaults(drop=0.05, seed=3),),
            transport=TransportConfig(retransmits=4),
        )
        assert out.result == self.expected
        assert not out.transport.live_gaps(out.network.crash_rounds)
        assert out.transport.counters()["retransmissions"] > 0

    def test_budget_exhaustion_leaves_live_gaps(self):
        out = run_unknown_f(
            self.topo,
            self.inputs,
            injectors=(MessageFaults(drop=0.25, seed=7),),
            transport=TransportConfig(retransmits=1),
        )
        assert out.transport.live_gaps(out.network.crash_rounds)


# --------------------------------------------------------------------- #
# Acceptance: E19 chaos matrix is now exact, not abort-or-correct.
# --------------------------------------------------------------------- #


class TestAcceptanceExactUnderChaos:
    """ISSUE 3 acceptance: the E19 matrix yields exact sums, zero aborts."""

    TOPO = grid_graph(5, 5)
    SEEDS = range(8)
    RATES = dict(drop=0.05, duplicate=0.02, delay=0.03)
    # Budget 5 with linear NACKing: at these rates the worst observed
    # frame needs 5 repair cycles (a delayed retransmission can slip past
    # one window); 4 leaves a rare live gap (seed 2).
    TRANSPORT = TransportConfig(retransmits=5, backoff_cap=2)

    def matrix(self, protocol, **kwargs):
        for seed in self.SEEDS:
            rng = random.Random(seed)
            inputs = make_inputs(self.TOPO, rng)
            record = run_protocol(
                protocol,
                self.TOPO,
                inputs,
                rng=rng,
                injectors=(MessageFaults(seed=seed, **self.RATES),),
                transport=self.TRANSPORT,
                strict_monitors=True,
                **kwargs,
            )
            assert record.result == sum(inputs.values()), (
                f"{protocol} seed {seed}: expected exact SUM, "
                f"got {record.result}"
            )
            assert record.extra["live_gaps"] == 0
            assert record.extra["overhead_bits"] > 0
            # Overhead is reported separately: protocol CC equals a
            # clean, transport-free run of the same configuration.
            yield record

    def test_algorithm1_exact_on_matrix(self):
        for record in self.matrix("algorithm1", f=4, b=90):
            assert record.correct

    def test_unknown_f_exact_on_matrix(self):
        for record in self.matrix("unknown_f"):
            assert record.correct

    def test_protocol_cc_matches_clean_run(self):
        rng = random.Random(0)
        inputs = make_inputs(self.TOPO, rng)
        clean = run_unknown_f(self.TOPO, inputs)
        framed = run_unknown_f(
            self.TOPO,
            inputs,
            injectors=(MessageFaults(seed=0, **self.RATES),),
            transport=self.TRANSPORT,
        )
        assert framed.result == clean.result
        # Lost-and-retransmitted frames carry their payload as overhead,
        # so per-node protocol bits can only shrink below the clean run
        # (a drop that still converges), never grow past it.
        assert framed.stats.max_bits <= clean.stats.max_bits


# --------------------------------------------------------------------- #
# Failover + certified partial results.
# --------------------------------------------------------------------- #


class TestRootFailover:
    def setup_method(self):
        self.topo = grid_graph(4, 4)
        self.inputs = {u: u + 1 for u in self.topo.nodes()}

    def test_coverage_equals_surviving_component(self):
        """ISSUE 3 acceptance: recovered coverage == surviving component."""
        schedule = FailureSchedule({0: 30, 5: 10})
        out = run_with_recovery(
            "unknown_f",
            self.topo,
            self.inputs,
            schedule=schedule,
            policy=RecoveryPolicy(transport=None),
        )
        partial = out.partial
        assert partial.certified
        assert partial.status == "partial"
        assert partial.elected_root is not None
        assert out.epochs[-1].root == partial.elected_root
        # Ground truth: the alive component around the elected root.
        survivors = set(
            properties.component_of(
                self.topo.adjacency,
                partial.elected_root,
                set(schedule.crash_rounds),
            )
        )
        assert set(partial.coverage) == survivors
        assert partial.value == sum(self.inputs[u] for u in survivors)
        assert partial.lower_bound == partial.value
        assert partial.upper_bound == sum(self.inputs.values())

    def test_no_failures_is_exact_and_certified(self):
        out = run_with_recovery(
            "unknown_f",
            self.topo,
            self.inputs,
            policy=RecoveryPolicy(transport=None),
        )
        assert out.partial.status == "exact"
        assert out.partial.certified
        assert out.partial.value == sum(self.inputs.values())
        assert len(out.epochs) == 1

    def test_failover_disabled_fails_honestly(self):
        out = run_with_recovery(
            "unknown_f",
            self.topo,
            self.inputs,
            schedule=FailureSchedule({0: 30}),
            policy=RecoveryPolicy(transport=None, failover=False),
        )
        assert out.partial.status == "failed"
        assert not out.partial.certified
        assert out.partial.value is None

    def test_algorithm1_recovers_too(self):
        out = run_with_recovery(
            "algorithm1",
            self.topo,
            self.inputs,
            schedule=FailureSchedule({0: 40}),
            f=2,
            b=90,
            rng=random.Random(5),
            policy=RecoveryPolicy(transport=None),
        )
        assert out.partial.certified
        assert out.partial.elected_root is not None
        survivors = set(
            properties.component_of(
                self.topo.adjacency, out.partial.elected_root, {0}
            )
        )
        assert set(out.partial.coverage) == survivors

    def test_runner_grades_recovery_rows(self):
        record = run_protocol(
            "unknown_f",
            self.topo,
            self.inputs,
            schedule=FailureSchedule({0: 30}),
            recovery=RecoveryPolicy(transport=None),
        )
        assert record.correct
        assert record.extra["certified"]
        assert record.extra["elected_root"] is not None
        assert record.extra["status"] == "partial"

    def test_runner_rejects_recovery_for_other_protocols(self):
        with pytest.raises(ValueError, match="transport/recovery"):
            run_protocol(
                "bruteforce",
                self.topo,
                self.inputs,
                recovery=RecoveryPolicy(),
            )

    def test_runner_rejects_transport_plus_recovery(self):
        with pytest.raises(ValueError, match="RecoveryPolicy"):
            run_protocol(
                "unknown_f",
                self.topo,
                self.inputs,
                transport=TransportConfig(),
                recovery=RecoveryPolicy(),
            )


class TestCertify:
    def test_exact_when_everyone_covered(self):
        from repro.core.caaf import SUM

        inputs = {0: 1, 1: 2, 2: 3}
        partial = certify(
            6, [0, 1, 2], [0, 1, 2], inputs, SUM,
            certified=True, reason="clean",
        )
        assert partial.status == "exact"
        assert partial.exact
        assert partial.lower_bound == partial.upper_bound == 6

    def test_uncertified_collapses_coverage(self):
        from repro.core.caaf import SUM

        inputs = {0: 1, 1: 2, 2: 3}
        partial = certify(
            5, [0, 1, 2], [0, 1], inputs, SUM,
            certified=False, reason="live gaps",
        )
        assert partial.status == "partial"
        assert partial.coverage == ()
        assert partial.lower_bound is None
        assert not partial.certified

    def test_none_value_is_failed(self):
        from repro.core.caaf import SUM

        partial = certify(
            None, [0, 1], [0, 1], {0: 1, 1: 2}, SUM,
            certified=True, reason="no output",
        )
        assert partial.status == "failed"
        assert not partial.certified

    def test_as_dict_reports_counts(self):
        from repro.core.caaf import SUM

        partial = certify(
            3, [0, 1, 2], [0, 1], {0: 1, 1: 2, 2: 3}, SUM,
            certified=True, reason="recovered",
        )
        row = partial.as_dict()
        assert row["coverage"] == 2
        assert row["missing"] == 1
        assert row["status"] == "partial"


# --------------------------------------------------------------------- #
# Monitors + sweeps under recovery.
# --------------------------------------------------------------------- #


class TestRecoveryMonitors:
    def test_recovery_stack_records_root_crash_without_raising(self):
        topo = grid_graph(3, 3)
        inputs = {u: 1 for u in topo.nodes()}
        monitors = standard_monitors(topo, inputs, mode="strict", recovery=True)
        record = run_protocol(
            "unknown_f",
            topo,
            inputs,
            schedule=FailureSchedule({0: 20}),
            recovery=RecoveryPolicy(transport=None),
            monitors=monitors,
        )
        assert record.correct
        assert any(
            "recovery-safe" in v for v in record.extra.get("violations", ())
        )

    def test_retransmit_budget_monitor_included_with_transport(self):
        topo = grid_graph(3, 3)
        inputs = {u: 1 for u in topo.nodes()}
        transport = ReliableTransport(TransportConfig(retransmits=1))
        monitors = standard_monitors(
            topo, inputs, mode="record", transport=transport
        )
        assert any(m.rule == "retransmit-budget" for m in monitors)

    def test_sweep_aggregate_counts_partial_and_certified(self):
        base = dict(
            protocol="unknown_f", topology="g", n_nodes=4, diameter=2,
            f_budget=None, f_actual=0, cc_bits=10, rounds=5,
            flooding_rounds=3,
        )
        from repro.analysis.runner import RunRecord

        rows = [
            RunRecord(result=6, correct=True,
                      extra={"status": "partial", "certified": True,
                             "overhead_bits": 100}, **base),
            RunRecord(result=7, correct=True,
                      extra={"status": "exact", "certified": True}, **base),
            RunRecord(result=5, correct=False,
                      extra={"status": "partial", "certified": False}, **base),
        ]
        point = aggregate({"x": 1}, rows)
        assert point.partial_rows == 2
        assert point.certified_rows == 2
        row = point.as_dict()
        assert row["partial_rows"] == 2
        assert row["certified_rows"] == 2
        assert row["overhead_mean"] == 100


# --------------------------------------------------------------------- #
# Satellite 2: retry backoff with seeded jitter + per-attempt latency.
# --------------------------------------------------------------------- #


class TestRetryBackoff:
    def _failing_args(self):
        topo = grid_graph(3, 3)
        return ("algorithm1", topo, {u: 1 for u in topo.nodes()})

    def test_sleeps_double_with_seeded_jitter(self, monkeypatch):
        import repro.analysis.runner as runner_mod

        sleeps = []
        monkeypatch.setattr(
            runner_mod.time, "sleep", lambda s: sleeps.append(s)
        )
        record = safe_run_protocol(
            *self._failing_args(), retries=3, backoff_s=0.1, seed=7
        )
        assert record.failed  # algorithm1 without f/b always raises
        assert len(sleeps) == 3
        # Base doubles per retry; jitter adds 0..50%.
        for i, slept in enumerate(sleeps):
            base = 0.1 * 2**i
            assert base <= slept <= base * 1.5
        # Same seed, same jitter — deterministic.
        sleeps2 = []
        monkeypatch.setattr(
            runner_mod.time, "sleep", lambda s: sleeps2.append(s)
        )
        safe_run_protocol(
            *self._failing_args(), retries=3, backoff_s=0.1, seed=7
        )
        assert sleeps == sleeps2

    def test_zero_backoff_never_sleeps(self, monkeypatch):
        import repro.analysis.runner as runner_mod

        monkeypatch.setattr(
            runner_mod.time,
            "sleep",
            lambda s: pytest.fail("slept with backoff_s=0"),
        )
        safe_run_protocol(*self._failing_args(), retries=2, seed=1)

    def test_error_rows_carry_attempt_latencies(self):
        record = safe_run_protocol(*self._failing_args(), retries=2, seed=3)
        assert record.failed
        assert record.attempts == 3
        latencies = record.extra["attempt_latencies"]
        assert len(latencies) == 3
        assert all(t >= 0 for t in latencies)

    def test_clean_single_attempt_rows_stay_clean(self):
        topo = grid_graph(3, 3)
        record = safe_run_protocol(
            "unknown_f", topo, {u: 1 for u in topo.nodes()}, seed=0
        )
        assert not record.failed
        assert "attempt_latencies" not in record.extra

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError, match="backoff_s"):
            safe_run_protocol(*self._failing_args(), backoff_s=-1)


# --------------------------------------------------------------------- #
# Property tests: transport recovery bound (satellite 3).
# --------------------------------------------------------------------- #

if HAVE_HYPOTHESIS:

    @st.composite
    def bounded_fault_spec(draw):
        """A MessageFaults spec with hard caps on every fault kind."""
        drops = draw(st.integers(min_value=0, max_value=4))
        delays = draw(st.integers(min_value=0, max_value=4))
        dups = draw(st.integers(min_value=0, max_value=4))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        reorder = draw(st.booleans())
        return dict(
            drop=0.5 if drops else 0.0,
            delay=0.5 if delays else 0.0,
            duplicate=0.5 if dups else 0.0,
            reorder=0.5 if reorder else 0.0,
            max_delay=draw(st.integers(min_value=1, max_value=3)),
            max_drops=drops,
            max_delays=delays,
            max_duplicates=dups,
            seed=seed,
        ), drops + delays

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=bounded_fault_spec())
    def test_transport_recovers_exact_sequence_within_budget(spec):
        """With budget ``D + L + 1`` the inbox sequence is fault-free.

        Every frame lost to a drop or pushed past its window by a delay
        costs at most one NACK-driven retransmission to repair, so a
        budget of (total drops + total delays + 1) can never be exhausted
        by the capped schedule — dedup and reorder buffering absorb the
        rest.  The run must equal the fault-free execution exactly: same
        result, same protocol bits, zero gaps.
        """
        fault_kwargs, budget_base = spec
        topo = grid_graph(3, 3)
        inputs = {u: 2 * u + 1 for u in topo.nodes()}
        clean = run_unknown_f(topo, inputs)
        out = run_unknown_f(
            topo,
            inputs,
            injectors=(MessageFaults(**fault_kwargs),),
            transport=TransportConfig(
                retransmits=budget_base + 1, backoff_cap=2
            ),
        )
        assert out.result == clean.result == sum(inputs.values())
        assert out.stats.bits_sent == clean.stats.bits_sent
        assert not out.transport.gaps
        assert not out.transport.budget_overruns()

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        retransmits=st.integers(min_value=0, max_value=3),
    )
    def test_dedup_and_reorder_are_free(seed, retransmits):
        """Duplicates + reorders alone never need the retransmit budget."""
        topo = grid_graph(3, 3)
        inputs = {u: u for u in topo.nodes()}
        clean = run_unknown_f(topo, inputs)
        out = run_unknown_f(
            topo,
            inputs,
            injectors=(
                MessageFaults(duplicate=0.4, reorder=0.6, seed=seed),
            ),
            transport=TransportConfig(retransmits=retransmits),
        )
        assert out.result == clean.result
        assert out.stats.bits_sent == clean.stats.bits_sent
        assert not out.transport.gaps
        assert out.transport.counters()["retransmissions"] == 0


# --------------------------------------------------------------------- #
# Random-regular topologies go through the whole stack (CI smoke shape).
# --------------------------------------------------------------------- #


class TestRandomRegularRecovery:
    def test_transport_on_random_regular(self):
        topo = random_regular(16, 3, rng=random.Random(2))
        rng = random.Random(2)
        inputs = make_inputs(topo, rng)
        record = run_protocol(
            "unknown_f",
            topo,
            inputs,
            rng=rng,
            injectors=(MessageFaults(drop=0.05, seed=2),),
            transport=TransportConfig(retransmits=4, backoff_cap=2),
        )
        assert record.correct
        assert record.result == sum(inputs.values())

    def test_cli_parses_regular_spec(self):
        from repro.cli import parse_topology

        topo = parse_topology("regular:16,3", seed=1)
        assert topo.n_nodes == 16
        assert all(len(v) == 3 for v in topo.adjacency.values())
