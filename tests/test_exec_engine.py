"""Unit tests for the execution engine package (repro.exec)."""

import io
import json
import os
import random
import time

import pytest

from repro.adversary import no_failures, random_failures
from repro.analysis.checkpoint import SweepCheckpoint, make_key
from repro.analysis.runner import RunTimeout, make_inputs, safe_run_protocol
from repro.exec import (
    ExecutionEngine,
    ProgressEmitter,
    ProgressTracker,
    ResultCache,
    SerialBackend,
    ShuffledBackend,
    WorkUnit,
    execute_unit,
    live_renderer,
    plan_order,
    pooled_map,
    unit_cache_hash,
    unit_cache_token,
)
from repro.exec.cache import parse_age
from repro.exec.pool import ProcessBackend, WorkerCrashed, _OrderedCheckpointWriter
from repro.exec.scheduler import build_schedule
from repro.graphs import grid_graph


def _unit(topology, seed=0, b=42, f=2, **kwargs):
    defaults = dict(
        protocol="algorithm1",
        topology=topology,
        seed=seed,
        f=f,
        b=b,
        schedule={
            "kind": "random",
            "f": f,
            "first_round": 1,
            "last_round": b * topology.diameter,
            "respect_c": None,
        },
        coords={"b": b, "f": f, "n": topology.n_nodes},
    )
    defaults.update(kwargs)
    return WorkUnit(**defaults)


# --------------------------------------------------------------------- #
# WorkUnit / scheduler.
# --------------------------------------------------------------------- #


class TestWorkUnit:
    def test_checkpoint_key_matches_serial_sweep(self, grid44):
        unit = _unit(grid44, seed=3)
        assert unit.checkpoint_key == make_key(
            "algorithm1", grid44.name, 3, unit.coords
        )

    def test_cost_hint_scales_with_size_and_horizon(self, grid44):
        small = _unit(grid44, b=42)
        big = _unit(grid44, b=84)
        assert big.cost_hint > small.cost_hint
        bigger_graph = _unit(grid_graph(6, 6), b=42)
        assert bigger_graph.cost_hint > small.cost_hint

    def test_label_mentions_protocol_seed_and_coords(self, grid44):
        label = _unit(grid44, seed=7).label()
        assert "algorithm1" in label and "s7" in label and "b42" in label

    def test_units_are_picklable(self, grid44):
        import pickle

        unit = _unit(grid44)
        clone = pickle.loads(pickle.dumps(unit))
        assert clone.seed == unit.seed
        assert clone.topology.name == grid44.name


class TestBuildSchedule:
    def test_none_spec_is_empty(self, grid44):
        unit = _unit(grid44, schedule={"kind": "none"})
        assert len(build_schedule(unit, grid44, random.Random(0))) == 0

    def test_explicit_spec_survives_json_string_keys(self, grid44):
        # Cache/JSON round-trips turn int node ids into strings; the
        # builder must accept both.
        unit = _unit(grid44, schedule={"kind": "explicit", "crash_rounds": {"3": 9}})
        schedule = build_schedule(unit, grid44, random.Random(0))
        assert schedule.crash_rounds == {3: 9}

    def test_random_spec_matches_factory_derivation(self, grid44):
        # The declarative spec must consume the rng exactly like the
        # serial factory so seeds mean the same thing in both worlds.
        unit = _unit(grid44, f=2, b=42)
        got = build_schedule(unit, grid44, random.Random(5))
        expected = random_failures(
            grid44, 2, random.Random(5), first_round=1,
            last_round=42 * grid44.diameter, respect_c=None,
        )
        assert got.crash_rounds == expected.crash_rounds

    def test_random_spec_with_zero_f_is_no_failures(self, grid44):
        unit = _unit(
            grid44,
            schedule={"kind": "random", "f": 0, "last_round": 10},
        )
        assert (
            build_schedule(unit, grid44, random.Random(0)).crash_rounds
            == no_failures().crash_rounds
        )

    def test_crash_root_appends_seeded_root_crash(self, grid44):
        unit = _unit(
            grid44,
            schedule={"kind": "none"},
            crash_root={"lo": 2, "hi": 20},
            allow_root_crash=True,
        )
        schedule = build_schedule(unit, grid44, random.Random(1))
        assert grid44.root in schedule.crash_rounds
        assert 2 <= schedule.crash_rounds[grid44.root] <= 20

    def test_unknown_kind_rejected(self, grid44):
        unit = _unit(grid44, schedule={"kind": "wat"})
        with pytest.raises(ValueError, match="unknown schedule spec"):
            build_schedule(unit, grid44, random.Random(0))


class TestExecuteUnit:
    def test_matches_serial_derivation(self, grid44):
        unit = _unit(grid44, seed=1)
        got = execute_unit(unit)

        rng = random.Random(1)
        inputs = make_inputs(grid44, rng)
        schedule = random_failures(
            grid44, 2, rng, first_round=1,
            last_round=42 * grid44.diameter, respect_c=None,
        )
        expected = safe_run_protocol(
            "algorithm1", grid44, inputs, schedule=schedule,
            seed=1, rng=rng, f=2, b=42, strict=False,
        )
        assert got.as_dict() == expected.as_dict()

    def test_bad_unit_yields_error_row_not_exception(self, grid44):
        unit = _unit(grid44, caaf="NOPE")
        record = execute_unit(unit)
        assert record.failed
        assert record.result is None

    def test_worker_side_timeout_is_the_serial_code_path(self, grid44):
        # timeout_s goes through safe_run_protocol's SIGALRM limiter, so
        # the row carries the same telemetry columns as a serial timeout.
        unit = _unit(grid_graph(6, 6), b=84, f=4, timeout_s=0.001)
        record = execute_unit(unit)
        assert record.failed
        assert record.error_kind == "RunTimeout"
        assert record.extra["attempt_latencies"]


class TestPlanOrder:
    def test_longest_first_with_index_tiebreak(self, grid44):
        units = [_unit(grid44, b=42), _unit(grid44, b=168), _unit(grid44, b=84)]
        assert plan_order(units) == [1, 2, 0]
        same = [_unit(grid44, seed=s) for s in range(3)]
        assert plan_order(same) == [0, 1, 2]

    def test_restricts_to_given_indices(self, grid44):
        units = [_unit(grid44, b=42), _unit(grid44, b=168), _unit(grid44, b=84)]
        assert plan_order(units, [0, 2]) == [2, 0]


# --------------------------------------------------------------------- #
# Cache.
# --------------------------------------------------------------------- #


class TestResultCache:
    def test_roundtrip(self, grid44, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        unit = _unit(grid44)
        assert cache.get(unit) is None
        record = execute_unit(unit)
        cache.put(unit, record)
        hit = cache.get(unit)
        assert hit is not None
        assert hit.as_dict() == record.as_dict()
        assert cache.hits == 1 and cache.misses == 1

    def test_key_separates_everything_result_relevant(self, grid44):
        base = _unit(grid44)
        assert unit_cache_hash(base) == unit_cache_hash(_unit(grid44))
        for variant in (
            _unit(grid44, seed=1),
            _unit(grid44, b=84),
            _unit(grid44, f=3),
            _unit(grid44, protocol="unknown_f"),
            _unit(grid44, inject="drop=0.05"),
            _unit(grid44, strict=True),
            _unit(grid_graph(5, 5)),
        ):
            assert unit_cache_hash(variant) != unit_cache_hash(base)

    def test_token_is_json_canonical(self, grid44):
        token = unit_cache_token(
            _unit(grid44, schedule={"kind": "explicit", "crash_rounds": {3: 9}})
        )
        assert token == json.loads(json.dumps(token))

    def test_corrupt_entry_is_a_miss(self, grid44, tmp_path):
        cache = ResultCache(str(tmp_path))
        unit = _unit(grid44)
        path = cache.put(unit, execute_unit(unit))
        with open(path, "w") as fh:
            fh.write("{ not json")
        assert cache.get(unit) is None

    def test_stats_gc_clear(self, grid44, tmp_path):
        cache = ResultCache(str(tmp_path))
        for seed in range(3):
            unit = _unit(grid44, seed=seed)
            cache.put(unit, execute_unit(unit))
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["by_protocol"] == {"algorithm1": 3}
        assert cache.gc(older_than_s=3600) == 0
        assert cache.gc(older_than_s=0) == 3
        assert cache.stats()["entries"] == 0
        unit = _unit(grid44)
        cache.put(unit, execute_unit(unit))
        assert cache.clear() == 1
        assert not any(os.scandir(str(tmp_path)))

    def test_parse_age(self):
        assert parse_age("90") == 90
        assert parse_age("90s") == 90
        assert parse_age("15m") == 900
        assert parse_age("12h") == 12 * 3600
        assert parse_age("7d") == 7 * 86400
        with pytest.raises(ValueError):
            parse_age("soon")
        with pytest.raises(ValueError):
            parse_age("-1h")


# --------------------------------------------------------------------- #
# Progress.
# --------------------------------------------------------------------- #


class TestProgress:
    def test_emitter_writes_jsonl_and_fans_out(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        seen = []
        with ProgressEmitter(path, listeners=[seen.append], clock=lambda: 1.0) as em:
            em.emit("engine_started", units=2, jobs=1)
            em.emit("unit_finished", index=0, wall_s=0.5)
        lines = [json.loads(l) for l in open(path)]
        assert [l["event"] for l in lines] == ["engine_started", "unit_finished"]
        assert all(l["ts"] == 1.0 for l in lines)
        assert [e["event"] for e in seen] == ["engine_started", "unit_finished"]

    def test_tracker_folds_the_stream(self):
        tracker = ProgressTracker()
        tracker({"event": "engine_started", "units": 4, "jobs": 2, "cached": 1,
                 "checkpointed": 0})
        tracker({"event": "unit_started", "index": 0})
        tracker({"event": "unit_started", "index": 1})
        assert tracker.in_flight == 2
        assert tracker.utilization == 1.0
        tracker({"event": "unit_finished", "index": 0, "wall_s": 2.0})
        tracker({"event": "unit_failed", "index": 1, "wall_s": 2.0})
        assert tracker.executed == 2 and tracker.failed == 1
        assert tracker.done == 3 and tracker.remaining == 1
        assert tracker.eta_s() == pytest.approx(2.0 * 1 / 2)
        text = tracker.render()
        assert "3/4" in text and "1 failed" in text

    def test_live_renderer_paints_and_finishes_with_newline(self):
        stream = io.StringIO()
        listen = live_renderer(stream)
        listen({"event": "engine_started", "units": 1, "jobs": 1})
        listen({"event": "unit_started", "index": 0})
        listen({"event": "engine_finished"})
        text = stream.getvalue()
        assert "\r" in text
        assert text.endswith("\n")


# --------------------------------------------------------------------- #
# Backends / engine.
# --------------------------------------------------------------------- #


def _sleeper(x):
    time.sleep(0.01)
    return x * 2


class TestPooledMap:
    def test_serial_inline(self):
        assert pooled_map(_sleeper, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_parallel_preserves_order(self):
        assert pooled_map(_sleeper, list(range(6)), jobs=3) == [
            x * 2 for x in range(6)
        ]


class TestEngine:
    def _units(self, topology, n=4):
        return [_unit(topology, seed=s) for s in range(n)]

    def test_serial_run_produces_one_record_per_unit(self, grid44):
        units = self._units(grid44)
        records = ExecutionEngine(jobs=1).run(units)
        assert len(records) == len(units)
        assert [r.seed for r in records] == [u.seed for u in units]
        assert all(r.correct for r in records)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ExecutionEngine(jobs=0)

    def test_cache_hits_skip_execution(self, grid44, tmp_path):
        units = self._units(grid44)
        cache = ResultCache(str(tmp_path))
        first = ExecutionEngine(jobs=1, cache=cache).run(units)

        events = []
        engine = ExecutionEngine(
            jobs=1,
            cache=ResultCache(str(tmp_path)),
            emitter=ProgressEmitter(listeners=[events.append]),
        )
        second = engine.run(units)
        assert [r.as_dict() for r in second] == [r.as_dict() for r in first]
        kinds = [e["event"] for e in events]
        assert kinds.count("unit_cached") == len(units)
        assert "unit_started" not in kinds

    def test_force_recomputes_despite_cache(self, grid44, tmp_path):
        units = self._units(grid44, n=2)
        cache = ResultCache(str(tmp_path))
        ExecutionEngine(jobs=1, cache=cache).run(units)
        events = []
        engine = ExecutionEngine(
            jobs=1,
            cache=ResultCache(str(tmp_path)),
            force=True,
            emitter=ProgressEmitter(listeners=[events.append]),
        )
        engine.run(units)
        kinds = [e["event"] for e in events]
        assert kinds.count("unit_started") == 2
        assert "unit_cached" not in kinds

    def test_checkpoint_serving_and_byte_identity(self, grid44, tmp_path):
        units = self._units(grid44)
        path_a = str(tmp_path / "a.jsonl")
        cp = SweepCheckpoint(path_a)
        baseline = ExecutionEngine(jobs=1).run(units, checkpoint=cp)
        cp.close()

        # A shuffled completion order must leave the identical file.
        path_b = str(tmp_path / "b.jsonl")
        cp = SweepCheckpoint(path_b)
        shuffled = ExecutionEngine(
            backend=ShuffledBackend(random.Random(99))
        ).run(units, checkpoint=cp)
        cp.close()
        assert [r.as_dict() for r in shuffled] == [r.as_dict() for r in baseline]
        assert open(path_a, "rb").read() == open(path_b, "rb").read()

        # Resuming serves every unit from the file without executing.
        events = []
        cp = SweepCheckpoint(path_a)
        resumed = ExecutionEngine(
            jobs=1, emitter=ProgressEmitter(listeners=[events.append])
        ).run(units, checkpoint=cp)
        cp.close()
        assert [r.as_dict() for r in resumed] == [r.as_dict() for r in baseline]
        kinds = [e["event"] for e in events]
        assert kinds.count("unit_checkpointed") == len(units)
        assert "unit_started" not in kinds

    def test_interrupt_drains_and_flushes_then_reraises(self, grid44, tmp_path):
        units = self._units(grid44)

        class InterruptingBackend(ShuffledBackend):
            """Completes one unit, then simulates Ctrl-C."""

            def __init__(self):
                super().__init__(random.Random(0))
                self.completions = 0

            def next_completed(self):
                self.completions += 1
                if self.completions > 1:
                    raise KeyboardInterrupt
                # Release the lowest index so the flushed prefix is
                # contiguous and lands in the file.
                self._buffer.sort()
                index, record = self._buffer.pop(0)
                return index, record, None

        path = str(tmp_path / "interrupted.jsonl")
        cp = SweepCheckpoint(path)
        with pytest.raises(KeyboardInterrupt):
            ExecutionEngine(backend=InterruptingBackend(), window=len(units)).run(
                units, checkpoint=cp
            )
        cp.close()

        durable = SweepCheckpoint(path)
        served = [
            u.seed for u in units if durable.get(u.checkpoint_key) is not None
        ]
        assert served, "interrupted run must leave durable progress"

        # Resume completes the rest; the final file equals an
        # uninterrupted serial run's byte-for-byte.
        resumed = ExecutionEngine(jobs=1).run(units, checkpoint=durable)
        durable.close()
        clean_path = str(tmp_path / "clean.jsonl")
        cp = SweepCheckpoint(clean_path)
        clean = ExecutionEngine(jobs=1).run(units, checkpoint=cp)
        cp.close()
        assert [r.as_dict() for r in resumed] == [r.as_dict() for r in clean]
        assert open(path, "rb").read() == open(clean_path, "rb").read()

    def test_interrupt_flushes_completed_stragglers(self, grid44, tmp_path):
        # Longest-expected-first scheduling completes high indices first,
        # so the contiguous prefix may be empty at Ctrl-C; completed
        # out-of-prefix rows must still land in the checkpoint.
        units = self._units(grid44)

        class HighestFirstInterrupting(ShuffledBackend):
            def __init__(self):
                super().__init__(random.Random(0))
                self.completions = 0

            def next_completed(self):
                self.completions += 1
                if self.completions > 2:
                    raise KeyboardInterrupt
                self._buffer.sort()
                index, record = self._buffer.pop()
                return index, record, None

            def drain(self):
                # Nothing in flight completes during the interrupt: the
                # only durable rows must come from the straggler flush.
                return []

        path = str(tmp_path / "interrupted.jsonl")
        cp = SweepCheckpoint(path)
        with pytest.raises(KeyboardInterrupt):
            ExecutionEngine(
                backend=HighestFirstInterrupting(), window=len(units)
            ).run(units, checkpoint=cp)
        cp.close()

        durable = SweepCheckpoint(path)
        served = [
            u.seed for u in units if durable.get(u.checkpoint_key) is not None
        ]
        assert len(served) == 2, "both completed stragglers must be durable"

        # Resume recomputes only the rest; records match a clean run.
        resumed = ExecutionEngine(jobs=1).run(units, checkpoint=durable)
        durable.close()
        clean = ExecutionEngine(jobs=1).run(units)
        assert [r.as_dict() for r in resumed] == [r.as_dict() for r in clean]


class TestOrderedCheckpointWriter:
    def test_flushes_contiguous_prefix_in_unit_order(self, grid44, tmp_path):
        units = [_unit(grid44, seed=s) for s in range(3)]
        records = [execute_unit(u) for u in units]

        class SpyCheckpoint:
            def __init__(self):
                self.keys = []

            def put(self, key, record):
                self.keys.append(key)

        spy = SpyCheckpoint()
        writer = _OrderedCheckpointWriter(spy, units, skip=())
        writer.offer(2, records[2])
        assert spy.keys == []
        writer.offer(0, records[0])
        assert spy.keys == [units[0].checkpoint_key]
        writer.offer(1, records[1])
        assert spy.keys == [u.checkpoint_key for u in units]

    def test_skips_already_checkpointed_indices(self, grid44):
        units = [_unit(grid44, seed=s) for s in range(3)]
        records = [execute_unit(u) for u in units]

        class SpyCheckpoint:
            def __init__(self):
                self.keys = []

            def put(self, key, record):
                self.keys.append(key)

        spy = SpyCheckpoint()
        writer = _OrderedCheckpointWriter(spy, units, skip=(0,))
        writer.offer(1, records[1])
        assert spy.keys == [units[1].checkpoint_key]


class TestProcessBackend:
    def test_runs_units_in_worker_processes(self, grid44):
        backend = ProcessBackend(jobs=2)
        try:
            units = [_unit(grid44, seed=s) for s in range(2)]
            for i, unit in enumerate(units):
                backend.submit(i, unit)
            got = {}
            while backend.inflight():
                index, record, exc = backend.next_completed()
                assert exc is None
                got[index] = record
        finally:
            backend.shutdown()
        assert sorted(got) == [0, 1]
        assert all(r.correct for r in got.values())

    def test_exhausted_respawns_become_error_rows(self, grid44):
        backend = ProcessBackend(jobs=1, max_respawns=0)
        backend._units[0] = _unit(grid44)
        backend._futures[object()] = 0
        backend._replace_pool("test crash")
        index, record, exc = backend.next_completed()
        backend.shutdown(cancel=True)
        assert index == 0 and record is None
        assert isinstance(exc, WorkerCrashed)

    def test_overdue_units_are_reaped_as_timeouts(self, grid44):
        backend = ProcessBackend(jobs=1, max_respawns=0)
        backend._units[0] = _unit(grid44)
        backend._futures[object()] = 0
        backend._deadlines[0] = time.monotonic() - 1
        backend._reap_overdue()
        index, record, exc = backend.next_completed()
        backend.shutdown(cancel=True)
        assert index == 0 and record is None
        assert isinstance(exc, RunTimeout)

    def test_engine_turns_infra_failures_into_error_records(self, grid44):
        class DoomedBackend(SerialBackend):
            def next_completed(self):
                index, unit = self._queue.popleft()
                return index, None, WorkerCrashed("boom")

        records = ExecutionEngine(backend=DoomedBackend()).run([_unit(grid44)])
        assert records[0].failed
        assert records[0].error_kind == "WorkerCrashed"


# --------------------------------------------------------------------- #
# The retry/timeout telemetry satellite (shared serial/worker exit path).
# --------------------------------------------------------------------- #


class TestAttemptTelemetry:
    def test_final_timeout_still_captures_per_attempt_latencies(
        self, grid55, monkeypatch
    ):
        import repro.analysis.runner as runner_mod

        # A run that never finishes on its own: every attempt must be cut
        # by the SIGALRM deadline, never by completing under it.
        def stuck(*args, **kwargs):
            time.sleep(60)

        monkeypatch.setattr(runner_mod, "run_protocol", stuck)
        rng = random.Random(0)
        inputs = make_inputs(grid55, rng)
        record = safe_run_protocol(
            "algorithm1", grid55, inputs, seed=0, rng=rng,
            f=2, b=60, strict=False, timeout_s=0.01, retries=2,
            backoff_s=0.001,
        )
        assert record.failed and record.error_kind == "RunTimeout"
        assert len(record.extra["attempt_latencies"]) == 3
        assert len(record.extra["retry_backoffs"]) == 2
        assert all(lat > 0 for lat in record.extra["attempt_latencies"])

    def test_retried_success_records_latencies_and_backoffs(self, grid44, monkeypatch):
        import repro.analysis.runner as runner_mod

        real = runner_mod.run_protocol
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_protocol", flaky)
        rng = random.Random(0)
        inputs = make_inputs(grid44, rng)
        record = safe_run_protocol(
            "algorithm1", grid44, inputs, seed=0, rng=rng,
            f=1, b=60, strict=False, retries=1, backoff_s=0.001,
        )
        assert not record.failed and record.attempts == 2
        assert len(record.extra["attempt_latencies"]) == 2
        assert len(record.extra["retry_backoffs"]) == 1

    def test_healthy_single_attempt_rows_stay_unannotated(self, grid44):
        rng = random.Random(0)
        inputs = make_inputs(grid44, rng)
        record = safe_run_protocol(
            "algorithm1", grid44, inputs, seed=0, rng=rng, f=1, b=60,
            strict=False,
        )
        assert "attempt_latencies" not in record.extra
        assert "retry_backoffs" not in record.extra
