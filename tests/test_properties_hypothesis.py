"""Property-based tests (hypothesis) on the library's core invariants.

These are the heavyweight guarantees:

* Algorithm 1 / AGG+VERI / baselines never produce an incorrect result, for
  *arbitrary* random connected topologies, inputs, and budgeted oblivious
  adversaries (Theorems 1, 4, 7 + the baselines' folklore guarantees).
* Floods reach exactly the root-connected alive region.
* Cycle-promise instances and the Theorem 8 reduction behave on arbitrary
  promise-respecting pairs.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import FailureSchedule, random_failures
from repro.baselines import run_bruteforce, run_folklore
from repro.core.agg import run_agg
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.veri import run_agg_veri_pair
from repro.core.algorithm1 import run_algorithm1
from repro.graphs import Topology
from repro.lowerbound.equalitycp import ReductionEquality, strings_equal
from repro.lowerbound.unionsizecp import (
    WrapPositionUnionSize,
    check_cycle_promise,
    union_size,
)

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_topologies(draw, min_nodes=4, max_nodes=18):
    """Random connected graphs: a random spanning tree plus random extras."""
    n = draw(st.integers(min_nodes, max_nodes))
    rng = random.Random(draw(st.integers(0, 2**30)))
    adjacency = {u: [] for u in range(n)}

    def add(u, v):
        if u != v and v not in adjacency[u]:
            adjacency[u].append(v)
            adjacency[v].append(u)

    for u in range(1, n):
        add(u, rng.randrange(u))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        add(rng.randrange(n), rng.randrange(n))
    return Topology(adjacency, name=f"hyp({n})")


@st.composite
def failure_cases(draw):
    """(topology, inputs, schedule, f) with a budget-respecting adversary."""
    topo = draw(connected_topologies())
    rng = random.Random(draw(st.integers(0, 2**30)))
    inputs = {u: draw(st.integers(0, 50)) for u in topo.nodes()}
    f = draw(st.integers(1, 8))
    schedule = random_failures(
        topo, f, rng, first_round=1, last_round=60 * topo.diameter
    )
    return topo, inputs, schedule, f


class TestProtocolCorrectnessProperties:
    @settings(**SETTINGS)
    @given(case=failure_cases(), coin=st.integers(0, 2**30))
    def test_algorithm1_always_correct(self, case, coin):
        topo, inputs, schedule, f = case
        out = run_algorithm1(
            topo, inputs, f=f, b=60, schedule=schedule, rng=random.Random(coin)
        )
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.rounds
        )

    @settings(**SETTINGS)
    @given(case=failure_cases())
    def test_bruteforce_always_correct(self, case):
        topo, inputs, schedule, _f = case
        out = run_bruteforce(topo, inputs, schedule=schedule)
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.rounds
        )

    @settings(**SETTINGS)
    @given(case=failure_cases())
    def test_folklore_always_correct(self, case):
        topo, inputs, schedule, f = case
        out = run_folklore(topo, inputs, f=f, schedule=schedule)
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.rounds
        )

    @settings(**SETTINGS)
    @given(case=failure_cases())
    def test_accepted_pair_always_correct(self, case):
        # Theorems 5 + 7 combined: acceptance implies correctness, with any
        # number of failures.
        topo, inputs, schedule, f = case
        t = 2
        pair = run_agg_veri_pair(topo, inputs, t=t, schedule=schedule)
        if pair.accepted:
            end = 12 * 2 * topo.diameter + 7
            assert is_correct_result(
                pair.agg_result, SUM, topo, inputs, schedule, end
            )

    @settings(**SETTINGS)
    @given(case=failure_cases())
    def test_agg_within_budget_is_exact_or_correct(self, case):
        # Theorem 4 restricted to schedules that happen to fit within t.
        topo, inputs, schedule, f = case
        t = schedule.edge_failures(topo)
        out = run_agg(topo, inputs, t=t, schedule=schedule)
        assert not out.aborted
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )

    @settings(**SETTINGS)
    @given(topo=connected_topologies())
    def test_agg_exact_without_failures(self, topo):
        inputs = {u: u % 7 for u in topo.nodes()}
        out = run_agg(topo, inputs, t=1)
        assert out.result == sum(inputs.values())

    @settings(**SETTINGS)
    @given(case=failure_cases())
    def test_agg_never_overcounts(self, case):
        # Representative sets never double count: the result can never
        # exceed the total even when AGG errs (> t failures, LFC present).
        topo, inputs, schedule, _f = case
        out = run_agg(topo, inputs, t=1, schedule=schedule)
        if out.result is not None:
            assert out.result <= sum(inputs.values())


class TestTwoPartyProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 80),
        q=st.integers(2, 16),
        seed=st.integers(0, 2**30),
    )
    def test_random_instances_satisfy_promise_and_protocols_agree(
        self, n, q, seed
    ):
        from repro.lowerbound.unionsizecp import random_instance

        rng = random.Random(seed)
        x, y = random_instance(n, q, rng)
        assert check_cycle_promise(x, y, q)
        answer, _ = WrapPositionUnionSize(q).run(x, y)
        assert answer == union_size(x, y)

    @settings(max_examples=60, deadline=None)
    @given(
        q=st.integers(2, 12),
        data=st.data(),
    )
    def test_reduction_on_arbitrary_promise_pairs(self, q, data):
        n = data.draw(st.integers(1, 40))
        x = tuple(data.draw(st.integers(0, q - 1)) for _ in range(n))
        bumps = tuple(data.draw(st.booleans()) for _ in range(n))
        y = tuple((xi + 1) % q if b else xi for xi, b in zip(x, bumps))
        reduction = ReductionEquality(q, WrapPositionUnionSize(q))
        answer, _ = reduction.run(x, y)
        assert answer == strings_equal(x, y)
