"""Worst-case adversary search (random restarts + hill climbing)."""

import random

import pytest

from repro.adversary.search import (
    make_algorithm1_evaluator,
    mutate_schedule,
    random_schedule,
    search_worst_adversary,
)
from repro.adversary.schedule import FailureSchedule
from repro.graphs import grid_graph


class TestScheduleMoves:
    def test_random_schedule_respects_budget(self):
        topo = grid_graph(4, 4)
        for seed in range(8):
            s = random_schedule(topo, f=5, horizon=100, rng=random.Random(seed))
            assert s.edge_failures(topo) <= 5
            assert all(1 <= r <= 100 for r in s.crash_rounds.values())

    def test_mutation_respects_budget(self):
        topo = grid_graph(4, 4)
        rng = random.Random(1)
        schedule = random_schedule(topo, f=6, horizon=50, rng=rng)
        for _ in range(20):
            schedule = mutate_schedule(topo, schedule, f=6, horizon=50, rng=rng)
            assert schedule.edge_failures(topo) <= 6

    def test_mutation_from_empty_can_add(self):
        topo = grid_graph(4, 4)
        rng = random.Random(3)
        grew = any(
            len(mutate_schedule(topo, FailureSchedule(), 4, 50, rng)) > 0
            for _ in range(10)
        )
        assert grew


class TestSearch:
    def _search(self, objective="cc"):
        topo = grid_graph(4, 4)
        inputs = {u: 1 for u in topo.nodes()}
        evaluator = make_algorithm1_evaluator(topo, inputs, f=4, b=45)
        return topo, search_worst_adversary(
            evaluator,
            topo,
            f=4,
            horizon=45 * topo.diameter,
            rng=random.Random(0),
            restarts=2,
            steps_per_restart=4,
            objective=objective,
        )

    def test_finds_worse_than_empty_schedule(self):
        topo = grid_graph(4, 4)
        inputs = {u: 1 for u in topo.nodes()}
        evaluator = make_algorithm1_evaluator(topo, inputs, f=4, b=45)
        empty_cc, _, _ = evaluator(FailureSchedule(), random.Random(0))
        _, result = self._search()
        assert result.cc_bits >= empty_cc

    def test_never_finds_incorrect_results(self):
        # Zero-error: the falsification side of the search must come up
        # empty.
        _, result = self._search()
        assert result.incorrect_runs == 0

    def test_budget_respected_by_winner(self):
        topo, result = self._search()
        assert result.schedule.edge_failures(topo) <= 4

    def test_rounds_objective(self):
        _, result = self._search(objective="rounds")
        assert result.rounds >= 1

    def test_rejects_unknown_objective(self):
        topo = grid_graph(3, 3)
        evaluator = make_algorithm1_evaluator(
            topo, {u: 1 for u in topo.nodes()}, f=2, b=45
        )
        with pytest.raises(ValueError):
            search_worst_adversary(
                evaluator, topo, f=2, horizon=10, objective="latency"
            )

    def test_trial_count_reported(self):
        _, result = self._search()
        assert result.trials == 1 + 2 * (1 + 4)
