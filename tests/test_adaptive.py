"""Adaptive adversaries: budget, root safety, targeting policies."""

import random

import pytest

from repro.adversary.adaptive import (
    ADAPTIVE_FAMILIES,
    RootIsolationAdversary,
    TopTalkerAdversary,
    TriggerAdversary,
    make_adaptive,
)
from repro.adversary.budget import EdgeBudget
from repro.analysis.runner import make_inputs, run_protocol
from repro.graphs import grid_graph, path_graph, star_graph
from repro.sim import Network, Part
from repro.sim.node import SilentNode


class Chatty(SilentNode):
    """Broadcasts ``bits`` every round, tagged with a kind."""

    def __init__(self, bits=8, kind="ping"):
        self.bits = bits
        self.kind = kind

    def on_round(self, rnd, inbox):
        return [Part(self.kind, (rnd,), self.bits)]


def run_with_adversary(topology, adversary, handlers=None, rounds=30):
    handlers = handlers or {u: Chatty() for u in topology.nodes()}
    net = Network(topology.adjacency, handlers, injectors=[adversary])
    net.run(rounds, stop_on_output=False)
    return net


class TestBudgetAndSafety:
    def test_root_is_never_crashed(self):
        topo = star_graph(6)  # root is the hub: every kill is a neighbour
        adversary = TopTalkerAdversary(topo, f=100, period=1)
        net = run_with_adversary(topo, adversary)
        assert topo.root not in adversary.kills
        assert net.is_alive(topo.root)

    def test_edge_budget_respected(self):
        topo = grid_graph(4, 4)
        f = 5
        adversary = TopTalkerAdversary(topo, f=f, period=1)
        run_with_adversary(topo, adversary)
        assert adversary.kills
        assert adversary.budget.used <= f
        # Recompute independently: charging kills in order never exceeds f.
        check = EdgeBudget(topo, f)
        for u in adversary.kills:
            assert check.can_afford(u)
            check.charge(u)

    def test_exhausted_when_no_candidate_affordable(self):
        topo = path_graph(3)
        adversary = TopTalkerAdversary(topo, f=0, period=1)
        run_with_adversary(topo, adversary)
        assert adversary.kills == []
        assert adversary.exhausted


class TestTopTalker:
    def test_kills_the_loudest_node(self):
        topo = path_graph(4)
        handlers = {u: Chatty(bits=8) for u in topo.nodes()}
        handlers[2] = Chatty(bits=1000)  # clear bandwidth leader
        adversary = TopTalkerAdversary(topo, f=2, period=3)
        run_with_adversary(topo, adversary, handlers=handlers, rounds=6)
        assert adversary.kills[0] == 2

    def test_period_validated(self):
        with pytest.raises(ValueError, match="period"):
            TopTalkerAdversary(path_graph(3), f=1, period=0)

    def test_crashes_take_effect_next_round(self):
        topo = path_graph(4)
        adversary = TopTalkerAdversary(topo, f=10, period=2)
        net = run_with_adversary(topo, adversary, rounds=2)
        victim = adversary.kills[0]
        # Chosen at end of round 2, dead from round 3.
        assert net.crash_rounds[victim] == 3


class TestTrigger:
    def test_kills_first_time_senders_of_kind(self):
        topo = path_graph(5)
        handlers = {u: Chatty(kind="ping") for u in topo.nodes()}
        handlers[3] = Chatty(kind="aggregation")
        adversary = TriggerAdversary(topo, f=4, kind="aggregation")
        run_with_adversary(topo, adversary, handlers=handlers, rounds=4)
        assert adversary.kills == [3]

    def test_limit_bounds_kills(self):
        topo = grid_graph(3, 3)
        adversary = TriggerAdversary(topo, f=20, kind="ping", limit=2)
        run_with_adversary(topo, adversary)
        assert len(adversary.kills) == 2


class TestRootIsolation:
    def test_targets_are_root_neighbours(self):
        topo = grid_graph(3, 3)
        adversary = RootIsolationAdversary(topo, f=10)
        run_with_adversary(topo, adversary)
        assert adversary.kills
        assert set(adversary.kills) <= set(topo.neighbours(topo.root))


class TestFactory:
    def test_families_constant_matches_factory(self):
        topo = path_graph(4)
        for family in ADAPTIVE_FAMILIES:
            adversary = make_adaptive(family, topo, f=2, seed=1)
            assert adversary.f == 2

    def test_spec_arguments(self):
        topo = path_graph(4)
        assert make_adaptive("top-talker:9", topo, f=1).period == 9
        assert make_adaptive("trigger:ack", topo, f=1).kind == "ack"
        assert make_adaptive("trigger", topo, f=1).kind == "aggregation"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown adaptive family"):
            make_adaptive("bribery", path_graph(3), f=1)


class TestRunnerIntegration:
    def test_f_actual_reflects_adaptive_kills(self):
        """The runner grades against the *effective* crash schedule."""
        topo = grid_graph(4, 4)
        rng = random.Random(0)
        inputs = make_inputs(topo, rng)
        adversary = TopTalkerAdversary(topo, f=3, period=4)
        record = run_protocol(
            "unknown_f",
            topo,
            inputs,
            rng=rng,
            strict=False,
            injectors=[adversary],
        )
        assert adversary.kills  # the adversary actually acted
        assert record.f_actual > 0
        # Zero-error contract: correct output or an explicit abort.
        assert record.correct or record.result is None
