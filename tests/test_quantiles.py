"""SELECTION / MEDIAN / AVERAGE via fault-tolerant COUNT (Section 2's
Patt-Shamir reduction)."""

import random

import pytest

from repro.adversary import FailureSchedule, random_failures
from repro.extensions.quantiles import (
    distributed_average,
    distributed_median,
    distributed_select,
    probe_budget,
)
from repro.graphs import grid_graph, path_graph


class TestSelection:
    def test_exact_on_failure_free_grid(self):
        topo = grid_graph(4, 4)
        inputs = {u: (u * 7) % 23 for u in topo.nodes()}
        ordered = sorted(inputs.values())
        for k in (1, 5, 16):
            out = distributed_select(
                topo, inputs, k=k, f=1, b=45, rng=random.Random(k)
            )
            assert out.value == ordered[k - 1]

    def test_duplicated_values(self):
        topo = grid_graph(4, 4)
        inputs = {u: u % 3 for u in topo.nodes()}
        out = distributed_select(topo, inputs, k=8, f=1, b=45, rng=random.Random(0))
        assert out.value == sorted(inputs.values())[7]

    def test_probe_count_is_logarithmic(self):
        topo = grid_graph(4, 4)
        inputs = {u: u * 10 for u in topo.nodes()}  # domain up to 150
        out = distributed_select(topo, inputs, k=4, f=1, b=45, rng=random.Random(1))
        assert out.probe_count <= probe_budget(topo, max(inputs.values()))

    def test_bruteforce_substrate(self):
        topo = grid_graph(4, 4)
        inputs = {u: u for u in topo.nodes()}
        out = distributed_select(
            topo, inputs, k=10, f=1, protocol="bruteforce"
        )
        assert out.value == 9

    def test_rejects_bad_rank(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError):
            distributed_select(topo, {u: 1 for u in topo.nodes()}, k=0, f=1, b=45)

    def test_rejects_missing_budget(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError, match="time budget"):
            distributed_select(topo, {u: 1 for u in topo.nodes()}, k=1, f=1)

    def test_rejects_unknown_substrate(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError, match="substrate"):
            distributed_select(
                topo, {u: 1 for u in topo.nodes()}, k=1, f=1, b=45,
                protocol="gossip",
            )

    def test_cc_accumulates_across_probes(self):
        topo = grid_graph(4, 4)
        inputs = {u: u for u in topo.nodes()}
        out = distributed_select(topo, inputs, k=8, f=1, b=45, rng=random.Random(2))
        per_probe_max = max(
            max(p.cc_bits_per_node.values()) for p in out.probes
        )
        assert out.cc_bits >= per_probe_max
        assert out.total_rounds == sum(p.rounds for p in out.probes)

    @pytest.mark.parametrize("seed", range(4))
    def test_under_failures_result_is_rank_consistent(self, seed):
        # With crashes mid-query, the result must still be a value some
        # bracketed population ranks at k: it lies between the k-th
        # smallest over survivors-only and over everyone.
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        inputs = {u: rng.randint(0, 30) for u in topo.nodes()}
        schedule = random_failures(
            topo, f=4, rng=rng, first_round=1, last_round=3000
        )
        k = 5
        out = distributed_select(
            topo, inputs, k=k, f=4, b=45, schedule=schedule,
            rng=random.Random(seed),
        )
        survivors = topo.alive_component(schedule.failed_nodes)
        all_sorted = sorted(inputs.values())
        surv_sorted = sorted(inputs[u] for u in survivors)
        lo = min(all_sorted[k - 1], surv_sorted[min(k, len(surv_sorted)) - 1])
        hi = max(all_sorted[k - 1], surv_sorted[min(k, len(surv_sorted)) - 1])
        assert lo <= out.value <= hi


class TestMedian:
    def test_exact_median_odd_population(self):
        topo = grid_graph(5, 5)
        inputs = {u: u for u in topo.nodes()}
        out = distributed_median(topo, inputs, f=1, b=45, rng=random.Random(0))
        assert out.value == 12

    def test_uses_extra_population_probe(self):
        topo = grid_graph(4, 4)
        inputs = {u: u for u in topo.nodes()}
        out = distributed_median(topo, inputs, f=1, b=45, rng=random.Random(1))
        assert out.probes[0].description == "count(all)"
        assert out.probe_count >= 2


class TestAverage:
    def test_exact_average(self):
        topo = path_graph(6)
        inputs = {0: 2, 1: 4, 2: 6, 3: 8, 4: 10, 5: 12}
        out = distributed_average(topo, inputs, f=1, b=45, rng=random.Random(0))
        assert out.value == pytest.approx(7.0)
        assert out.probe_count == 2

    def test_average_with_bruteforce_substrate(self):
        topo = grid_graph(3, 3)
        inputs = {u: 3 for u in topo.nodes()}
        out = distributed_average(topo, inputs, f=1, protocol="bruteforce")
        assert out.value == pytest.approx(3.0)
