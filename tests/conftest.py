"""Shared fixtures for the test suite."""

import os
import random

import pytest

try:
    from hypothesis import HealthCheck, settings

    # Pinned profiles so property tests behave identically across runs and
    # machines.  CI selects "ci" via HYPOTHESIS_PROFILE: derandomized (the
    # same examples every run — no flaky-only-on-main surprises) with a
    # bounded example budget and no deadline (shared runners are slow).
    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", max_examples=50, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # property tests simply skip without hypothesis
    pass

from repro.graphs import (
    balanced_tree,
    caterpillar_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def rng():
    return random.Random(0)


@pytest.fixture
def grid44():
    return grid_graph(4, 4)


@pytest.fixture
def grid55():
    return grid_graph(5, 5)


@pytest.fixture
def path8():
    return path_graph(8)


@pytest.fixture
def star10():
    return star_graph(10)


@pytest.fixture
def tree15():
    return balanced_tree(2, 15)


@pytest.fixture
def small_topologies():
    return [
        path_graph(6),
        cycle_graph(8),
        star_graph(9),
        grid_graph(3, 4),
        balanced_tree(3, 13),
        caterpillar_graph(5, 2),
    ]


def unit_inputs(topology):
    """Every node holds 1 — SUM equals the number of contributing nodes."""
    return {u: 1 for u in topology.nodes()}


def indexed_inputs(topology):
    """Node u holds u + 1 — distinct contributions for double-count checks."""
    return {u: u + 1 for u in topology.nodes()}
