"""Rejoin recovery: stale-NACK guard, amnesiac handlers, snapshots.

Regression focus for the churn work (ISSUE 7):

* A NACK stamped with a pre-crash incarnation must be *discarded* —
  retransmitting against the ghost request would burn per-frame budget
  needed for real losses — and counted under ``stale_nacks``.
* An amnesiac-rejoined node's inner handler only heartbeats: it can
  never vouch for an output, so ``result`` stays ``None`` until the
  epoch manager re-admits the node.
* Anti-entropy snapshots give every contribution neighbour-redundant
  copies; an amnesiac rejoin wipes only the *holder's* cache, never the
  copies other nodes hold.
* Repair traffic never leaks into protocol CC: durable churn runs keep
  the transport baseline's ``max_bits`` bit-for-bit (property).
"""

import random

import pytest

from repro.graphs import grid_graph
from repro.resilience import ChurnPolicy, TransportConfig
from repro.resilience.epochs import SnapshotStore, run_with_churn
from repro.resilience.transport import (
    FRAME_KIND,
    NACK_KIND,
    AmnesiacInner,
    ReliableTransport,
)
from repro.sim.faults import REJOIN_DURABLE, ChurnSchedule
from repro.sim.message import Envelope, Part
from repro.sim.node import NodeHandler

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the toolchain
    HAVE_HYPOTHESIS = False


class _Silent(NodeHandler):
    """Inner handler that never sends and never stops."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.result = None

    def on_round(self, rnd, inbox):
        return []

    def wants_to_stop(self):
        return False


def _pair():
    """Two transport-wrapped silent nodes on a single edge."""
    transport = ReliableTransport(TransportConfig(retransmits=2))
    nodes = transport.wrap(
        {0: _Silent(0), 1: _Silent(1)}, {0: (1,), 1: (0,)}
    )
    return transport, nodes[0]


class TestStaleNackGuard:
    """The incarnation-keyed NACK filter (regression: pre-churn the
    transport would retransmit against any NACK naming it)."""

    def test_stale_incarnation_nack_is_dropped(self):
        transport, node0 = _pair()
        # Peer 1 announces incarnation 2 via a stamped frame...
        node0._absorb(
            1, 1, 1, [Envelope(1, Part(FRAME_KIND, (1, 0, (), 2), 30))]
        )
        assert node0._peer_inc[1] == 2
        # ...then a NACK from its dead incarnation 1 arrives (delayed in
        # flight across the crash).  It must not trigger a retransmit.
        wants, _ = node0._absorb(
            1, 2, 2, [Envelope(1, Part(NACK_KIND, (1, (0,), 1), 25))]
        )
        assert not wants
        assert transport.stale_nacks == 1

    def test_current_incarnation_nack_still_retransmits(self):
        transport, node0 = _pair()
        node0._absorb(
            1, 1, 1, [Envelope(1, Part(FRAME_KIND, (1, 0, (), 2), 30))]
        )
        wants, _ = node0._absorb(
            1, 2, 2, [Envelope(1, Part(NACK_KIND, (1, (0,), 2), 25))]
        )
        assert wants
        assert transport.stale_nacks == 0

    def test_unstamped_nack_from_incarnation_zero_peer_passes(self):
        """Pre-churn wire format: no stamp, no peer incarnation — the
        legacy path must keep retransmitting."""
        transport, node0 = _pair()
        node0._absorb(
            1, 1, 1, [Envelope(1, Part(FRAME_KIND, (1, 0, ()), 26))]
        )
        wants, _ = node0._absorb(
            1, 2, 2, [Envelope(1, Part(NACK_KIND, (1, (0,)), 21))]
        )
        assert wants
        assert transport.stale_nacks == 0

    def test_stale_nacks_surface_in_run_extras(self):
        topo = grid_graph(3, 3)
        inputs = {u: u + 1 for u in topo.nodes()}
        ch = ChurnSchedule.from_spec(
            "5:crash@r3,5:revive@r6", root=topo.root
        )
        out = run_with_churn(
            "unknown_f",
            topo,
            inputs,
            ch,
            rng=random.Random(7),
            policy=ChurnPolicy(transport=TransportConfig(retransmits=3)),
        )
        assert "stale_nacks" in out.partial.extra


class TestAmnesiacInner:
    def test_only_heartbeats_and_never_vouches(self):
        lost = _Silent(5)
        inner = AmnesiacInner(5, lost)
        assert inner.on_round(3, []) == []
        assert inner.result is None
        assert inner.lost is lost

    def test_amnesiac_revive_resets_transport_state(self):
        transport, node0 = _pair()
        node0._absorb(
            1, 1, 1, [Envelope(1, Part(FRAME_KIND, (1, 0, (), 1), 30))]
        )
        assert node0._buf
        node0.on_churn_revive("amnesiac", 1, rnd=7)
        assert node0._buf == {}
        assert node0._peer_inc == {}
        assert isinstance(node0.inner, AmnesiacInner)
        assert transport.rejoins_amnesiac == 1

    def test_durable_revive_keeps_state(self):
        transport, node0 = _pair()
        node0._absorb(
            1, 1, 1, [Envelope(1, Part(FRAME_KIND, (1, 0, (), 1), 30))]
        )
        node0.on_churn_revive("durable", 1, rnd=7)
        assert node0._buf, "durable rejoin must keep buffered frames"
        assert not isinstance(node0.inner, AmnesiacInner)
        assert node0._incarnation == 1
        assert transport.rejoins_durable == 1


class TestSnapshotStore:
    def test_holders_are_redundant_copies(self):
        store = SnapshotStore()
        store.seed(1, 5, 42)
        store.seed(2, 5, 42)
        assert sorted(store.holders_of(5)) == [1, 2]

    def test_amnesiac_rejoin_wipes_only_the_holder(self):
        store = SnapshotStore()
        store.seed(1, 5, 42)
        store.seed(2, 5, 42)
        store.drop_holder(1)
        assert store.holders_of(5) == [2]
        assert store.cache_of(1) == {}
        assert store.cache_of(2) == {5: 42}


# --------------------------------------------------------------------- #
# Properties.
# --------------------------------------------------------------------- #

if HAVE_HYPOTHESIS:

    _topo = grid_graph(3, 3)
    _non_root = sorted(set(_topo.nodes()) - {_topo.root})

    class TestRepairTrafficIsolation:
        @settings(
            max_examples=10,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            node=st.sampled_from(_non_root),
            crash=st.integers(min_value=2, max_value=10),
            gap=st.integers(min_value=1, max_value=6),
            seed=st.integers(0, 2**16),
        )
        def test_durable_blip_never_changes_protocol_cc(
            self, node, crash, gap, seed
        ):
            """All repair traffic — retransmits, NACKs, incarnation
            stamps — books as overhead, so a single-epoch durable blip
            keeps the clean transport baseline's protocol CC."""
            inputs = {u: (u * 7 + seed) % 19 + 1 for u in _topo.nodes()}
            policy = ChurnPolicy(transport=TransportConfig(retransmits=3))
            clean = run_with_churn(
                "unknown_f",
                _topo,
                inputs,
                ChurnSchedule(),
                rng=random.Random(seed),
                policy=policy,
            )
            churn = ChurnSchedule(
                cycles={node: [(crash, crash + gap, REJOIN_DURABLE)]},
                root=_topo.root,
            )
            blip = run_with_churn(
                "unknown_f",
                _topo,
                inputs,
                churn,
                rng=random.Random(seed),
                policy=policy,
            )
            # When the transport fully masks the outage the protocol
            # executes identically (same logical rounds) — then the CC
            # must match bit-for-bit.  A blip that outlasts the
            # retransmit budget legitimately changes the protocol's own
            # behaviour (unknown_f observes the gap and doubles), which
            # is in-model cost, not leaked repair traffic.
            if (
                len(blip.epochs) == 1
                and not any(e.discarded for e in blip.epochs)
                and blip.rounds == clean.rounds
            ):
                assert blip.stats.max_bits == clean.stats.max_bits
            assert blip.result == sum(inputs.values())
