"""The analysis harness: runner, sweeps, tables, Figure 1 generation."""

import random

import pytest

from repro.adversary import FailureSchedule
from repro.analysis import (
    aggregate,
    figure1_data,
    figure1_measured,
    format_series,
    format_table,
    make_inputs,
    random_schedule_factory,
    run_point,
    run_protocol,
    sweep_b,
    sweep_f,
)
from repro.core.caaf import MAX
from repro.graphs import grid_graph
from tests.conftest import unit_inputs


class TestRunner:
    def test_algorithm1_record(self, grid44):
        rec = run_protocol(
            "algorithm1",
            grid44,
            unit_inputs(grid44),
            f=2,
            b=50,
            rng=random.Random(0),
        )
        assert rec.protocol == "algorithm1"
        assert rec.correct
        assert rec.result == 16
        assert rec.cc_bits > 0
        assert rec.flooding_rounds <= 50
        assert "pairs_run" in rec.extra

    def test_bruteforce_record(self, grid44):
        rec = run_protocol("bruteforce", grid44, unit_inputs(grid44))
        assert rec.correct and rec.result == 16

    def test_folklore_requires_f(self, grid44):
        with pytest.raises(ValueError, match="needs f"):
            run_protocol("folklore", grid44, unit_inputs(grid44))

    def test_agg_veri_record(self, grid44):
        rec = run_protocol(
            "agg_veri", grid44, unit_inputs(grid44), t=2
        )
        assert rec.extra["accepted"]
        assert rec.correct

    def test_agg_veri_requires_t(self, grid44):
        with pytest.raises(ValueError, match="needs t"):
            run_protocol("agg_veri", grid44, unit_inputs(grid44))

    def test_unknown_protocol_rejected(self, grid44):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_protocol("gossip", grid44, unit_inputs(grid44))

    def test_caaf_passthrough(self, grid44):
        inputs = {u: u for u in grid44.nodes()}
        rec = run_protocol("bruteforce", grid44, inputs, caaf=MAX)
        assert rec.result == 15

    def test_f_actual_recorded(self, grid44):
        schedule = FailureSchedule({5: 3})
        rec = run_protocol(
            "bruteforce", grid44, unit_inputs(grid44), schedule=schedule
        )
        assert rec.f_actual == grid44.edges_incident({5})

    def test_make_inputs_in_domain(self, grid44):
        inputs = make_inputs(grid44, random.Random(0), max_input=7)
        assert set(inputs) == set(grid44.nodes())
        assert all(0 <= v <= 7 for v in inputs.values())

    def test_record_as_dict_flattens_extra(self, grid44):
        rec = run_protocol(
            "algorithm1", grid44, unit_inputs(grid44), f=1, b=50,
            rng=random.Random(1),
        )
        row = rec.as_dict()
        assert "pairs_run" in row and "extra" not in row


class TestSweeps:
    def test_run_point_aggregates_seeds(self, grid44):
        pt = run_point(
            "bruteforce", grid44, seeds=range(3), coords={"case": "x"}
        )
        assert pt.runs == 3
        assert pt.correct_rate == 1.0
        assert pt.coords["case"] == "x"
        assert pt.cc_max >= pt.cc_mean

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate({}, [])

    def test_schedule_factory_budget(self, grid44):
        factory = random_schedule_factory(4, horizon=50)
        for seed in range(5):
            s = factory(grid44, random.Random(seed))
            assert s.edge_failures(grid44) <= 4

    def test_schedule_factory_zero_budget(self, grid44):
        factory = random_schedule_factory(0, horizon=50)
        assert len(factory(grid44, random.Random(0))) == 0

    def test_sweep_b_grid(self, grid44):
        points = sweep_b(grid44, f=2, bs=[42, 84], seeds=range(2))
        assert [p.coords["b"] for p in points] == [42, 84]
        assert all(p.correct_rate == 1.0 for p in points)

    def test_sweep_f_grid(self, grid44):
        points = sweep_f(grid44, fs=[1, 4], b=60, seeds=range(2))
        assert [p.coords["f"] for p in points] == [1, 4]
        assert all(p.correct_rate == 1.0 for p in points)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series([1, 2], {"y": [10.0, 20.0]}, x_label="b")
        assert "b" in text and "y" in text
        assert "10.00" in text

    def test_float_formatting(self):
        text = format_table([{"v": 123456.7}])
        assert "123,457" in text


class TestFigure1:
    def test_analytic_curves_complete(self):
        data = figure1_data(256, 32, [42, 84, 168])
        assert set(data.curves) >= {
            "upper_bound_new",
            "lower_bound_new",
            "lower_bound_old",
            "bruteforce",
            "folklore",
            "gap_ratio",
            "polylog_ceiling",
        }
        assert all(len(v) == 3 for v in data.curves.values())

    def test_measured_overlay(self, grid44):
        measured = figure1_measured(grid44, f=2, bs=[42], seeds=range(2))
        assert len(measured.tradeoff) == 1
        assert measured.tradeoff[0].correct_rate == 1.0
        assert measured.bruteforce.cc_mean > 0
        assert measured.folklore.cc_mean > 0
