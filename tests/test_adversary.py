"""Failure schedules, edge budgets, and adversary generators."""

import math
import random

import pytest

from repro.adversary import (
    EdgeBudget,
    FailureSchedule,
    affordable_nodes,
    blocker_failures,
    chain_failures,
    concentrated_failures,
    merge_schedules,
    no_failures,
    predicted_tree,
    random_failures,
    spread_failures,
    tree_path_to_root,
)
from repro.graphs import cycle_graph, grid_graph, path_graph, star_graph


class TestFailureSchedule:
    def test_crash_round_defaults_to_infinity(self):
        assert FailureSchedule().crash_round(3) == math.inf

    def test_add_keeps_earliest(self):
        s = FailureSchedule().add(1, 10).add(1, 5).add(1, 8)
        assert s.crash_round(1) == 5

    def test_rejects_round_zero(self):
        with pytest.raises(ValueError):
            FailureSchedule().add(1, 0)

    def test_failed_by(self):
        s = FailureSchedule({1: 3, 2: 7})
        assert s.failed_by(2) == set()
        assert s.failed_by(3) == {1}
        assert s.failed_by(10) == {1, 2}

    def test_failures_in_window(self):
        s = FailureSchedule({1: 3, 2: 7, 3: 9})
        assert s.failures_in_window(4, 9) == {2, 3}

    def test_edge_failures_matches_topology_count(self):
        topo = star_graph(6)
        s = FailureSchedule({1: 2, 2: 2})
        assert s.edge_failures(topo) == 2

    def test_edge_failures_in_window_partition(self):
        topo = path_graph(6)
        s = FailureSchedule({1: 3, 4: 10})
        first = s.edge_failures_in_window(topo, 1, 5)
        second = s.edge_failures_in_window(topo, 6, 20)
        assert first + second == s.edge_failures(topo)

    def test_validate_rejects_root_failure(self):
        topo = path_graph(4)
        with pytest.raises(ValueError, match="root"):
            FailureSchedule({0: 1}).validate(topo)

    def test_validate_rejects_unknown_node(self):
        topo = path_graph(4)
        with pytest.raises(ValueError, match="unknown"):
            FailureSchedule({9: 1}).validate(topo)

    def test_validate_rejects_over_budget(self):
        topo = star_graph(5)
        with pytest.raises(ValueError, match="budget"):
            FailureSchedule({1: 1, 2: 1, 3: 1}).validate(topo, f=2)

    def test_respects_c_constraint_true_case(self):
        topo = grid_graph(4, 4)
        s = FailureSchedule({5: 3})
        assert s.respects_c_constraint(topo, c=2)

    def test_respects_c_constraint_false_case(self):
        # Cutting a cycle nearly doubles the diameter: c=1 is violated.
        topo = cycle_graph(12)
        s = FailureSchedule({6: 2})
        assert not s.respects_c_constraint(topo, c=1)
        assert s.respects_c_constraint(topo, c=2)

    def test_merge_keeps_earliest(self):
        a = FailureSchedule({1: 5})
        b = FailureSchedule({1: 3, 2: 9})
        merged = merge_schedules([a, b])
        assert merged.crash_rounds == {1: 3, 2: 9}

    def test_len(self):
        assert len(FailureSchedule({1: 2, 5: 3})) == 2


class TestEdgeBudget:
    def test_cost_of_first_node_is_degree(self):
        topo = star_graph(5)
        budget = EdgeBudget(topo, 10)
        assert budget.cost_of(1) == 1

    def test_cost_discounts_already_failed_neighbours(self):
        topo = path_graph(4)
        budget = EdgeBudget(topo, 10)
        budget.charge(1)
        # Node 2's edges: (1,2) already failed, (2,3) fresh.
        assert budget.cost_of(2) == 1

    def test_charge_tracks_usage(self):
        topo = path_graph(5)
        budget = EdgeBudget(topo, 4)
        assert budget.charge(2) == 2
        assert budget.used == 2
        assert budget.remaining == 2

    def test_charge_rejects_over_budget(self):
        topo = star_graph(8)
        budget = EdgeBudget(topo, 0)
        with pytest.raises(ValueError):
            budget.charge(1)

    def test_charge_rejects_root(self):
        topo = path_graph(3)
        budget = EdgeBudget(topo, 10)
        with pytest.raises(ValueError, match="root"):
            budget.charge(0)

    def test_affordable_nodes_excludes_expensive(self):
        topo = star_graph(6)
        budget = EdgeBudget(topo, 1)
        # Every leaf costs 1; all leaves affordable, root excluded.
        assert affordable_nodes(budget) == [1, 2, 3, 4, 5]

    def test_total_failed_edges_equals_topology_count(self):
        topo = grid_graph(4, 4)
        rng = random.Random(0)
        budget = EdgeBudget(topo, 9)
        while affordable_nodes(budget):
            budget.charge(rng.choice(affordable_nodes(budget)))
        assert budget.used == topo.edges_incident(budget.failed)
        assert budget.used <= 9


class TestGenerators:
    def test_no_failures_empty(self):
        assert len(no_failures()) == 0

    @pytest.mark.parametrize("f", [1, 4, 9])
    def test_random_failures_respect_budget(self, f):
        topo = grid_graph(4, 4)
        for seed in range(5):
            s = random_failures(topo, f, random.Random(seed), last_round=50)
            assert s.edge_failures(topo) <= f
            assert 0 not in s.failed_nodes

    def test_random_failures_within_window(self):
        topo = grid_graph(4, 4)
        s = random_failures(topo, 6, random.Random(1), first_round=10, last_round=20)
        assert all(10 <= r <= 20 for r in s.crash_rounds.values())

    def test_random_failures_respect_c(self):
        topo = cycle_graph(16)
        s = random_failures(topo, 8, random.Random(2), last_round=30, respect_c=2)
        assert s.respects_c_constraint(topo, 2)

    def test_concentrated_failures_in_window(self):
        topo = grid_graph(4, 4)
        s = concentrated_failures(topo, 6, random.Random(3), window=(100, 110))
        assert s.failures_in_window(100, 110) == s.failed_nodes

    def test_spread_failures_cover_horizon(self):
        topo = grid_graph(5, 5)
        s = spread_failures(topo, 10, random.Random(4), horizon=1000)
        rounds = sorted(s.crash_rounds.values())
        assert len(rounds) >= 2
        assert rounds[-1] - rounds[0] >= 100  # genuinely spread out

    def test_blocker_kills_victim_and_neighbourhood_same_round(self):
        topo = grid_graph(4, 4)
        s = blocker_failures(topo, f=12, victim=5, at_round=42)
        assert 5 in s.failed_nodes
        assert len(s.failed_nodes) > 1
        assert set(s.crash_rounds.values()) == {42}

    def test_blocker_rejects_root_victim(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError):
            blocker_failures(topo, f=8, victim=0, at_round=1)

    def test_blocker_rejects_unaffordable_victim(self):
        # Grid node 5 has degree 4 > budget 2.
        topo = grid_graph(4, 4)
        with pytest.raises(ValueError, match="budget"):
            blocker_failures(topo, f=2, victim=5, at_round=1)


class TestPredictedTreeAndChains:
    def test_predicted_tree_levels(self):
        topo = grid_graph(3, 3)
        parent, children = predicted_tree(topo)
        assert parent[0] == -1
        assert parent[1] == 0 and parent[3] == 0
        # node 4 has neighbours 1 and 3 at level 1; smallest id wins.
        assert parent[4] == 1
        assert 4 in children[1]

    def test_tree_path_to_root(self):
        topo = path_graph(5)
        parent, _ = predicted_tree(topo)
        assert tree_path_to_root(parent, 4) == [4, 3, 2, 1, 0]

    def test_chain_failures_form_tree_chain(self):
        topo = grid_graph(5, 5)
        s = chain_failures(topo, chain_length=3, at_round=7, rng=random.Random(1))
        assert s is not None
        parent, _ = predicted_tree(topo)
        chain = sorted(s.failed_nodes, key=lambda u: -topo.levels[u])
        for deeper, upper in zip(chain, chain[1:]):
            assert parent[deeper] == upper
        assert set(s.crash_rounds.values()) == {7}

    def test_chain_failures_none_when_too_shallow(self):
        topo = star_graph(8)  # depth 1: no room for a chain of 3
        assert chain_failures(topo, chain_length=3, at_round=5) is None

    def test_chain_failures_respects_budget(self):
        topo = grid_graph(5, 5)
        s = chain_failures(
            topo, chain_length=2, at_round=5, f=8, rng=random.Random(0)
        )
        assert s is not None
        assert s.edge_failures(topo) <= 8
