"""The fragment / representative-set oracle, and AGG validated against it."""

import random

import pytest

from repro.adversary import FailureSchedule, chain_failures, random_failures
from repro.core.agg import run_agg
from repro.core.fragments import (
    build_fragment_model,
    oracle_representative_set_is_valid,
    psum_members,
)
from repro.core.params import params_for
from repro.core.wire import KEEP
from repro.graphs import balanced_tree, grid_graph, path_graph


def aggregation_phase_start(topo, c=2):
    return 2 * c * topo.diameter + 2


class TestFragmentModel:
    def test_no_failures_single_fragment(self):
        topo = grid_graph(4, 4)
        model = build_fragment_model(
            topo, FailureSchedule(), params_for(topo, t=2)
        )
        assert model.critical_failures == set()
        assert set(model.fragment_of.values()) == {topo.root}

    def test_mid_aggregation_crash_is_critical(self):
        topo = path_graph(6)
        params = params_for(topo, t=2)
        at = aggregation_phase_start(topo)
        schedule = FailureSchedule({3: at})
        model = build_fragment_model(topo, schedule, params)
        assert 3 in model.critical_failures
        assert 3 in model.visible_critical_failures  # parent 2 is alive

    def test_crash_after_slot_is_not_critical(self):
        topo = path_graph(6)
        params = params_for(topo, t=2)
        # Node 5 (deepest, level 5) acts first in the aggregation phase;
        # crashing it at the very end of AGG is past its slot.
        schedule = FailureSchedule({5: params.agg_rounds})
        model = build_fragment_model(topo, schedule, params)
        assert 5 not in model.critical_failures

    def test_chain_makes_invisible_critical_failures(self):
        # In a failed chain, only the topmost failed node has a live
        # parent, so only it is visible.
        topo = path_graph(8)
        params = params_for(topo, t=3)
        at = aggregation_phase_start(topo)
        schedule = FailureSchedule({2: at, 3: at, 4: at})
        model = build_fragment_model(topo, schedule, params)
        assert model.critical_failures == {2, 3, 4}
        assert model.visible_critical_failures == {2}

    def test_fragments_split_at_visible_failures(self):
        topo = path_graph(6)
        params = params_for(topo, t=2)
        at = aggregation_phase_start(topo)
        schedule = FailureSchedule({2: at})
        model = build_fragment_model(topo, schedule, params)
        assert model.fragment_of[1] == topo.root
        assert model.fragment_of[2] == 2
        assert model.fragment_of[5] == 2

    def test_local_ancestors_stop_at_fragment_boundary(self):
        topo = path_graph(6)
        params = params_for(topo, t=2)
        at = aggregation_phase_start(topo)
        schedule = FailureSchedule({2: at})
        model = build_fragment_model(topo, schedule, params)
        assert model.local_ancestors(5) == [4, 3, 2]
        assert model.local_ancestors(1) == [0]

    def test_local_descendants(self):
        topo = balanced_tree(2, 7)
        model = build_fragment_model(
            topo, FailureSchedule(), params_for(topo, t=1)
        )
        assert model.local_descendants(1) == {3, 4}
        assert model.local_descendants(0) == {1, 2, 3, 4, 5, 6}

    def test_representatives_cross_invisible_failures_only_via_live_path(self):
        topo = path_graph(8)
        params = params_for(topo, t=3)
        at = aggregation_phase_start(topo)
        schedule = FailureSchedule({2: at, 3: at, 4: at})
        model = build_fragment_model(topo, schedule, params)
        # Node 5's local ancestors inside fragment rooted at 2: [4, 3, 2];
        # 3 and 4 are invisible critical failures, so representatives of 5
        # stop once the downward path crosses an invisible failure.
        reps = model.representatives_of(5, model.critical_failures - model.visible_critical_failures)
        assert reps[0] == 5
        assert 4 in reps  # path 4->5 has nothing strictly between


class TestPsumMembers:
    def test_failure_free_root_psum_covers_everyone(self):
        topo = grid_graph(4, 4)
        params = params_for(topo, t=1)
        model = build_fragment_model(topo, FailureSchedule(), params)
        members = psum_members(model, FailureSchedule(), topo.root, params)
        assert members == set(topo.nodes())

    def test_crash_prunes_subtree(self):
        topo = path_graph(6)
        params = params_for(topo, t=1)
        at = aggregation_phase_start(topo)
        schedule = FailureSchedule({3: at})
        model = build_fragment_model(topo, schedule, params)
        members = psum_members(model, schedule, topo.root, params)
        assert members == {0, 1, 2}

    def test_members_of_inner_source(self):
        topo = path_graph(6)
        params = params_for(topo, t=1)
        model = build_fragment_model(topo, FailureSchedule(), params)
        assert psum_members(model, FailureSchedule(), 3, params) == {3, 4, 5}


class TestAggAgainstOracle:
    """AGG's distributed selection reproduces the oracle's arithmetic."""

    @pytest.mark.parametrize("seed", range(6))
    def test_result_equals_oracle_member_sum(self, seed):
        topo = grid_graph(5, 5)
        params = params_for(topo, t=6)
        rng = random.Random(seed)
        # Crashes strictly after construction so the predicted tree holds.
        start = aggregation_phase_start(topo)
        schedule = random_failures(
            topo, f=6, rng=rng, first_round=start, last_round=params.agg_rounds
        )
        inputs = {u: rng.randint(1, 9) for u in topo.nodes()}
        out = run_agg(topo, inputs, t=6, schedule=schedule)
        assert not out.aborted
        model = build_fragment_model(topo, schedule, params)
        root = out.nodes[topo.root]
        selected = {
            source
            for source in root.flooded_sources
            if (KEEP, source) in root.determinations
        }
        oracle_sum = 0
        covered = set()
        members_by_source = {}
        for source in selected:
            members = psum_members(model, schedule, source, params)
            members_by_source[source] = members
            oracle_sum += sum(inputs[u] for u in members)
            covered |= members
        assert out.result == oracle_sum

        alive = topo.alive_component(schedule.failed_by(params.agg_rounds))
        ok, reason = oracle_representative_set_is_valid(
            model, selected, members_by_source, alive
        )
        assert ok, reason

    def test_validity_checker_catches_double_count(self):
        topo = path_graph(4)
        params = params_for(topo, t=1)
        model = build_fragment_model(topo, FailureSchedule(), params)
        members = {0: {0, 1, 2, 3}, 2: {2, 3}}
        ok, reason = oracle_representative_set_is_valid(
            model, {0, 2}, members, alive_at_end={0, 1, 2, 3}
        )
        assert not ok and "counted 2 times" in reason

    def test_validity_checker_catches_missing_alive_node(self):
        topo = path_graph(4)
        params = params_for(topo, t=1)
        model = build_fragment_model(topo, FailureSchedule(), params)
        ok, reason = oracle_representative_set_is_valid(
            model, {0}, {0: {0, 1}}, alive_at_end={0, 1, 2}
        )
        assert not ok and "covered 0 times" in reason
