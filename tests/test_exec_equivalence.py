"""The engine's determinism contract: parallel == serial, byte for byte.

The execution engine promises that worker count, completion order, and
cache state are *invisible* in the results: any ``--jobs`` value must
produce byte-identical aggregated sweep output and byte-identical
checkpoint files.  These tests pin that contract — first against the
legacy serial code paths (the engine is a refactor, not a semantics
change), then across process fan-out, then property-based over random
completion orders.
"""

import io
import json
import random

import pytest

from repro.analysis import SweepCheckpoint, run_point, sweep_b, sweep_f
from repro.analysis.sweep import random_schedule_factory, random_schedule_spec
from repro.adversary.search import (
    EvaluatorSpec,
    make_algorithm1_evaluator,
    search_worst_adversary,
)
from repro.analysis.runner import make_inputs
from repro.exec import ExecutionEngine, ResultCache, ShuffledBackend
from repro.graphs import grid_graph

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

BS = [42, 84]
F = 2
SEEDS = range(3)


def _fingerprint(points):
    return [json.dumps(p.as_dict(), sort_keys=True) for p in points]


def _serial_sweep(topology, checkpoint=None):
    return sweep_b(topology, f=F, bs=BS, seeds=SEEDS, checkpoint=checkpoint)


def _engine_sweep(topology, engine, checkpoint=None):
    return sweep_b(
        topology, f=F, bs=BS, seeds=SEEDS, checkpoint=checkpoint, engine=engine
    )


class TestLegacyEquivalence:
    def test_run_point_engine_matches_serial(self, grid44):
        horizon = 42 * grid44.diameter
        serial = run_point(
            "algorithm1",
            grid44,
            SEEDS,
            schedule_factory=random_schedule_factory(F, horizon),
            f=F,
            b=42,
            coords={"b": 42, "f": F, "n": grid44.n_nodes},
        )
        engine = run_point(
            "algorithm1",
            grid44,
            SEEDS,
            f=F,
            b=42,
            coords={"b": 42, "f": F, "n": grid44.n_nodes},
            engine=ExecutionEngine(jobs=1),
            schedule_spec=random_schedule_spec(F, horizon),
        )
        assert engine.as_dict() == serial.as_dict()
        assert _fingerprint([engine]) == _fingerprint([serial])

    def test_run_point_engine_rejects_closures(self, grid44):
        with pytest.raises(ValueError, match="declarative"):
            run_point(
                "algorithm1",
                grid44,
                SEEDS,
                schedule_factory=random_schedule_factory(F, 42),
                engine=ExecutionEngine(jobs=1),
            )

    def test_sweep_b_engine_matches_serial_including_checkpoint(
        self, grid44, tmp_path
    ):
        serial_path = str(tmp_path / "serial.jsonl")
        cp = SweepCheckpoint(serial_path)
        serial = _serial_sweep(grid44, checkpoint=cp)
        cp.close()

        engine_path = str(tmp_path / "engine.jsonl")
        cp = SweepCheckpoint(engine_path)
        engine = _engine_sweep(grid44, ExecutionEngine(jobs=1), checkpoint=cp)
        cp.close()

        assert _fingerprint(engine) == _fingerprint(serial)
        assert (
            open(engine_path, "rb").read() == open(serial_path, "rb").read()
        )

    def test_sweep_f_engine_matches_serial(self, grid44):
        serial = sweep_f(grid44, fs=[1, 2], b=60, seeds=SEEDS)
        engine = sweep_f(
            grid44, fs=[1, 2], b=60, seeds=SEEDS, engine=ExecutionEngine(jobs=1)
        )
        assert _fingerprint(engine) == _fingerprint(serial)

    def test_serial_resume_reads_parallel_checkpoint(self, grid44, tmp_path):
        # Cross-compatibility: a checkpoint written by the engine resumes
        # a legacy serial sweep (and vice versa, same file format).
        path = str(tmp_path / "cross.jsonl")
        cp = SweepCheckpoint(path)
        engine = _engine_sweep(grid44, ExecutionEngine(jobs=1), checkpoint=cp)
        cp.close()
        cp = SweepCheckpoint(path)
        serial = _serial_sweep(grid44, checkpoint=cp)
        cp.close()
        assert _fingerprint(serial) == _fingerprint(engine)


class TestProcessEquivalence:
    def test_jobs4_matches_jobs1_byte_for_byte(self, grid44, tmp_path):
        p1 = str(tmp_path / "j1.jsonl")
        cp = SweepCheckpoint(p1)
        one = _engine_sweep(grid44, ExecutionEngine(jobs=1), checkpoint=cp)
        cp.close()

        p4 = str(tmp_path / "j4.jsonl")
        cp = SweepCheckpoint(p4)
        four = _engine_sweep(grid44, ExecutionEngine(jobs=4), checkpoint=cp)
        cp.close()

        assert _fingerprint(four) == _fingerprint(one)
        assert open(p4, "rb").read() == open(p1, "rb").read()

    def test_warm_cache_replay_is_identical(self, grid44, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = _engine_sweep(
            grid44, ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        )
        warm_cache = ResultCache(cache_dir)
        warm = _engine_sweep(grid44, ExecutionEngine(jobs=1, cache=warm_cache))
        assert _fingerprint(warm) == _fingerprint(cold)
        assert warm_cache.hits == len(BS) * len(list(SEEDS))

    def test_force_recomputes_to_the_same_answer(self, grid44, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = _engine_sweep(
            grid44, ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        )
        forced_cache = ResultCache(cache_dir)
        forced = _engine_sweep(
            grid44, ExecutionEngine(jobs=1, cache=forced_cache, force=True)
        )
        assert _fingerprint(forced) == _fingerprint(cold)
        assert forced_cache.hits == 0


# --------------------------------------------------------------------- #
# Property: ANY completion order and ANY jobs value -> identical bytes.
# --------------------------------------------------------------------- #

_BASELINE = {}


def _baseline(tmp_base):
    """Serial fingerprint + checkpoint bytes, computed once per session."""
    if "points" not in _BASELINE:
        topology = grid_graph(3, 3)
        path = str(tmp_base / "baseline.jsonl")
        cp = SweepCheckpoint(path)
        points = sweep_b(
            topology, f=1, bs=[42, 63], seeds=range(2), checkpoint=cp,
            engine=ExecutionEngine(jobs=1),
        )
        cp.close()
        _BASELINE["points"] = _fingerprint(points)
        _BASELINE["bytes"] = open(path, "rb").read()
        _BASELINE["topology"] = topology
    return _BASELINE


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestCompletionOrderProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        order_seed=st.integers(min_value=0, max_value=2**32 - 1),
        jobs=st.integers(min_value=1, max_value=8),
    )
    def test_any_completion_order_and_jobs_is_byte_identical(
        self, tmp_path_factory, order_seed, jobs
    ):
        base = _baseline(tmp_path_factory.getbasetemp())
        topology = base["topology"]
        path = str(
            tmp_path_factory.mktemp("perm") / f"s{order_seed}-j{jobs}.jsonl"
        )
        cp = SweepCheckpoint(path)
        # ShuffledBackend releases completions in an rng-chosen order;
        # `jobs` still drives the engine's submission windowing, so the
        # two axes of nondeterminism vary independently here.
        engine = ExecutionEngine(
            jobs=jobs, backend=ShuffledBackend(random.Random(order_seed))
        )
        points = sweep_b(
            topology, f=1, bs=[42, 63], seeds=range(2), checkpoint=cp,
            engine=engine,
        )
        cp.close()
        assert _fingerprint(points) == base["points"]
        assert open(path, "rb").read() == base["bytes"]


# --------------------------------------------------------------------- #
# Parallel adversary search.
# --------------------------------------------------------------------- #


class TestSearchEquivalence:
    def _spec(self, topology):
        rng = random.Random(0)
        inputs = make_inputs(topology, rng)
        return EvaluatorSpec(topology, inputs, f=2, b=45)

    def test_jobs2_matches_jobs1(self, grid44):
        spec = self._spec(grid44)
        results = [
            search_worst_adversary(
                spec, grid44, f=2, horizon=45 * grid44.diameter,
                rng=random.Random(7), restarts=3, steps_per_restart=2,
                jobs=jobs,
            )
            for jobs in (1, 2)
        ]
        one, two = results
        assert two.cc_bits == one.cc_bits
        assert two.rounds == one.rounds
        assert two.trials == one.trials
        assert two.schedule.crash_rounds == one.schedule.crash_rounds

    def test_spec_matches_closure_evaluator_serially(self, grid44):
        rng = random.Random(0)
        inputs = make_inputs(grid44, rng)
        closure = make_algorithm1_evaluator(grid44, inputs, f=2, b=45)
        spec = EvaluatorSpec(grid44, inputs, f=2, b=45)
        a = search_worst_adversary(
            closure, grid44, f=2, horizon=45 * grid44.diameter,
            rng=random.Random(3), restarts=2, steps_per_restart=2,
        )
        b = search_worst_adversary(
            spec, grid44, f=2, horizon=45 * grid44.diameter,
            rng=random.Random(3), restarts=2, steps_per_restart=2,
        )
        assert (a.cc_bits, a.rounds, a.trials) == (b.cc_bits, b.rounds, b.trials)
        assert a.schedule.crash_rounds == b.schedule.crash_rounds

    def test_parallel_requires_picklable_spec(self, grid44):
        rng = random.Random(0)
        inputs = make_inputs(grid44, rng)
        closure = make_algorithm1_evaluator(grid44, inputs, f=2, b=45)
        with pytest.raises(TypeError, match="EvaluatorSpec"):
            search_worst_adversary(
                closure, grid44, f=2, horizon=45, jobs=2
            )

    def test_trial_count_invariant_holds(self, grid44):
        spec = self._spec(grid44)
        result = search_worst_adversary(
            spec, grid44, f=2, horizon=45 * grid44.diameter,
            rng=random.Random(1), restarts=3, steps_per_restart=4,
        )
        assert result.trials == 1 + 3 * (1 + 4)


# --------------------------------------------------------------------- #
# End-to-end through the CLI.
# --------------------------------------------------------------------- #


class TestCliEquivalence:
    def _main(self, argv):
        import contextlib

        from repro.cli import main

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            code = main(argv)
        return code, buf.getvalue()

    def test_sweep_b_jobs2_prints_identical_table(self):
        base = ["sweep-b", "--topology", "grid:4x4", "-f", "2",
                "--bs", "42,84", "--seeds", "2"]
        code1, out1 = self._main(base)
        code2, out2 = self._main(base + ["--jobs", "2"])
        assert (code1, out1) == (code2, out2)

    def test_chaos_jobs2_prints_identical_table(self):
        base = ["chaos", "--topology", "grid:4x4", "--protocol", "unknown_f",
                "-f", "2", "--seeds", "3"]
        code1, out1 = self._main(base)
        code2, out2 = self._main(base + ["--jobs", "2"])
        assert (code1, out1) == (code2, out2)

    def test_run_jobs2_prints_identical_table(self):
        base = ["run", "--topology", "grid:4x4", "-f", "2", "-b", "60"]
        code1, out1 = self._main(base)
        code2, out2 = self._main(base + ["--jobs", "2"])
        assert (code1, out1) == (code2, out2)

    def test_sweep_f_verb_works(self):
        code, out = self._main(
            ["sweep-f", "--topology", "grid:4x4", "--fs", "1,2", "-b", "60",
             "--seeds", "2"]
        )
        assert code == 0
        assert "CC vs f" in out

    def test_cache_verb_stats_gc_clear(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._main(
            ["sweep-b", "--topology", "grid:4x4", "-f", "2", "--bs", "42",
             "--seeds", "2", "--cache-dir", cache_dir]
        )
        code, out = self._main(["cache", "stats", "--cache-dir", cache_dir])
        assert code == 0 and "entries" in out
        code, out = self._main(
            ["cache", "gc", "--cache-dir", cache_dir, "--older-than", "1d"]
        )
        assert code == 0 and "removed 0" in out
        code, out = self._main(["cache", "clear", "--cache-dir", cache_dir])
        assert code == 0 and "cleared 2" in out
