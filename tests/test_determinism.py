"""Reproducibility: identical seeds produce identical executions.

A reproduction harness must itself be reproducible — every randomized
component (topology sampling, adversary generation, Algorithm 1's coins,
gossip, searches) is driven by explicit ``random.Random`` instances, and
these tests pin that no hidden global randomness sneaks in.
"""

import random

import pytest

from repro.adversary import random_failures, spread_failures
from repro.adversary.search import random_schedule
from repro.analysis import make_inputs, run_protocol
from repro.baselines.gossip import run_gossip
from repro.core import run_algorithm1
from repro.graphs import gnp_connected, grid_graph, random_geometric


class TestGeneratorDeterminism:
    def test_geometric_topology(self):
        a = random_geometric(40, rng=random.Random(9))
        b = random_geometric(40, rng=random.Random(9))
        assert a.adjacency == b.adjacency

    def test_gnp_topology(self):
        a = gnp_connected(30, rng=random.Random(9))
        b = gnp_connected(30, rng=random.Random(9))
        assert a.adjacency == b.adjacency

    def test_inputs(self):
        topo = grid_graph(4, 4)
        assert make_inputs(topo, random.Random(3)) == make_inputs(
            topo, random.Random(3)
        )

    def test_adversaries(self):
        topo = grid_graph(5, 5)
        for factory in (
            lambda r: random_failures(topo, 6, r, last_round=100),
            lambda r: spread_failures(topo, 6, r, horizon=500),
            lambda r: random_schedule(topo, 6, 100, r),
        ):
            a = factory(random.Random(4))
            b = factory(random.Random(4))
            assert a.crash_rounds == b.crash_rounds


class TestProtocolDeterminism:
    def test_algorithm1_identical_runs(self):
        topo = grid_graph(5, 5)
        inputs = {u: u % 7 for u in topo.nodes()}
        schedule = random_failures(topo, 6, random.Random(1), last_round=300)

        def execute():
            return run_algorithm1(
                topo, inputs, f=6, b=84, schedule=schedule, rng=random.Random(5)
            )

        a, b = execute(), execute()
        assert a.result == b.result
        assert a.stats.bits_sent == b.stats.bits_sent
        assert a.rounds == b.rounds
        assert a.selected_intervals == b.selected_intervals

    def test_different_coins_may_differ_but_stay_correct(self):
        topo = grid_graph(5, 5)
        inputs = {u: 1 for u in topo.nodes()}
        outcomes = {
            tuple(
                run_algorithm1(
                    topo, inputs, f=4, b=400, rng=random.Random(seed)
                ).selected_intervals
            )
            for seed in range(10)
        }
        assert len(outcomes) > 1  # the coins genuinely matter

    def test_run_protocol_records_identical(self):
        topo = grid_graph(4, 4)
        inputs = {u: 2 for u in topo.nodes()}
        a = run_protocol(
            "unknown_f", topo, inputs, rng=random.Random(0)
        ).as_dict()
        b = run_protocol(
            "unknown_f", topo, inputs, rng=random.Random(0)
        ).as_dict()
        assert a == b

    def test_gossip_deterministic(self):
        topo = grid_graph(4, 4)
        inputs = {u: u for u in topo.nodes()}
        a = run_gossip(topo, inputs, rounds=50)
        b = run_gossip(topo, inputs, rounds=50)
        assert a.estimate == b.estimate
        assert a.stats.bits_sent == b.stats.bits_sent


class TestCrossProtocolAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_protocols_agree_failure_free(self, seed):
        topo = gnp_connected(20, rng=random.Random(seed))
        rng = random.Random(seed + 10)
        inputs = {u: rng.randint(0, 30) for u in topo.nodes()}
        expected = sum(inputs.values())
        results = {
            name: run_protocol(
                name,
                topo,
                inputs,
                f=2 if name in ("algorithm1", "folklore") else None,
                b=45 if name == "algorithm1" else None,
                rng=random.Random(seed),
            ).result
            for name in ("algorithm1", "bruteforce", "folklore", "tag", "unknown_f")
        }
        assert set(results.values()) == {expected}, results
