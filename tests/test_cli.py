"""The repro-agg command-line interface."""

import os

import pytest

from repro.cli import build_parser, main, parse_topology


class TestTopologySpecs:
    def test_grid(self):
        topo = parse_topology("grid:3x4")
        assert topo.n_nodes == 12

    def test_grid_square_shorthand(self):
        assert parse_topology("grid:5").n_nodes == 25

    def test_path_cycle_star(self):
        assert parse_topology("path:7").n_nodes == 7
        assert parse_topology("cycle:8").n_nodes == 8
        assert parse_topology("star:9").n_nodes == 9

    def test_tree(self):
        assert parse_topology("tree:2,15").n_nodes == 15

    def test_geometric_and_gnp_seeded(self):
        a = parse_topology("geometric:30", seed=5)
        b = parse_topology("geometric:30", seed=5)
        assert a.adjacency == b.adjacency
        assert parse_topology("gnp:25", seed=1).n_nodes == 25

    def test_clustered(self):
        assert parse_topology("clustered:3x4").n_nodes == 12

    def test_file_round_trip(self, tmp_path):
        from repro.graphs import io as gio

        path = os.path.join(tmp_path, "t.json")
        gio.save(parse_topology("grid:3x3"), path)
        assert parse_topology(f"file:{path}").n_nodes == 9

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            parse_topology("torus:5")


class TestCommands:
    def test_run_algorithm1(self, capsys):
        code = main(
            [
                "run",
                "--topology",
                "grid:4x4",
                "--protocol",
                "algorithm1",
                "-f",
                "2",
                "-b",
                "45",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm1" in out
        assert "True" in out  # correct column

    def test_run_bruteforce_no_failures(self, capsys):
        code = main(["run", "--topology", "path:6", "--protocol", "bruteforce"])
        assert code == 0
        assert "bruteforce" in capsys.readouterr().out

    def test_sweep_b(self, capsys):
        code = main(
            [
                "sweep-b",
                "--topology",
                "grid:4x4",
                "-f",
                "2",
                "--bs",
                "42,84",
                "--seeds",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "42" in out and "84" in out

    def test_figure1(self, capsys):
        code = main(["figure1", "-n", "256", "-f", "32", "--bs", "42,84"])
        out = capsys.readouterr().out
        assert code == 0
        assert "upper_bound_new" in out

    def test_figure1_with_plot(self, capsys):
        code = main(
            ["figure1", "-n", "256", "-f", "32", "--bs", "42,84", "--plot"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "log scale" in out

    def test_select(self, capsys):
        code = main(
            ["select", "--topology", "grid:4x4", "-k", "3", "-f", "1", "-b", "45"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "COUNT probes" in out

    def test_topology_export(self, capsys, tmp_path):
        out_path = os.path.join(tmp_path, "g.dot")
        code = main(["topology", "--topology", "grid:3x3", "--out", out_path])
        assert code == 0
        assert os.path.exists(out_path)
        assert "saved" in capsys.readouterr().out

    def test_worst_case_search(self, capsys):
        code = main(
            [
                "worst-case",
                "--topology",
                "grid:4x4",
                "-f",
                "2",
                "-b",
                "45",
                "--restarts",
                "1",
                "--steps",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # zero incorrect results
        assert "worst CC" in out

    def test_monitor(self, capsys):
        code = main(
            [
                "monitor",
                "--topology",
                "grid:4x4",
                "--epochs",
                "2",
                "-f",
                "2",
                "-b",
                "45",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "epoch" in out

    def test_baseline_capture_and_check(self, capsys, tmp_path):
        path = os.path.join(tmp_path, "base.json")
        assert main(["baseline", "capture", "--path", path]) == 0
        capsys.readouterr()
        assert main(["baseline", "check", "--path", path]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGrayFlags:
    def test_run_with_gray_and_adaptive_rto(self, capsys):
        code = main(
            [
                "run",
                "--topology",
                "grid:3x3",
                "-f",
                "2",
                "-b",
                "64",
                "--retransmit-budget",
                "2",
                "--rto",
                "adaptive",
                "--gray",
                "rate:0.3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "gray_stalled" in out

    def test_run_with_explicit_gray_spec(self, capsys):
        code = main(
            [
                "run",
                "--topology",
                "grid:3x3",
                "-f",
                "2",
                "-b",
                "64",
                "--retransmit-budget",
                "2",
                "--gray",
                "4:stall@r5-r15:x2",
            ]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_chaos_gray_gate(self, capsys):
        code = main(
            [
                "chaos",
                "--topology",
                "grid:3x3",
                "--protocol",
                "algorithm1",
                "-f",
                "2",
                "-b",
                "64",
                "--inject",
                "drop=0.02",
                "--retransmit-budget",
                "2",
                "--rto",
                "adaptive",
                "--hedge",
                "--gray",
                "rate:0.3",
                "--seeds",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "false-suspect" in out and "unbounded-stall" in out
        assert "suspects" in out


class TestFlagValidation:
    """Flag combinations that would silently do nothing are rejected."""

    @pytest.mark.parametrize(
        "argv,needle",
        [
            (["run", "--rto", "adaptive"], "--rto adaptive"),
            (["run", "--hedge"], "--hedge"),
            (
                [
                    "run",
                    "--retransmit-budget",
                    "2",
                    "--rto",
                    "adaptive",
                    "--churn",
                    "rate:0.1",
                ],
                "mutually exclusive",
            ),
            (
                ["run", "--retransmit-budget", "2", "--hedge", "--churn", "rate:0.1"],
                "mutually exclusive",
            ),
            (["run", "--flap-rate", "0.5"], "--flap-rate"),
            (["run", "--max-epochs", "3"], "--max-epochs"),
            (["run", "--amnesiac", "0.5"], "--amnesiac"),
            (["run", "--gray", "rate:bogus"], "--gray"),
            (
                ["run", "--gray", "nonsense", "--retransmit-budget", "2"],
                "--gray",
            ),
        ],
    )
    def test_rejected_combinations(self, argv, needle):
        with pytest.raises(SystemExit) as err:
            main(argv + ["--topology", "grid:3x3"])
        assert needle in str(err.value)

    def test_amnesiac_with_churn_still_works(self, capsys):
        code = main(
            [
                "run",
                "--topology",
                "grid:3x3",
                "--protocol",
                "unknown_f",
                "-f",
                "1",
                "--churn",
                "rate:0.05",
                "--amnesiac",
                "0.0",
                "--retransmit-budget",
                "2",
            ]
        )
        assert code == 0
        assert "unknown_f" in capsys.readouterr().out
