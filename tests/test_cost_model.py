"""The analytic AGG/VERI cost model vs measured traffic."""

import pytest

from repro.adversary import FailureSchedule
from repro.analysis.cost_model import (
    phase_breakdown_from_trace,
    predict_agg_costs,
    predict_pair_total,
    predict_veri_costs,
    within_paper_budget,
)
from repro.core.agg import AggNode
from repro.core.params import ProtocolParams, params_for
from repro.graphs import grid_graph
from repro.sim import Network, Tracer


def make_params(t=2):
    return params_for(grid_graph(4, 4), t=t)


class TestPredictions:
    def test_phases_present(self):
        costs = predict_agg_costs(make_params(), failures=0)
        assert set(costs.per_phase) == {
            "construction",
            "aggregation",
            "flooding",
            "selection",
        }
        assert costs.total == sum(costs.per_phase.values())

    def test_monotone_in_failures(self):
        p = make_params()
        totals = [predict_agg_costs(p, f).total for f in (0, 2, 5)]
        assert totals == sorted(totals)

    def test_monotone_in_t(self):
        totals = [
            predict_agg_costs(make_params(t), 0).total for t in (0, 3, 8)
        ]
        assert totals == sorted(totals)

    def test_veri_phases_present(self):
        costs = predict_veri_costs(make_params(), failures=1)
        assert set(costs.per_phase) == {
            "parent_detection",
            "child_detection",
            "lfc_detection",
        }

    def test_pair_total_is_sum(self):
        p = make_params()
        assert predict_pair_total(p, 2) == pytest.approx(
            predict_agg_costs(p, 2).total + predict_veri_costs(p, 2).total
        )

    def test_rejects_negative_failures(self):
        with pytest.raises(ValueError):
            predict_agg_costs(make_params(), -1)
        with pytest.raises(ValueError):
            predict_veri_costs(make_params(), -1)


class TestBudgetConsistency:
    @pytest.mark.parametrize("t", [0, 1, 2, 4, 8, 16])
    def test_tolerable_executions_fit_the_paper_budgets(self, t):
        # The paper's abort thresholds must dominate the white-box model at
        # failures <= t — otherwise AGG would abort on tolerable runs.
        p = params_for(grid_graph(5, 5), t=t)
        assert within_paper_budget(p, failures=t)

    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_budget_consistency_across_n(self, n):
        p = ProtocolParams(n_nodes=n, root=0, diameter=6, c=2, t=4)
        assert within_paper_budget(p, failures=4)


class TestAgainstMeasurements:
    def _run_traced(self, schedule=None, t=2):
        topo = grid_graph(4, 4)
        params = params_for(topo, t=t)
        nodes = {u: AggNode(params, u, 1) for u in topo.nodes()}
        tracer = Tracer(record_deliveries=False)
        net = Network(
            topo.adjacency,
            nodes,
            (schedule or FailureSchedule()).crash_rounds,
            tracer=tracer,
        )
        net.run(params.agg_rounds, stop_on_output=False)
        return topo, params, tracer, net

    def test_model_upper_bounds_measured_per_node_failure_free(self):
        topo, params, tracer, net = self._run_traced()
        predicted = predict_agg_costs(params, failures=0).total
        assert net.stats.max_bits <= predicted

    def test_model_upper_bounds_measured_with_failures(self):
        topo = grid_graph(4, 4)
        cd = 2 * topo.diameter
        schedule = FailureSchedule({5: 2 * cd + 2})
        failures = topo.edges_incident({5})
        _t, params, _tr, net = self._run_traced(schedule=schedule, t=failures)
        predicted = predict_agg_costs(params, failures=failures).total
        assert net.stats.max_bits <= predicted

    def test_phase_breakdown_sums_to_total(self):
        topo, params, tracer, net = self._run_traced()
        breakdown = phase_breakdown_from_trace(tracer, params)
        assert sum(breakdown.values()) == net.stats.total_bits

    def test_failure_free_flooding_phase_is_light(self):
        # Without failures only the root's single flood circulates; the
        # construction phase (with its 2t-ancestor beacons) dominates.
        topo, params, tracer, net = self._run_traced()
        breakdown = phase_breakdown_from_trace(tracer, params)
        assert breakdown["construction"] > breakdown["flooding"]

    def test_failures_shift_cost_into_flooding_phase(self):
        topo = grid_graph(4, 4)
        cd = 2 * topo.diameter
        schedule = FailureSchedule({5: 2 * cd + 2, 10: 2 * cd + 2})
        _t, params, tracer_fail, _n = self._run_traced(schedule=schedule, t=8)
        _t2, _p2, tracer_clean, _n2 = self._run_traced(t=8)
        fail_flood = phase_breakdown_from_trace(tracer_fail, params)["flooding"]
        clean_flood = phase_breakdown_from_trace(tracer_clean, params)["flooding"]
        assert fail_flood > clean_flood
