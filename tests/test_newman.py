"""Newman's theorem ([15], used in Theorem 10), verified exhaustively."""

import random

import pytest

from repro.lowerbound.newman import (
    NewmanSimulation,
    PublicCoinEquality,
    all_input_pairs,
    find_seed_set,
    parity_fingerprint,
    random_mask,
    worst_case_error,
)


class TestFingerprints:
    def test_equal_strings_always_agree(self):
        rng = random.Random(0)
        for _ in range(20):
            x = tuple(rng.randrange(4) for _ in range(5))
            mask = random_mask(5, 4, rng)
            assert parity_fingerprint(x, mask, 4) == parity_fingerprint(
                x, mask, 4
            )

    def test_unequal_strings_disagree_about_half_the_time(self):
        rng = random.Random(1)
        x = (0, 1, 2, 3)
        y = (0, 1, 2, 0)
        disagreements = 0
        trials = 400
        for _ in range(trials):
            mask = random_mask(4, 4, rng)
            disagreements += parity_fingerprint(
                x, mask, 4
            ) != parity_fingerprint(y, mask, 4)
        assert 0.3 < disagreements / trials < 0.7


class TestPublicCoinProtocol:
    def test_equal_inputs_always_accepted(self):
        protocol = PublicCoinEquality(n=3, q=3, repetitions=3)
        for seed in range(30):
            x = tuple(random.Random(seed).randrange(3) for _ in range(3))
            verdict, _ = protocol.run_with_coins(x, x, random.Random(seed))
            assert verdict is True

    def test_transcript_is_constant_size(self):
        protocol = PublicCoinEquality(n=3, q=3, repetitions=5)
        _, tr = protocol.run_with_coins(
            (0, 1, 2), (0, 1, 2), random.Random(0)
        )
        assert tr.total_bits == 6  # repetitions + verdict, independent of n

    def test_one_sided_error_rate_exhaustive(self):
        # Across all unequal pairs and many seeds, the acceptance rate of
        # unequal inputs stays near 2^-repetitions.
        protocol = PublicCoinEquality(n=2, q=3, repetitions=3)
        pairs = [
            (x, y) for x, y in all_input_pairs(2, 3) if x != y
        ]
        seeds = range(60)
        total_errors = sum(
            protocol.error_on(x, y, seed)
            for x, y in pairs
            for seed in seeds
        )
        rate = total_errors / (len(pairs) * len(seeds))
        assert rate < 0.3  # expected 1/8, generous margin


class TestNewmanDerandomization:
    @pytest.fixture(scope="class")
    def instance(self):
        protocol = PublicCoinEquality(n=2, q=3, repetitions=4)
        seeds = find_seed_set(
            protocol, target_error=0.25, set_size=24, rng=random.Random(7)
        )
        return protocol, seeds

    def test_seed_set_has_verified_worst_case_error(self, instance):
        protocol, seeds = instance
        assert worst_case_error(protocol, seeds) <= 0.25

    def test_simulation_overhead_is_loglog_scale(self, instance):
        protocol, seeds = instance
        simulation = NewmanSimulation(protocol, seeds)
        # log2(24) ~ 5 bits: the O(loglog domain) overhead, tiny next to
        # shipping an input (2 * log2(3) * n bits).
        assert simulation.overhead_bits <= 5

    def test_simulation_transcript_cost(self, instance):
        protocol, seeds = instance
        simulation = NewmanSimulation(protocol, seeds)
        _, tr = simulation.run((0, 1), (0, 1), random.Random(3))
        base_bits = protocol.repetitions + 1
        assert tr.total_bits == base_bits + simulation.overhead_bits

    def test_simulation_never_rejects_equal_inputs(self, instance):
        protocol, seeds = instance
        simulation = NewmanSimulation(protocol, seeds)
        for x, y in all_input_pairs(2, 3):
            if x != y:
                continue
            for coin in range(10):
                verdict, _ = simulation.run(x, y, random.Random(coin))
                assert verdict is True

    def test_simulation_error_bounded_for_every_input(self, instance):
        protocol, seeds = instance
        simulation = NewmanSimulation(protocol, seeds)
        assert simulation.worst_case_error() <= 0.25

    def test_impossible_target_raises(self):
        protocol = PublicCoinEquality(n=2, q=3, repetitions=1)
        with pytest.raises(RuntimeError):
            # One repetition errs with probability ~1/2 per seed: a set of
            # size 2 cannot reach worst-case error 0.01.
            find_seed_set(
                protocol, target_error=0.01, set_size=2,
                rng=random.Random(0), attempts=5,
            )
