"""Replayable regression corpus: every checked-in bundle must reproduce.

``tests/corpus/`` holds ddmin-minimized repro bundles of historical chaos
failures (see ``repro-agg shrink``).  Each test strict-replays one bundle:
any divergence — a changed delivery order, a drifted bit count, a failure
that no longer happens — fails loudly with the first divergent round, so a
behavior change in the simulator or protocols cannot silently invalidate
past forensics.
"""

import glob
import os

import pytest

from repro.sim import ExecutionRecord, is_failure, replay_bundle

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
BUNDLES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert BUNDLES, f"no bundles in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", BUNDLES, ids=[os.path.basename(p) for p in BUNDLES]
)
def test_corpus_bundle_replays_exactly(path):
    outcome = replay_bundle(path)  # strict: raises ReplayDivergence on drift
    assert outcome.reproduced
    # Every corpus entry documents a *failure*; a bundle that replays to a
    # clean run means the recording no longer demonstrates anything.
    assert is_failure(outcome.record) or outcome.record.failed


@pytest.mark.parametrize(
    "path", BUNDLES, ids=[os.path.basename(p) for p in BUNDLES]
)
def test_corpus_bundle_is_small(path):
    """Corpus entries are minimized — a fat bundle was checked in raw."""
    bundle = ExecutionRecord.load(path)
    assert bundle.n_decisions <= 10, (
        f"{os.path.basename(path)} has {bundle.n_decisions} events; "
        "run `repro-agg shrink` before checking bundles in"
    )
