"""Push-sum gossip: convergence, cost, and why approximation breaks the
zero-error guarantee under crashes."""

import random

import pytest

from repro.adversary import FailureSchedule
from repro.baselines.gossip import (
    PushSumNode,
    gossip_part,
    run_gossip,
    total_mass,
)
from repro.graphs import complete_graph, grid_graph, path_graph
from repro.sim.network import Network


class TestConvergence:
    def test_error_decays_with_rounds(self):
        topo = grid_graph(5, 5)
        inputs = {u: (u * 7) % 20 for u in topo.nodes()}
        errors = [
            run_gossip(topo, inputs, rounds=r).relative_error
            for r in (20, 80, 200)
        ]
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 1e-3

    def test_uniform_inputs_exact_immediately(self):
        topo = complete_graph(6)
        inputs = {u: 10 for u in topo.nodes()}
        out = run_gossip(topo, inputs, rounds=5)
        assert out.estimate == pytest.approx(60, rel=1e-9)

    def test_fast_mixing_on_complete_graph(self):
        topo = complete_graph(10)
        rng = random.Random(0)
        inputs = {u: rng.randint(0, 50) for u in topo.nodes()}
        out = run_gossip(topo, inputs, rounds=40)
        assert out.relative_error < 1e-3

    def test_zero_inputs(self):
        topo = path_graph(5)
        out = run_gossip(topo, {u: 0 for u in topo.nodes()}, rounds=20)
        assert out.estimate == pytest.approx(0.0, abs=1e-9)


class TestMassConservation:
    def test_resident_plus_inflight_mass_is_conserved(self):
        topo = grid_graph(4, 4)
        inputs = {u: u for u in topo.nodes()}
        rounds = 30
        nodes = {
            u: PushSumNode(u, 16, inputs[u], topo.degree(u), rounds)
            for u in topo.nodes()
        }
        net = Network(topo.adjacency, nodes)
        net.run(rounds + 1, stop_on_output=False)
        # After the final delivery no mass is in flight.
        assert total_mass(nodes) == pytest.approx(sum(inputs.values()))

    def test_crash_destroys_mass(self):
        topo = grid_graph(4, 4)
        inputs = {u: 10 for u in topo.nodes()}
        rounds = 30
        nodes = {
            u: PushSumNode(u, 16, inputs[u], topo.degree(u), rounds)
            for u in topo.nodes()
        }
        net = Network(topo.adjacency, nodes, crash_rounds={5: 4})
        net.run(rounds + 1, stop_on_output=False)
        alive_mass = sum(
            node.s for u, node in nodes.items() if u != 5
        )
        assert alive_mass < sum(inputs.values())


class TestCost:
    def test_cc_linear_in_rounds(self):
        topo = grid_graph(4, 4)
        inputs = {u: 1 for u in topo.nodes()}
        cc = {
            r: run_gossip(topo, inputs, rounds=r).stats.max_bits
            for r in (10, 20)
        }
        assert cc[20] == pytest.approx(2 * cc[10], rel=0.1)

    def test_part_size_is_fixed_point(self):
        part = gossip_part(16, 1.5, 0.25)
        assert part.bits == 5 + 4 + 64


class TestZeroErrorContrast:
    def test_failure_free_estimate_is_in_interval(self):
        topo = grid_graph(4, 4)
        rng = random.Random(1)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_gossip(topo, inputs, rounds=200)
        assert out.within_correctness_interval(
            topo, inputs, FailureSchedule()
        )

    def test_early_crashes_push_estimate_outside_the_interval(self):
        # The demonstration the paper's zero-error framing rests on: kill
        # zero-valued nodes early; their weight mass dies with them, the
        # surviving average inflates, and N * avg exceeds the sum of ALL
        # inputs — no zero-error protocol may ever report such a value.
        topo = grid_graph(5, 5)
        inputs = {u: 0 for u in topo.nodes()}
        inputs[topo.root] = 100
        schedule = FailureSchedule({12: 3, 13: 3, 17: 3, 18: 3})
        out = run_gossip(topo, inputs, rounds=200, schedule=schedule)
        assert out.estimate > 100.5  # above sum(s2): impossible for zero-error
        assert not out.within_correctness_interval(topo, inputs, schedule)

    def test_algorithm1_stays_correct_on_the_same_scenario(self):
        from repro.core import run_algorithm1
        from repro.core.correctness import is_correct_result
        from repro.core.caaf import SUM

        topo = grid_graph(5, 5)
        inputs = {u: 0 for u in topo.nodes()}
        inputs[topo.root] = 100
        schedule = FailureSchedule({12: 3, 13: 3, 17: 3, 18: 3})
        out = run_algorithm1(
            topo,
            inputs,
            f=topo.edges_incident({12, 13, 17, 18}),
            b=60,
            schedule=schedule,
            rng=random.Random(2),
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)
