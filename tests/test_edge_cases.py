"""Boundary configurations: the smallest/extreme parameter corners.

The theorems quantify over wide parameter ranges; these tests pin the
exact edges — two nodes, diameter 1, ``b = 21c`` exactly, ``t = 0``,
``f = 1``, ``c = 1`` vs ``c = 3`` — where off-by-one bugs live.
"""

import random

import pytest

from repro.adversary import FailureSchedule
from repro.baselines import run_bruteforce, run_folklore
from repro.core import run_agg, run_agg_veri_pair, run_algorithm1, run_unknown_f
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.params import ProtocolParams, params_for
from repro.graphs import Topology, complete_graph, path_graph, star_graph


def two_nodes():
    return Topology({0: [1], 1: [0]}, name="pair")


class TestTwoNodeSystem:
    def test_agg(self):
        topo = two_nodes()
        out = run_agg(topo, {0: 3, 1: 4}, t=1)
        assert out.result == 7

    def test_agg_with_partner_crash(self):
        topo = two_nodes()
        schedule = FailureSchedule({1: 1})
        out = run_agg(topo, {0: 3, 1: 4}, t=1, schedule=schedule)
        assert out.result == 3  # only the root's input remains

    def test_pair_verdict(self):
        topo = two_nodes()
        pair = run_agg_veri_pair(topo, {0: 1, 1: 1}, t=1)
        assert pair.accepted and pair.agg_result == 2

    def test_algorithm1(self):
        topo = two_nodes()
        out = run_algorithm1(topo, {0: 5, 1: 6}, f=1, b=42, rng=random.Random(0))
        assert out.result == 11

    def test_bruteforce_and_folklore(self):
        topo = two_nodes()
        assert run_bruteforce(topo, {0: 1, 1: 2}).result == 3
        assert run_folklore(topo, {0: 1, 1: 2}, f=1).result == 3

    def test_unknown_f(self):
        topo = two_nodes()
        out = run_unknown_f(topo, {0: 9, 1: 1})
        assert out.result == 10


class TestDiameterOne:
    def test_complete_graph_agg(self):
        topo = complete_graph(6)
        out = run_agg(topo, {u: u for u in topo.nodes()}, t=2)
        assert out.result == 15

    def test_complete_graph_algorithm1_minimum_b(self):
        topo = complete_graph(5)
        out = run_algorithm1(
            topo, {u: 1 for u in topo.nodes()}, f=1, b=42, rng=random.Random(1)
        )
        assert out.result == 5
        assert out.rounds <= 42 * topo.diameter

    def test_star_mid_aggregation_leaf_crash(self):
        topo = star_graph(6)
        cd = 2 * topo.diameter
        schedule = FailureSchedule({3: 2 * cd + 2})
        inputs = {u: 10 for u in topo.nodes()}
        out = run_agg(topo, inputs, t=1, schedule=schedule)
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )


class TestParameterEdges:
    def test_b_exactly_21c(self):
        # The Theorem 1 precondition boundary: x = floor((21c-2c)/(19c)) = 1.
        topo = path_graph(4)
        for c in (1, 2, 3):
            out = run_algorithm1(
                topo,
                {u: 1 for u in topo.nodes()},
                f=1,
                b=21 * c,
                c=c,
                rng=random.Random(c),
            )
            assert out.result == 4, c
            assert out.plan.x == 1

    def test_t_zero_agg_failure_free(self):
        topo = path_graph(5)
        out = run_agg(topo, {u: 1 for u in topo.nodes()}, t=0)
        assert out.result == 5

    def test_t_zero_veri_true_without_failures(self):
        topo = path_graph(5)
        pair = run_agg_veri_pair(topo, {u: 1 for u in topo.nodes()}, t=0)
        assert pair.veri_output is True

    def test_t_zero_veri_false_on_any_orphaning_failure(self):
        # With t = 0 any failed-parent claim means "LFC of length 0" — the
        # conservative side of Table 2.
        topo = complete_graph(5)  # keep everyone connected after the crash
        cd = 2 * topo.diameter
        schedule = FailureSchedule({1: 2 * cd + 2})
        pair = run_agg_veri_pair(
            topo, {u: 1 for u in topo.nodes()}, t=0, schedule=schedule
        )
        accepted_implies_correct = (not pair.accepted) or pair.agg_result in (
            4,
            5,
        )
        assert accepted_implies_correct

    def test_f_equals_one(self):
        topo = path_graph(6)
        schedule = FailureSchedule({5: 40})
        inputs = {u: 2 for u in topo.nodes()}
        out = run_algorithm1(
            topo, inputs, f=1, b=45, schedule=schedule, rng=random.Random(2)
        )
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    @pytest.mark.parametrize("c", [1, 3])
    def test_c_variants_run_clean(self, c):
        topo = path_graph(5)
        out = run_agg(topo, {u: 1 for u in topo.nodes()}, t=1, c=c)
        assert out.result == 5
        params = params_for(topo, t=1, c=c)
        assert out.stats.rounds_executed == params.agg_rounds

    def test_zero_inputs(self):
        topo = path_graph(4)
        out = run_agg(topo, {u: 0 for u in topo.nodes()}, t=1)
        assert out.result == 0

    def test_max_polynomial_inputs(self):
        topo = path_graph(4)
        big = topo.n_nodes**3
        out = run_agg(topo, {u: big for u in topo.nodes()}, t=1, max_input=big)
        assert out.result == 4 * big


class TestCAssumptionBoundary:
    """The diameter-stretch assumption is load-bearing (see E18)."""

    def _wheel(self, n_rim=12):
        adjacency = {u: [] for u in range(n_rim + 1)}
        hub = n_rim
        for u in range(n_rim):
            v = (u + 1) % n_rim
            adjacency[u].append(v)
            adjacency[v].append(u)
            adjacency[u].append(hub)
            adjacency[hub].append(u)
        return Topology(adjacency, name=f"wheel({n_rim})"), hub

    def test_violated_c_can_accept_wrong_results(self):
        topo, hub = self._wheel()
        inputs = {u: 5 for u in topo.nodes()}
        cd = 1 * topo.diameter
        schedule = FailureSchedule({hub: 2 * cd + 2})
        pair = run_agg_veri_pair(
            topo, inputs, t=topo.degree(hub), schedule=schedule, c=1
        )
        end = 12 * cd + 7
        assert pair.accepted
        assert not is_correct_result(
            pair.agg_result, SUM, topo, inputs, schedule, end
        )

    def test_honest_c_restores_zero_error(self):
        topo, hub = self._wheel()
        c = topo.remaining_diameter({hub}) // topo.diameter + 1
        inputs = {u: 5 for u in topo.nodes()}
        cd = c * topo.diameter
        schedule = FailureSchedule({hub: 2 * cd + 2})
        pair = run_agg_veri_pair(
            topo, inputs, t=topo.degree(hub), schedule=schedule, c=c
        )
        end = 12 * cd + 7
        if pair.accepted:
            assert is_correct_result(
                pair.agg_result, SUM, topo, inputs, schedule, end
            )


class TestDegenerateSchedules:
    def test_everyone_but_root_crashes_before_start(self):
        topo = star_graph(5)
        schedule = FailureSchedule({u: 1 for u in topo.non_root_nodes()})
        inputs = {u: 7 for u in topo.nodes()}
        out = run_agg(topo, inputs, t=4, schedule=schedule)
        assert out.result == 7  # the root alone

    def test_crash_on_final_round_is_harmless(self):
        topo = path_graph(4)
        params = params_for(topo, t=1)
        schedule = FailureSchedule({3: params.agg_rounds})
        inputs = {u: 1 for u in topo.nodes()}
        out = run_agg(topo, inputs, t=1, schedule=schedule)
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )

    def test_simultaneous_mass_crash_with_large_t(self):
        topo = complete_graph(8)
        cd = 2 * topo.diameter
        schedule = FailureSchedule({u: 2 * cd + 2 for u in (1, 2, 3)})
        inputs = {u: 1 for u in topo.nodes()}
        out = run_agg(topo, inputs, t=topo.edges_incident({1, 2, 3}), schedule=schedule)
        assert not out.aborted
        assert is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.stats.rounds_executed
        )
