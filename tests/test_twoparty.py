"""Two-party problems: UNIONSIZECP, EQUALITYCP, and the Theorem 8 reduction."""

import random

import pytest

from repro.lowerbound.equalitycp import (
    ReductionEquality,
    TrivialEquality,
    strings_equal,
)
from repro.lowerbound.twoparty import (
    Transcript,
    bits_for_domain,
)
from repro.lowerbound.unionsizecp import (
    TrivialUnionSize,
    WrapPositionUnionSize,
    check_cycle_promise,
    equal_instance,
    random_instance,
    union_size,
    wrap_count,
)


class TestTranscript:
    def test_totals(self):
        tr = Transcript()
        tr.alice_sends("a", 5)
        tr.bob_sends("b", 7)
        assert tr.alice_bits == 5
        assert tr.bob_bits == 7
        assert tr.total_bits == 12
        assert len(tr.messages) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Transcript().alice_sends("a", -1)

    def test_bits_for_domain(self):
        assert bits_for_domain(1) == 1
        assert bits_for_domain(2) == 1
        assert bits_for_domain(3) == 2
        assert bits_for_domain(1024) == 10


class TestCyclePromise:
    def test_valid_instances(self):
        assert check_cycle_promise((0, 1, 2), (0, 2, 0), q=3)

    def test_rejects_non_promise_pair(self):
        assert not check_cycle_promise((0,), (2,), q=3)

    def test_rejects_out_of_alphabet(self):
        assert not check_cycle_promise((5,), (5,), q=3)

    def test_rejects_length_mismatch(self):
        assert not check_cycle_promise((0, 1), (0,), q=3)

    def test_random_instances_satisfy_promise(self):
        rng = random.Random(0)
        for q in (2, 3, 7):
            x, y = random_instance(50, q, rng)
            assert check_cycle_promise(x, y, q)

    def test_equal_instances(self):
        rng = random.Random(1)
        x, y = equal_instance(30, 4, rng)
        assert x == y
        assert check_cycle_promise(x, y, 4)

    def test_union_size_ground_truth(self):
        assert union_size((0, 0, 1), (0, 1, 1)) == 2
        assert union_size((0,), (0,)) == 0

    def test_wrap_count(self):
        assert wrap_count((2, 0, 2, 1), q=3) == 2


class TestUnionSizeProtocols:
    @pytest.mark.parametrize("q", [2, 3, 8, 16])
    @pytest.mark.parametrize("proto_cls", [TrivialUnionSize, WrapPositionUnionSize])
    def test_correct_on_random_instances(self, q, proto_cls):
        rng = random.Random(q)
        proto = proto_cls(q)
        for _ in range(10):
            x, y = random_instance(60, q, rng)
            answer, _ = proto.run(x, y)
            assert answer == union_size(x, y)

    def test_correct_on_all_zero(self):
        proto = WrapPositionUnionSize(4)
        x = y = (0,) * 20
        answer, _ = proto.run(x, y)
        assert answer == 0

    def test_correct_on_wrap_heavy_input(self):
        q = 4
        proto = WrapPositionUnionSize(q)
        x = (q - 1,) * 10
        y = (0,) * 10  # every position wraps
        answer, _ = proto.run(x, y)
        assert answer == 10

    def test_promise_violation_rejected(self):
        with pytest.raises(ValueError, match="promise"):
            WrapPositionUnionSize(3).run((0,), (2,))

    def test_wrap_cost_driven_by_wrap_count(self):
        q = 8
        proto = WrapPositionUnionSize(q)
        few = tuple([0] * 64)
        many = tuple([q - 1] * 64)
        _, tr_few = proto.run(few, few)
        _, tr_many = proto.run(many, many)
        assert tr_many.total_bits > tr_few.total_bits

    def test_wrap_beats_trivial_for_large_q(self):
        # The q-dependence that drives Theorem 12's n/q shape.
        rng = random.Random(5)
        n, q = 512, 32
        x, y = random_instance(n, q, rng)
        _, tr_wrap = WrapPositionUnionSize(q).run(x, y)
        _, tr_triv = TrivialUnionSize(q).run(x, y)
        assert tr_wrap.total_bits < tr_triv.total_bits

    def test_expected_cost_shrinks_with_q(self):
        rng = random.Random(6)
        n, seeds = 512, 20
        means = []
        for q in (2, 8, 32):
            total = 0
            for _ in range(seeds):
                x, y = random_instance(n, q, rng)
                _, tr = WrapPositionUnionSize(q).run(x, y)
                total += tr.total_bits
            means.append(total / seeds)
        assert means[0] > means[1] > means[2]

    def test_q_below_2_rejected(self):
        with pytest.raises(ValueError):
            TrivialUnionSize(1)
        with pytest.raises(ValueError):
            WrapPositionUnionSize(0)


class TestEqualityProtocols:
    @pytest.mark.parametrize("q", [2, 3, 8])
    def test_reduction_matches_ground_truth(self, q):
        rng = random.Random(q * 7)
        reduction = ReductionEquality(q, WrapPositionUnionSize(q))
        for _ in range(15):
            x, y = random_instance(40, q, rng)
            answer, _ = reduction.run(x, y)
            assert answer == strings_equal(x, y)

    @pytest.mark.parametrize("q", [2, 5])
    def test_reduction_true_on_equal_strings(self, q):
        rng = random.Random(3)
        reduction = ReductionEquality(q, TrivialUnionSize(q))
        x, y = equal_instance(25, q, rng)
        answer, _ = reduction.run(x, y)
        assert answer is True

    def test_reduction_false_on_single_increment(self):
        q = 4
        reduction = ReductionEquality(q, WrapPositionUnionSize(q))
        x = (1, 2, 3, 0)
        y = (1, 2, 3, 1)  # differs by +1 in the last position
        answer, _ = reduction.run(x, y)
        assert answer is False

    def test_reduction_handles_wrap_difference(self):
        # The subtle case Theorem 8's proof handles: X_j = q-1, Y_j = 0.
        q = 3
        reduction = ReductionEquality(q, WrapPositionUnionSize(q))
        x = (2, 0, 0)
        y = (0, 0, 0)
        answer, _ = reduction.run(x, y)
        assert answer is False

    def test_reduction_overhead_is_logarithmic(self):
        # Theorem 8: the overhead beyond the oracle is O(log q + log n).
        q = 8
        oracle = WrapPositionUnionSize(q)
        reduction = ReductionEquality(q, oracle)
        rng = random.Random(11)
        for n in (64, 256, 1024):
            x, y = random_instance(n, q, rng)
            _, tr_red = reduction.run(x, y)
            _, tr_orc = oracle.run(x, y)
            overhead = tr_red.total_bits - tr_orc.total_bits
            assert overhead <= 4 * (n.bit_length() + q.bit_length())

    def test_trivial_equality(self):
        q = 3
        proto = TrivialEquality(q)
        rng = random.Random(2)
        x, y = random_instance(30, q, rng)
        answer, tr = proto.run(x, y)
        assert answer == strings_equal(x, y)
        assert tr.total_bits >= 30  # ships the whole string
