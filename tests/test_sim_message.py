"""Unit tests for the message/bit-accounting layer."""

import pytest

from repro.sim.message import (
    TAG_BITS,
    Envelope,
    Part,
    id_bits,
    total_bits,
    value_bits,
)


class TestIdBits:
    def test_two_nodes_need_one_bit(self):
        assert id_bits(2) == 1

    def test_power_of_two(self):
        assert id_bits(16) == 4

    def test_non_power_rounds_up(self):
        assert id_bits(17) == 5

    def test_single_node(self):
        assert id_bits(1) == 1

    def test_large_system(self):
        assert id_bits(1 << 20) == 20

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            id_bits(0)

    def test_monotone_in_n(self):
        sizes = [id_bits(n) for n in range(2, 200)]
        assert sizes == sorted(sizes)


class TestValueBits:
    def test_zero_max_needs_one_bit(self):
        assert value_bits(0) == 1

    def test_boundary_values(self):
        assert value_bits(1) == 1
        assert value_bits(2) == 2
        assert value_bits(3) == 2
        assert value_bits(4) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            value_bits(-1)

    def test_large_domain(self):
        assert value_bits((1 << 30) - 1) == 30


class TestPart:
    def test_content_key_ignores_bits(self):
        a = Part("k", (1, 2), 10)
        b = Part("k", (1, 2), 99)
        assert a.content_key == b.content_key

    def test_content_key_distinguishes_kind(self):
        assert Part("a", (1,), 5).content_key != Part("b", (1,), 5).content_key

    def test_content_key_distinguishes_payload(self):
        assert Part("a", (1,), 5).content_key != Part("a", (2,), 5).content_key

    def test_parts_are_hashable(self):
        assert len({Part("a", (), 1), Part("a", (), 1)}) == 1

    def test_envelope_fields(self):
        part = Part("x", (3,), 7)
        env = Envelope(4, part)
        assert env.sender == 4
        assert env.part is part


class TestTotalBits:
    def test_empty(self):
        assert total_bits([]) == 0

    def test_sums(self):
        parts = [Part("a", (), 3), Part("b", (), 4)]
        assert total_bits(parts) == 7

    def test_tag_bits_constant_is_small(self):
        # The paper's budgets use +5-style constants; the tag must match.
        assert TAG_BITS == 5
