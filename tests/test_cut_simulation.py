"""The two-party cut-simulation harness (Section 7's mechanism)."""

import pytest

from repro.baselines.bruteforce import BruteForceNode
from repro.core.agg import AggNode
from repro.core.params import params_for
from repro.graphs import barbell_graph, cluster_line_graph, grid_graph, path_graph
from repro.lowerbound.cut_simulation import (
    CutSimulation,
    per_node_cut_lower_bound,
    split_by_bfs_half,
)
from repro.sim.message import Part
from repro.sim.node import NodeHandler, SilentNode


class Beacon(SilentNode):
    def __init__(self, part, at=1):
        self.part, self.at = part, at

    def on_round(self, rnd, inbox):
        return [self.part] if rnd == self.at else []


class TestPartitioning:
    def test_boundary_nodes_touch_the_cut(self):
        topo = path_graph(6)
        sim = CutSimulation(
            topo, {u: SilentNode() for u in topo.nodes()}, alice_nodes={0, 1, 2}
        )
        assert sim.boundary == {2, 3}
        assert sim.cut_edges == [(2, 3)]

    def test_rejects_empty_side(self):
        topo = path_graph(4)
        handlers = {u: SilentNode() for u in topo.nodes()}
        with pytest.raises(ValueError):
            CutSimulation(topo, handlers, alice_nodes=set())
        with pytest.raises(ValueError):
            CutSimulation(topo, handlers, alice_nodes=set(topo.nodes()))

    def test_rejects_unknown_nodes(self):
        topo = path_graph(4)
        handlers = {u: SilentNode() for u in topo.nodes()}
        with pytest.raises(ValueError):
            CutSimulation(topo, handlers, alice_nodes={99})

    def test_split_by_bfs_half(self):
        topo = path_graph(8)
        alice = split_by_bfs_half(topo)
        assert alice == {0, 1, 2, 3}


class TestAccounting:
    def test_interior_broadcasts_are_free(self):
        # A beacon deep inside Alice's side never crosses the cut.
        topo = path_graph(6)
        handlers = {u: SilentNode() for u in topo.nodes()}
        handlers[0] = Beacon(Part("p", (), 10))
        sim = CutSimulation(topo, handlers, alice_nodes={0, 1, 2})
        tr = sim.run(3, stop_on_output=False)
        assert tr.total_bits == 0

    def test_boundary_broadcast_charged_to_the_right_party(self):
        topo = path_graph(6)
        handlers = {u: SilentNode() for u in topo.nodes()}
        handlers[2] = Beacon(Part("p", (), 10))
        handlers[3] = Beacon(Part("q", (), 7), at=2)
        sim = CutSimulation(topo, handlers, alice_nodes={0, 1, 2})
        tr = sim.run(3, stop_on_output=False)
        assert tr.alice_to_bob_bits == 10
        assert tr.bob_to_alice_bits == 7
        assert tr.total_bits == 17

    def test_per_round_series_sums_to_totals(self):
        topo = grid_graph(3, 3)
        params = params_for(topo, t=1)
        handlers = {u: AggNode(params, u, 1) for u in topo.nodes()}
        sim = CutSimulation(topo, handlers, split_by_bfs_half(topo))
        tr = sim.run(params.agg_rounds, stop_on_output=False)
        assert sum(a for a, _b in tr.per_round) == tr.alice_to_bob_bits
        assert sum(b for _a, b in tr.per_round) == tr.bob_to_alice_bits

    def test_per_node_bound_divides_by_boundary(self):
        topo = path_graph(6)
        handlers = {u: SilentNode() for u in topo.nodes()}
        handlers[2] = Beacon(Part("p", (), 30))
        sim = CutSimulation(topo, handlers, alice_nodes={0, 1, 2})
        tr = sim.run(2, stop_on_output=False)
        assert per_node_cut_lower_bound(tr, len(sim.boundary)) == 15.0
        with pytest.raises(ValueError):
            per_node_cut_lower_bound(tr, 0)


class TestProtocolsAcrossCuts:
    def test_agg_cut_traffic_bounded_by_boundary_budgets(self):
        # The simulation argument: cut traffic <= boundary nodes' total
        # sends <= |boundary| * per-node budget.
        topo = barbell_graph(5, 2)
        params = params_for(topo, t=2)
        handlers = {u: AggNode(params, u, 1) for u in topo.nodes()}
        sim = CutSimulation(topo, handlers, split_by_bfs_half(topo))
        tr = sim.run(params.agg_rounds, stop_on_output=False)
        assert tr.total_bits > 0  # the protocol genuinely crosses the cut
        assert tr.total_bits <= len(sim.boundary) * params.agg_bit_budget

    def test_bruteforce_cut_traffic_scales_with_n(self):
        costs = {}
        for clusters in (2, 4):
            topo = cluster_line_graph(clusters, 4)
            params = params_for(topo, t=0)
            handlers = {
                u: BruteForceNode(params, u, 1) for u in topo.nodes()
            }
            sim = CutSimulation(topo, handlers, split_by_bfs_half(topo))
            tr = sim.run(2 * params.cd, stop_on_output=False)
            costs[clusters] = tr.total_bits
        # Brute force ships every node's id+value across the cut: doubling
        # N roughly doubles the crossing traffic.
        assert costs[4] > 1.5 * costs[2]

    def test_cut_matches_network_bits_for_boundary_senders(self):
        topo = path_graph(5)
        params = params_for(topo, t=0)
        handlers = {u: BruteForceNode(params, u, 1) for u in topo.nodes()}
        sim = CutSimulation(topo, handlers, alice_nodes={0, 1})
        tr = sim.run(2 * params.cd, stop_on_output=False)
        stats = sim.network.stats
        expected = stats.bits_of(1) + stats.bits_of(2)
        assert tr.total_bits == expected
