"""Byzantine-tolerant aggregation: equivocation, witnesses, eviction, bounds.

Acceptance properties (ISSUE 10):

* Compromised non-root nodes lie about their own sub-aggregates
  (equivocate / inflate / deflate / replay / omit); the schedule is its
  own ground-truth taint ledger for grading.
* Witness cross-validation convicts only on proof — two authenticated
  contradictory frames, or a delta audit showing an impossible
  contribution — so honest nodes are never convicted.
* Every delivered result is exact or carries a satisfied influence
  bound: ``|error| <= b_rem * v_max`` with ``b_rem`` the unconvicted
  residual budget.
* A byz-enabled pipeline with zero compromised nodes is byte-identical
  (CC, rounds, result, per-round trace digests) to the plain pipeline.
* Node-level blame: a sender with two individually quarantined links is
  quarantined wholesale (satellite regression).
* The φ-accrual detector cannot instantly confirm from a cold-start
  single sample (satellite regression).
"""

import random

import pytest

from repro.analysis.runner import run_protocol
from repro.analysis.sweep import run_point
from repro.core.caaf import MAX, SUM
from repro.graphs import grid_graph, path_graph
from repro.integrity import IntegrityConfig, LinkQuarantine
from repro.resilience import (
    AUDITABLE_CAAFS,
    ByzantineConfig,
    PhiAccrualDetector,
    PhiConfig,
    run_with_byzantine,
)
from repro.sim.faults import (
    BYZ_MODES,
    ByzantineSchedule,
    byz_sources,
    random_byz,
)
from repro.sim.monitors import ByzantineOracle
from repro.sim.recorder import RecordingInjector
from repro.analysis.runner import make_inputs

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the toolchain
    HAVE_HYPOTHESIS = False


GRID = grid_graph(4, 4)


def _inputs(topology, seed=0):
    return make_inputs(topology, random.Random(seed))


def _byz_run(byz, seed=0, topology=None, config=None, **kwargs):
    topology = topology or GRID
    rng = random.Random(seed)
    inputs = make_inputs(topology, rng)
    return run_protocol(
        "algorithm1",
        topology,
        inputs,
        f=1,
        b=64,
        rng=rng,
        byz=byz,
        byz_config=config,
        **kwargs,
    )


class TestByzantineSchedule:
    def test_spec_round_trip(self):
        byz = ByzantineSchedule.from_spec("5:equivocate,7:inflate=4@r3,9:omit")
        assert byz.behaviors[5] == ("equivocate", 1, 1)
        assert byz.behaviors[7] == ("inflate", 4, 3)
        assert byz.behaviors[9] == ("omit", 1, 1)
        assert byz.budget == 3
        again = ByzantineSchedule.from_jsonable(byz.as_jsonable())
        assert again.behaviors == byz.behaviors

    @pytest.mark.parametrize(
        "bad",
        [
            "5",
            "5:teleport",
            "5:inflate=0",
            "5:inflate@r0",
            "x:omit",
        ],
    )
    def test_spec_rejects_bad_grammar(self, bad):
        with pytest.raises(ValueError):
            ByzantineSchedule.from_spec(bad)

    def test_validate_rejects_root_and_unknown_nodes(self):
        with pytest.raises(ValueError):
            ByzantineSchedule.from_spec(f"{GRID.root}:inflate").validate(GRID)
        with pytest.raises(ValueError):
            ByzantineSchedule.from_spec("999:omit").validate(GRID)

    def test_random_byz_never_compromises_the_root(self):
        for seed in range(6):
            byz = random_byz(
                GRID, 0.6, random.Random(seed), horizon=20, root=GRID.root
            )
            assert GRID.root not in byz.byz_nodes()
            for mode, k, start in byz.behaviors.values():
                assert mode in BYZ_MODES
                assert k >= 1 and start >= 1

    def test_random_byz_rate_zero_is_empty(self):
        byz = random_byz(GRID, 0.0, random.Random(1), horizon=20, root=0)
        assert not byz.has_events
        assert byz.budget == 0

    def test_random_byz_deterministic_per_rng_state(self):
        a = random_byz(GRID, 0.3, random.Random(7), horizon=24, root=0)
        b = random_byz(GRID, 0.3, random.Random(7), horizon=24, root=0)
        assert a.behaviors == b.behaviors

    def test_byz_sources_flattens_injector_chains(self):
        byz = ByzantineSchedule.from_spec("5:omit")
        assert byz_sources([byz]) == [byz]
        assert byz_sources([]) == []


class TestRunWithByzantine:
    def test_equivocator_convicted_and_evicted(self):
        byz = ByzantineSchedule.from_spec("5:equivocate=3")
        out = run_with_byzantine(
            "algorithm1", GRID, _inputs(GRID), byz, f=1, b=64
        )
        assert 5 in out.convictions
        assert out.convictions[5].reason == "equivocation"
        assert 5 in out.evicted
        assert out.partial.certified
        # The convict's contribution is excluded, not re-guessed: the
        # value is exact over the surviving coverage.
        assert 5 not in out.partial.coverage

    def test_inflation_caught_by_delta_audit(self):
        topo = path_graph(6)
        inputs = {u: 1 for u in topo.nodes()}
        byz = ByzantineSchedule.from_spec("3:inflate=9")
        out = run_with_byzantine("algorithm1", topo, inputs, byz, f=1, b=64)
        assert 3 in out.convictions
        assert out.partial.certified

    def test_result_exact_or_within_influence_bound(self):
        honest = sum(_inputs(GRID).values())
        for spec in ("5:inflate=2", "9:deflate=1", "11:replay", "6:omit"):
            out = run_with_byzantine(
                "algorithm1", GRID, _inputs(GRID), byz := ByzantineSchedule.from_spec(spec), f=1, b=64
            )
            partial = out.partial
            assert partial.certified, spec
            bound = partial.influence_bound or 0
            # Evicted contributions leave the bracket; the remaining
            # error is bounded by the residual budget.
            assert partial.lower_bound - bound <= partial.value, spec
            assert partial.value <= partial.upper_bound + bound, spec

    def test_flag_policy_keeps_convict_uncertified(self):
        byz = ByzantineSchedule.from_spec("5:equivocate=3")
        out = run_with_byzantine(
            "algorithm1",
            GRID,
            _inputs(GRID),
            byz,
            f=1,
            b=64,
            config=ByzantineConfig(evict_policy="flag"),
        )
        assert 5 in out.convictions
        assert out.evicted == ()
        assert not out.partial.certified
        assert out.partial.influence_bound is None

    def test_rejects_unsupported_protocol_and_caaf(self):
        byz = ByzantineSchedule.from_spec("5:omit")
        with pytest.raises(ValueError):
            run_with_byzantine(
                "folklore", GRID, _inputs(GRID), byz, f=1, b=64
            )
        assert "MAX" not in AUDITABLE_CAAFS
        with pytest.raises(ValueError):
            run_with_byzantine(
                "algorithm1", GRID, _inputs(GRID), byz, f=1, b=64, caaf=MAX
            )

    def test_echo_traffic_is_overhead_never_protocol_cc(self):
        byz = ByzantineSchedule.from_spec("5:inflate=2")
        out = run_with_byzantine(
            "algorithm1", GRID, _inputs(GRID), byz, f=1, b=64
        )
        assert out.coordinator.total_echo_bits > 0
        assert out.stats.max_overhead_bits >= 0
        # Echo bits are booked in the partial's overhead, not its CC.
        assert out.partial.extra["echo_bits"] == out.coordinator.total_echo_bits

    def test_witness_election_is_deterministic_and_local(self):
        byz = ByzantineSchedule.from_spec("5:omit")
        out = run_with_byzantine(
            "algorithm1", GRID, _inputs(GRID), byz, f=1, b=64
        )
        coord = out.coordinator
        for node in GRID.nodes():
            w1 = coord.witnesses_of(node)
            w2 = coord.witnesses_of(node)
            assert w1 == w2
            assert node not in w1
            assert len(w1) <= coord.config.witnesses


class TestRunnerIntegration:
    def test_string_spec_reaches_the_byz_path(self):
        record = _byz_run("5:equivocate,9:inflate=3")
        assert record.correct
        assert record.extra["certified"]
        assert record.extra["convicted"] >= 1
        assert record.extra["false_convictions"] == 0
        assert record.extra["undetected_equivocations"] == 0
        assert record.extra["influence_exceeded"] == 0

    def test_byz_is_mutually_exclusive_with_other_fault_runtimes(self):
        from repro.resilience import TransportConfig

        with pytest.raises(ValueError, match="mutually exclusive"):
            _byz_run(
                "5:omit", transport=TransportConfig(retransmits=2)
            )

    def test_clean_byz_run_is_bit_identical_to_baseline(self):
        rng_a, rng_b = random.Random(3), random.Random(3)
        inputs = make_inputs(GRID, rng_a)
        make_inputs(GRID, rng_b)
        tap_a, tap_b = RecordingInjector(), RecordingInjector()
        base = run_protocol(
            "algorithm1", GRID, inputs, f=1, b=64, rng=rng_a,
            injectors=(tap_a,),
        )
        zero = run_protocol(
            "algorithm1", GRID, inputs, f=1, b=64, rng=rng_b,
            injectors=(tap_b,), byz=ByzantineSchedule(),
        )
        assert zero.cc_bits == base.cc_bits
        assert zero.rounds == base.rounds
        assert zero.result == base.result
        assert tap_a._digests == tap_b._digests

    def test_sweep_point_carries_byz_columns(self):
        point = run_point(
            "algorithm1",
            GRID,
            seeds=[0, 1],
            f=1,
            b=64,
            byz="5:inflate=2",
        )
        row = point.as_dict()
        assert row["byz_rows"] == 2
        assert row["byz_violations"] == 0


class TestByzantineOracle:
    def test_false_conviction_counted(self):
        byz = ByzantineSchedule.from_spec("5:inflate=2")
        oracle = ByzantineOracle(byz, _inputs(GRID), caaf=SUM, mode="record")
        oracle.grade_convictions([7])  # honest node
        assert oracle.false_convictions == 1
        oracle2 = ByzantineOracle(byz, _inputs(GRID), caaf=SUM, mode="record")
        oracle2.grade_convictions([5])  # actually compromised
        assert oracle2.false_convictions == 0

    def test_strict_mode_raises_on_false_conviction(self):
        from repro.sim.monitors import InvariantViolation

        byz = ByzantineSchedule.from_spec("5:inflate=2")
        oracle = ByzantineOracle(byz, _inputs(GRID), caaf=SUM, mode="strict")
        with pytest.raises(InvariantViolation):
            oracle.grade_convictions([7])


class TestNodeBlameQuarantine:
    """Satellite regression: >= 2 blamed links quarantine the node."""

    def test_two_blamed_links_quarantine_the_node(self):
        q = LinkQuarantine(threshold=2, node_threshold=2)
        for _ in range(2):
            q.record((5, 1), rnd=3, blamed=True)
        assert q.is_quarantined((5, 1))
        assert not q.quarantined_nodes
        for _ in range(2):
            q.record((5, 2), rnd=4, blamed=True)
        assert q.quarantined_nodes == {5}
        assert [e.node for e in q.node_events] == [5]
        # Every remaining link out of the node is now quarantined, even
        # ones whose own score never crossed the link threshold.
        assert q.is_quarantined((5, 3))
        assert not q.is_quarantined((6, 3))

    def test_unblamed_and_distinct_senders_do_not_escalate(self):
        q = LinkQuarantine(threshold=1)
        q.record((5, 1), rnd=1, blamed=False)
        assert not q.quarantined
        q.record((5, 1), rnd=1, blamed=True)
        q.record((6, 1), rnd=1, blamed=True)
        assert q.quarantined_nodes == set()

    def test_node_threshold_validated(self):
        with pytest.raises(ValueError):
            LinkQuarantine(threshold=1, node_threshold=1)

    def test_as_dict_and_counters_surface_nodes(self):
        from repro.integrity import IntegrityCoordinator

        q = LinkQuarantine(threshold=1)
        q.record((5, 1), rnd=1, blamed=True)
        q.record((5, 2), rnd=2, blamed=True)
        d = q.as_dict()
        assert d["quarantined_nodes"] == [5]
        assert d["node_threshold"] == 2
        coord = IntegrityCoordinator(IntegrityConfig(mode="checksum"))
        assert coord.counters()["quarantined_nodes"] == 0


class TestPhiColdStart:
    """Satellite regression: no instant confirm from a cold-start fit."""

    @pytest.mark.parametrize("bad", [0, 1, -1])
    def test_single_sample_fits_rejected_by_config(self, bad):
        with pytest.raises(ValueError, match="min_samples"):
            PhiConfig(min_samples=bad)

    def test_single_gap_falls_back_to_the_prior(self):
        det = PhiAccrualDetector(PhiConfig())
        det.observe(0, 1, logical_round=1)
        det.observe(0, 1, logical_round=2)  # exactly one gap sample
        # A bypassed config guard must still not fit one sample: phi at
        # a short silence stays identical to the prior's.
        prior = PhiAccrualDetector(PhiConfig())
        prior.observe(0, 1, logical_round=2)
        assert det.phi(0, 1, logical_round=4) == pytest.approx(
            prior.phi(0, 1, logical_round=4)
        )

    def test_zero_variance_history_is_floored_not_instant(self):
        cfg = PhiConfig()
        det = PhiAccrualDetector(cfg)
        # A long perfectly regular history: gap variance is exactly 0.
        for r in range(1, 12):
            det.observe(0, 1, logical_round=r)
        phi_one_late = det.phi(0, 1, logical_round=13)  # one round late
        assert phi_one_late < cfg.confirm_threshold
        # Genuine long silence still confirms.
        assert det.phi(0, 1, logical_round=40) >= cfg.confirm_threshold


if HAVE_HYPOTHESIS:

    def topologies():
        return st.sampled_from(
            [grid_graph(3, 3), grid_graph(4, 4), path_graph(7)]
        )

    class TestByzantineProperties:
        @given(seed=st.integers(0, 200), topo=topologies())
        @settings(
            max_examples=10,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        def test_zero_byz_pipeline_is_byte_identical(self, seed, topo):
            rng_a, rng_b = random.Random(seed), random.Random(seed)
            inputs = make_inputs(topo, rng_a)
            make_inputs(topo, rng_b)
            tap_a, tap_b = RecordingInjector(), RecordingInjector()
            base = run_protocol(
                "algorithm1", topo, inputs, f=1, b=64, rng=rng_a,
                injectors=(tap_a,),
            )
            zero = run_protocol(
                "algorithm1", topo, inputs, f=1, b=64, rng=rng_b,
                injectors=(tap_b,), byz=ByzantineSchedule(),
            )
            assert zero.cc_bits == base.cc_bits
            assert zero.rounds == base.rounds
            assert zero.result == base.result
            assert tap_a._digests == tap_b._digests

        @given(
            seed=st.integers(0, 100),
            node=st.integers(1, 8),
            magnitude=st.integers(1, 5),
        )
        @settings(
            max_examples=10,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        def test_single_equivocation_detected_or_bounded(
            self, seed, node, magnitude
        ):
            topo = grid_graph(3, 3)
            byz = ByzantineSchedule.from_spec(f"{node}:equivocate={magnitude}")
            rng = random.Random(seed)
            inputs = make_inputs(topo, rng)
            record = run_protocol(
                "algorithm1", topo, inputs, f=1, b=64, rng=rng, byz=byz
            )
            # Either the equivocator was convicted (bound shrinks to 0)
            # or its influence stays inside the certified bound — and
            # the oracle never books a violation either way.
            assert record.extra["false_convictions"] == 0
            assert record.extra["undetected_equivocations"] == 0
            assert record.extra["influence_exceeded"] == 0
            assert record.correct
