"""Documentation stays true: files exist, claims point at real artifacts."""

import importlib
import os
import re

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def read(name):
    with open(os.path.join(REPO_ROOT, name)) as fh:
        return fh.read()


class TestReadme:
    def test_required_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert os.path.exists(os.path.join(REPO_ROOT, name))

    def test_readme_example_table_matches_disk(self):
        readme = read("README.md")
        examples_dir = os.path.join(REPO_ROOT, "examples")
        for fname in os.listdir(examples_dir):
            if fname.endswith(".py") and fname != "paper_tables.py":
                assert fname in readme, f"README missing example {fname}"

    def test_readme_mentions_every_package(self):
        readme = read("README.md")
        for pkg in (
            "repro.sim",
            "repro.graphs",
            "repro.adversary",
            "repro.core",
            "repro.baselines",
            "repro.lowerbound",
            "repro.analysis",
            "repro.extensions",
        ):
            assert pkg in readme, pkg

    def test_readme_quickstart_symbols_are_importable(self):
        readme = read("README.md")
        for match in re.findall(r"from (repro[\w.]*) import ([\w, ]+)", readme):
            module_name, symbols = match
            module = importlib.import_module(module_name)
            for symbol in symbols.split(","):
                assert hasattr(module, symbol.strip()), (module_name, symbol)


class TestDesignDoc:
    def test_system_inventory_modules_exist(self):
        design = read("DESIGN.md")
        for match in set(re.findall(r"`repro\.([\w.]+)`", design)):
            name = f"repro.{match.rstrip('.')}"
            # Inventory rows use package or module paths; both must import.
            importlib.import_module(name.replace(".*", ""))

    def test_bench_paths_exist(self):
        design = read("DESIGN.md")
        for match in set(re.findall(r"benchmarks/(bench_\w+\.py)", design)):
            assert os.path.exists(
                os.path.join(REPO_ROOT, "benchmarks", match)
            ), match

    def test_paper_identity_check_present(self):
        assert "Paper identity check" in read("DESIGN.md")


class TestExperimentsDoc:
    def test_results_files_mentioned_exist_after_bench_run(self):
        # The results directory is produced by the bench suite; when it
        # exists, every file EXPERIMENTS.md points at must be present.
        results_dir = os.path.join(REPO_ROOT, "benchmarks", "results")
        if not os.path.isdir(results_dir):
            pytest.skip("bench results not generated yet")
        text = read("EXPERIMENTS.md")
        for match in set(re.findall(r"`(\w+\.txt)`", text)):
            assert os.path.exists(os.path.join(results_dir, match)), match

    def test_summary_table_covers_all_experiments(self):
        text = read("EXPERIMENTS.md")
        from repro.analysis.registry import EXPERIMENTS

        summary = text.split("## Summary", 1)[1]
        for experiment in EXPERIMENTS:
            assert f"| {experiment.exp_id} |" in summary


class TestWalkthroughDocs:
    def test_docs_exist(self):
        for name in ("docs/protocol_walkthrough.md", "docs/model.md"):
            assert os.path.exists(os.path.join(REPO_ROOT, name)), name

    def test_walkthrough_source_references_exist(self):
        text = read("docs/protocol_walkthrough.md")
        for match in set(re.findall(r"`src/(repro/[\w/]+\.py)`", text)):
            assert os.path.exists(os.path.join(REPO_ROOT, "src", match)), match
