"""Baselines: brute force, folklore repeat, and plain TAG."""

import random

import pytest

from repro.adversary import FailureSchedule, random_failures
from repro.baselines import run_bruteforce, run_folklore, run_plain_tag
from repro.core.caaf import MAX, SUM
from repro.core.correctness import is_correct_result
from repro.graphs import cycle_graph, grid_graph, path_graph, star_graph
from repro.sim.message import id_bits
from tests.conftest import indexed_inputs, unit_inputs


class TestBruteForce:
    def test_exact_sum_failure_free(self, small_topologies):
        for topo in small_topologies:
            inputs = indexed_inputs(topo)
            out = run_bruteforce(topo, inputs)
            assert out.result == sum(inputs.values()), topo.name

    def test_completes_in_2c_flooding_rounds(self, grid44):
        out = run_bruteforce(grid44, unit_inputs(grid44), c=2)
        assert out.rounds == 2 * 2 * grid44.diameter

    @pytest.mark.parametrize("seed", range(8))
    def test_tolerates_arbitrary_failures(self, seed):
        # "can tolerate arbitrary number of failures"
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        schedule = random_failures(
            topo, f=20, rng=rng, first_round=1, last_round=4 * topo.diameter
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_bruteforce(topo, inputs, schedule=schedule)
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    def test_cc_scales_linearly_with_n(self):
        # O(N logN): every node forwards every other node's value flood.
        cc = {}
        for n in (9, 25, 49):
            side = int(n**0.5)
            topo = grid_graph(side, side)
            out = run_bruteforce(topo, unit_inputs(topo))
            cc[n] = out.stats.max_bits / (n * id_bits(n))
        ratios = list(cc.values())
        # Normalized by N logN the cost is roughly flat.
        assert max(ratios) / min(ratios) < 3

    def test_each_value_counted_once(self, star10):
        # Distinct ids prevent double counting even with many forwarders.
        inputs = indexed_inputs(star10)
        out = run_bruteforce(star10, inputs)
        assert out.result == sum(inputs.values())

    def test_max_caaf(self, grid44):
        inputs = {u: (u * 5) % 17 for u in grid44.nodes()}
        out = run_bruteforce(grid44, inputs, caaf=MAX)
        assert out.result == max(inputs.values())


class TestFolklore:
    def test_exact_sum_failure_free(self, small_topologies):
        for topo in small_topologies:
            inputs = indexed_inputs(topo)
            out = run_folklore(topo, inputs, f=3)
            assert out.result == sum(inputs.values()), topo.name

    def test_single_epoch_when_no_failures(self, grid44):
        out = run_folklore(grid44, unit_inputs(grid44), f=5)
        assert out.rounds == 2 * 2 * grid44.diameter + 2

    @pytest.mark.parametrize("seed", range(8))
    def test_correct_under_failures(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        f = 8
        schedule = random_failures(
            topo, f=f, rng=rng, first_round=1, last_round=300
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_folklore(topo, inputs, f=f, schedule=schedule)
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    def test_retries_after_mid_epoch_failure(self):
        topo = grid_graph(4, 4)
        cd = 2 * topo.diameter
        # Node 5 dies during the first epoch's aggregation wave.
        schedule = FailureSchedule({5: cd + 3})
        inputs = indexed_inputs(topo)
        out = run_folklore(topo, inputs, f=4, schedule=schedule)
        assert out.rounds > 2 * cd + 2  # needed more than one epoch
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    def test_epochs_bounded_by_f_plus_1(self):
        topo = grid_graph(4, 4)
        f = 3
        out = run_folklore(topo, unit_inputs(topo), f=f)
        epoch_rounds = 2 * 2 * topo.diameter + 2
        assert out.rounds <= (f + 1) * epoch_rounds

    def test_budget_overrun_rejected(self, grid44):
        schedule = FailureSchedule({5: 1, 6: 1, 9: 1})
        with pytest.raises(ValueError, match="budget"):
            run_folklore(grid44, unit_inputs(grid44), f=1, schedule=schedule)


class TestPlainTag:
    def test_exact_sum_failure_free(self, small_topologies):
        for topo in small_topologies:
            inputs = indexed_inputs(topo)
            out = run_plain_tag(topo, inputs)
            assert out.result == sum(inputs.values()), topo.name

    def test_silently_wrong_under_failures(self):
        # The paper's point: tree aggregation "cannot tolerate failures".
        # Killing a spine node mid-aggregation on a path loses a whole
        # suffix of inputs, yet the subtree nodes are still alive... on a
        # path they get disconnected, so use a cycle: node stays reachable
        # the other way around but its tree subtree's sum is lost.
        topo = cycle_graph(10)
        cd = 2 * topo.diameter
        schedule = FailureSchedule({1: cd + 2})
        inputs = {u: 100 for u in topo.nodes()}
        out = run_plain_tag(topo, inputs, schedule=schedule)
        correct = is_correct_result(
            out.result, SUM, topo, inputs, schedule, out.rounds
        )
        assert not correct  # alive, root-connected inputs were dropped

    def test_always_terminates_in_one_epoch(self, grid44):
        schedule = FailureSchedule({5: 3, 10: 7})
        out = run_plain_tag(grid44, unit_inputs(grid44), schedule=schedule)
        assert out.rounds <= 2 * 2 * grid44.diameter + 2

    def test_cheaper_than_bruteforce(self, grid55):
        inputs = unit_inputs(grid55)
        tag = run_plain_tag(grid55, inputs)
        bf = run_bruteforce(grid55, inputs)
        assert tag.stats.max_bits < bf.stats.max_bits
