"""Protocol parameters: phase arithmetic, budgets, and wire sizes."""

import pytest

from repro.core import wire
from repro.core.caaf import MAX, SUM
from repro.core.params import ProtocolParams, params_for
from repro.graphs import grid_graph
from repro.sim.message import TAG_BITS


def make_params(n=16, d=4, c=2, t=3, max_input=15):
    return ProtocolParams(
        n_nodes=n, root=0, diameter=d, c=c, t=t, max_input=max_input
    )


class TestPhaseArithmetic:
    def test_agg_total_is_7cd_plus_4(self):
        p = make_params()
        assert p.agg_rounds == 7 * p.cd + 4

    def test_veri_total_is_5cd_plus_3(self):
        p = make_params()
        assert p.veri_rounds == 5 * p.cd + 3

    def test_agg_phases_partition_the_execution(self):
        p = make_params()
        spans = [
            p.agg_construction_span,
            p.agg_aggregation_span,
            p.agg_flooding_span,
            p.agg_selection_span,
        ]
        assert spans[0][0] == 1
        for (a, b), (c_, d_) in zip(spans, spans[1:]):
            assert c_ == b + 1
        assert spans[-1][1] == p.agg_rounds

    def test_veri_phases_partition_the_execution(self):
        p = make_params()
        spans = [p.veri_parent_span, p.veri_child_span, p.veri_lfc_span]
        assert spans[0][0] == 1
        for (a, b), (c_, d_) in zip(spans, spans[1:]):
            assert c_ == b + 1
        assert spans[-1][1] == p.veri_rounds

    def test_pair_fits_in_19c_flooding_rounds(self):
        # Algorithm 1's interval must hold one AGG + VERI pair.
        for d in (1, 3, 10):
            p = ProtocolParams(n_nodes=8, root=0, diameter=d, c=2, t=1)
            assert p.pair_rounds <= 19 * p.cd

    def test_agg_within_11c_flooding_rounds(self):
        # Theorem 3.
        p = make_params()
        assert p.agg_rounds <= 11 * p.c * p.diameter

    def test_veri_within_8c_flooding_rounds(self):
        # Theorem 6.
        p = make_params()
        assert p.veri_rounds <= 8 * p.c * p.diameter


class TestBudgets:
    def test_agg_budget_formula(self):
        p = make_params(n=16, t=3)
        assert p.agg_bit_budget == (11 * 3 + 14) * (4 + 5)

    def test_veri_budget_formula(self):
        p = make_params(n=16, t=3)
        assert p.veri_bit_budget == (5 * 3 + 7) * (3 * 4 + 10)

    def test_budgets_linear_in_t(self):
        p0, p1 = make_params(t=0), make_params(t=10)
        assert p1.agg_bit_budget > p0.agg_bit_budget
        # Linearity: difference per unit t is constant.
        p2 = make_params(t=20)
        assert (
            p2.agg_bit_budget - p1.agg_bit_budget
            == p1.agg_bit_budget - p0.agg_bit_budget + 110 * 0
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_nodes=1, root=0, diameter=1),
            dict(n_nodes=4, root=0, diameter=0),
            dict(n_nodes=4, root=0, diameter=1, c=0),
            dict(n_nodes=4, root=0, diameter=1, t=-1),
            dict(n_nodes=4, root=0, diameter=1, max_input=-2),
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProtocolParams(**kwargs)

    def test_with_t_copies(self):
        p = make_params(t=1)
        q = p.with_t(5)
        assert q.t == 5 and p.t == 1
        assert q.n_nodes == p.n_nodes

    def test_params_for_topology(self):
        topo = grid_graph(4, 4)
        p = params_for(topo, t=2, c=3)
        assert p.n_nodes == 16
        assert p.diameter == topo.diameter
        assert p.cd == 3 * topo.diameter
        assert p.max_input == 16  # defaults to N

    def test_params_for_caaf_bits(self):
        topo = grid_graph(4, 4)
        p_sum = params_for(topo, caaf=SUM, max_input=255)
        p_max = params_for(topo, caaf=MAX, max_input=255)
        assert p_sum.psum_bits > p_max.psum_bits  # sums outgrow maxima


class TestWireSizes:
    def test_tree_construct_carries_2t_ancestors(self):
        p = make_params(t=4)
        part = wire.tree_construct(p, 1, (0,))
        expected = TAG_BITS + p.id_bits + p.level_bits + 2 * 4 * p.id_bits
        assert part.bits == expected

    def test_flooded_psum_size(self):
        p = make_params()
        part = wire.flooded_psum(p, 3, 99)
        assert part.bits == TAG_BITS + 2 * p.id_bits + p.psum_bits

    def test_failed_parent_has_three_id_scale_fields(self):
        # VERI's budget multiplies by 3 logN + 10; the heaviest message must
        # stay within ~3 id-sized fields.
        p = make_params()
        part = wire.failed_parent(p, 2, 5, 9)
        assert part.bits <= 3 * p.id_bits + p.level_bits + TAG_BITS + p.id_bits

    def test_determination_labels(self):
        p = make_params()
        keep = wire.determination(p, wire.KEEP, 3)
        dom = wire.determination(p, wire.DOMINATED, 3)
        assert keep.bits == dom.bits
        with pytest.raises(ValueError):
            wire.determination(p, "bogus", 3)

    def test_abort_symbols_are_tiny(self):
        p = make_params()
        assert wire.agg_abort(p).bits <= TAG_BITS + p.id_bits
        assert wire.veri_overflow(p).bits <= TAG_BITS + p.id_bits

    def test_flood_kind_registries_disjoint_from_direct_kinds(self):
        assert "tree_construct" not in wire.AGG_FLOOD_KINDS
        assert "aggregation" not in wire.AGG_FLOOD_KINDS
        assert "flooded_psum" in wire.AGG_FLOOD_KINDS
        assert "failed_parent" in wire.VERI_FLOOD_KINDS

    def test_inbox_helpers(self):
        from repro.sim.message import Envelope, Part

        inbox = [
            Envelope(1, Part("a", (), 1)),
            Envelope(2, Part("b", (), 1)),
            Envelope(1, Part("b", (), 1)),
        ]
        assert len(wire.parts_from(inbox, 1)) == 2
        assert len(wire.parts_of_kind(inbox, "b")) == 2
