"""Hypercube, torus, cluster-line, and lollipop topologies."""

import pytest

from repro.graphs import (
    cluster_line_graph,
    hypercube_graph,
    lollipop_graph,
    torus_graph,
)


class TestHypercube:
    def test_size_and_regularity(self):
        topo = hypercube_graph(4)
        assert topo.n_nodes == 16
        assert all(topo.degree(u) == 4 for u in topo.nodes())

    def test_diameter_is_dimension(self):
        for dim in (2, 3, 4):
            assert hypercube_graph(dim).diameter == dim

    def test_edges_flip_single_bits(self):
        topo = hypercube_graph(3)
        for u, v in topo.edges():
            assert bin(u ^ v).count("1") == 1

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            hypercube_graph(0)


class TestTorus:
    def test_four_regular(self):
        topo = torus_graph(4, 5)
        assert topo.n_nodes == 20
        assert all(topo.degree(u) == 4 for u in topo.nodes())

    def test_diameter_half_plus_half(self):
        assert torus_graph(4, 4).diameter == 4
        assert torus_graph(6, 6).diameter == 6

    def test_wraparound_edges_exist(self):
        topo = torus_graph(4, 4)
        assert 3 in topo.neighbours(0)  # row wrap
        assert 12 in topo.neighbours(0)  # column wrap

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            torus_graph(2, 5)


class TestClusterLine:
    def test_size(self):
        topo = cluster_line_graph(3, 4)
        assert topo.n_nodes == 12

    def test_heads_form_a_path(self):
        topo = cluster_line_graph(4, 3)
        heads = [0, 3, 6, 9]
        for a, b in zip(heads, heads[1:]):
            assert b in topo.neighbours(a)
        # Not a ring: first and last head are not adjacent.
        assert heads[-1] not in topo.neighbours(heads[0])

    def test_head_failure_partitions_far_clusters(self):
        topo = cluster_line_graph(3, 3)
        survivors = topo.alive_component({3})  # middle head
        assert survivors == {0, 1, 2}

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            cluster_line_graph(1, 4)


class TestLollipop:
    def test_size_and_root_placement(self):
        topo = lollipop_graph(5, 3)
        assert topo.n_nodes == 8
        assert topo.root == 0
        assert topo.degree(0) == 1  # far end of the tail

    def test_clique_is_complete(self):
        topo = lollipop_graph(4, 2)
        clique = list(range(2, 6))
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                assert v in topo.neighbours(u)

    def test_diameter_spans_tail(self):
        topo = lollipop_graph(4, 5)
        assert topo.diameter == 6  # 5 tail hops + 1 into the clique

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            lollipop_graph(1, 3)
        with pytest.raises(ValueError):
            lollipop_graph(3, 0)
