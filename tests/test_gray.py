"""Gray-failure resilience: stragglers, φ-accrual suspicion, adaptive RTO.

Acceptance properties (ISSUE 8):

* Gray failures are pure *latency* faults: under stalls/inflations whose
  peak severity fits the transport's tolerance window, every protocol
  run stays **exact** — nothing is dropped, nothing is evicted.
* The φ-accrual detector grades suspicion (trust / suspect / confirm)
  instead of issuing binary verdicts; only a *confirmed* suspicion may
  evict, so a limping-but-live node is never treated as dead — the
  :class:`StragglerOracle` reports zero FALSE-SUSPECT verdicts.
* Adaptive per-link RTO closes clean windows early: on the same
  workload the adaptive transport finishes in measurably fewer physical
  rounds than the fixed NACK schedule, at identical protocol CC.
* Hedged retransmission is invisible on clean runs: protocol CC is
  bit-for-bit identical with and without ``hedge=True``.
* Every gray schedule is deterministic (profiles are pure functions of
  the broadcast round) and rides repro bundles: a recorded gray run
  replays bit-exactly.
"""

import random

import pytest

from repro.analysis.runner import run_protocol, safe_run_protocol
from repro.exec.scheduler import WorkUnit, execute_unit, materialize_gray
from repro.graphs import grid_graph, path_graph
from repro.resilience import (
    LEVEL_CONFIRM,
    LEVEL_SUSPECT,
    LEVEL_TRUST,
    AdaptiveRto,
    PhiAccrualDetector,
    PhiConfig,
    ReliableTransport,
    TransportConfig,
)
from repro.sim.faults import (
    GRAY_CONSTANT,
    GRAY_LIMP,
    GRAY_RAMP,
    LIMP_PERIOD,
    GrayFailureSchedule,
    _profile_delay,
    gray_sources,
    random_gray,
)
from repro.sim.monitors import StragglerOracle
from repro.sim.stats import SimStats

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the toolchain
    HAVE_HYPOTHESIS = False


# --------------------------------------------------------------------- #
# Spec grammar, validation, serialization.
# --------------------------------------------------------------------- #


class TestGraySpec:
    def test_spec_round_trip(self):
        gray = GrayFailureSchedule.from_spec(
            "5:stall@r3-r9:x2:ramp,link:1-2@r2-r8:x1"
        )
        assert gray.stalls == {5: [(3, 9, 2, GRAY_RAMP)]}
        assert gray.links == [(1, 2, 2, 8, 1, GRAY_CONSTANT)]
        again = GrayFailureSchedule.from_jsonable(gray.as_jsonable())
        assert again.stalls == gray.stalls
        assert again.links == gray.links

    def test_default_severity_and_profile(self):
        gray = GrayFailureSchedule.from_spec("3:stall@r2-r4:x1")
        assert gray.stalls == {3: [(2, 4, 1, GRAY_CONSTANT)]}

    @pytest.mark.parametrize(
        "bad",
        [
            "5:melt@r3-r9:x2",  # unknown kind
            "5:stall@r3-r9:x0",  # severity < 1
            "5:stall@r9-r3:x2",  # end < start
            "5:stall@r0-r3:x2",  # rounds < 1
            "5:stall@r3-r9:x2:jitter",  # unknown profile
            "link:4-4@r2-r8:x1",  # self-loop edge
            "gibberish",
        ],
    )
    def test_spec_rejects_name_the_grammar(self, bad):
        with pytest.raises(ValueError):
            GrayFailureSchedule.from_spec(bad)

    def test_overlapping_stalls_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            GrayFailureSchedule(stalls={2: [(3, 9, 1, "constant"),
                                            (7, 12, 1, "constant")]})

    def test_validate_against_topology(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError, match="unknown node"):
            GrayFailureSchedule(stalls={99: [(2, 4)]}).validate(topo)
        with pytest.raises(ValueError, match="nonexistent edge"):
            GrayFailureSchedule(links=[(0, 8, 2, 4)]).validate(topo)
        GrayFailureSchedule(
            stalls={4: [(2, 4)]}, links=[(0, 1, 2, 4)]
        ).validate(topo)

    def test_degraded_intervals_ledger_sorted(self):
        gray = GrayFailureSchedule.from_spec(
            "5:stall@r8-r9:x2,link:1-2@r2-r8:x1,3:stall@r4-r6:x3:limp"
        )
        ledger = gray.degraded_intervals()
        assert [e[2] for e in ledger] == sorted(e[2] for e in ledger)
        assert ("stall", (3,), 4, 6, 3, GRAY_LIMP) in ledger
        assert ("link", (1, 2), 2, 8, 1, GRAY_CONSTANT) in ledger

    def test_gray_sources_flattens_one_level(self):
        gray = GrayFailureSchedule.from_spec("3:stall@r2-r4:x1")

        class Wrapper:
            inner = [gray]

        assert gray_sources([gray]) == [gray]
        assert gray_sources([Wrapper()]) == [gray]
        assert gray_sources([]) == []


# --------------------------------------------------------------------- #
# Latency profiles.
# --------------------------------------------------------------------- #


class TestGrayProfiles:
    def test_constant_holds_the_severity(self):
        for rnd in range(5, 11):
            assert _profile_delay(GRAY_CONSTANT, 3, rnd, 5, 10) == 3

    def test_ramp_degrades_linearly(self):
        delays = [_profile_delay(GRAY_RAMP, 4, r, 10, 19) for r in range(10, 20)]
        assert delays[0] == 1
        assert delays[-1] == 4
        assert delays == sorted(delays)

    def test_limp_alternates_in_period_blocks(self):
        delays = [_profile_delay(GRAY_LIMP, 2, r, 1, 12) for r in range(1, 13)]
        expected = []
        for idx in range(12):
            expected.append(2 if (idx // LIMP_PERIOD) % 2 == 0 else 0)
        assert delays == expected

    def test_delay_of_compounds_stall_and_link(self):
        gray = GrayFailureSchedule(
            stalls={1: [(3, 8, 2, GRAY_CONSTANT)]},
            links=[(1, 2, 3, 8, 3, GRAY_CONSTANT)],
        )
        # Stalled sender over a degraded edge: delays add.
        assert gray.delay_of(1, 2, 5) == 5
        # Only the stall applies on a clean edge.
        assert gray.delay_of(1, 4, 5) == 2
        # Only the inflation applies for the non-stalled direction.
        assert gray.delay_of(2, 1, 5) == 3
        # Outside the interval: clean.
        assert gray.delay_of(1, 2, 9) == 0

    def test_stall_active_sees_limp_clean_halves_as_up(self):
        gray = GrayFailureSchedule(stalls={4: [(1, 12, 2, GRAY_LIMP)]})
        assert gray.stall_active(4, 1)
        assert not gray.stall_active(4, 1 + LIMP_PERIOD)
        assert not gray.stall_active(4, 20)


# --------------------------------------------------------------------- #
# Seeded random schedules.
# --------------------------------------------------------------------- #


class TestRandomGray:
    def test_deterministic_per_rng_state(self):
        topo = grid_graph(4, 4)
        a = random_gray(topo, 0.5, random.Random(7), horizon=40, root=0)
        b = random_gray(topo, 0.5, random.Random(7), horizon=40, root=0)
        assert a.as_jsonable() == b.as_jsonable()
        c = random_gray(topo, 0.5, random.Random(8), horizon=40, root=0)
        assert a.as_jsonable() != c.as_jsonable()

    def test_root_is_never_stalled(self):
        topo = grid_graph(4, 4)
        for seed in range(10):
            gray = random_gray(
                topo, 1.0, random.Random(seed), horizon=30, root=topo.root
            )
            assert topo.root not in gray.stalls

    def test_rate_zero_is_empty(self):
        topo = grid_graph(3, 3)
        gray = random_gray(
            topo, 0.0, random.Random(1), horizon=30, link_rate=0.0
        )
        assert not gray.has_events

    def test_severity_is_bounded(self):
        topo = grid_graph(4, 4)
        gray = random_gray(
            topo, 1.0, random.Random(3), horizon=30, max_severity=2
        )
        assert gray.max_severity() <= 2

    def test_invalid_parameters_rejected(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError):
            random_gray(topo, 1.5, random.Random(1), horizon=10)
        with pytest.raises(ValueError):
            random_gray(topo, 0.5, random.Random(1), horizon=10, max_severity=0)

    def test_materialize_gray_coercions(self):
        topo = grid_graph(3, 3)
        rng = random.Random(2)
        assert materialize_gray(None, topo, rng) is None
        gray = materialize_gray("3:stall@r2-r4:x1", topo, rng)
        assert gray.stalls == {3: [(2, 4, 1, GRAY_CONSTANT)]}
        assert materialize_gray(gray, topo, rng) is gray
        rnd_spec = {"kind": "random", "rate": 0.5, "horizon": 20}
        drawn = materialize_gray(rnd_spec, topo, random.Random(4))
        again = materialize_gray(rnd_spec, topo, random.Random(4))
        assert drawn.as_jsonable() == again.as_jsonable()


# --------------------------------------------------------------------- #
# φ-accrual detection.
# --------------------------------------------------------------------- #


class TestPhiAccrualDetector:
    def test_phi_accrues_with_silence(self):
        det = PhiAccrualDetector()
        det.observe(0, 1, 1)
        values = [det.phi(0, 1, lr) for lr in range(2, 12)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_graded_levels_and_event_log(self):
        det = PhiAccrualDetector()
        det.observe(0, 1, 1)
        assert det.level(0, 1, 2, rnd=10) == LEVEL_TRUST
        # Keep probing as silence lengthens; the level must pass through
        # suspect before reaching confirm, and each *rise* is logged.
        seen = [det.level(0, 1, lr, rnd=lr * 5) for lr in range(2, 30)]
        assert LEVEL_SUSPECT in seen and LEVEL_CONFIRM in seen
        assert seen.index(LEVEL_SUSPECT) < seen.index(LEVEL_CONFIRM)
        levels = [e.level for e in det.events]
        assert levels == [LEVEL_SUSPECT, LEVEL_CONFIRM]
        assert det.suspects == 1 and det.confirms == 1
        assert det.suspected_peers() == {1}
        assert det.suspected_peers(LEVEL_CONFIRM) == {1}

    def test_arrival_resets_to_trust(self):
        det = PhiAccrualDetector()
        det.observe(0, 1, 1)
        for lr in range(2, 30):
            det.level(0, 1, lr)
        assert det._level[(0, 1)] == LEVEL_CONFIRM
        det.observe(0, 1, 30)
        assert det._level[(0, 1)] == LEVEL_TRUST
        assert det.level(0, 1, 30) == LEVEL_TRUST

    def test_history_replaces_prior_after_min_samples(self):
        det = PhiAccrualDetector(PhiConfig(min_samples=3, min_std=0.5))
        # A peer that reliably arrives every 4 logical rounds.
        for lr in (1, 5, 9, 13):
            det.observe(0, 1, lr)
        # Elapsed 4 is that peer's normal cadence: low phi.
        assert det.phi(0, 1, 17) < 1.0
        # A fresh pair still runs on the mean-1 prior: elapsed 4 is alarming.
        assert det.phi(0, 2, 4) > det.phi(0, 1, 17)

    def test_window_size_bounds_history(self):
        det = PhiAccrualDetector(PhiConfig(window_size=4))
        for lr in range(1, 20):
            det.observe(0, 1, lr)
        assert len(det._gaps[(0, 1)]) == 4

    def test_phi_config_validation(self):
        with pytest.raises(ValueError):
            PhiConfig(window_size=1)
        with pytest.raises(ValueError):
            PhiConfig(min_std=0.0)
        with pytest.raises(ValueError):
            PhiConfig(suspect_threshold=9.0, confirm_threshold=8.0)


class TestAdaptiveRto:
    def test_initial_rto_is_one_round(self):
        rto = AdaptiveRto()
        assert rto.rto == AdaptiveRto.INITIAL_RTO == 1
        assert rto.samples == 0

    def test_first_sample_seeds_the_estimator(self):
        rto = AdaptiveRto()
        rto.sample(3)
        assert rto.srtt == 3.0 and rto.rttvar == 1.5
        assert rto.rto == 9  # ceil(3 + 4 * 1.5)
        assert rto.min_rtt == 3

    def test_converges_toward_stable_rtt(self):
        rto = AdaptiveRto()
        for _ in range(64):
            rto.sample(2)
        assert rto.rto <= 4  # variance decays; 2 + 4*var -> ~2
        assert rto.rto >= rto.min_rtt == 2

    def test_floor_at_min_rtt(self):
        rto = AdaptiveRto()
        rto.sample(6)
        for _ in range(64):
            rto.sample(6)
        assert rto.rto >= rto.min_rtt == 6

    def test_rejects_negative_and_clamps_zero(self):
        rto = AdaptiveRto()
        with pytest.raises(ValueError):
            rto.sample(-1)
        rto.sample(0)
        assert rto.min_rtt == 1

    def test_as_dict_snapshot(self):
        rto = AdaptiveRto()
        rto.sample(2)
        snap = rto.as_dict()
        assert snap["samples"] == 1 and snap["min_rtt"] == 2
        assert snap["rto"] == rto.rto


# --------------------------------------------------------------------- #
# Adaptive windows (coordinator-level).
# --------------------------------------------------------------------- #


class TestAdaptiveWindows:
    def test_fixed_mode_is_closed_form(self):
        t = ReliableTransport(TransportConfig(retransmits=2))
        w = t.config.window
        assert t.locate(1) == (1, 1)
        assert t.locate(w) == (1, w)
        assert t.locate(w + 1) == (2, 1)

    def test_clean_window_closes_after_all_zero_reports(self):
        t = ReliableTransport(TransportConfig(retransmits=2, rto="adaptive"))
        assert t.locate(1) == (1, 1)
        assert t.locate(2) == (1, 2)
        t.report_missing(0, 2, 0)
        t.report_missing(1, 2, 0)
        # Every node reported a complete inbox at slot 2: round 3 opens
        # the next logical round.
        assert t.locate(3) == (2, 1)
        assert t.window_start(2) == 3

    def test_missing_frames_hold_the_window_open(self):
        t = ReliableTransport(TransportConfig(retransmits=2, rto="adaptive"))
        t.locate(1), t.locate(2)
        t.report_missing(0, 2, 1)
        t.report_missing(1, 2, 0)
        assert t.locate(3) == (1, 3)

    def test_cap_forces_the_close(self):
        t = ReliableTransport(TransportConfig(retransmits=2, rto="adaptive"))
        cap = t.config.window
        for rnd in range(1, cap + 1):
            lr, slot = t.locate(rnd)
            assert (lr, slot) == (1, rnd)
            t.report_missing(0, rnd, 1)  # never complete
        assert t.locate(cap + 1) == (2, 1)

    def test_per_link_retransmit_attribution(self):
        t = ReliableTransport(TransportConfig(retransmits=1))
        assert t.consume_retransmit(3, 1, [0, 5]) == 1
        # Budget exhausted: further requests are cap hits, per link.
        assert t.consume_retransmit(3, 1, [0]) is None
        counters = t.link_counters()
        assert counters["attempts"] == {"3->0": 1, "3->5": 1}
        assert counters["cap_hits"] == {"3->0": 1}
        assert counters["budget"] == 1

    def test_stats_absorb_merges_link_stats(self):
        a = SimStats()
        a.link_stats = {"attempts": {"1->0": 2}, "budget": 2}
        b = SimStats()
        b.link_stats = {"attempts": {"1->0": 1, "2->0": 3}, "budget": 2}
        a.absorb(b)
        assert a.link_stats["attempts"] == {"1->0": 3, "2->0": 3}


# --------------------------------------------------------------------- #
# End-to-end: protocols limp but stay exact.
# --------------------------------------------------------------------- #


def _gray_run(rto="fixed", hedge=False, gray=None, seed=3, protocol="algorithm1"):
    from repro.sim.monitors import standard_monitors

    topo = grid_graph(3, 3)
    rng = random.Random(seed)
    inputs = {u: u + 1 for u in topo.nodes()}
    # Coerce the transport up front so the straggler oracle watches the
    # same live detector the run uses (the scheduler does the same).
    transport = ReliableTransport(
        TransportConfig(retransmits=2, rto=rto, hedge=hedge)
    )
    monitors = None
    if gray is not None:
        monitors = standard_monitors(
            topo,
            inputs,
            f=2,
            b=64,
            mode="record",
            transport=transport,
            gray=gray,
        )
    return run_protocol(
        protocol,
        topo,
        inputs,
        f=2,
        b=64,
        rng=rng,
        monitors=monitors,
        transport=transport,
        gray=gray,
    )


class TestGrayEndToEnd:
    def test_tolerable_stalls_stay_exact_fixed(self):
        gray = GrayFailureSchedule.from_spec(
            "4:stall@r5-r30:x2,link:0-1@r10-r40:x2:limp"
        )
        record = _gray_run(gray=gray)
        assert record.correct
        assert record.result == sum(u + 1 for u in grid_graph(3, 3).nodes())
        assert record.extra["gray_stalled"] > 0
        assert record.extra["live_gaps"] == 0

    def test_tolerable_stalls_stay_exact_adaptive(self):
        gray = GrayFailureSchedule.from_spec(
            "4:stall@r5-r30:x2:ramp,link:1-2@r10-r40:x2"
        )
        record = _gray_run(rto="adaptive", gray=gray)
        assert record.correct
        assert record.extra["false_suspects"] == 0
        assert record.extra["missed_degradations"] == 0

    def test_adaptive_beats_fixed_on_wall_rounds(self):
        gray = GrayFailureSchedule.from_spec("4:stall@r5-r20:x2")
        fixed = _gray_run(rto="fixed", gray=gray)
        adaptive = _gray_run(rto="adaptive", gray=gray)
        assert fixed.correct and adaptive.correct
        assert adaptive.rounds < fixed.rounds
        assert adaptive.result == fixed.result

    def test_clean_hedging_is_bit_identical(self):
        plain = _gray_run(hedge=False)
        hedged = _gray_run(hedge=True)
        assert hedged.cc_bits == plain.cc_bits
        assert hedged.result == plain.result
        assert hedged.rounds == plain.rounds
        assert hedged.extra.get("hedges", 0) == 0

    def test_gray_counters_surface_in_extras(self):
        gray = GrayFailureSchedule.from_spec("4:stall@r5-r15:x2")
        record = _gray_run(rto="adaptive", hedge=True, gray=gray)
        for key in (
            "gray_stalled",
            "gray_inflated",
            "gray_delay_rounds",
            "suspects",
            "confirms",
            "hedges",
            "hedge_deliveries",
        ):
            assert key in record.extra, key

    def test_unknown_f_limps_too(self):
        gray = GrayFailureSchedule.from_spec("5:stall@r4-r18:x2:limp")
        record = _gray_run(rto="adaptive", gray=gray, seed=5, protocol="unknown_f")
        assert record.correct
        assert record.extra["false_suspects"] == 0

    def test_execute_unit_matches_serial_derivation(self):
        topo = grid_graph(3, 3)
        unit = WorkUnit(
            protocol="algorithm1",
            topology=topo,
            seed=11,
            f=2,
            b=64,
            schedule={"kind": "none"},
            transport=TransportConfig(retransmits=2, rto="adaptive"),
            gray={"kind": "random", "rate": 0.4, "horizon": 60},
        )
        first = execute_unit(unit)
        second = execute_unit(unit)
        assert first.result == second.result
        assert first.cc_bits == second.cc_bits
        assert first.rounds == second.rounds
        assert first.extra.get("gray_delay_rounds") == second.extra.get(
            "gray_delay_rounds"
        )


# --------------------------------------------------------------------- #
# The straggler oracle.
# --------------------------------------------------------------------- #


class _FakeNetwork:
    def __init__(self, alive=True):
        self.alive = alive

    def is_alive(self, node, rnd):
        return self.alive


class _FakeTransport:
    def __init__(self, detector):
        self.detector = detector
        self.config = TransportConfig(retransmits=2, rto="adaptive")


class TestStragglerOracle:
    def _confirmed_detector(self):
        det = PhiAccrualDetector()
        det.observe(0, 4, 1)
        for lr in range(2, 40):
            det.level(0, 4, lr, rnd=lr * 3)
        assert any(e.level == LEVEL_CONFIRM for e in det.events)
        return det

    def test_confirm_on_live_peer_is_false_suspect(self):
        det = self._confirmed_detector()
        oracle = StragglerOracle(
            GrayFailureSchedule(), transport=_FakeTransport(det), mode="record"
        )
        oracle.finalize(_FakeNetwork(alive=True))
        assert oracle.false_suspects == 1
        assert any(v.rule == "false-suspect" for v in oracle.violations)
        # Re-finalizing (next epoch) must not double-report the pair.
        oracle.finalize(_FakeNetwork(alive=True))
        assert oracle.false_suspects == 1

    def test_confirm_on_dead_peer_is_legitimate(self):
        det = self._confirmed_detector()
        oracle = StragglerOracle(
            GrayFailureSchedule(), transport=_FakeTransport(det), mode="record"
        )
        oracle.finalize(_FakeNetwork(alive=False))
        assert oracle.false_suspects == 0
        assert not oracle.violations

    def test_undetected_severe_stall_is_missed_degradation(self):
        det = PhiAccrualDetector()  # never observed anything
        window = TransportConfig(retransmits=2).window
        gray = GrayFailureSchedule(
            stalls={4: [(2, 2 + 4 * window, window, GRAY_CONSTANT)]}
        )
        oracle = StragglerOracle(
            gray, transport=_FakeTransport(det), mode="record"
        )
        oracle.grade_final()
        assert oracle.missed_degradations == 1
        assert any(v.rule == "unbounded-stall" for v in oracle.violations)

    def test_mild_stall_is_not_a_miss(self):
        det = PhiAccrualDetector()
        gray = GrayFailureSchedule(stalls={4: [(2, 6, 1, GRAY_CONSTANT)]})
        oracle = StragglerOracle(
            gray, transport=_FakeTransport(det), mode="record"
        )
        oracle.grade_final()
        assert oracle.missed_degradations == 0

    def test_suspected_severe_stall_is_not_a_miss(self):
        det = self._confirmed_detector()  # node 4 was suspected
        window = TransportConfig(retransmits=2).window
        gray = GrayFailureSchedule(
            stalls={4: [(2, 2 + 4 * window, window, GRAY_CONSTANT)]}
        )
        oracle = StragglerOracle(
            gray, transport=_FakeTransport(det), mode="record"
        )
        oracle.grade_final()
        assert oracle.missed_degradations == 0


# --------------------------------------------------------------------- #
# Bundles: gray runs record and replay bit-exactly.
# --------------------------------------------------------------------- #


class TestGrayBundles:
    def test_gray_run_records_and_replays(self, tmp_path):
        from repro.sim.monitors import standard_monitors
        from repro.sim.recorder import ExecutionRecord
        from repro.sim.replay import replay_bundle

        topo = grid_graph(3, 3)
        inputs = {u: u + 1 for u in topo.nodes()}
        # A stall past the fixed window's tolerance: the run degrades
        # (live gaps), which is exactly what capture_dir snapshots.
        gray = GrayFailureSchedule.from_spec("4:stall@r2-r40:x9")
        transport = TransportConfig(retransmits=1)
        record = safe_run_protocol(
            "algorithm1",
            topo,
            inputs,
            seed=6,
            rng=random.Random(6),
            f=2,
            b=64,
            monitors=standard_monitors(topo, inputs, f=2, mode="record"),
            capture_dir=str(tmp_path),
            transport=transport,
            gray=gray,
        )
        bundle_path = record.extra.get("bundle")
        assert bundle_path, "a degraded gray run must capture a bundle"
        bundle = ExecutionRecord.load(bundle_path)
        assert bundle.version >= 4
        assert bundle.params["gray"]["stalls"] == {"4": [[2, 40, 9, "constant"]]}
        outcome = replay_bundle(bundle_path)
        assert outcome.reproduced

    def test_transport_config_jsonable_round_trips_gray_knobs(self):
        cfg = TransportConfig(retransmits=3, rto="adaptive", hedge=True)
        data = cfg.as_jsonable()
        assert data["rto"] == "adaptive" and data["hedge"] is True
        assert TransportConfig.from_jsonable(data) == cfg
        # Pre-gray configs serialize byte-identically to v3 bundles.
        legacy = TransportConfig(retransmits=3).as_jsonable()
        assert "rto" not in legacy and "hedge" not in legacy


# --------------------------------------------------------------------- #
# Properties.
# --------------------------------------------------------------------- #


if HAVE_HYPOTHESIS:

    class TestGrayProperties:
        @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                        max_size=40))
        @settings(max_examples=60, deadline=None)
        def test_rto_never_below_min_observed_rtt(self, rtts):
            rto = AdaptiveRto()
            seen = []
            for rtt in rtts:
                rto.sample(rtt)
                seen.append(max(1, rtt))  # samples clamp to >= 1 round
                assert rto.min_rtt == min(seen)
                assert rto.rto >= min(seen)

        @given(st.integers(min_value=1, max_value=30),
               st.integers(min_value=1, max_value=8))
        @settings(max_examples=40, deadline=None)
        def test_phi_is_monotone_in_silence(self, last_seen, probe):
            det = PhiAccrualDetector()
            det.observe(0, 1, last_seen)
            a = det.phi(0, 1, last_seen + probe)
            b = det.phi(0, 1, last_seen + probe + 1)
            assert b >= a

        @given(st.integers(min_value=0, max_value=100))
        @settings(
            max_examples=8,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        def test_clean_runs_raise_no_suspicion(self, seed):
            record = _gray_run(rto="adaptive", hedge=True, seed=seed)
            assert record.correct
            assert record.extra["suspects"] == 0
            assert record.extra["confirms"] == 0

        @given(st.integers(min_value=0, max_value=100))
        @settings(
            max_examples=6,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        def test_clean_hedged_cc_is_bit_identical(self, seed):
            plain = _gray_run(hedge=False, seed=seed)
            hedged = _gray_run(hedge=True, seed=seed)
            assert hedged.cc_bits == plain.cc_bits
            assert hedged.result == plain.result
