"""ddmin fault-schedule shrinking: 1-minimality and budget behavior."""

import random

import pytest

from repro.adversary import (
    components_of,
    failure_signature,
    restrict_bundle,
    shrink_bundle,
)
from repro.adversary.shrink import signature_matches
from repro.analysis.runner import make_inputs, safe_run_protocol
from repro.graphs import grid_graph
from repro.sim import ExecutionRecord, MessageFaults, replay_bundle
from repro.sim.monitors import standard_monitors


@pytest.fixture(scope="module")
def failing_bundle(tmp_path_factory):
    """One captured silent-wrong chaos bundle on a 4x4 grid (fast)."""
    capture = tmp_path_factory.mktemp("bundles")
    topo = grid_graph(4, 4)
    rng = random.Random(2)
    inputs = make_inputs(topo, rng)
    record = safe_run_protocol(
        "unknown_f",
        topo,
        inputs,
        seed=2,
        rng=rng,
        strict=False,
        injectors=[MessageFaults(drop=0.08, duplicate=0.03, delay=0.05,
                                 seed=2)],
        monitors=standard_monitors(topo, inputs, mode="record"),
        capture_dir=str(capture),
    )
    assert not record.correct
    return ExecutionRecord.load(record.extra["bundle"])


class TestComponents:
    def test_components_cover_every_event(self, failing_bundle):
        comps = components_of(failing_bundle)
        assert len(comps) == failing_bundle.n_decisions
        kinds = {kind for kind, _ in comps}
        assert "transmit" in kinds

    def test_restrict_to_all_is_identity_on_events(self, failing_bundle):
        kept = restrict_bundle(
            failing_bundle, components_of(failing_bundle)
        )
        assert kept.transmits == failing_bundle.transmits
        assert kept.schedule == failing_bundle.schedule
        assert kept.digests == {}  # probes carry no stale digests
        assert kept.expected == {}

    def test_restrict_to_nothing_drops_every_event(self, failing_bundle):
        empty = restrict_bundle(failing_bundle, [])
        assert empty.transmits == []
        assert empty.schedule == {}
        assert empty.crashes == []


class TestSignatures:
    def test_violation_subset_matches(self):
        assert signature_matches(("violation", "oracle"),
                                 ("violation", "cc_envelope", "oracle"))
        assert not signature_matches(("violation", "oracle"),
                                     ("violation", "cc_envelope"))

    def test_other_signatures_match_exactly(self):
        assert signature_matches(("error", "ValueError"),
                                 ("error", "ValueError"))
        assert not signature_matches(("error", "ValueError"),
                                     ("error", "KeyError"))
        assert not signature_matches(("silent-wrong",), None)
        assert signature_matches(None, None)


class TestShrink:
    def test_shrunk_bundle_is_1_minimal(self, failing_bundle):
        result = shrink_bundle(failing_bundle, max_evals=300,
                               max_seconds=60.0)
        assert result.complete
        assert result.shrunk_size <= result.original_size
        assert result.shrunk_size == len(result.kept)
        target = failure_signature(
            replay_bundle(failing_bundle, strict=False,
                          check_outcome=False).record
        )
        # The minimal bundle still fails the same way...
        still = failure_signature(
            replay_bundle(
                restrict_bundle(failing_bundle, result.kept),
                strict=False,
                check_outcome=False,
            ).record
        )
        assert signature_matches(target, still)
        # ...and removing any single surviving event loses the failure.
        for dropped in result.kept:
            probe = restrict_bundle(
                failing_bundle,
                [c for c in result.kept if c != dropped],
            )
            got = failure_signature(
                replay_bundle(probe, strict=False,
                              check_outcome=False).record
            )
            assert not signature_matches(target, got), (
                f"dropping {dropped} still fails: not 1-minimal"
            )

    def test_minimal_bundle_replays_strictly(self, failing_bundle):
        result = shrink_bundle(failing_bundle, max_evals=300,
                               max_seconds=60.0)
        outcome = replay_bundle(result.minimal)  # strict: raises on drift
        assert outcome.reproduced
        assert failure_signature(outcome.record) is not None

    def test_eval_budget_is_respected(self, failing_bundle):
        result = shrink_bundle(failing_bundle, max_evals=3,
                               rerecord=False)
        assert result.evaluations <= 3
        assert not result.complete

    def test_progress_log_receives_lines(self, failing_bundle):
        lines = []
        shrink_bundle(failing_bundle, max_evals=50, max_seconds=30.0,
                      log=lines.append, rerecord=False)
        assert any("shrink" in line for line in lines)

    def test_non_failing_bundle_is_rejected(self, tmp_path):
        topo = grid_graph(4, 4)
        rng = random.Random(0)
        inputs = make_inputs(topo, rng)
        record = safe_run_protocol(
            "tag", topo, inputs, seed=0, rng=rng, strict=False,
            capture_dir=str(tmp_path),
        )
        assert record.correct  # fault-free tag run succeeds
        # Hand-build a "bundle" of the clean run via the recorder path:
        # force a capture by marking it a failure is not possible, so
        # build one directly.
        from repro.adversary.schedule import FailureSchedule
        from repro.sim import RecordingInjector, make_execution_record

        recorder = RecordingInjector([])
        clean = safe_run_protocol(
            "tag", topo, inputs, seed=0, rng=random.Random(0),
            strict=False, injectors=[recorder],
        )
        bundle = make_execution_record(
            recorder, "tag", topo, inputs, FailureSchedule(), {},
            run_record=clean, seed=0,
        )
        with pytest.raises(ValueError, match="does not fail"):
            shrink_bundle(bundle, max_evals=10)

    def test_custom_predicate_drives_the_search(self, failing_bundle):
        calls = []

        def predicate(record):
            calls.append(record)
            return failure_signature(record) is not None

        result = shrink_bundle(failing_bundle, predicate=predicate,
                               max_evals=100, rerecord=False)
        assert calls
        assert result.shrunk_size <= result.original_size
