"""Distributed histograms via per-bucket COUNT."""

import random

import pytest

from repro.adversary import random_failures
from repro.extensions.histogram import (
    Bucket,
    distributed_histogram,
    equi_width_buckets,
    exact_histogram,
)
from repro.graphs import grid_graph


class TestBuckets:
    def test_half_open_membership(self):
        bucket = Bucket(0, 10)
        assert bucket.contains(0)
        assert bucket.contains(9)
        assert not bucket.contains(10)

    def test_last_bucket_is_closed(self):
        bucket = Bucket(10, 20)
        assert bucket.contains(20, last=True)
        assert not bucket.contains(20, last=False)

    def test_equi_width_cover_the_domain(self):
        buckets = equi_width_buckets(29, 3)
        assert buckets[0].lo == 0
        assert buckets[-1].hi >= 29
        # Every value lands in exactly one bucket.
        for value in range(30):
            hits = sum(
                b.contains(value, last=(i == len(buckets) - 1))
                for i, b in enumerate(buckets)
            )
            assert hits == 1, value

    def test_equi_width_validation(self):
        with pytest.raises(ValueError):
            equi_width_buckets(10, 0)
        with pytest.raises(ValueError):
            equi_width_buckets(-1, 3)

    def test_more_buckets_than_values(self):
        buckets = equi_width_buckets(2, 8)
        assert len(buckets) <= 8
        assert buckets[-1].hi >= 2


class TestDistributedHistogram:
    def test_matches_exact_failure_free(self):
        topo = grid_graph(4, 4)
        rng = random.Random(0)
        inputs = {u: rng.randint(0, 29) for u in topo.nodes()}
        buckets = equi_width_buckets(29, 3)
        out = distributed_histogram(
            topo, inputs, buckets, f=1, b=45, rng=random.Random(1)
        )
        assert out.counts == exact_histogram(inputs, buckets)
        assert out.total == topo.n_nodes

    def test_probe_per_bucket(self):
        topo = grid_graph(3, 3)
        inputs = {u: u for u in topo.nodes()}
        buckets = equi_width_buckets(8, 4)
        out = distributed_histogram(
            topo, inputs, buckets, f=1, b=45, rng=random.Random(2)
        )
        assert out.probes == len(buckets)

    def test_bruteforce_substrate(self):
        topo = grid_graph(3, 3)
        inputs = {u: u % 3 for u in topo.nodes()}
        buckets = [Bucket(0, 1), Bucket(1, 2), Bucket(2, 2)]
        out = distributed_histogram(
            topo, inputs, buckets, f=1, protocol="bruteforce"
        )
        assert out.counts == [3, 3, 3]

    def test_rows_rendering(self):
        topo = grid_graph(3, 3)
        inputs = {u: 0 for u in topo.nodes()}
        out = distributed_histogram(
            topo, inputs, [Bucket(0, 1)], f=1, protocol="bruteforce"
        )
        rows = out.as_rows()
        assert rows[0]["count"] == 9

    def test_rejects_empty_buckets(self):
        topo = grid_graph(3, 3)
        with pytest.raises(ValueError):
            distributed_histogram(
                topo, {u: 0 for u in topo.nodes()}, [], f=1, b=45
            )

    def test_under_failures_total_is_bracketed(self):
        topo = grid_graph(5, 5)
        rng = random.Random(3)
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        schedule = random_failures(topo, f=4, rng=rng, first_round=1, last_round=4000)
        buckets = equi_width_buckets(9, 2)
        out = distributed_histogram(
            topo, inputs, buckets, f=4, b=45, schedule=schedule,
            rng=random.Random(4),
        )
        survivors = topo.alive_component(schedule.failed_nodes)
        assert len(survivors) <= out.total <= topo.n_nodes
