"""API quality gates: exports resolve, everything public is documented.

A downstream user navigates through ``__all__`` and docstrings; these
tests fail the build if an export dangles or a public callable ships
without documentation.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.graphs",
    "repro.adversary",
    "repro.core",
    "repro.baselines",
    "repro.lowerbound",
    "repro.analysis",
    "repro.extensions",
]

MODULES = PACKAGES + [
    "repro.sim.message",
    "repro.sim.network",
    "repro.sim.flooding",
    "repro.sim.trace",
    "repro.sim.validation",
    "repro.graphs.topology",
    "repro.graphs.generators",
    "repro.graphs.properties",
    "repro.graphs.io",
    "repro.adversary.schedule",
    "repro.adversary.budget",
    "repro.adversary.adversaries",
    "repro.adversary.search",
    "repro.core.caaf",
    "repro.core.correctness",
    "repro.core.params",
    "repro.core.wire",
    "repro.core.agg",
    "repro.core.veri",
    "repro.core.algorithm1",
    "repro.core.unknown_f",
    "repro.core.fragments",
    "repro.core.codec",
    "repro.baselines.bruteforce",
    "repro.baselines.folklore",
    "repro.lowerbound.twoparty",
    "repro.lowerbound.unionsizecp",
    "repro.lowerbound.equalitycp",
    "repro.lowerbound.sperner",
    "repro.lowerbound.rectangles",
    "repro.lowerbound.bounds",
    "repro.lowerbound.cut_simulation",
    "repro.lowerbound.timing_encoding",
    "repro.analysis.runner",
    "repro.analysis.sweep",
    "repro.analysis.tables",
    "repro.analysis.figure1",
    "repro.analysis.fitting",
    "repro.analysis.statistics",
    "repro.analysis.asciiplot",
    "repro.analysis.cost_model",
    "repro.analysis.report",
    "repro.analysis.registry",
    "repro.extensions.quantiles",
    "repro.extensions.topk",
    "repro.extensions.monitoring",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), name


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} has no __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} dangles"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_are_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(symbol)
    assert not undocumented, f"{name}: undocumented exports {undocumented}"


def test_public_classes_have_documented_public_methods():
    import repro.core as core
    import repro.sim as sim

    targets = [sim.Network, sim.Tracer, core.ProtocolParams, core.CAAF]
    holes = []
    for cls in targets:
        for attr, member in vars(cls).items():
            if attr.startswith("_"):
                continue
            if (
                inspect.isfunction(member)
                and member.__name__ != "<lambda>"  # dataclass field defaults
                and not (member.__doc__ and member.__doc__.strip())
            ):
                holes.append(f"{cls.__name__}.{attr}")
    assert not holes, holes


def test_version_is_exposed():
    import repro

    assert repro.__version__.count(".") == 2
