"""Deterministic failure forensics: record -> replay -> divergence.

The headline loop: a chaos run that misbehaves is auto-captured as a repro
bundle, the bundle replays to the bit-identical outcome, and any tampering
with the bundle (or drift in the code path) raises
:class:`repro.sim.replay.ReplayDivergence` naming the first divergent
round.
"""

import copy
import glob
import json
import os

import pytest

from repro.analysis.runner import RunTimeout, make_inputs, safe_run_protocol
from repro.graphs import grid_graph
from repro.sim import (
    BUNDLE_FORMAT,
    BUNDLE_VERSION,
    ExecutionRecord,
    MessageFaults,
    RecordingInjector,
    ReplayDivergence,
    is_failure,
    replay_bundle,
)
from repro.sim.faults import FaultInjector
from repro.sim.monitors import standard_monitors

import random


def chaos_capture(tmp_path, seed=2, protocol="unknown_f", spec=None,
                  monitor_mode="record", **extra):
    """One seeded chaos run with auto-capture; returns (record, bundle)."""
    topo = grid_graph(4, 4)
    rng = random.Random(seed)
    inputs = make_inputs(topo, rng)
    faults = spec or MessageFaults(drop=0.08, duplicate=0.03, delay=0.05,
                                   seed=seed)
    kwargs = dict(extra)
    if monitor_mode == "record":
        kwargs["monitors"] = standard_monitors(topo, inputs, mode="record")
    elif monitor_mode == "strict":
        kwargs["strict_monitors"] = True
    record = safe_run_protocol(
        protocol,
        topo,
        inputs,
        seed=seed,
        rng=rng,
        strict=False,
        injectors=[faults],
        capture_dir=str(tmp_path),
        **kwargs,
    )
    path = record.extra.get("bundle")
    bundle = ExecutionRecord.load(path) if path else None
    return record, bundle


class TestCapture:
    def test_failing_chaos_run_is_auto_captured(self, tmp_path):
        record, bundle = chaos_capture(tmp_path)
        assert not record.correct
        assert bundle is not None
        assert bundle.protocol == "unknown_f"
        assert bundle.faulty_delivery
        assert bundle.transmits  # at least one drop/dup/delay fired
        assert bundle.expected["result"] == record.result
        assert bundle.expected["cc_bits"] == record.cc_bits

    def test_clean_run_is_not_captured(self, tmp_path):
        record, bundle = chaos_capture(tmp_path, seed=0)
        assert record.correct
        assert bundle is None
        assert not glob.glob(str(tmp_path / "*.json"))

    def test_strict_monitor_violation_is_captured_as_error_row(self, tmp_path):
        record, bundle = chaos_capture(tmp_path, monitor_mode="strict")
        assert record.failed
        assert record.error_kind == "InvariantViolation"
        assert bundle is not None
        assert bundle.monitor_mode == "strict"
        assert bundle.expected["error_kind"] == "InvariantViolation"

    def test_capture_filename_is_deterministic(self, tmp_path):
        chaos_capture(tmp_path)
        first = set(glob.glob(str(tmp_path / "*.json")))
        chaos_capture(tmp_path)
        assert set(glob.glob(str(tmp_path / "*.json"))) == first

    def test_timeout_rows_are_not_captured(self, tmp_path):
        class Stall(FaultInjector):
            def begin_round(self, rnd):
                import time

                time.sleep(0.05)

        topo = grid_graph(4, 4)
        rng = random.Random(0)
        inputs = make_inputs(topo, rng)
        record = safe_run_protocol(
            "tag",
            topo,
            inputs,
            seed=0,
            rng=rng,
            strict=False,
            timeout_s=0.1,
            injectors=[Stall()],
            capture_dir=str(tmp_path),
        )
        assert record.error_kind == "RunTimeout"
        assert "bundle" not in record.extra
        assert not glob.glob(str(tmp_path / "*.json"))


class TestBundleFormat:
    def test_json_roundtrip_is_identity(self, tmp_path):
        _, bundle = chaos_capture(tmp_path)
        again = ExecutionRecord.from_json(bundle.to_json())
        assert again == bundle
        assert again.content_hash() == bundle.content_hash()

    def test_header_is_validated(self, tmp_path):
        _, bundle = chaos_capture(tmp_path)
        data = bundle.to_jsonable()
        with pytest.raises(ValueError, match="not a repro-bundle"):
            ExecutionRecord.from_jsonable(dict(data, format="zip"))
        with pytest.raises(ValueError, match="version"):
            ExecutionRecord.from_jsonable(
                dict(data, version=BUNDLE_VERSION + 1)
            )
        with pytest.raises(ValueError, match="unknown fields"):
            ExecutionRecord.from_jsonable(dict(data, surprise=1))
        assert data["format"] == BUNDLE_FORMAT

    def test_bundle_is_plain_sorted_json_on_disk(self, tmp_path):
        record, bundle = chaos_capture(tmp_path)
        with open(record.extra["bundle"], encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == bundle.to_jsonable()


class TestReplay:
    def test_replay_reproduces_the_recording_exactly(self, tmp_path):
        record, bundle = chaos_capture(tmp_path)
        outcome = replay_bundle(record.extra["bundle"])
        assert outcome.reproduced
        assert outcome.record.result == record.result
        assert outcome.record.cc_bits == record.cc_bits
        assert outcome.record.rounds == record.rounds
        assert outcome.record.extra.get("violations") == record.extra.get(
            "violations"
        )

    def test_replay_reproduces_strict_monitor_abort(self, tmp_path):
        record, bundle = chaos_capture(tmp_path, monitor_mode="strict")
        outcome = replay_bundle(bundle)
        assert outcome.reproduced
        assert outcome.record.error_kind == "InvariantViolation"
        assert outcome.record.error == record.error

    def test_removed_fault_decision_raises_divergence_with_round(
        self, tmp_path
    ):
        _, bundle = chaos_capture(tmp_path)
        tampered = copy.deepcopy(bundle)
        del tampered.transmits[0]
        with pytest.raises(ReplayDivergence) as exc_info:
            replay_bundle(tampered)
        assert exc_info.value.round is not None
        assert exc_info.value.epoch == 0
        assert "round" in str(exc_info.value)

    def test_tampered_input_raises_divergence(self, tmp_path):
        _, bundle = chaos_capture(tmp_path)
        tampered = copy.deepcopy(bundle)
        node = next(iter(tampered.inputs))
        tampered.inputs[node] += 7
        with pytest.raises(ReplayDivergence):
            replay_bundle(tampered)

    def test_tampered_expected_outcome_raises_divergence(self, tmp_path):
        _, bundle = chaos_capture(tmp_path)
        tampered = copy.deepcopy(bundle)
        tampered.expected["result"] = (tampered.expected["result"] or 0) + 1
        with pytest.raises(ReplayDivergence, match="outcome mismatch"):
            replay_bundle(tampered)

    def test_best_effort_replay_reports_instead_of_raising(self, tmp_path):
        _, bundle = chaos_capture(tmp_path)
        tampered = copy.deepcopy(bundle)
        tampered.transmits = []
        outcome = replay_bundle(tampered, strict=False)
        assert isinstance(outcome.mismatches, list)  # no raise

    def test_replay_is_idempotent(self, tmp_path):
        record, _ = chaos_capture(tmp_path)
        first = replay_bundle(record.extra["bundle"])
        second = replay_bundle(record.extra["bundle"])
        assert first.record.result == second.record.result
        assert first.record.cc_bits == second.record.cc_bits


class TestAdaptiveReplay:
    def test_online_crashes_are_recorded_and_reapplied(self, tmp_path):
        from repro.adversary.adaptive import make_adaptive

        topo = grid_graph(4, 4)
        found = None
        for seed in range(12):
            rng = random.Random(seed)
            inputs = make_inputs(topo, rng)
            record = safe_run_protocol(
                "unknown_f",
                topo,
                inputs,
                seed=seed,
                rng=rng,
                strict=False,
                injectors=[
                    MessageFaults(drop=0.08, seed=seed),
                    make_adaptive("top-talker", topo, f=2, seed=seed),
                ],
                monitors=standard_monitors(topo, inputs, mode="record"),
                capture_dir=str(tmp_path),
            )
            if record.extra.get("bundle"):
                bundle = ExecutionRecord.load(record.extra["bundle"])
                if bundle.crashes:
                    found = (record, bundle)
                    break
        assert found, "no adaptive-crash failure found in 12 seeds"
        record, bundle = found
        outcome = replay_bundle(bundle)
        assert outcome.reproduced
        assert outcome.record.result == record.result

    def test_agg_veri_bundles_span_epochs(self, tmp_path):
        for seed in range(12):
            record, bundle = chaos_capture(
                tmp_path, seed=seed, protocol="agg_veri", t=2
            )
            if bundle is None:
                continue
            epochs = {t["e"] for t in bundle.transmits}
            if len(epochs) > 1:
                outcome = replay_bundle(bundle)
                assert outcome.reproduced
                return
        pytest.skip("no two-epoch agg_veri failure found in 12 seeds")


class TestRecordingInjector:
    def test_recorder_is_transparent(self):
        """A recorded run behaves exactly like the unrecorded one."""
        topo = grid_graph(4, 4)

        def run(injectors):
            rng = random.Random(3)
            return safe_run_protocol(
                "unknown_f",
                topo,
                make_inputs(topo, random.Random(3)),
                seed=3,
                rng=rng,
                strict=False,
                injectors=injectors,
            )

        plain = run([MessageFaults(drop=0.08, duplicate=0.03, seed=3)])
        recorded = run(
            [RecordingInjector([MessageFaults(drop=0.08, duplicate=0.03,
                                              seed=3)])]
        )
        assert recorded.result == plain.result
        assert recorded.cc_bits == plain.cc_bits
        assert recorded.rounds == plain.rounds

    def test_is_failure_matches_sweep_semantics(self):
        from repro.analysis.runner import RunRecord

        def row(**kw):
            base = dict(
                protocol="tag", topology="g", n_nodes=1, diameter=1,
                f_budget=None, f_actual=0, result=1, correct=True,
                cc_bits=0, rounds=1, flooding_rounds=1,
            )
            base.update(kw)
            return RunRecord(**base)

        assert not is_failure(row())
        assert is_failure(row(correct=False))
        assert is_failure(row(error="boom", error_kind="ValueError"))
        assert is_failure(row(extra={"violations": ["[oracle@r3] bad"]}))
