"""Periodic aggregation over a shared failure timeline."""

import random

import pytest

from repro.adversary import FailureSchedule, random_failures
from repro.core.caaf import MAX
from repro.extensions.monitoring import (
    constant_inputs,
    drifting_inputs,
    run_monitoring,
)
from repro.graphs import grid_graph


class TestBasics:
    def test_constant_inputs_failure_free(self, grid44):
        inputs = {u: 2 for u in grid44.nodes()}
        outcome = run_monitoring(
            grid44,
            constant_inputs(inputs),
            epochs=3,
            f=1,
            b=45,
            rng=random.Random(0),
        )
        assert outcome.results == [32, 32, 32]
        assert outcome.all_correct
        assert len(outcome.epochs) == 3

    def test_epoch_clocks_advance(self, grid44):
        outcome = run_monitoring(
            grid44,
            constant_inputs({u: 1 for u in grid44.nodes()}),
            epochs=2,
            f=1,
            b=45,
            rng=random.Random(1),
        )
        first, second = outcome.epochs
        assert second.start_round == first.rounds + 1
        assert outcome.total_rounds == first.rounds + second.rounds

    def test_drifting_inputs_change_results(self, grid44):
        base = {u: 10 for u in grid44.nodes()}
        fn = drifting_inputs(base, random.Random(2), jitter=3)
        outcome = run_monitoring(
            grid44, fn, epochs=3, f=1, b=45, rng=random.Random(3)
        )
        assert outcome.all_correct
        assert len(set(outcome.results)) > 1  # readings actually drift

    def test_bruteforce_substrate(self, grid44):
        outcome = run_monitoring(
            grid44,
            constant_inputs({u: 1 for u in grid44.nodes()}),
            epochs=2,
            f=2,
            protocol="bruteforce",
        )
        assert outcome.results == [16, 16]

    def test_max_caaf(self, grid44):
        inputs = {u: u for u in grid44.nodes()}
        outcome = run_monitoring(
            grid44,
            constant_inputs(inputs),
            epochs=2,
            f=1,
            b=45,
            caaf=MAX,
            rng=random.Random(4),
        )
        assert outcome.results == [15, 15]


class TestFailuresAcrossEpochs:
    def test_crashes_persist_between_epochs(self):
        topo = grid_graph(5, 5)
        inputs = {u: 1 for u in topo.nodes()}
        # One crash early in epoch 1; every later epoch sees it dead.
        schedule = FailureSchedule({24: 5})
        outcome = run_monitoring(
            topo,
            constant_inputs(inputs),
            epochs=3,
            f=4,
            b=45,
            schedule=schedule,
            rng=random.Random(5),
        )
        assert outcome.all_correct
        assert outcome.epochs[1].result == 24
        assert outcome.epochs[2].result == 24
        assert outcome.epochs[-1].survivors == 24

    @pytest.mark.parametrize("seed", range(4))
    def test_every_epoch_correct_under_random_failures(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        schedule = random_failures(
            topo, f=8, rng=rng, first_round=1, last_round=3 * 45 * topo.diameter
        )
        fn = drifting_inputs(
            {u: rng.randint(0, 9) for u in topo.nodes()}, rng
        )
        outcome = run_monitoring(
            topo,
            fn,
            epochs=3,
            f=8,
            b=45,
            schedule=schedule,
            rng=random.Random(seed + 50),
        )
        assert outcome.all_correct

    def test_survivor_count_monotonically_decreases(self):
        topo = grid_graph(5, 5)
        rng = random.Random(9)
        schedule = random_failures(
            topo, f=10, rng=rng, first_round=1, last_round=2000
        )
        outcome = run_monitoring(
            topo,
            constant_inputs({u: 1 for u in topo.nodes()}),
            epochs=4,
            f=10,
            b=45,
            schedule=schedule,
            rng=random.Random(10),
        )
        survivors = [e.survivors for e in outcome.epochs]
        assert survivors == sorted(survivors, reverse=True)


class TestValidation:
    def test_rejects_zero_epochs(self, grid44):
        with pytest.raises(ValueError):
            run_monitoring(
                grid44, constant_inputs({u: 1 for u in grid44.nodes()}),
                epochs=0, f=1, b=45,
            )

    def test_rejects_missing_budget(self, grid44):
        with pytest.raises(ValueError, match="budget"):
            run_monitoring(
                grid44, constant_inputs({u: 1 for u in grid44.nodes()}),
                epochs=1, f=1,
            )

    def test_rejects_unknown_protocol(self, grid44):
        with pytest.raises(ValueError, match="protocol"):
            run_monitoring(
                grid44, constant_inputs({u: 1 for u in grid44.nodes()}),
                epochs=1, f=1, b=45, protocol="gossip",
            )

    def test_rejects_over_budget_schedule(self, grid44):
        schedule = FailureSchedule({5: 1, 6: 1, 9: 1, 10: 1})
        with pytest.raises(ValueError, match="budget"):
            run_monitoring(
                grid44, constant_inputs({u: 1 for u in grid44.nodes()}),
                epochs=1, f=1, b=45, schedule=schedule,
            )
