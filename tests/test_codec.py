"""The concrete wire codec: round-trips, size achievability, and
decoder hardening (fuzz: garbage only ever raises ``CodecError``)."""

import random

import pytest

from repro.core import wire
from repro.core.codec import (
    CODEC_BAD_BITSTRING,
    CODEC_BAD_TAG,
    CODEC_BAD_VALUE,
    CODEC_TRAILING,
    CODEC_TRUNCATED,
    BitReader,
    BitWriter,
    CodecError,
    decode_part,
    encode_part,
    encoding_fits_declared_size,
)
from repro.core.params import ProtocolParams


def make_params(n=20, t=2, max_input=100):
    return ProtocolParams(
        n_nodes=n, root=0, diameter=4, c=2, t=t, max_input=max_input
    )


class TestBitPrimitives:
    def test_writer_reader_round_trip(self):
        w = BitWriter()
        w.write(5, 4)
        w.write(0, 3)
        w.write(127, 7)
        r = BitReader(w.as_string())
        assert r.read(4) == 5
        assert r.read(3) == 0
        assert r.read(7) == 127
        assert r.remaining == 0

    def test_writer_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitWriter().write(8, 3)

    def test_reader_rejects_exhaustion(self):
        r = BitReader("101")
        r.read(3)
        with pytest.raises(ValueError):
            r.read(1)


def sample_parts(p):
    return [
        (3, wire.tree_construct(p, 2, (1, 0))),
        (7, wire.ack(p, 3)),
        (4, wire.aggregation(p, 57, 3)),
        (9, wire.critical_failure(p, 12)),
        (2, wire.flooded_psum(p, 2, 99)),
        (5, wire.determination(p, wire.KEEP, 11)),
        (5, wire.determination(p, wire.DOMINATED, 11)),
        (1, wire.agg_abort(p)),
        (0, wire.detect_failed_parent(p)),
        (6, wire.failed_parent(p, 4, 3, 6)),
        (8, wire.detect_failed_child(p, 8)),
        (3, wire.failed_child(p, 14)),
        (2, wire.lfc_tail(p, 4)),
        (2, wire.not_lfc_tail(p, 4)),
        (1, wire.veri_overflow(p)),
    ]


class TestRoundTrips:
    def test_every_kind_round_trips(self):
        p = make_params()
        for sender, part in sample_parts(p):
            bits = encode_part(p, sender, part)
            got_sender, got_kind, got_payload = decode_part(p, bits)
            assert got_sender == sender
            assert got_kind == part.kind
            assert got_payload == part.payload, part.kind

    def test_tree_construct_with_padding(self):
        # A short ancestor chain pads with sentinels and decodes cleanly.
        p = make_params(t=3)
        part = wire.tree_construct(p, 1, (0,))
        _s, _k, payload = decode_part(p, encode_part(p, 5, part))
        assert payload == (1, (0,))

    def test_t_zero_tree_construct(self):
        p = make_params(t=0)
        part = wire.tree_construct(p, 0, ())
        _s, _k, payload = decode_part(p, encode_part(p, 0, part))
        assert payload == (0, ())

    def test_round_trip_across_system_sizes(self):
        for n in (2, 3, 16, 17, 1000):
            p = make_params(n=n, t=1, max_input=n)
            part = wire.flooded_psum(p, n - 1, n)
            _s, _k, payload = decode_part(p, encode_part(p, n - 1, part))
            assert payload == (n - 1, n)


class TestSizeAchievability:
    def test_every_encoding_fits_declared_bits(self):
        # The CC accounting is real: the concrete codec never needs more
        # bits than the simulator charges (modulo the documented padding
        # slack for power-of-two N).
        for n in (20, 16, 100, 64):
            p = make_params(n=n, t=3, max_input=50)
            for sender, part in sample_parts(p):
                assert encoding_fits_declared_size(p, sender, part), (
                    n,
                    part.kind,
                )

    def test_non_padded_kinds_fit_exactly(self):
        # For non-power-of-two N every kind fits with zero slack.
        p = make_params(n=20, t=2)
        for sender, part in sample_parts(p):
            encoded = encode_part(p, sender, part)
            assert len(encoded) <= part.bits, part.kind


# --------------------------------------------------------------------- #
# Decoder hardening: garbage in, structured CodecError out.
# --------------------------------------------------------------------- #


class TestDecoderFuzz:
    """Decoders must never crash with an unhandled exception (KeyError,
    IndexError, raw int() ValueError) and never silently accept garbage:
    every failure is a :class:`CodecError` carrying a ``reason`` from the
    documented taxonomy."""

    REASONS = {
        CODEC_BAD_TAG,
        CODEC_TRUNCATED,
        CODEC_BAD_BITSTRING,
        CODEC_TRAILING,
        CODEC_BAD_VALUE,
    }

    def _decode_or_error(self, p, bits, strict=True):
        try:
            return decode_part(p, bits, strict=strict), None
        except CodecError as exc:
            assert exc.reason in self.REASONS, exc.reason
            return None, exc
        # any other exception type propagates and fails the test

    def test_codec_error_is_a_value_error(self):
        # Pre-hardening callers caught ValueError; they keep working.
        assert issubclass(CodecError, ValueError)
        with pytest.raises(ValueError):
            decode_part(make_params(), "")

    def test_unknown_tag_is_bad_tag(self):
        p = make_params()
        # 31 = 0b11111 is not an assigned kind tag.
        with pytest.raises(CodecError) as exc:
            decode_part(p, "11111" + "0" * 40)
        assert exc.value.reason == CODEC_BAD_TAG

    def test_exhausted_bitstring_is_truncated(self):
        p = make_params()
        with pytest.raises(CodecError) as exc:
            decode_part(p, "00000")  # valid tag, then nothing
        assert exc.value.reason == CODEC_TRUNCATED

    def test_non_binary_characters_are_bad_bitstring(self):
        p = make_params()
        with pytest.raises(CodecError) as exc:
            decode_part(p, "0a0b0" + "0" * 40)
        assert exc.value.reason == CODEC_BAD_BITSTRING

    def test_out_of_range_sender_is_bad_value(self):
        p = make_params(n=20)
        good = encode_part(p, 3, wire.ack(p, 3))
        # Overwrite the sender field (bits 5..5+id_bits) with all-ones:
        # 31 >= 20 nodes.
        bad = good[:5] + "1" * p.id_bits + good[5 + p.id_bits :]
        with pytest.raises(CodecError) as exc:
            decode_part(p, bad)
        assert exc.value.reason == CODEC_BAD_VALUE

    def test_strict_rejects_trailing_bits(self):
        p = make_params()
        good = encode_part(p, 3, wire.ack(p, 3))
        ok, err = self._decode_or_error(p, good + "0", strict=True)
        assert ok is None and err.reason == CODEC_TRAILING
        # Non-strict tolerates padding (power-of-two-N slack).
        ok, err = self._decode_or_error(p, good + "0", strict=False)
        assert err is None

    def test_every_truncation_of_every_valid_encoding(self):
        p = make_params()
        for sender, part in sample_parts(p):
            encoded = encode_part(p, sender, part)
            for cut in range(len(encoded)):
                result, err = self._decode_or_error(p, encoded[:cut])
                # A strict decode of a prefix either fails structurally
                # or (rarely) parses to a shorter-but-complete part; it
                # must never crash.
                assert result is not None or err is not None

    def test_every_single_bitflip_of_every_valid_encoding(self):
        p = make_params()
        for sender, part in sample_parts(p):
            encoded = encode_part(p, sender, part)
            for i in range(len(encoded)):
                flipped = (
                    encoded[:i]
                    + ("1" if encoded[i] == "0" else "0")
                    + encoded[i + 1 :]
                )
                result, err = self._decode_or_error(p, flipped)
                if result is not None:
                    decoded_sender, kind, payload = result
                    # Accepted flips must still be well-typed parts.
                    assert isinstance(decoded_sender, int)
                    assert isinstance(kind, str) and isinstance(payload, tuple)

    def test_random_garbage_never_crashes(self):
        rng = random.Random(0xC0DEC)
        p = make_params()
        for _ in range(2000):
            bits = "".join(
                rng.choice("01") for _ in range(rng.randrange(0, 60))
            )
            self._decode_or_error(p, bits)

    def test_random_garbage_with_noise_characters(self):
        rng = random.Random(7)
        p = make_params()
        for _ in range(500):
            bits = "".join(
                rng.choice("01x2 ") for _ in range(rng.randrange(1, 40))
            )
            self._decode_or_error(p, bits)
