"""The concrete wire codec: round-trips and size achievability."""

import pytest

from repro.core import wire
from repro.core.codec import (
    BitReader,
    BitWriter,
    decode_part,
    encode_part,
    encoding_fits_declared_size,
)
from repro.core.params import ProtocolParams


def make_params(n=20, t=2, max_input=100):
    return ProtocolParams(
        n_nodes=n, root=0, diameter=4, c=2, t=t, max_input=max_input
    )


class TestBitPrimitives:
    def test_writer_reader_round_trip(self):
        w = BitWriter()
        w.write(5, 4)
        w.write(0, 3)
        w.write(127, 7)
        r = BitReader(w.as_string())
        assert r.read(4) == 5
        assert r.read(3) == 0
        assert r.read(7) == 127
        assert r.remaining == 0

    def test_writer_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitWriter().write(8, 3)

    def test_reader_rejects_exhaustion(self):
        r = BitReader("101")
        r.read(3)
        with pytest.raises(ValueError):
            r.read(1)


def sample_parts(p):
    return [
        (3, wire.tree_construct(p, 2, (1, 0))),
        (7, wire.ack(p, 3)),
        (4, wire.aggregation(p, 57, 3)),
        (9, wire.critical_failure(p, 12)),
        (2, wire.flooded_psum(p, 2, 99)),
        (5, wire.determination(p, wire.KEEP, 11)),
        (5, wire.determination(p, wire.DOMINATED, 11)),
        (1, wire.agg_abort(p)),
        (0, wire.detect_failed_parent(p)),
        (6, wire.failed_parent(p, 4, 3, 6)),
        (8, wire.detect_failed_child(p, 8)),
        (3, wire.failed_child(p, 14)),
        (2, wire.lfc_tail(p, 4)),
        (2, wire.not_lfc_tail(p, 4)),
        (1, wire.veri_overflow(p)),
    ]


class TestRoundTrips:
    def test_every_kind_round_trips(self):
        p = make_params()
        for sender, part in sample_parts(p):
            bits = encode_part(p, sender, part)
            got_sender, got_kind, got_payload = decode_part(p, bits)
            assert got_sender == sender
            assert got_kind == part.kind
            assert got_payload == part.payload, part.kind

    def test_tree_construct_with_padding(self):
        # A short ancestor chain pads with sentinels and decodes cleanly.
        p = make_params(t=3)
        part = wire.tree_construct(p, 1, (0,))
        _s, _k, payload = decode_part(p, encode_part(p, 5, part))
        assert payload == (1, (0,))

    def test_t_zero_tree_construct(self):
        p = make_params(t=0)
        part = wire.tree_construct(p, 0, ())
        _s, _k, payload = decode_part(p, encode_part(p, 0, part))
        assert payload == (0, ())

    def test_round_trip_across_system_sizes(self):
        for n in (2, 3, 16, 17, 1000):
            p = make_params(n=n, t=1, max_input=n)
            part = wire.flooded_psum(p, n - 1, n)
            _s, _k, payload = decode_part(p, encode_part(p, n - 1, part))
            assert payload == (n - 1, n)


class TestSizeAchievability:
    def test_every_encoding_fits_declared_bits(self):
        # The CC accounting is real: the concrete codec never needs more
        # bits than the simulator charges (modulo the documented padding
        # slack for power-of-two N).
        for n in (20, 16, 100, 64):
            p = make_params(n=n, t=3, max_input=50)
            for sender, part in sample_parts(p):
                assert encoding_fits_declared_size(p, sender, part), (
                    n,
                    part.kind,
                )

    def test_non_padded_kinds_fit_exactly(self):
        # For non-power-of-two N every kind fits with zero slack.
        p = make_params(n=20, t=2)
        for sender, part in sample_parts(p):
            encoded = encode_part(p, sender, part)
            assert len(encoded) <= part.bits, part.kind
