"""The regression-baseline tool: capture, compare, drift detection."""

import json
import os

import pytest

from repro.analysis.regression import (
    Drift,
    capture_baseline,
    compare_to_baseline,
    measure_metrics,
)


class TestMetrics:
    def test_suite_is_deterministic(self):
        assert measure_metrics() == measure_metrics()

    def test_all_metrics_positive(self):
        for name, value in measure_metrics().items():
            assert value > 0, name


class TestBaselineFlow:
    def test_capture_writes_json(self, tmp_path):
        path = os.path.join(tmp_path, "baseline.json")
        metrics = capture_baseline(path)
        with open(path) as fh:
            assert json.load(fh) == metrics

    def test_fresh_baseline_has_no_drift(self, tmp_path):
        path = os.path.join(tmp_path, "baseline.json")
        capture_baseline(path)
        assert compare_to_baseline(path) == []

    def test_tampered_baseline_is_flagged(self, tmp_path):
        path = os.path.join(tmp_path, "baseline.json")
        metrics = capture_baseline(path)
        metrics["agg_cc_failure_free"] *= 2  # pretend costs halved since
        with open(path, "w") as fh:
            json.dump(metrics, fh)
        drifts = compare_to_baseline(path)
        assert [d.metric for d in drifts] == ["agg_cc_failure_free"]
        assert drifts[0].ratio == pytest.approx(0.5)

    def test_missing_metric_forces_refresh(self, tmp_path):
        path = os.path.join(tmp_path, "baseline.json")
        metrics = capture_baseline(path)
        del metrics["pair_veri_cc"]
        with open(path, "w") as fh:
            json.dump(metrics, fh)
        drifts = compare_to_baseline(path)
        assert any(d.metric == "pair_veri_cc" for d in drifts)

    def test_tolerance_band(self):
        assert Drift("m", 100.0, 104.0).within(0.05)
        assert not Drift("m", 100.0, 106.0).within(0.05)
        assert Drift("m", 100.0, 96.0).within(0.05)
        assert not Drift("m", 100.0, 94.0).within(0.05)
