"""The one-shot Markdown experiment report."""

import pytest

from repro.analysis.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    # Smallest meaningful configuration; shared across assertions.
    return generate_report(side=4, f=3, seeds=2, rng_seed=1)


class TestReport:
    def test_contains_every_section(self, report_text):
        for marker in (
            "# Reproduction report",
            "E1 — Figure 1 curves",
            "E4 — Algorithm 1 CC vs b",
            "E5 — baselines",
            "E9 — CAAF generality",
            "E6/E7 — two-party + Sperner",
            "E11 — selection via COUNT",
        ):
            assert marker in report_text

    def test_mentions_topology_parameters(self, report_text):
        assert "grid(4x4)" in report_text
        assert "N=16" in report_text

    def test_tables_are_fenced(self, report_text):
        assert report_text.count("```") % 2 == 0
        assert report_text.count("```") >= 12

    def test_correctness_columns_are_perfect(self, report_text):
        # Fault-tolerant protocols in the report must be 100% correct
        # (TAG may legitimately fail; its row says "correct rate").
        for line in report_text.splitlines():
            if line.startswith("algorithm1") or line.startswith("bruteforce"):
                assert "1.00" in line or "True" in line

    def test_cli_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--side",
                "4",
                "-f",
                "2",
                "--seeds",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()
