"""Crash-safe runner and JSONL checkpoint/resume.

The headline property: a sweep killed partway through and resumed from
its checkpoint produces the *identical* record set as one uninterrupted
run — no lost rows, no duplicates, no drifted values.
"""

import json
import os
import time

import pytest

from repro.adversary.schedule import FailureSchedule
from repro.analysis.checkpoint import (
    SweepCheckpoint,
    make_key,
    record_from_jsonable,
    record_to_jsonable,
)
from repro.analysis.runner import (
    RunRecord,
    RunTimeout,
    error_record,
    make_inputs,
    safe_run_protocol,
    wall_clock_limit,
)
from repro.analysis.sweep import run_point, random_schedule_factory
from repro.graphs import grid_graph, path_graph
from repro.sim.faults import FaultInjector


class TestWallClockLimit:
    def test_interrupts_a_hung_block(self):
        with pytest.raises(RunTimeout):
            with wall_clock_limit(0.05):
                time.sleep(2)

    def test_noop_without_limit(self):
        with wall_clock_limit(None):
            pass

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            with wall_clock_limit(0):
                pass

    def test_timer_cleared_after_exit(self):
        with wall_clock_limit(0.05):
            pass
        time.sleep(0.08)  # would fire now if the timer leaked


class SlowInjector(FaultInjector):
    """Stalls every round, to trip per-run timeouts deterministically."""

    def begin_round(self, rnd):
        time.sleep(0.02)


class FlakyInjector(FaultInjector):
    """Raises for the first ``failures`` attach calls, then behaves."""

    def __init__(self, failures=1):
        super().__init__()
        self.remaining = failures

    def begin_round(self, rnd):
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("transient fault-injection hiccup")


class TestSafeRunProtocol:
    def _args(self, seed=0):
        topo = grid_graph(3, 3)
        import random

        rng = random.Random(seed)
        return topo, make_inputs(topo, rng)

    def test_clean_run_matches_run_protocol_semantics(self):
        topo, inputs = self._args()
        record = safe_run_protocol("bruteforce", topo, inputs, seed=7)
        assert not record.failed
        assert record.correct
        assert record.attempts == 1
        assert record.seed == 7

    def test_exception_becomes_error_row(self):
        topo, inputs = self._args()
        record = safe_run_protocol("no_such_protocol", topo, inputs, seed=3)
        assert record.failed
        assert record.error_kind == "ValueError"
        assert "unknown protocol" in record.error
        assert record.correct is False
        assert record.result is None
        assert record.seed == 3

    def test_timeout_becomes_error_row(self):
        topo, inputs = self._args()
        record = safe_run_protocol(
            "bruteforce",
            topo,
            inputs,
            timeout_s=0.05,
            injectors=[SlowInjector()],
        )
        assert record.failed
        assert record.error_kind == "RunTimeout"

    def test_retry_recovers_from_transient_failure(self):
        topo, inputs = self._args()
        record = safe_run_protocol(
            "bruteforce",
            topo,
            inputs,
            retries=2,
            seed=5,
            injectors=[FlakyInjector(failures=1)],
        )
        assert not record.failed
        assert record.attempts == 2

    def test_retries_exhausted_reports_attempts(self):
        topo, inputs = self._args()
        record = safe_run_protocol(
            "bruteforce",
            topo,
            inputs,
            retries=2,
            injectors=[FlakyInjector(failures=10)],
        )
        assert record.failed
        assert record.attempts == 3

    def test_negative_retries_rejected(self):
        topo, inputs = self._args()
        with pytest.raises(ValueError, match="retries"):
            safe_run_protocol("bruteforce", topo, inputs, retries=-1)

    def test_keyboard_interrupt_propagates(self):
        class Interrupter(FaultInjector):
            def begin_round(self, rnd):
                raise KeyboardInterrupt

        topo, inputs = self._args()
        with pytest.raises(KeyboardInterrupt):
            safe_run_protocol(
                "bruteforce", topo, inputs, injectors=[Interrupter()]
            )


class TestErrorRecordShape:
    def test_as_dict_hides_bookkeeping_on_clean_rows(self):
        topo, = (grid_graph(3, 3),)
        record = RunRecord(
            protocol="x",
            topology=topo.name,
            n_nodes=9,
            diameter=4,
            f_budget=None,
            f_actual=0,
            result=5,
            correct=True,
            cc_bits=10,
            rounds=4,
            flooding_rounds=1,
        )
        row = record.as_dict()
        assert "error" not in row and "error_kind" not in row
        assert "attempts" not in row and "seed" not in row

    def test_error_rows_expose_diagnostics(self):
        topo = grid_graph(3, 3)
        record = error_record(
            "algorithm1",
            topo,
            ValueError("boom"),
            schedule=FailureSchedule({3: 2}),
            f=4,
            attempts=2,
            seed=9,
        )
        row = record.as_dict()
        assert row["error"] == "boom"
        assert row["error_kind"] == "ValueError"
        assert row["attempts"] == 2
        assert row["seed"] == 9
        assert record.failed


class TestCheckpointStore:
    def _record(self, seed=0, extra=None):
        return RunRecord(
            protocol="bruteforce",
            topology="grid(3x3)",
            n_nodes=9,
            diameter=4,
            f_budget=2,
            f_actual=1,
            result=12,
            correct=True,
            cc_bits=40,
            rounds=8,
            flooding_rounds=2,
            extra=extra or {"winning_interval": (3, 5)},
            seed=seed,
        )

    def test_record_roundtrip_canonicalizes_tuples(self):
        record = self._record()
        back = record_from_jsonable(
            json.loads(json.dumps(record_to_jsonable(record)))
        )
        assert back.result == record.result
        assert back.extra["winning_interval"] == [3, 5]
        assert record_to_jsonable(back) == record_to_jsonable(record)

    def test_make_key_is_stable_and_distinct(self):
        a = make_key("algorithm1", "grid(4x4)", 1, {"b": 42, "f": 3})
        b = make_key("algorithm1", "grid(4x4)", 1, {"f": 3, "b": 42})
        assert a == b  # key order canonicalized
        assert a != make_key("algorithm1", "grid(4x4)", 2, {"b": 42, "f": 3})

    def test_put_get_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        key = make_key("bruteforce", "grid(3x3)", 0)
        with SweepCheckpoint(path) as ckpt:
            assert ckpt.get(key) is None
            ckpt.put(key, self._record())
            assert key in ckpt
        reopened = SweepCheckpoint(path)
        assert len(reopened) == 1
        assert reopened.get(key).result == 12

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint(path) as ckpt:
            ckpt.put(make_key("bruteforce", "g", 0), self._record(seed=0))
            ckpt.put(make_key("bruteforce", "g", 1), self._record(seed=1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn", "record": {"proto')  # crash mid-write
        recovered = SweepCheckpoint(path)
        assert len(recovered) == 2  # both intact rows, torn line dropped
        assert recovered.skipped_lines == []  # torn final line is expected

    def test_corrupt_midfile_lines_warn_with_line_numbers(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint(path) as ckpt:
            for seed in range(3):
                ckpt.put(make_key("bruteforce", "g", seed),
                         self._record(seed=seed))
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # corrupt the middle line
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")  # note: intact trailing \n
        with pytest.warns(UserWarning, match=r"line 2"):
            recovered = SweepCheckpoint(path)
        assert recovered.skipped_lines == [2]
        assert len(recovered) == 2  # the two intact rows survive

    def test_corrupt_final_line_with_newline_is_not_torn(self, tmp_path):
        """A complete-but-invalid last line is corruption, not a crash."""
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint(path) as ckpt:
            ckpt.put(make_key("bruteforce", "g", 0), self._record(seed=0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")  # newline: a finished write
        with pytest.warns(UserWarning, match="1 corrupt"):
            recovered = SweepCheckpoint(path)
        assert recovered.skipped_lines == [2]

    def test_strict_mode_raises_on_corruption(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint(path) as ckpt:
            ckpt.put(make_key("bruteforce", "g", 0), self._record(seed=0))
            ckpt.put(make_key("bruteforce", "g", 1), self._record(seed=1))
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[0] = "garbage"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"line 1"):
            SweepCheckpoint(path, strict=True)
        # Non-strict still loads the survivors.
        with pytest.warns(UserWarning):
            assert len(SweepCheckpoint(path)) == 1

    def test_strict_mode_still_tolerates_torn_final_line(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint(path) as ckpt:
            ckpt.put(make_key("bruteforce", "g", 0), self._record(seed=0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn"')  # crash mid-write: no newline
        recovered = SweepCheckpoint(path, strict=True)  # no raise
        assert len(recovered) == 1


class TestCheckpointCrashRecovery:
    """End-to-end: die mid-write, reload, re-run only what was lost."""

    def test_truncated_checkpoint_resumes_only_lost_seeds(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        topo = path_graph(4)
        seeds = [0, 1, 2, 3]

        baseline = run_point(
            "bruteforce", topo, seeds,
            checkpoint=SweepCheckpoint(path),
        )
        # Simulate a crash mid-write of the final record: chop the file at
        # an arbitrary byte inside the last line.
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 37)

        recovered = SweepCheckpoint(path)
        survivors = {rec.seed for _key, rec in recovered.records()}
        assert survivors == {0, 1, 2}  # the torn seed-3 row is gone
        assert recovered.skipped_lines == []  # ...and not "corruption"

        executed = []
        original_put = recovered.put

        def tracking_put(key, record):
            executed.append(record.seed)
            original_put(key, record)

        recovered.put = tracking_put
        resumed = run_point("bruteforce", topo, seeds, checkpoint=recovered)
        recovered.close()
        assert executed == [3]  # only the lost run re-executed
        assert [record_to_jsonable(r) for r in resumed.records] == [
            record_to_jsonable(r) for r in baseline.records
        ]


class InterruptAfter:
    """Schedule factory wrapper that dies after ``n`` invocations."""

    def __init__(self, factory, n):
        self.factory = factory
        self.n = n
        self.calls = 0

    def __call__(self, topology, rng):
        self.calls += 1
        if self.calls > self.n:
            raise KeyboardInterrupt
        return self.factory(topology, rng)


class TestKillAndResumeIdentity:
    PROTOCOL = "bruteforce"
    SEEDS = list(range(6))

    def _sweep(self, checkpoint=None, schedule_factory=None):
        topo = grid_graph(3, 3)
        factory = schedule_factory or random_schedule_factory(2, horizon=10)
        return run_point(
            self.PROTOCOL,
            topo,
            self.SEEDS,
            schedule_factory=factory,
            f=2,
            coords={"f": 2},
            checkpoint=checkpoint,
        )

    def test_resumed_sweep_equals_uninterrupted(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        baseline = self._sweep()

        # Arm 2: same sweep, killed after 3 runs...
        interrupting = InterruptAfter(random_schedule_factory(2, horizon=10), 3)
        ckpt = SweepCheckpoint(path)
        with pytest.raises(KeyboardInterrupt):
            self._sweep(checkpoint=ckpt, schedule_factory=interrupting)
        ckpt.close()
        assert 0 < len(SweepCheckpoint(path)) < len(self.SEEDS)

        # ...then resumed: completed seeds load, missing seeds execute.
        with SweepCheckpoint(path) as resumed_ckpt:
            resumed = self._sweep(checkpoint=resumed_ckpt)

        def canon(records):
            return [record_to_jsonable(r) for r in records]

        assert canon(resumed.records) == canon(baseline.records)
        assert resumed.as_dict() == baseline.as_dict()

    def test_second_resume_is_pure_replay(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepCheckpoint(path) as ckpt:
            first = self._sweep(checkpoint=ckpt)
        size_after = os.path.getsize(path)
        with SweepCheckpoint(path) as ckpt:
            replay = self._sweep(checkpoint=ckpt)
        assert os.path.getsize(path) == size_after  # nothing re-executed
        assert [record_to_jsonable(r) for r in replay.records] == [
            record_to_jsonable(r) for r in first.records
        ]


class TestSweepErrorRows:
    def test_failed_runs_become_rows_not_crashes(self):
        class AlwaysBoom(FaultInjector):
            def begin_round(self, rnd):
                raise RuntimeError("boom")

        topo = path_graph(4)
        point = run_point(
            "bruteforce",
            topo,
            seeds=[0, 1],
            injector_factory=lambda seed: [AlwaysBoom()],
        )
        assert point.runs == 2
        assert point.errors == 2
        assert point.correct_rate == 0.0
        assert all(r.error_kind == "RuntimeError" for r in point.records)

    def test_error_count_surfaces_in_as_dict(self):
        topo = path_graph(4)
        point = run_point("bruteforce", topo, seeds=[0, 1])
        assert "errors" not in point.as_dict()  # clean sweeps look as before
