"""Summary statistics used by the benchmark harness."""

import random

import pytest

from repro.analysis.statistics import (
    Summary,
    bootstrap_ci,
    geometric_mean,
    significantly_less,
    summarize,
)


class TestSummarize:
    def test_single_sample(self):
        s = summarize([7.0])
        assert s.n == 1
        assert s.mean == 7.0
        assert s.stderr == 0.0
        assert s.ci_low == s.ci_high == 7.0

    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci_low < 2.0 < s.ci_high

    def test_ci_shrinks_with_more_samples(self):
        rng = random.Random(0)
        small = summarize([rng.gauss(10, 2) for _ in range(5)])
        big = summarize([random.Random(1).gauss(10, 2) for _ in range(100)])
        assert (big.ci_high - big.ci_low) < (small.ci_high - small.ci_low)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_rendering(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestOverlap:
    def test_disjoint_intervals(self):
        a = Summary(10, 1.0, 0.1, 0.03, 0.94, 1.06)
        b = Summary(10, 2.0, 0.1, 0.03, 1.94, 2.06)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_overlapping_intervals(self):
        a = Summary(10, 1.0, 1.0, 0.3, 0.4, 1.6)
        b = Summary(10, 1.5, 1.0, 0.3, 0.9, 2.1)
        assert a.overlaps(b)


class TestBootstrap:
    def test_contains_sample_mean(self):
        rng = random.Random(2)
        samples = [rng.gauss(50, 5) for _ in range(40)]
        lo, hi = bootstrap_ci(samples, rng=random.Random(3))
        sample_mean = sum(samples) / len(samples)
        assert lo <= sample_mean <= hi
        # And the interval is reasonably tight: within a couple of stderrs.
        assert hi - lo < 5

    def test_deterministic_given_rng(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_ci(samples, rng=random.Random(7))
        b = bootstrap_ci(samples, rng=random.Random(7))
        assert a == b

    def test_degenerate_constant_samples(self):
        lo, hi = bootstrap_ci([5.0] * 10, rng=random.Random(0))
        assert lo == hi == 5.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)


class TestComparisons:
    def test_clearly_separated_samples(self):
        a = [10.0, 11.0, 9.0, 10.5] * 4
        b = [100.0, 98.0, 103.0, 99.0] * 4
        assert significantly_less(a, b)
        assert not significantly_less(b, a)

    def test_noisy_overlap_is_not_significant(self):
        rng = random.Random(5)
        a = [rng.gauss(10, 5) for _ in range(5)]
        b = [x + 0.5 for x in a]
        assert not significantly_less(a, b)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_validates(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestStrictRunner:
    def test_strict_run_rejects_bad_config(self):
        from repro.adversary import FailureSchedule
        from repro.analysis import run_protocol
        from repro.graphs import grid_graph

        topo = grid_graph(4, 4)
        schedule = FailureSchedule({0: 1})
        with pytest.raises(ValueError, match="root-safe"):
            run_protocol(
                "bruteforce",
                topo,
                {u: 1 for u in topo.nodes()},
                schedule=schedule,
                strict=True,
            )

    def test_strict_run_accepts_clean_config(self):
        from repro.analysis import run_protocol
        from repro.graphs import grid_graph

        topo = grid_graph(4, 4)
        rec = run_protocol(
            "bruteforce", topo, {u: 1 for u in topo.nodes()}, strict=True
        )
        assert rec.correct
