"""Sperner capacity machinery: Theorem 9 and Lemma 11."""

import numpy as np
import pytest

from repro.lowerbound.sperner import (
    confusable,
    lemma11_bound,
    max_sperner_family_size,
    rank_is_q_minus_1,
    sperner_matrix,
    sperner_rank,
    theorem9_bound,
)


class TestMatrix:
    def test_shape_and_diagonal(self):
        m = sperner_matrix(5)
        assert m.shape == (5, 5)
        assert np.all(np.diag(m) == 1)

    def test_zero_pattern(self):
        # M[i][j] = 0 whenever (j - i) mod q in {2, .., q-1}.
        q = 6
        m = sperner_matrix(q)
        for i in range(q):
            for j in range(q):
                if (j - i) % q in range(2, q):
                    assert m[i][j] == 0

    def test_superdiagonal_and_corner_free_entries(self):
        q = 4
        m = sperner_matrix(q, free_value=-1)
        for i in range(q):
            assert m[i][(i + 1) % q] == -1

    def test_rows_sum_to_zero_with_minus_one(self):
        m = sperner_matrix(7)
        assert np.all(m.sum(axis=0) == 0)

    def test_rejects_tiny_q(self):
        with pytest.raises(ValueError):
            sperner_matrix(1)


class TestRank:
    @pytest.mark.parametrize("q", [2, 3, 4, 5, 8, 16, 32, 64, 128])
    def test_rank_is_q_minus_1_numerically(self, q):
        assert sperner_rank(q) == q - 1

    @pytest.mark.parametrize("q", [2, 3, 4, 5, 8, 16, 32])
    def test_rank_is_q_minus_1_exactly(self, q):
        assert rank_is_q_minus_1(q)

    def test_other_free_values_can_have_full_rank(self):
        # The choice -1 matters: +1 on the free entries gives full rank for
        # odd q, so the Lemma 11 bound would be vacuous.
        assert sperner_rank(5, free_value=1.0) == 5


class TestConfusability:
    def test_equal_strings_not_confusable_pair(self):
        assert not confusable((0, 1), (0, 1), q=3)

    def test_cycle_successor_is_confusable(self):
        # W = V + 1 (mod q) at every coordinate: condition (i) fails.
        assert confusable((0, 0), (1, 1), q=3)

    def test_antipodal_strings_not_confusable(self):
        # V and W differ by 2 (mod 4) everywhere: both conditions hold.
        assert not confusable((0, 0), (2, 2), q=4)

    def test_asymmetric_case(self):
        # One direction satisfied, the other not -> still confusable.
        v, w = (0,), (1,)
        assert confusable(v, w, q=3)


class TestTheorem9Exhaustive:
    @pytest.mark.parametrize(
        "n,q",
        [(1, 2), (1, 3), (2, 3), (3, 3), (1, 4), (2, 4), (1, 5)],
    )
    def test_family_size_within_bound(self, n, q):
        assert max_sperner_family_size(n, q) <= theorem9_bound(n, q)

    def test_cyclic_triangle_capacity_single_letter(self):
        # For q = 3, n = 1 the max family is a single string (any two
        # distinct letters of Z_3 are cycle-related in one direction).
        assert max_sperner_family_size(1, 3) == 1

    def test_family_grows_with_n(self):
        assert max_sperner_family_size(2, 3) > max_sperner_family_size(1, 3)


class TestLemma11Bound:
    def test_matches_closed_form(self):
        import math

        assert lemma11_bound(10, 3) == pytest.approx(10 * math.log2(1.5))

    def test_at_least_n_over_q_minus_1_nats(self):
        # n log2(1 + 1/(q-1)) >= n/(q-1) * log2(e) * ln(...)  — the paper's
        # weaker n/(q-1) statement holds in bits for q >= 2:
        import math

        for n in (10, 100):
            for q in (2, 3, 9):
                assert lemma11_bound(n, q) >= n / (q - 1) * math.log2(math.e) / 2

    def test_decreasing_in_q(self):
        assert lemma11_bound(50, 2) > lemma11_bound(50, 4) > lemma11_bound(50, 16)

    def test_rejects_q_below_2(self):
        with pytest.raises(ValueError):
            lemma11_bound(5, 1)
