"""The unknown-f doubling protocol: correctness and early termination."""

import random

import pytest

from repro.adversary import FailureSchedule, random_failures
from repro.core.caaf import SUM
from repro.core.correctness import is_correct_result
from repro.core.unknown_f import DoublingPlan, run_unknown_f
from repro.core.params import params_for
from repro.graphs import grid_graph, path_graph
from tests.conftest import indexed_inputs, unit_inputs


class TestPlan:
    def test_guess_sequence_doubles(self, grid44):
        plan = DoublingPlan(params=params_for(grid44))
        assert [plan.guess_for(k) for k in range(4)] == [1, 2, 4, 8]

    def test_max_guesses_reach_n(self, grid44):
        plan = DoublingPlan(params=params_for(grid44))
        assert plan.guess_for(plan.max_guesses - 1) >= grid44.n_nodes

    def test_bruteforce_after_all_guesses(self, grid44):
        plan = DoublingPlan(params=params_for(grid44))
        assert plan.bruteforce_start == plan.max_guesses * plan.interval_rounds + 1
        assert plan.total_rounds == plan.bruteforce_start - 1 + 2 * plan.params.cd


class TestRuns:
    def test_failure_free_accepts_first_guess(self, grid44):
        inputs = indexed_inputs(grid44)
        out = run_unknown_f(grid44, inputs)
        assert out.result == sum(inputs.values())
        assert out.accepted_guess == 1
        assert out.pairs_run == 1
        assert not out.used_bruteforce

    @pytest.mark.parametrize("seed", range(8))
    def test_always_correct_under_failures(self, seed):
        topo = grid_graph(5, 5)
        rng = random.Random(seed)
        schedule = random_failures(
            topo, f=10, rng=rng, first_round=1, last_round=600
        )
        inputs = {u: rng.randint(0, 9) for u in topo.nodes()}
        out = run_unknown_f(topo, inputs, schedule=schedule)
        assert is_correct_result(out.result, SUM, topo, inputs, schedule, out.rounds)

    def test_early_termination_cost_tracks_actual_failures(self):
        # The paper's early-termination property: CC grows with the failures
        # that actually occur, not with any declared bound.
        topo = grid_graph(6, 6)
        quiet = run_unknown_f(topo, unit_inputs(topo))
        rng = random.Random(1)
        noisy_schedule = random_failures(
            topo, f=16, rng=rng, first_round=1, last_round=300
        )
        noisy = run_unknown_f(topo, unit_inputs(topo), schedule=noisy_schedule)
        assert quiet.stats.max_bits < noisy.stats.max_bits
        assert quiet.rounds <= noisy.rounds

    def test_accepted_guess_scales_with_failures(self):
        topo = grid_graph(6, 6)
        rng = random.Random(2)
        schedule = random_failures(
            topo, f=12, rng=rng, first_round=1, last_round=200
        )
        out = run_unknown_f(topo, unit_inputs(topo), schedule=schedule)
        if out.accepted_guess is not None:
            # Guesses double, so the accepted guess never overshoots the
            # actual failure count by more than 2x (plus the t=1 floor).
            actual = schedule.edge_failures(topo)
            assert out.accepted_guess <= max(2, 2 * actual)

    def test_no_declared_f_needed(self, path8):
        # The point of the extension: the call site carries no f parameter.
        inputs = unit_inputs(path8)
        out = run_unknown_f(path8, inputs)
        assert out.result == len(inputs)
