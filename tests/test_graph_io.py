"""Topology serialization round-trips and exports."""

import os

import pytest

from repro.graphs import grid_graph, io, random_geometric, star_graph


class TestEdgeList:
    def test_round_trip(self):
        topo = grid_graph(3, 4)
        text = io.to_edge_list(topo)
        back = io.from_edge_list(text)
        assert back.adjacency == topo.adjacency
        assert back.root == topo.root
        assert back.name == topo.name

    def test_header_optional(self):
        topo = io.from_edge_list("0 1\n1 2\n")
        assert topo.n_nodes == 3
        assert topo.root == 0

    def test_duplicate_edges_collapse(self):
        topo = io.from_edge_list("0 1\n1 0\n0 1\n")
        assert topo.n_edges == 1

    def test_explicit_root_override(self):
        topo = io.from_edge_list("0 1\n1 2\n", root=2)
        assert topo.root == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            io.from_edge_list("# nothing\n")


class TestJson:
    def test_round_trip(self):
        topo = star_graph(7)
        back = io.from_json(io.to_json(topo))
        assert back.adjacency == topo.adjacency
        assert back.name == topo.name
        assert back.root == topo.root

    def test_json_is_stable(self):
        topo = grid_graph(2, 3)
        assert io.to_json(topo) == io.to_json(topo)


class TestDot:
    def test_dot_structure(self):
        topo = star_graph(4)
        dot = io.to_dot(topo)
        assert dot.startswith('graph "star(4)" {')
        assert "0 [shape=doublecircle];" in dot
        assert "0 -- 1;" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_highlights_failed_nodes(self):
        topo = star_graph(4)
        dot = io.to_dot(topo, highlight={2})
        assert "2 [color=red" in dot


class TestFiles:
    def test_save_load_json(self, tmp_path):
        topo = random_geometric(20)
        path = os.path.join(tmp_path, "t.json")
        io.save(topo, path)
        assert io.load(path).adjacency == topo.adjacency

    def test_save_load_edge_list(self, tmp_path):
        topo = grid_graph(3, 3)
        path = os.path.join(tmp_path, "t.edges")
        io.save(topo, path)
        assert io.load(path).adjacency == topo.adjacency

    def test_save_dot(self, tmp_path):
        topo = grid_graph(2, 2)
        path = os.path.join(tmp_path, "t.dot")
        io.save(topo, path)
        with open(path) as fh:
            assert "graph" in fh.read()
