"""Round-exact conformance of AGG/VERI to the pseudo-code timing.

These tests pin the wave schedules that the paper's correctness arguments
depend on (and that ordinary unit tests cannot see): who broadcasts which
message kind in exactly which round.  They use the tracer, so any future
refactoring that silently shifts a phase or a slot breaks here first.
"""

import pytest

from repro.adversary import FailureSchedule
from repro.core.agg import AggNode
from repro.core.params import params_for
from repro.core.veri import VeriNode
from repro.graphs import grid_graph, path_graph
from repro.sim import Network, Tracer


def traced_agg(topo, t=2, schedule=None, inputs=None):
    params = params_for(topo, t=t)
    schedule = schedule or FailureSchedule()
    inputs = inputs or {u: 1 for u in topo.nodes()}
    nodes = {u: AggNode(params, u, inputs[u]) for u in topo.nodes()}
    tracer = Tracer()
    net = Network(topo.adjacency, nodes, schedule.crash_rounds, tracer=tracer)
    net.run(params.agg_rounds, stop_on_output=False)
    return params, nodes, tracer


def first_sends_per_content(tracer, kind):
    """content payload -> (round, node) of the network-wide first send."""
    first = {}
    for event in sorted(tracer.sends, key=lambda e: e.round):
        for part in event.parts:
            if part.kind == kind and part.payload not in first:
                first[part.payload] = (event.round, event.node)
    return first


class TestAggConstructionTiming:
    def test_root_beacons_in_round_one(self):
        _p, _n, tracer = traced_agg(grid_graph(4, 4))
        first = tracer.first_send_of_kind("tree_construct")
        assert (first.round, first.node) == (1, 0)

    def test_level_l_beacons_in_round_2l_plus_1(self):
        topo = grid_graph(4, 4)
        _p, nodes, tracer = traced_agg(topo)
        beacons = first_sends_per_content(tracer, "tree_construct")
        # tree_construct payload is (level, ancestors); map via sender.
        by_node = {}
        for event in tracer.sends:
            for part in event.parts:
                if part.kind == "tree_construct":
                    by_node.setdefault(event.node, event.round)
        for node, rnd in by_node.items():
            level = nodes[node].state.level
            assert rnd == 2 * level + 1, (node, level, rnd)

    def test_acks_follow_activation_round(self):
        topo = path_graph(6)
        _p, nodes, tracer = traced_agg(topo)
        for event in tracer.sends:
            for part in event.parts:
                if part.kind == "ack":
                    level = nodes[event.node].state.level
                    assert event.round == 2 * level


class TestAggAggregationTiming:
    def test_slot_is_cd_minus_level_plus_1(self):
        topo = grid_graph(4, 4)
        params, nodes, tracer = traced_agg(topo)
        phase_start = 2 * params.cd + 1  # construction ends here
        for event in tracer.sends:
            for part in event.parts:
                if part.kind == "aggregation":
                    level = nodes[event.node].state.level
                    expected = phase_start + (params.cd - level + 1)
                    assert event.round == expected

    def test_critical_failure_flagged_at_parent_slot(self):
        topo = path_graph(6)
        params = params_for(topo, t=2)
        # Node 3 dies right at the start of aggregation.
        schedule = FailureSchedule({3: 2 * params.cd + 2})
        _p, nodes, tracer = traced_agg(topo, schedule=schedule)
        first = first_sends_per_content(tracer, "critical_failure")
        assert (3,) in first
        rnd, node = first[(3,)]
        assert node == 2  # the parent flags it
        parent_slot = (2 * params.cd + 1) + (params.cd - 2 + 1)
        assert rnd == parent_slot


class TestAggFloodingTiming:
    def test_root_floods_in_phase_round_one(self):
        topo = grid_graph(4, 4)
        params, _n, tracer = traced_agg(topo)
        first = first_sends_per_content(tracer, "flooded_psum")
        (payload, (rnd, node)), = first.items()
        assert node == 0 and payload[0] == 0
        assert rnd == 4 * params.cd + 3  # first round of the phase

    def test_orphan_initiates_at_phase_round_level_plus_one(self):
        topo = grid_graph(4, 4)
        params = params_for(topo, t=4)
        # Kill node 1 and node 4 (the root's neighbours' of node 5... use
        # node 5's parent 1) during aggregation; node 5's parent is 1.
        schedule = FailureSchedule({1: 2 * params.cd + 2})
        _p, nodes, tracer = traced_agg(topo, t=4, schedule=schedule)
        first = first_sends_per_content(tracer, "flooded_psum")
        flooding_start = 4 * params.cd + 2  # phase round p = rnd - this
        for payload, (rnd, node) in first.items():
            source = payload[0]
            assert node == source  # initiations come from the source itself
            if source == 0:
                assert rnd - flooding_start == 1
            else:
                level = nodes[source].state.level
                assert rnd - flooding_start == level + 1

    def test_determinations_in_selection_round_one(self):
        topo = grid_graph(4, 4)
        params, _n, tracer = traced_agg(topo)
        first = first_sends_per_content(tracer, "determination")
        selection_start = 6 * params.cd + 4
        for _payload, (rnd, _node) in first.items():
            assert rnd == selection_start


class TestVeriTiming:
    def _traced_veri(self, topo, t=2, schedule=None):
        params = params_for(topo, t=t)
        schedule = schedule or FailureSchedule()
        nodes = {u: AggNode(params, u, 1) for u in topo.nodes()}
        net = Network(topo.adjacency, nodes, schedule.crash_rounds)
        net.run(params.agg_rounds, stop_on_output=False)
        veri_nodes = {
            u: VeriNode(params, u, nodes[u].state) for u in topo.nodes()
        }
        shifted = {
            u: max(1, r - params.agg_rounds)
            for u, r in schedule.crash_rounds.items()
        }
        tracer = Tracer()
        vnet = Network(topo.adjacency, veri_nodes, shifted, tracer=tracer)
        vnet.run(params.veri_rounds, stop_on_output=False)
        return params, nodes, veri_nodes, tracer

    def test_detect_failed_parent_round_one(self):
        topo = grid_graph(4, 4)
        params, _a, _v, tracer = self._traced_veri(topo)
        first = tracer.first_send_of_kind("detect_failed_parent")
        assert (first.round, first.node) == (1, 0)

    def test_leaves_start_failed_child_wave_at_their_slot(self):
        topo = path_graph(5)
        params, agg_nodes, _v, tracer = self._traced_veri(topo)
        first = first_sends_per_content(tracer, "detect_failed_child")
        # The path's only tree leaf is node 4.
        (payload, (rnd, node)), = first.items()
        assert node == 4
        phase_start = 2 * params.cd + 1
        level = agg_nodes[4].state.level
        assert rnd == phase_start + (params.cd - level + 1)

    def test_orphan_claims_failed_parent_at_level_plus_one(self):
        topo = grid_graph(4, 4)
        params = params_for(topo, t=2)
        agg_rounds = params.agg_rounds
        schedule = FailureSchedule({5: agg_rounds + 1})  # dies before VERI
        _p, agg_nodes, veri_nodes, tracer = self._traced_veri(
            topo, schedule=schedule
        )
        first = first_sends_per_content(tracer, "failed_parent")
        assert first, "children of node 5 must claim"
        for (parent, _x, claimer), (rnd, node) in first.items():
            assert parent == 5
            assert node == claimer
            level = agg_nodes[claimer].state.level
            assert rnd == level + 1

    def test_failure_free_veri_has_no_claims(self):
        topo = grid_graph(4, 4)
        _p, _a, veri_nodes, tracer = self._traced_veri(topo)
        hist = tracer.kind_histogram()
        assert "failed_parent" not in hist
        assert "failed_child" not in hist
        assert "lfc_tail" not in hist
        assert veri_nodes[0].output is True
