"""Smoke tests: every shipped example runs clean and says what it promises.

The examples are deliverables; these tests keep them from rotting.  Each
runs in-process (import + main()) with stdout captured.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, capsys):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Algorithm 1" in out
        assert "True" in out
        assert "False" not in out.split("correct")[-1][:200]

    def test_sensor_network(self, capsys):
        out = run_example("sensor_network", capsys)
        assert "bruteforce" in out and "folklore" in out and "tag" in out
        assert "8/8" in out  # fault-tolerant protocols fully correct

    def test_adhoc_gateway(self, capsys):
        out = run_example("adhoc_gateway", capsys)
        assert "MAX" in out
        assert "True" in out

    def test_unknown_failures(self, capsys):
        out = run_example("unknown_failures", capsys)
        assert "doubling" in out.lower()
        assert "True" in out

    def test_lower_bound_demo(self, capsys):
        out = run_example("lower_bound_demo", capsys)
        assert "UNIONSIZECP" in out
        assert "rank(M(q))" in out
        assert "Figure 1" in out

    def test_median_selection(self, capsys):
        out = run_example("median_selection", capsys)
        assert "median" in out
        assert "average" in out

    def test_trace_debugging(self, capsys):
        out = run_example("trace_debugging", capsys)
        assert "CRASHES" in out
        assert "speculative" in out

    def test_continuous_monitoring(self, capsys):
        out = run_example("continuous_monitoring", capsys)
        assert "epoch" in out
        assert "True" in out

    def test_zero_error_hunt(self, capsys):
        out = run_example("zero_error_hunt", capsys)
        assert "total incorrect results across all attacks: 0" in out

    def test_paper_tables(self, capsys):
        out = run_example("paper_tables", capsys)
        assert r"\begin{table}" in out
        assert "E16" in out

    def test_every_example_has_a_docstring_and_main(self):
        for fname in sorted(os.listdir(EXAMPLES_DIR)):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(EXAMPLES_DIR, fname)
            with open(path) as fh:
                source = fh.read()
            assert '"""' in source.split("\n", 2)[-1] or source.startswith(
                '#!/usr/bin/env python\n"""'
            ), fname
            assert "def main()" in source, fname
            assert '__name__ == "__main__"' in source, fname
