"""The abort/overflow safety valves must actually fire when needed.

Theorem 3/6's CC guarantees hinge on the special-symbol mechanisms:
without them, a >t-failure execution could force unbounded forwarding.
These tests construct executions that demonstrably cross the budgets and
check the valves trip, propagate, and bound every node's cost.
"""

import random

import pytest

from repro.adversary import FailureSchedule, random_failures
from repro.core.agg import run_agg
from repro.core.params import params_for
from repro.core.veri import VeriNode, run_agg_veri_pair
from repro.graphs import grid_graph
from repro.sim.network import Network


def storm_schedule(topo, f, at_round, seed=0):
    rng = random.Random(seed)
    return random_failures(
        topo, f=f, rng=rng, first_round=at_round, last_round=at_round
    )


class TestAggAbort:
    def _aborting_run(self):
        topo = grid_graph(6, 6)
        cd = 2 * topo.diameter
        schedule = storm_schedule(topo, f=24, at_round=2 * cd + 2)
        out = run_agg(
            topo, {u: 1 for u in topo.nodes()}, t=0, schedule=schedule
        )
        return topo, schedule, out

    def test_storm_with_t_zero_triggers_abort(self):
        _topo, _schedule, out = self._aborting_run()
        assert out.aborted
        assert out.result is None

    def test_abort_propagates_to_all_live_nodes(self):
        topo, schedule, out = self._aborting_run()
        alive = topo.alive_component(schedule.failed_nodes)
        for node in alive:
            assert out.nodes[node].aborted, node

    def test_abort_caps_every_nodes_bits(self):
        topo, _schedule, out = self._aborting_run()
        budget = out.nodes[topo.root].p.agg_bit_budget
        abort_bits = 16
        for node, bits in out.stats.bits_sent.items():
            assert bits <= budget + abort_bits, node

    def test_same_storm_with_adequate_t_does_not_abort(self):
        topo = grid_graph(6, 6)
        cd = 2 * topo.diameter
        schedule = storm_schedule(topo, f=24, at_round=2 * cd + 2)
        out = run_agg(
            topo,
            {u: 1 for u in topo.nodes()},
            t=schedule.edge_failures(topo),
            schedule=schedule,
        )
        assert not out.aborted


class TestVeriOverflow:
    def _post_agg_storm(self, t=0, n_victims=7):
        topo = grid_graph(6, 6)
        params = params_for(topo, t=t)
        victims = [7, 9, 14, 16, 21, 25, 27][:n_victims]
        schedule = FailureSchedule(
            {u: params.agg_rounds + 1 for u in victims}
        )
        pair = run_agg_veri_pair(
            topo, {u: 1 for u in topo.nodes()}, t=t, schedule=schedule
        )
        return topo, params, schedule, pair

    def test_claim_storm_with_t_zero_outputs_false(self):
        _topo, _params, _schedule, pair = self._post_agg_storm()
        # Either the overflow valve or the LFC rules must force false —
        # VERI may never say true here (every victim orphans children and
        # t = 0 tolerates nothing).
        assert pair.veri_output is False

    def test_veri_bits_capped_under_claim_storm(self):
        _topo, params, _schedule, pair = self._post_agg_storm()
        overflow_bits = 16
        assert pair.veri_stats.max_bits <= params.veri_bit_budget + overflow_bits

    def test_agg_result_was_fine_but_pair_rejected(self):
        # The failures happened after AGG ended, so AGG's sum is exact;
        # rejection is VERI being conservative — allowed (scenario 2/3).
        topo, _params, _schedule, pair = self._post_agg_storm()
        assert pair.agg_result == topo.n_nodes
        assert not pair.accepted
