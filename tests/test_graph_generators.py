"""Topology generators: sizes, connectivity, and shape-specific facts."""

import random

import pytest

from repro.graphs import (
    Topology,
    balanced_tree,
    barbell_graph,
    caterpillar_graph,
    clustered_graph,
    complete_graph,
    cycle_graph,
    gnp_connected,
    grid_graph,
    path_graph,
    random_geometric,
    random_regular,
    random_tree,
    standard_suite,
    star_graph,
)


class TestRegularShapes:
    def test_path(self):
        topo = path_graph(7)
        assert topo.n_nodes == 7
        assert topo.n_edges == 6
        assert topo.diameter == 6

    def test_cycle(self):
        topo = cycle_graph(10)
        assert topo.n_edges == 10
        assert topo.diameter == 5
        assert all(topo.degree(u) == 2 for u in topo.nodes())

    def test_star(self):
        topo = star_graph(12)
        assert topo.degree(0) == 11
        assert topo.diameter == 2

    def test_complete(self):
        topo = complete_graph(6)
        assert topo.n_edges == 15
        assert topo.diameter == 1

    def test_grid(self):
        topo = grid_graph(4, 5)
        assert topo.n_nodes == 20
        assert topo.diameter == 3 + 4
        # Interior nodes have degree 4.
        assert topo.degree(1 * 5 + 2) == 4

    def test_balanced_tree(self):
        topo = balanced_tree(2, 15)
        assert topo.n_edges == 14
        assert topo.degree(0) == 2

    def test_caterpillar(self):
        topo = caterpillar_graph(4, 2)
        assert topo.n_nodes == 12
        # Legs are leaves.
        assert topo.degree(4) == 1

    def test_barbell_bridge_is_bottleneck(self):
        topo = barbell_graph(4, 2)
        assert topo.n_nodes == 10
        bridge_nodes = [4, 5]
        for u in bridge_nodes:
            assert topo.degree(u) == 2

    def test_clustered(self):
        topo = clustered_graph(3, 4)
        assert topo.n_nodes == 12
        # Cluster members form a clique.
        assert 1 in topo.neighbours(2) and 3 in topo.neighbours(2)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(1),
            lambda: cycle_graph(2),
            lambda: star_graph(1),
            lambda: grid_graph(1, 1),
            lambda: balanced_tree(0, 5),
            lambda: caterpillar_graph(1, 1),
            lambda: barbell_graph(1, 1),
            lambda: clustered_graph(1, 3),
        ],
    )
    def test_degenerate_sizes_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestRandomShapes:
    def test_geometric_connected_and_sized(self):
        topo = random_geometric(50, rng=random.Random(1))
        assert topo.n_nodes == 50
        assert topo.diameter >= 1

    def test_geometric_root_near_corner(self):
        topo = random_geometric(40, rng=random.Random(2))
        pts = topo.positions
        root_score = pts[topo.root][0] + pts[topo.root][1]
        assert all(root_score <= x + y + 1e-12 for x, y in pts)

    def test_geometric_deterministic_per_seed(self):
        a = random_geometric(30, rng=random.Random(5))
        b = random_geometric(30, rng=random.Random(5))
        assert a.adjacency == b.adjacency

    def test_gnp_connected(self):
        topo = gnp_connected(40, rng=random.Random(3))
        assert topo.n_nodes == 40

    def test_gnp_dense_probability_one(self):
        topo = gnp_connected(10, p=1.0, rng=random.Random(0))
        assert topo.n_edges == 45

    def test_random_tree_has_n_minus_1_edges(self):
        topo = random_tree(20, rng=random.Random(4))
        assert topo.n_edges == 19

    def test_random_regular_degrees(self):
        topo = random_regular(16, 4, rng=random.Random(7))
        assert all(topo.degree(u) == 4 for u in topo.nodes())

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            random_regular(7, 3)

    def test_standard_suite_diverse(self):
        suite = standard_suite(25, rng=random.Random(0))
        assert len(suite) >= 4
        assert len({t.name for t in suite}) == len(suite)


class TestTopologyApi:
    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            Topology({0: [1], 1: [0], 2: [], 3: []})

    def test_rejects_unknown_root(self):
        with pytest.raises(ValueError, match="root"):
            Topology({0: [1], 1: [0]}, root=5)

    def test_edges_incident_counts_paper_edge_failures(self):
        topo = star_graph(6)
        # Failing two leaves costs exactly their two edges.
        assert topo.edges_incident({1, 2}) == 2
        # Failing the hub costs all edges.
        assert topo.edges_incident({0}) == 5

    def test_edges_incident_does_not_double_count(self):
        topo = path_graph(4)
        assert topo.edges_incident({1, 2}) == 3  # edges 01, 12, 23

    def test_alive_component(self):
        topo = path_graph(5)
        assert topo.alive_component({2}) == {0, 1}

    def test_alive_component_root_failure_rejected(self):
        topo = path_graph(5)
        with pytest.raises(ValueError):
            topo.alive_component({0})

    def test_remaining_diameter(self):
        topo = cycle_graph(8)
        assert topo.diameter == 4
        # Cutting one node turns the cycle into a path of 7 -> diameter 6.
        assert topo.remaining_diameter({4}) == 6

    def test_levels_cached_and_correct(self):
        topo = grid_graph(3, 3)
        assert topo.levels[0] == 0
        assert topo.levels[8] == 4

    def test_repr_mentions_name(self):
        assert "grid" in repr(grid_graph(2, 2))
