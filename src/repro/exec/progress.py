"""Execution telemetry: structured JSONL events and a live CLI renderer.

The engine narrates its run through a :class:`ProgressEmitter`: one
flat JSON object per event, written to an optional JSONL file and fanned
out to in-process listeners.  Event vocabulary::

    engine_started    {units, jobs, to_run, cached, checkpointed}
    unit_started      {index, unit, cost_hint}
    unit_finished     {index, unit, wall_s, cc_bits, correct}
    unit_failed       {index, unit, wall_s, error_kind}
    unit_cached       {index, unit}
    unit_checkpointed {index, unit}
    engine_interrupted{completed, flushed}
    worker_replaced   {reason, respawns}
    engine_finished   {wall_s, executed, cached, checkpointed, failed}

Timestamps (``ts``) are wall-clock and obviously non-deterministic;
they live only in the telemetry stream, never in results, so the
engine's determinism contract is untouched.

:class:`ProgressTracker` is a listener that folds the stream into
renderable state (done counts, failures, worker utilization, p50/p95
unit wall latency, ETA from the mean unit wall time), and
:func:`live_renderer` turns that state into the single carriage-return
status line the CLI shows on a TTY.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional

Listener = Callable[[Dict[str, Any]], None]


class ProgressEmitter:
    """Fan structured events out to a JSONL file and listeners."""

    def __init__(
        self,
        jsonl_path: Optional[str] = None,
        listeners: Optional[List[Listener]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.jsonl_path = jsonl_path
        self.listeners: List[Listener] = list(listeners or ())
        self.clock = clock
        self._fh = None

    def emit(self, event: str, **fields: Any) -> None:
        payload = {"ts": round(self.clock(), 3), "event": event}
        payload.update(fields)
        if self.jsonl_path is not None:
            if self._fh is None:
                directory = os.path.dirname(os.path.abspath(self.jsonl_path))
                os.makedirs(directory, exist_ok=True)
                self._fh = open(self.jsonl_path, "a", encoding="utf-8")
            self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
            self._fh.flush()
        for listener in self.listeners:
            listener(payload)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ProgressEmitter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ProgressTracker:
    """Fold the event stream into a renderable progress snapshot."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self.total = 0
        self.jobs = 1
        self.executed = 0
        self.cached = 0
        self.checkpointed = 0
        self.failed = 0
        self.in_flight = 0
        self.wall_samples: List[float] = []
        self.started_at: Optional[float] = None

    # -- listener interface ------------------------------------------- #

    def __call__(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "engine_started":
            self.total = event.get("units", 0)
            self.jobs = event.get("jobs", 1)
            self.cached = event.get("cached", 0)
            self.checkpointed = event.get("checkpointed", 0)
            self.started_at = self.clock()
        elif kind == "unit_started":
            self.in_flight += 1
        elif kind in ("unit_finished", "unit_failed"):
            self.in_flight = max(0, self.in_flight - 1)
            self.executed += 1
            if kind == "unit_failed":
                self.failed += 1
            wall = event.get("wall_s")
            if wall is not None:
                self.wall_samples.append(float(wall))
        elif kind == "unit_cached":
            self.cached += 1
        elif kind == "unit_checkpointed":
            self.checkpointed += 1

    # -- snapshot ------------------------------------------------------ #

    @property
    def done(self) -> int:
        return self.executed + self.cached + self.checkpointed

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def utilization(self) -> float:
        """Busy workers as a fraction of the pool size."""
        return self.in_flight / self.jobs if self.jobs else 0.0

    def eta_s(self) -> Optional[float]:
        """Naive ETA: mean executed-unit wall time x remaining / workers."""
        if not self.wall_samples or not self.remaining:
            return None
        mean = sum(self.wall_samples) / len(self.wall_samples)
        return mean * self.remaining / max(1, self.jobs)

    def wall_percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (0..100) of executed-unit wall times,
        by linear interpolation; ``None`` before the first sample."""
        if not self.wall_samples:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.wall_samples)
        rank = (len(ordered) - 1) * q / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)

    @staticmethod
    def _fmt_s(seconds: float) -> str:
        if seconds < 1:
            return f"{seconds * 1000:.0f}ms"
        return f"{seconds:.1f}s"

    def latency_summary(self) -> Optional[Dict[str, float]]:
        """Final p50/p95/mean of executed-unit wall times, or ``None``
        when zero units completed (never divides by an empty sample
        set — the zero-completed-units guard for renderers and metric
        export alike)."""
        if not self.wall_samples:
            return None
        return {
            "p50": self.wall_percentile(50.0),
            "p95": self.wall_percentile(95.0),
            "mean": sum(self.wall_samples) / len(self.wall_samples),
        }

    def render(self, width: int = 24) -> str:
        done, total = self.done, max(1, self.total)
        # Clamp: events arriving without an engine_started header leave
        # total at 0, which used to overflow the bar (and a bar wider
        # than `width` is always a bug, never a feature).
        filled = min(width, int(width * done / total))
        bar = "#" * filled + "-" * (width - filled)
        parts = [
            f"[{bar}] {done}/{self.total}",
            f"{self.cached + self.checkpointed} cached",
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        parts.append(f"{self.in_flight}/{max(1, self.jobs)} busy")
        summary = self.latency_summary()
        if summary is not None:
            parts.append(
                f"p50 {self._fmt_s(summary['p50'])} / "
                f"p95 {self._fmt_s(summary['p95'])}"
            )
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"ETA {int(eta // 60):02d}:{int(eta % 60):02d}")
        return " | ".join(parts)


def export_final_latency(wall_samples, jobs: int = 1) -> None:
    """Fold final executed-unit wall latencies into the active
    observability registry (p50/p95 gauges + a fixed-bucket histogram).

    A no-op when no registry is active or zero units completed — wall
    metrics are advisory and never appear for empty runs.
    """
    from ..obs import metrics as _metrics

    if _metrics.enabled:
        _metrics.record_unit_latency(
            _metrics.active(), wall_samples, jobs=jobs
        )


def live_renderer(
    stream=None, tracker: Optional[ProgressTracker] = None
) -> Listener:
    """A listener that repaints one status line per event.

    Writes carriage-return-terminated lines (newline on
    ``engine_finished`` / ``engine_interrupted`` so the final state
    survives on screen).  Pair with a :class:`ProgressTracker` fed by the
    same emitter; one is created (and fed here) if not supplied.
    """
    out = stream if stream is not None else sys.stderr
    state = tracker or ProgressTracker()
    own_tracker = tracker is None

    def listen(event: Dict[str, Any]) -> None:
        if own_tracker:
            state(event)
        terminal = event.get("event") in ("engine_finished", "engine_interrupted")
        end = "\n" if terminal else "\r"
        try:
            out.write(state.render() + end)
            out.flush()
        except (OSError, ValueError):
            pass

    return listen
