"""Worker lifecycle and the :class:`ExecutionEngine` front door.

The engine turns a list of :class:`repro.exec.scheduler.WorkUnit` into a
list of :class:`repro.analysis.runner.RunRecord`, one per unit, in unit
order, with these guarantees:

* **Determinism.**  Results are keyed by unit index and every unit is
  self-seeded, so worker count, submission order, and completion order
  cannot change the output.  Checkpoint writes go through an in-order
  buffer (contiguous-prefix flushing), so the checkpoint *file* is also
  byte-identical across ``jobs`` values.
* **Bounded memory.**  At most ``window`` (default ``2 x jobs``) units
  are in flight; the rest wait unsubmitted.
* **Worker lifecycle.**  A crashed worker (pool breakage) is replaced and
  its in-flight units are resubmitted, up to ``max_respawns`` times;
  after that the still-unfinished in-flight units become structured
  error rows (``error_kind="WorkerCrashed"``) instead of killing the
  run.  A *hung* worker — one whose unit has a ``timeout_s`` but blew
  far past it without the worker-side ``SIGALRM`` firing — is terminated
  and its unit becomes a ``RunTimeout`` error row.
* **Graceful Ctrl-C.**  On ``KeyboardInterrupt`` the engine stops
  submitting, collects every already-completed result, flushes them to
  the cache and (in order) to the checkpoint, then re-raises — an
  interrupted parallel sweep resumes exactly like an interrupted serial
  one.

Three backends implement the submit/collect protocol: ``SerialBackend``
(in-process, the ``--jobs 1`` path — no subprocesses, no pickling),
``ProcessBackend`` (the real pool), and ``ShuffledBackend`` (in-process
but releasing completions in adversarial order — the test hook proving
completion order is immaterial).
"""

from __future__ import annotations

import collections
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.runner import RunRecord, RunTimeout, error_record
from ..obs import metrics as _obs_metrics
from ..obs import spans as _spans
from .progress import ProgressEmitter, export_final_latency
from .scheduler import WorkUnit, execute_unit, plan_order

try:  # BrokenProcessPool moved around across Python versions
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    from concurrent.futures import BrokenExecutor as BrokenProcessPool


class WorkerCrashed(RuntimeError):
    """A worker process died (or kept dying) while running a unit."""


#: (index, record-or-None, infrastructure-error-or-None)
Completion = Tuple[int, Optional[RunRecord], Optional[BaseException]]


class SerialBackend:
    """Execute units in-process, in submission order, one at a time."""

    def __init__(self) -> None:
        self._queue: collections.deque = collections.deque()

    def submit(self, index: int, unit: WorkUnit, hard_timeout_s=None) -> None:
        self._queue.append((index, unit))

    def inflight(self) -> int:
        return len(self._queue)

    def next_completed(self) -> Completion:
        index, unit = self._queue.popleft()
        return index, execute_unit(unit), None

    def drain(self) -> List[Tuple[int, RunRecord]]:
        return []

    def shutdown(self, cancel: bool = False) -> None:
        self._queue.clear()


class ShuffledBackend:
    """In-process backend that releases completions in shuffled order.

    Units execute eagerly at submit time (still one at a time, still
    self-seeded); ``next_completed`` then hands results back in an order
    chosen by ``rng``.  This simulates arbitrary parallel completion
    order without processes — the property-test hook.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)
        self._buffer: List[Tuple[int, RunRecord]] = []

    def submit(self, index: int, unit: WorkUnit, hard_timeout_s=None) -> None:
        self._buffer.append((index, execute_unit(unit)))

    def inflight(self) -> int:
        return len(self._buffer)

    def next_completed(self) -> Completion:
        pick = self.rng.randrange(len(self._buffer))
        index, record = self._buffer.pop(pick)
        return index, record, None

    def drain(self) -> List[Tuple[int, RunRecord]]:
        drained, self._buffer = list(self._buffer), []
        return drained

    def shutdown(self, cancel: bool = False) -> None:
        self._buffer.clear()


class ProcessBackend:
    """A ``ProcessPoolExecutor`` with crash replacement and hang reaping."""

    def __init__(
        self,
        jobs: int,
        max_respawns: int = 3,
        emitter: Optional[ProgressEmitter] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.max_respawns = max_respawns
        self.emitter = emitter
        self.respawns = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[Any, int] = {}
        self._units: Dict[int, WorkUnit] = {}
        self._deadlines: Dict[int, Optional[float]] = {}
        self._failed: collections.deque = collections.deque()

    # ------------------------------------------------------------------ #

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def submit(
        self, index: int, unit: WorkUnit, hard_timeout_s: Optional[float] = None
    ) -> None:
        self._units[index] = unit
        self._deadlines[index] = (
            time.monotonic() + hard_timeout_s if hard_timeout_s else None
        )
        future = self._pool().submit(execute_unit, unit)
        self._futures[future] = index

    def inflight(self) -> int:
        return len(self._futures) + len(self._failed)

    # ------------------------------------------------------------------ #

    def _emit(self, event: str, **fields) -> None:
        if self.emitter is not None:
            self.emitter.emit(event, **fields)

    def _replace_pool(self, reason: str) -> None:
        """Tear down the broken/hung pool and resubmit survivors."""
        self.respawns += 1
        self._emit("worker_replaced", reason=reason, respawns=self.respawns)
        executor, self._executor = self._executor, None
        if executor is not None:
            # Kill lingering workers outright: a hung worker would make
            # shutdown(wait=True) hang forever, and a broken pool's
            # processes are already dead.
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except (OSError, AttributeError):
                    pass
            executor.shutdown(wait=False, cancel_futures=True)
        survivors = sorted(self._futures.values())
        self._futures.clear()
        if self.respawns > self.max_respawns:
            # Give up on replacement: fail the survivors as rows.
            for index in survivors:
                self._failed.append(
                    (index, WorkerCrashed(f"worker pool kept dying ({reason})"))
                )
            return
        for index in survivors:
            deadline = self._deadlines.get(index)
            future = self._pool().submit(execute_unit, self._units[index])
            self._futures[future] = index
            if deadline is not None:
                # Keep the original deadline: a resubmitted unit does not
                # get a fresh allowance.
                self._deadlines[index] = deadline

    def _reap_overdue(self) -> None:
        now = time.monotonic()
        overdue = [
            index
            for index in self._futures.values()
            if self._deadlines.get(index) is not None
            and now > self._deadlines[index]
        ]
        if not overdue:
            return
        for index in overdue:
            self._failed.append(
                (
                    index,
                    RunTimeout(
                        "worker exceeded its hard wall-clock deadline "
                        "(unit timeout did not fire; worker terminated)"
                    ),
                )
            )
            self._units.pop(index, None)
            self._deadlines.pop(index, None)
        # Drop the overdue entries, then rebuild the pool for the rest.
        self._futures = {
            future: index
            for future, index in self._futures.items()
            if index not in overdue
        }
        self._replace_pool("hung worker reaped")

    def next_completed(self) -> Completion:
        while True:
            if self._failed:
                index, exc = self._failed.popleft()
                return index, None, exc
            if not self._futures:
                raise RuntimeError("next_completed with nothing in flight")
            done, _ = wait(
                list(self._futures), timeout=0.2, return_when=FIRST_COMPLETED
            )
            if not done:
                self._reap_overdue()
                continue
            future = done.pop()
            index = self._futures.pop(future)
            try:
                record = future.result()
            except BrokenProcessPool as exc:
                self._futures[future] = index  # crashed mid-run: resubmit too
                self._replace_pool(str(exc) or "broken process pool")
                continue
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                self._cleanup(index)
                return index, None, exc
            self._cleanup(index)
            return index, record, None

    def _cleanup(self, index: int) -> None:
        self._units.pop(index, None)
        self._deadlines.pop(index, None)

    def drain(self) -> List[Tuple[int, RunRecord]]:
        """Collect every already-finished future without blocking."""
        drained: List[Tuple[int, RunRecord]] = []
        for future, index in list(self._futures.items()):
            if future.done() and not future.cancelled():
                try:
                    drained.append((index, future.result(timeout=0)))
                except BaseException:
                    continue
                finally:
                    del self._futures[future]
                    self._cleanup(index)
        return drained

    def shutdown(self, cancel: bool = False) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=not cancel, cancel_futures=cancel)
        self._futures.clear()
        self._units.clear()
        self._deadlines.clear()


# --------------------------------------------------------------------- #
# The engine.
# --------------------------------------------------------------------- #


class _OrderedCheckpointWriter:
    """Flush records to the checkpoint in unit order, not completion order.

    ``offer(i, record)`` marks unit ``i``'s record ready; the contiguous
    prefix of ready units is written immediately.  Units already present
    in the checkpoint are skipped (the serial resume path never rewrites
    them either).  The result: the checkpoint file a parallel sweep
    leaves behind is byte-identical to the serial one, while each record
    still becomes durable as soon as every earlier record is.
    """

    def __init__(self, checkpoint, units: Sequence[WorkUnit], skip) -> None:
        self.checkpoint = checkpoint
        self.units = units
        self.skip = set(skip)
        self._ready: Dict[int, RunRecord] = {}
        self._next = 0

    def offer(self, index: int, record: RunRecord) -> None:
        if self.checkpoint is None:
            return
        self._ready[index] = record
        self.flush()

    def flush(self) -> int:
        """Write the contiguous ready prefix; returns how many were written."""
        written = 0
        while self._next < len(self.units):
            if self._next in self.skip:
                self._next += 1
                continue
            record = self._ready.pop(self._next, None)
            if record is None:
                break
            self.checkpoint.put(
                self.units[self._next].checkpoint_key, record
            )
            written += 1
            self._next += 1
        return written

    def flush_stragglers(self) -> int:
        """Write every remaining ready record, gaps and all (in index order).

        Interrupt-only path: longest-expected-first scheduling means the
        contiguous prefix can be almost empty while most of the sweep is
        done, so a Ctrl-C that only flushed the prefix would forfeit the
        completed work.  Resume serves these rows by key, so correctness
        is unaffected; the cost is that an interrupted-then-resumed
        checkpoint file can order rows differently than an uninterrupted
        one (clean runs are still byte-identical at any ``--jobs``).
        """
        if self.checkpoint is None:
            return 0
        written = 0
        for index in sorted(self._ready):
            self.checkpoint.put(
                self.units[index].checkpoint_key, self._ready.pop(index)
            )
            written += 1
        return written


class ExecutionEngine:
    """Fan work units out over a backend; collect records in unit order.

    Parameters:
        jobs: worker processes (1 = in-process serial, no pool).
        cache: optional :class:`repro.exec.cache.ResultCache`.
        force: recompute cached units (fresh results still overwrite the
            cache entry).
        emitter: optional :class:`repro.exec.progress.ProgressEmitter`.
        backend: explicit backend instance (tests); defaults to
            ``SerialBackend`` for ``jobs=1`` else ``ProcessBackend``.
        window: max in-flight units (default ``max(2*jobs, jobs+2)``).
        hard_timeout_factor: a unit with ``timeout_s`` set is declared
            hung at ``max(factor * timeout_s, timeout_s + 30)`` seconds
            of pool-side wall clock.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        force: bool = False,
        emitter: Optional[ProgressEmitter] = None,
        backend=None,
        window: Optional[int] = None,
        max_respawns: int = 3,
        hard_timeout_factor: float = 5.0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.force = force
        self.emitter = emitter or ProgressEmitter()
        self._backend = backend
        self.window = window or max(2 * jobs, jobs + 2)
        self.max_respawns = max_respawns
        self.hard_timeout_factor = hard_timeout_factor

    def _make_backend(self):
        if self._backend is not None:
            return self._backend
        if self.jobs == 1:
            return SerialBackend()
        return ProcessBackend(
            self.jobs, max_respawns=self.max_respawns, emitter=self.emitter
        )

    def _hard_timeout(self, unit: WorkUnit) -> Optional[float]:
        if unit.timeout_s is None:
            return None
        return max(self.hard_timeout_factor * unit.timeout_s, unit.timeout_s + 30)

    def run(
        self, units: Sequence[WorkUnit], checkpoint=None
    ) -> List[RunRecord]:
        """Execute every unit; returns one record per unit, in unit order."""
        units = list(units)
        results: List[Optional[RunRecord]] = [None] * len(units)
        served_from_checkpoint: List[int] = []
        cache_hits: List[Tuple[int, RunRecord]] = []
        pending: List[int] = []
        for index, unit in enumerate(units):
            if checkpoint is not None:
                cached = checkpoint.get(unit.checkpoint_key)
                if cached is not None:
                    results[index] = cached
                    served_from_checkpoint.append(index)
                    continue
            if self.cache is not None and not self.force:
                hit = self.cache.get(unit)
                if hit is not None:
                    results[index] = hit
                    cache_hits.append((index, hit))
                    continue
            pending.append(index)

        writer = _OrderedCheckpointWriter(
            checkpoint, units, skip=served_from_checkpoint
        )
        emit = self.emitter.emit
        emit(
            "engine_started",
            units=len(units),
            jobs=self.jobs,
            to_run=len(pending),
            cached=len(cache_hits),
            checkpointed=len(served_from_checkpoint),
        )
        for index in served_from_checkpoint:
            emit("unit_checkpointed", index=index, unit=units[index].label())
        for index, record in cache_hits:
            emit("unit_cached", index=index, unit=units[index].label())
            if _spans.enabled:
                _spans.active().event(
                    "unit_cached",
                    cat="exec",
                    pid=_spans.SpanTracer.EXEC_PID,
                    tid=index,
                    unit=units[index].label(),
                )
            writer.offer(index, record)

        order = plan_order(units, pending)
        backend = self._make_backend()
        started = time.monotonic()
        unit_started_at: Dict[int, float] = {}
        wall_samples: List[float] = []
        executed = failed = 0
        try:
            cursor = 0
            while cursor < len(order) or backend.inflight():
                while cursor < len(order) and backend.inflight() < self.window:
                    index = order[cursor]
                    cursor += 1
                    unit_started_at[index] = time.monotonic()
                    emit(
                        "unit_started",
                        index=index,
                        unit=units[index].label(),
                        cost_hint=units[index].cost_hint,
                    )
                    if _spans.enabled:
                        # One track per unit (tid=index) keeps the B/E
                        # stream balanced under windowed submission; the
                        # clock is the logical-round high-water mark, so
                        # serial runs stay byte-deterministic.
                        _spans.active().begin(
                            f"unit:{units[index].label()}",
                            cat="exec",
                            pid=_spans.SpanTracer.EXEC_PID,
                            tid=index,
                            cost_hint=units[index].cost_hint,
                        )
                    backend.submit(
                        index, units[index], self._hard_timeout(units[index])
                    )
                if not backend.inflight():
                    break
                index, record, infra_exc = backend.next_completed()
                if record is None:
                    record = error_record(
                        units[index].protocol,
                        units[index].topology,
                        infra_exc
                        if infra_exc is not None
                        else WorkerCrashed("worker returned no record"),
                        f=units[index].f,
                        seed=units[index].seed,
                    )
                wall = round(
                    time.monotonic() - unit_started_at.get(index, started), 6
                )
                wall_samples.append(wall)
                results[index] = record
                executed += 1
                if self.cache is not None:
                    self.cache.put(units[index], record)
                writer.offer(index, record)
                if record.failed:
                    failed += 1
                    emit(
                        "unit_failed",
                        index=index,
                        unit=units[index].label(),
                        wall_s=wall,
                        error_kind=record.error_kind,
                    )
                    if _spans.enabled:
                        _spans.active().end(
                            pid=_spans.SpanTracer.EXEC_PID,
                            tid=index,
                            failed=True,
                            error_kind=record.error_kind,
                        )
                else:
                    emit(
                        "unit_finished",
                        index=index,
                        unit=units[index].label(),
                        wall_s=wall,
                        cc_bits=record.cc_bits,
                        correct=record.correct,
                    )
                    if _spans.enabled:
                        _spans.active().end(
                            pid=_spans.SpanTracer.EXEC_PID,
                            tid=index,
                            cc_bits=record.cc_bits,
                            correct=record.correct,
                        )
        except KeyboardInterrupt:
            flushed = 0
            for index, record in backend.drain():
                results[index] = record
                if self.cache is not None:
                    self.cache.put(units[index], record)
                writer.offer(index, record)
                flushed += 1
            flushed += writer.flush_stragglers()
            backend.shutdown(cancel=True)
            emit(
                "engine_interrupted",
                completed=sum(1 for r in results if r is not None),
                flushed=flushed,
            )
            raise
        backend.shutdown()
        emit(
            "engine_finished",
            wall_s=round(time.monotonic() - started, 6),
            executed=executed,
            cached=len(cache_hits),
            checkpointed=len(served_from_checkpoint),
            failed=failed,
        )
        if _obs_metrics.enabled:
            # Wall latency is the one non-deterministic metric domain;
            # it only appears for engine runs, never in serial traces.
            export_final_latency(wall_samples, jobs=self.jobs)
        assert all(record is not None for record in results)
        return results  # type: ignore[return-value]


# --------------------------------------------------------------------- #
# Generic deterministic fan-out for non-protocol work (adversary search,
# orchestration benchmarks): results come back in item order regardless
# of worker count, so `pooled_map(fn, xs, jobs=k) == [fn(x) for x in xs]`
# for any k.
# --------------------------------------------------------------------- #


def pooled_map(fn, items: Sequence[Any], jobs: int = 1) -> List[Any]:
    """Order-preserving parallel map over picklable items.

    ``jobs <= 1`` runs inline (no processes, no pickling requirement).
    ``fn`` must be a module-level callable for ``jobs > 1``.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as executor:
        return list(executor.map(fn, items, chunksize=1))
