"""Work units: the declarative, picklable spec of one protocol run.

A :class:`WorkUnit` captures *everything* a worker process needs to
reproduce one run of the serial sweep/chaos code paths bit-for-bit: the
topology, the seed, the protocol parameters, and declarative specs for
the derived pieces (failure schedule, fault injectors, monitors) that the
serial paths build from the seed's ``random.Random``.  The executor,
:func:`execute_unit`, replays the exact derivation order the serial code
uses — ``rng = Random(seed)``, then inputs, then schedule, then the
optional root crash — so a unit executed in a worker process returns the
identical :class:`repro.analysis.runner.RunRecord` the serial loop would
have produced in-process.

Closures (``schedule_factory`` / ``injector_factory``) cannot cross a
process boundary, which is why the specs here are data, not callables:

* schedule spec — ``{"kind": "none"}``, ``{"kind": "explicit",
  "crash_rounds": {node: round}}``, or ``{"kind": "random", "f": int,
  "first_round": int, "last_round": int, "respect_c": int | None}``
  (mirroring :func:`repro.analysis.sweep.random_schedule_factory`);
* ``crash_root`` — ``{"lo": int, "hi": int}``, appending a seeded root
  crash exactly like the CLI's ``--allow-root-crash`` path;
* ``inject`` / ``adaptive`` — the CLI spec strings fed to
  :meth:`repro.sim.faults.MessageFaults.from_spec` /
  :func:`repro.adversary.adaptive.make_adaptive`;
* ``monitors`` — ``{"mode": "record" | "strict", "recovery": bool}`` for
  :func:`repro.sim.monitors.standard_monitors`.

:func:`plan_order` gives the deterministic longest-expected-first
submission order; because results are keyed by unit index, submission
order never affects output, only wall clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology


@dataclass(frozen=True)
class WorkUnit:
    """One independent protocol run, fully specified by value.

    ``coords`` is the sweep coordinate the run belongs to (it feeds the
    checkpoint key, exactly like the serial path's
    :func:`repro.analysis.checkpoint.make_key`); ``strict`` /
    ``strict_monitors`` / ``transport`` / ``recovery`` / ``integrity`` /
    ``churn_policy`` mirror the corresponding
    :func:`repro.analysis.runner.run_protocol` arguments; ``corrupt`` is
    the CLI spec string fed to
    :meth:`repro.sim.faults.MessageCorruption.from_spec`.  ``churn`` is
    either a :meth:`repro.sim.faults.ChurnSchedule.from_spec` string
    (deterministic) or ``{"kind": "random", "rate": float, "horizon":
    int, "amnesiac": float, "flap_rate": float}``, sampled from the
    unit's seeded RNG in the same derivation slot the serial sweep uses
    (after the schedule draw), so pool and serial runs see identical
    churn timelines.  ``gray`` is either a
    :meth:`repro.sim.faults.GrayFailureSchedule.from_spec` string or
    ``{"kind": "random", "rate": float, "horizon": int, "link_rate":
    float, "max_severity": int}``, drawn right after the churn slot.
    ``byz`` is either a
    :meth:`repro.sim.faults.ByzantineSchedule.from_spec` string or
    ``{"kind": "random", "rate": float, "horizon": int,
    "max_magnitude": int}``, drawn right after the gray slot;
    ``byz_config`` is a
    :class:`repro.resilience.byzantine.ByzantineConfig` (picklable).
    """

    protocol: str
    topology: Topology
    seed: int
    f: Optional[int] = None
    b: Optional[int] = None
    t: Optional[int] = None
    c: int = 2
    caaf: str = "SUM"
    max_input: Optional[int] = None
    schedule: Dict[str, Any] = field(default_factory=lambda: {"kind": "none"})
    crash_root: Optional[Dict[str, int]] = None
    inject: Optional[str] = None
    corrupt: Optional[str] = None
    adaptive: Optional[str] = None
    monitors: Optional[Dict[str, Any]] = None
    strict: bool = False
    strict_monitors: bool = False
    transport: Any = None
    recovery: Any = None
    integrity: Any = None
    churn: Any = None
    churn_policy: Any = None
    gray: Any = None
    byz: Any = None
    byz_config: Any = None
    allow_root_crash: bool = False
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.0
    capture_dir: Optional[str] = None
    coords: Dict[str, Any] = field(default_factory=dict)

    @property
    def checkpoint_key(self) -> str:
        """The serial sweep's checkpoint key for this run."""
        from ..analysis.checkpoint import make_key

        return make_key(self.protocol, self.topology.name, self.seed, self.coords)

    @property
    def cost_hint(self) -> float:
        """Expected relative wall clock (for longest-first submission).

        Protocol runs scale with the node count times the round horizon;
        the exact constant is irrelevant because only the *ordering* of
        hints matters.
        """
        horizon = self.b if self.b is not None else None
        if horizon is None:
            horizon = self.schedule.get("last_round") if self.schedule else None
        if horizon is None:
            horizon = self.topology.diameter
        return float(self.topology.n_nodes) * max(1, int(horizon))

    def label(self) -> str:
        """Short human-readable identity for telemetry."""
        bits = [self.protocol, self.topology.name, f"s{self.seed}"]
        for key in ("b", "f"):
            value = self.coords.get(key)
            if value is not None:
                bits.append(f"{key}{value}")
        return "-".join(str(b) for b in bits)


def build_schedule(
    unit: WorkUnit, topology: Topology, rng: random.Random
) -> FailureSchedule:
    """Materialize the unit's schedule spec, consuming ``rng`` exactly as
    the serial code paths do."""
    spec = unit.schedule or {"kind": "none"}
    kind = spec.get("kind", "none")
    if kind == "none":
        schedule = FailureSchedule()
    elif kind == "explicit":
        schedule = FailureSchedule(
            {int(u): int(r) for u, r in spec["crash_rounds"].items()}
        )
    elif kind == "random":
        from ..adversary.adversaries import no_failures, random_failures

        f = spec["f"]
        if f <= 0:
            schedule = no_failures()
        else:
            schedule = random_failures(
                topology,
                f,
                rng,
                first_round=spec.get("first_round", 1),
                last_round=spec["last_round"],
                respect_c=spec.get("respect_c"),
            )
    else:
        raise ValueError(f"unknown schedule spec kind {kind!r}")
    if unit.crash_root is not None:
        lo = unit.crash_root["lo"]
        hi = unit.crash_root["hi"]
        schedule.add(topology.root, rng.randint(lo, hi))
    return schedule


def build_churn(unit: WorkUnit, topology: Topology, rng: random.Random):
    """Materialize the unit's churn spec, consuming ``rng`` exactly as
    the serial sweep does (one draw block right after the schedule)."""
    return materialize_churn(unit.churn, topology, rng)


def materialize_churn(spec: Any, topology: Topology, rng: random.Random):
    """Spec-to-schedule core shared by :func:`build_churn` and the serial
    sweep path, so pool and serial runs draw identical churn timelines."""
    if spec is None:
        return None
    from ..sim.faults import ChurnSchedule, random_churn

    if isinstance(spec, str):
        return ChurnSchedule.from_spec(spec, root=topology.root)
    if isinstance(spec, ChurnSchedule):
        return spec
    kind = spec.get("kind", "random")
    if kind != "random":
        raise ValueError(f"unknown churn spec kind {kind!r}")
    return random_churn(
        topology,
        spec["rate"],
        rng,
        horizon=spec.get("horizon", 4 * max(1, topology.diameter)),
        amnesiac=spec.get("amnesiac", 0.25),
        flap_rate=spec.get("flap_rate", 0.0),
        root=topology.root,
    )


def build_gray(unit: WorkUnit, topology: Topology, rng: random.Random):
    """Materialize the unit's gray-failure spec, consuming ``rng`` exactly
    as the serial sweep does (one draw block right after the churn slot)."""
    return materialize_gray(unit.gray, topology, rng)


def materialize_gray(spec: Any, topology: Topology, rng: random.Random):
    """Spec-to-schedule core shared by :func:`build_gray` and the serial
    sweep path, so pool and serial runs draw identical degradations."""
    if spec is None:
        return None
    from ..sim.faults import GrayFailureSchedule, random_gray

    if isinstance(spec, str):
        return GrayFailureSchedule.from_spec(spec)
    if isinstance(spec, GrayFailureSchedule):
        return spec
    kind = spec.get("kind", "random")
    if kind != "random":
        raise ValueError(f"unknown gray spec kind {kind!r}")
    return random_gray(
        topology,
        spec["rate"],
        rng,
        horizon=spec.get("horizon", 4 * max(1, topology.diameter)),
        link_rate=spec.get("link_rate"),
        max_severity=spec.get("max_severity", 2),
        root=topology.root,
    )


def build_byz(unit: WorkUnit, topology: Topology, rng: random.Random):
    """Materialize the unit's Byzantine spec, consuming ``rng`` exactly
    as the serial sweep does (one draw block right after the gray slot)."""
    return materialize_byz(unit.byz, topology, rng)


def materialize_byz(spec: Any, topology: Topology, rng: random.Random):
    """Spec-to-schedule core shared by :func:`build_byz` and the serial
    sweep path, so pool and serial runs draw identical compromises."""
    if spec is None:
        return None
    from ..sim.faults import ByzantineSchedule, random_byz

    if isinstance(spec, str):
        return ByzantineSchedule.from_spec(spec)
    if isinstance(spec, ByzantineSchedule):
        return spec
    kind = spec.get("kind", "random")
    if kind != "random":
        raise ValueError(f"unknown byz spec kind {kind!r}")
    return random_byz(
        topology,
        spec["rate"],
        rng,
        horizon=spec.get("horizon", 4 * max(1, topology.diameter)),
        root=topology.root,
        max_magnitude=spec.get("max_magnitude", 3),
    )


def build_injectors(unit: WorkUnit, topology: Topology) -> List[Any]:
    """Materialize the unit's injector specs (order: faults, corruption,
    adaptive) — the same order the CLI builds them in-process."""
    injectors: List[Any] = []
    if unit.inject:
        from ..sim.faults import MessageFaults

        injectors.append(MessageFaults.from_spec(unit.inject, seed=unit.seed))
    if unit.corrupt:
        from ..sim.faults import MessageCorruption

        injectors.append(
            MessageCorruption.from_spec(unit.corrupt, seed=unit.seed)
        )
    if unit.adaptive:
        from ..adversary.adaptive import make_adaptive

        injectors.append(
            make_adaptive(
                unit.adaptive, topology, f=unit.f or 1, seed=unit.seed
            )
        )
    return injectors


def execute_unit(unit: WorkUnit):
    """Run one work unit; the worker-process entry point.

    Reproduces the serial derivation exactly: ``rng = Random(seed)`` →
    inputs → schedule (→ optional root crash) → churn → gray → injectors
    → monitors → :func:`repro.analysis.runner.safe_run_protocol`.  Per-unit timeouts
    go through ``safe_run_protocol``'s own ``timeout_s`` path — workers
    execute in their process's main thread, so the ``SIGALRM`` wall-clock
    limit is exactly as hard there as in a serial run.

    Never raises (other than ``KeyboardInterrupt``/``SystemExit``): any
    unexpected error becomes a structured error record, matching
    ``safe_run_protocol``'s contract.
    """
    from ..analysis.runner import error_record, make_inputs, safe_run_protocol
    from ..core.caaf import by_name
    from ..obs import spans as _spans

    topology = unit.topology
    if _spans.enabled:
        # In-process (serial backend) with tracing armed: group this
        # unit's protocol spans under their own trace process.  Worker
        # processes never see the parent's tracer, so this is a no-op
        # for the process-pool backend.
        _spans.active().push_process(unit.label())
    try:
        rng = random.Random(unit.seed)
        inputs = make_inputs(topology, rng, max_input=unit.max_input)
        schedule = build_schedule(unit, topology, rng)
        churn = build_churn(unit, topology, rng)
        gray = build_gray(unit, topology, rng)
        byz = build_byz(unit, topology, rng)
        injectors = build_injectors(unit, topology)
        transport = unit.transport
        if gray is not None and transport is not None:
            # Coerce to a coordinator so the straggler oracle below
            # watches the same detector the run uses.
            from ..resilience.transport import as_transport

            transport = as_transport(transport)
        # Coerce integrity once so the monitor stack below shares the
        # coordinator with the run (same rule as run_protocol).
        from ..integrity.frames import as_integrity

        integrity = as_integrity(
            unit.integrity
            if unit.integrity is not None
            else getattr(unit.recovery, "integrity", None)
        )
        monitors = None
        if unit.monitors is not None:
            from ..sim.faults import corruption_sources
            from ..sim.monitors import standard_monitors

            monitors = standard_monitors(
                topology,
                inputs,
                f=unit.f,
                caaf=by_name(unit.caaf),
                mode=unit.monitors.get("mode", "record"),
                recovery=bool(unit.monitors.get("recovery")),
                corruption=corruption_sources(injectors),
                integrity=integrity,
                churn=churn is not None,
                gray=gray,
                transport=transport if gray is not None else None,
                byz=byz if byz is not None and byz.has_events else None,
            )
        record = safe_run_protocol(
            unit.protocol,
            topology,
            inputs,
            schedule=schedule,
            timeout_s=unit.timeout_s,
            retries=unit.retries,
            backoff_s=unit.backoff_s,
            seed=unit.seed,
            rng=rng,
            f=unit.f,
            b=unit.b,
            t=unit.t,
            c=unit.c,
            caaf=by_name(unit.caaf),
            strict=unit.strict,
            strict_monitors=unit.strict_monitors,
            injectors=tuple(injectors),
            monitors=monitors,
            capture_dir=unit.capture_dir,
            transport=transport,
            recovery=unit.recovery,
            integrity=integrity,
            churn=churn,
            churn_policy=unit.churn_policy,
            gray=gray,
            byz=byz,
            byz_config=unit.byz_config,
            allow_root_crash=unit.allow_root_crash,
        )
        record.seed = unit.seed
        if unit.inject and injectors:
            record.extra["injected_faults"] = injectors[0].counts.total
        if unit.corrupt:
            from ..sim.faults import MessageCorruption

            corrupter = next(
                i for i in injectors if isinstance(i, MessageCorruption)
            )
            record.extra["injected_corruptions"] = corrupter.counts.total
        return record
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # defensive: a unit must yield a row
        return error_record(
            unit.protocol, topology, exc, f=unit.f, seed=unit.seed
        )
    finally:
        if _spans.enabled:
            _spans.active().pop_process()


def plan_order(
    units: Sequence[WorkUnit], indices: Optional[Sequence[int]] = None
) -> List[int]:
    """Deterministic submission order: longest expected first.

    Ties break on the unit index, so the plan is a pure function of the
    unit list.  Output assembly is index-keyed, so this ordering can only
    change wall clock, never results.
    """
    pool = range(len(units)) if indices is None else indices
    return sorted(pool, key=lambda i: (-units[i].cost_hint, i))
