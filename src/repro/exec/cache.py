"""Content-addressed result cache for work units.

Each completed :class:`repro.exec.scheduler.WorkUnit` is stored under a
canonical SHA-256 of everything that determines its result: the topology
(structure, root, and name), protocol and parameters, seed, and the
code-relevant execution config (schedule / injector / monitor specs,
transport and recovery settings, strictness, retries, timeout).  Two
invocations that would compute the same record hash to the same entry,
so re-running a sweep or benchmark skips already-computed points;
anything that could change the record changes the hash.

Entries are one JSON file each, sharded by the first two hash characters
(``<root>/ab/abcdef....json``), holding the token (for paranoia-level
verification on read — a hash match with a token mismatch is treated as
a miss), the record, and a creation timestamp for ``gc --older-than``.

The store is safe under concurrent writers: entries are written to a
unique temp file and atomically renamed into place, and a cached record
round-trips through the same JSON canonicalization the sweep checkpoint
uses, so serving a hit is byte-equivalent to re-running the unit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from ..analysis.checkpoint import record_from_jsonable, record_to_jsonable
from ..analysis.runner import RunRecord
from .scheduler import WorkUnit

#: Bump when the execution semantics change in a way that invalidates
#: previously cached records.  v2: the token auto-enumerates every
#: :class:`WorkUnit` field (minus :data:`EXCLUDED_FIELDS`) instead of a
#: hand-maintained list — v1 silently omitted fields added after it was
#: written, so two units differing only in a new field (e.g. a corruption
#: spec) collided on one cache entry.
CACHE_VERSION = 2

#: WorkUnit fields that provably cannot affect the resulting record:
#: ``backoff_s`` only changes retry sleep timing, ``coords`` only the
#: checkpoint key.  Everything else is part of the cache identity —
#: including fields that don't exist yet.
EXCLUDED_FIELDS = frozenset({"backoff_s", "coords"})


def _topology_token(topology) -> Dict[str, Any]:
    return {
        "name": topology.name,
        "root": topology.root,
        "adjacency": {
            str(u): list(vs) for u, vs in sorted(topology.adjacency.items())
        },
    }


def _config_token(value) -> Any:
    """Transport/recovery/integrity configs serialize via ``as_jsonable``;
    coordinator objects expose their config first."""
    if value is None:
        return None
    config = getattr(value, "config", None)
    if config is not None and hasattr(config, "as_jsonable"):
        return config.as_jsonable()
    as_jsonable = getattr(value, "as_jsonable", None)
    if as_jsonable is not None:
        return as_jsonable()
    return repr(value)


def _field_token(name: str, value) -> Any:
    """One WorkUnit field's contribution to the cache token."""
    if name == "topology":
        return _topology_token(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (dict, list, tuple)):
        return value
    return _config_token(value)


def unit_cache_token(unit: WorkUnit) -> Dict[str, Any]:
    """The canonical jsonable identity of a unit's result.

    Every :class:`WorkUnit` dataclass field outside
    :data:`EXCLUDED_FIELDS` is enumerated automatically, so a field added
    to the unit can never be silently missing from the cache identity;
    the ``schema`` entry records which fields the token covers, so
    entries written before a field existed mismatch on read instead of
    serving a stale record.

    Round-tripped through JSON so non-string dict keys (e.g. an explicit
    schedule's node ids) canonicalize exactly as they will when an entry
    is read back — token equality is then a plain ``==``.
    """
    import dataclasses

    names = sorted(
        f.name
        for f in dataclasses.fields(WorkUnit)
        if f.name not in EXCLUDED_FIELDS
    )
    token: Dict[str, Any] = {
        "version": CACHE_VERSION,
        "schema": names,
    }
    for name in names:
        token[name] = _field_token(name, getattr(unit, name))
    return json.loads(json.dumps(token, sort_keys=True))


def unit_cache_hash(unit: WorkUnit) -> str:
    """SHA-256 (hex) of the canonical token."""
    blob = json.dumps(
        unit_cache_token(unit), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of completed run records on disk."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    # ------------------------------------------------------------------ #
    # Get / put.
    # ------------------------------------------------------------------ #

    def get(self, unit: WorkUnit) -> Optional[RunRecord]:
        """The cached record for ``unit``, or None (corrupt entry = miss)."""
        digest = unit_cache_hash(unit)
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry.get("token") != unit_cache_token(unit):
                self.misses += 1
                return None
            record = record_from_jsonable(entry["record"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, unit: WorkUnit, record: RunRecord) -> str:
        """Store one completed record; atomic against concurrent writers."""
        digest = unit_cache_hash(unit)
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "hash": digest,
            "saved_at": time.time(),
            "token": unit_cache_token(unit),
            "record": record_to_jsonable(record),
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    # ------------------------------------------------------------------ #
    # Inspection and maintenance (the `repro-agg cache` verb).
    # ------------------------------------------------------------------ #

    def _entries(self) -> Iterator[Tuple[str, os.stat_result]]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json") or name.startswith(".tmp-"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    yield path, os.stat(path)
                except OSError:
                    continue

    def stats(self) -> Dict[str, Any]:
        """Entry count, total bytes, age span, and per-protocol counts."""
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        by_protocol: Dict[str, int] = {}
        for path, stat in self._entries():
            entries += 1
            total_bytes += stat.st_size
            oldest = stat.st_mtime if oldest is None else min(oldest, stat.st_mtime)
            newest = stat.st_mtime if newest is None else max(newest, stat.st_mtime)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    protocol = json.load(fh)["token"]["protocol"]
            except (OSError, ValueError, KeyError, TypeError):
                protocol = "<corrupt>"
            by_protocol[protocol] = by_protocol.get(protocol, 0) + 1
        now = time.time()
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "oldest_age_s": round(now - oldest, 1) if oldest is not None else None,
            "newest_age_s": round(now - newest, 1) if newest is not None else None,
            "by_protocol": dict(sorted(by_protocol.items())),
        }

    def gc(self, older_than_s: float) -> int:
        """Delete entries older than ``older_than_s`` seconds; returns count."""
        cutoff = time.time() - older_than_s
        removed = 0
        for path, stat in list(self._entries()):
            if stat.st_mtime < cutoff:
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    continue
        self._prune_empty_shards()
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path, _ in list(self._entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        self._prune_empty_shards()
        return removed

    def _prune_empty_shards(self) -> None:
        if not os.path.isdir(self.root):
            return
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                try:
                    os.rmdir(shard_dir)
                except OSError:
                    pass


def parse_age(text: str) -> float:
    """Parse ``gc --older-than`` durations: ``90``/``90s``, ``15m``,
    ``12h``, ``7d``."""
    text = text.strip().lower()
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    factor = 1.0
    if text and text[-1] in units:
        factor = units[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"bad duration {text!r}: use e.g. 3600, 90s, 15m, 12h, 7d"
        ) from None
    if value < 0:
        raise ValueError("duration must be >= 0")
    return value * factor
