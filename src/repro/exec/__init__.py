"""Parallel execution engine for independent protocol runs.

Every workload in the repository — ``sweep_b``/``sweep_f`` grids, chaos
campaigns, adversary searches, and the benchmark suite — decomposes into
independent *(topology, params, seed)* work units.  This package fans
those units out over a process pool while keeping the results bit-identical
to a serial run:

* :mod:`repro.exec.scheduler` — the declarative :class:`WorkUnit` spec,
  its worker-side executor (:func:`execute_unit`), and the deterministic
  longest-expected-first submission plan;
* :mod:`repro.exec.cache` — a content-addressed result store keyed by a
  canonical hash of topology + protocol params + seed + code-relevant
  config, so re-running a sweep skips already-computed points;
* :mod:`repro.exec.progress` — structured JSONL telemetry (unit
  started/finished/cached/failed, worker utilization, ETA) plus the live
  CLI progress renderer that consumes it;
* :mod:`repro.exec.pool` — worker lifecycle (crashed-worker replacement,
  hung-worker reaping, graceful Ctrl-C draining) and the
  :class:`ExecutionEngine` front door.

Determinism contract: a unit's result depends only on the unit itself
(fresh ``random.Random(seed)`` per unit, no shared state), results are
assembled in unit-list order, and checkpoint writes go through an
in-order buffer — so any worker count and any completion order produce
byte-identical sweep output and checkpoint files.
"""

from .cache import ResultCache, unit_cache_hash, unit_cache_token
from .pool import (
    ExecutionEngine,
    ProcessBackend,
    SerialBackend,
    ShuffledBackend,
    pooled_map,
)
from .progress import ProgressEmitter, ProgressTracker, live_renderer
from .scheduler import WorkUnit, execute_unit, plan_order

__all__ = [
    "ExecutionEngine",
    "ProcessBackend",
    "ProgressEmitter",
    "ProgressTracker",
    "ResultCache",
    "SerialBackend",
    "ShuffledBackend",
    "WorkUnit",
    "execute_unit",
    "live_renderer",
    "plan_order",
    "pooled_map",
    "unit_cache_hash",
    "unit_cache_token",
]
