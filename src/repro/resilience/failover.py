"""Deterministic root failover: elect a replacement root and re-run.

Section 2 of the paper makes the root immortal; the protocol stack
hard-rejects any schedule that crashes it (``ROOT_CRASH_ERROR``).  This
module is the opt-in escape hatch for running *beyond* that assumption:

* An epoch runs the protocol normally, except the network is built with
  ``allow_root_crash=True`` and stops as soon as the root dies.
* When the root dies without an output, surviving nodes elect the
  **lowest-id live neighbour of the dead root** via a bounded min-id
  flood (:class:`ElectionNode`), optionally under the reliable transport
  so the election itself tolerates message faults.
* A new epoch restarts the protocol on the elected root's surviving
  component, with the remaining crash schedule shifted onto the new
  epoch's timeline — the same shifting idiom
  :func:`repro.core.veri.run_agg_veri_pair` uses between AGG and VERI.
* Election bits and rounds are booked as recovery *overhead* (they are
  not protocol CC); epoch stats merge via :meth:`SimStats.absorb`.

The orchestrator returns a :class:`RecoveryOutcome` whose
``partial`` field is a :class:`repro.resilience.partial.PartialAggregateResult`:
exact when nothing went wrong, a certified partial over the surviving
component after a successful failover, and an uncertified best-effort
value when any recovery budget was exhausted against live peers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..integrity.frames import (
    IntegrityConfig,
    IntegrityCoordinator,
    as_integrity,
    unresolved_corruptions,
)
from ..sim.faults import corruption_sources
from ..sim.message import Part, TAG_BITS, id_bits
from ..sim.network import Network
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from .partial import PartialAggregateResult, certify
from .transport import (
    ReliableTransport,
    TransportConfig,
    wrap_network_args,
)

ELECT_KIND = "elect"

#: Protocols the failover orchestrator knows how to restart.
RECOVERABLE_PROTOCOLS = ("algorithm1", "unknown_f")


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the self-healing runtime is allowed to do.

    Attributes:
        transport: Reliable-transport config for every epoch (and the
            elections); ``None`` runs the raw lossy network.
        failover: Whether a dead root triggers election + re-run.
        max_epochs: Total protocol epochs (first run included).
        election_stretch: Election flood horizon in units of the
            topology diameter (the bounded-flood budget).
        integrity: Authenticated-frame config for every epoch (and the
            elections); ``None`` (or mode ``"off"``) runs without
            integrity verification.
    """

    transport: Optional[TransportConfig] = None
    failover: bool = True
    max_epochs: int = 3
    election_stretch: int = 2
    integrity: Optional[IntegrityConfig] = None

    def __post_init__(self) -> None:
        if self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.election_stretch < 1:
            raise ValueError(
                f"election_stretch must be >= 1, got {self.election_stretch}"
            )

    @classmethod
    def default(cls, retransmit_budget: int = 5) -> "RecoveryPolicy":
        """The CLI's ``--recover`` stack: transport + failover.

        Five retransmissions keep every observed frame loss recoverable
        at the chaos harness's reference rates (drop 0.05, plus small
        duplicate/delay rates) — the CI gate requires zero uncertified
        partials there, and a delayed retransmission can slip past one
        whole window before the next NACK cycle repairs it.
        """
        return cls(transport=TransportConfig(retransmits=retransmit_budget))

    def as_jsonable(self) -> Dict[str, object]:
        return {
            "transport": self.transport.as_jsonable() if self.transport else None,
            "failover": self.failover,
            "max_epochs": self.max_epochs,
            "election_stretch": self.election_stretch,
            "integrity": self.integrity.as_jsonable() if self.integrity else None,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "RecoveryPolicy":
        transport = data.get("transport")
        integrity = data.get("integrity")
        return cls(
            transport=TransportConfig.from_jsonable(transport)
            if transport
            else None,
            failover=bool(data.get("failover", True)),
            max_epochs=int(data.get("max_epochs", 3)),
            election_stretch=int(data.get("election_stretch", 2)),
            integrity=IntegrityConfig.from_jsonable(integrity)
            if integrity
            else None,
        )


class ElectionNode(NodeHandler):
    """Min-id flood: every candidate floods its id; everyone keeps the min."""

    def __init__(self, node_id: int, is_candidate: bool, bits_per_id: int) -> None:
        self.node_id = node_id
        self.bits_per_id = bits_per_id
        self.best: Optional[int] = node_id if is_candidate else None
        self._announce = is_candidate

    def on_round(self, rnd: int, inbox) -> List[Part]:
        for envelope in inbox:
            if envelope.part.kind != ELECT_KIND:
                continue
            (candidate,) = envelope.part.payload
            if self.best is None or candidate < self.best:
                self.best = candidate
                self._announce = True
        if self._announce:
            self._announce = False
            return [
                Part(ELECT_KIND, (self.best,), TAG_BITS + self.bits_per_id)
            ]
        return []

    def wants_to_stop(self) -> bool:
        return False


@dataclass
class EpochReport:
    """One protocol epoch inside a recovery run."""

    epoch: int
    root: int
    n_nodes: int
    rounds: int
    result: Optional[int]
    root_crashed: bool


@dataclass
class ElectionReport:
    """One election between epochs."""

    old_root: int
    elected: int
    candidates: Tuple[int, ...]
    rounds: int
    agreed: bool


@dataclass
class RecoveryOutcome:
    """Everything a recovery run produced."""

    partial: PartialAggregateResult
    stats: SimStats
    rounds: int
    epochs: List[EpochReport]
    elections: List[ElectionReport] = field(default_factory=list)
    transports: List[ReliableTransport] = field(default_factory=list)
    #: The last epoch's network (effective crash map, liveness queries).
    network: Optional[Network] = None

    @property
    def result(self) -> Optional[int]:
        return self.partial.value


def _shift_crash_map(
    crash_rounds: Dict[int, float], elapsed: int, nodes
) -> Dict[int, int]:
    """Re-base a crash map after ``elapsed`` executed physical rounds.

    Nodes already dead come back as crash round 1 (dead from the first
    round of the next phase); pending crashes keep their remaining fuse.
    Same idiom as the AGG->VERI schedule shift in ``run_agg_veri_pair``.
    """
    keep = set(nodes)
    return {
        u: max(1, int(rnd) - elapsed)
        for u, rnd in crash_rounds.items()
        if u in keep and rnd != float("inf")
    }


def _run_election(
    topology: Topology,
    crash_rounds: Dict[int, int],
    candidates: Sequence[int],
    injectors: Sequence,
    policy: RecoveryPolicy,
    integrity: Optional[IntegrityCoordinator] = None,
) -> Tuple[ElectionReport, SimStats]:
    """Flood candidate ids for a bounded horizon; lowest id wins."""
    bits_per_id = id_bits(max(topology.nodes()) + 1)
    candidate_set = set(candidates)
    handlers = {
        u: ElectionNode(u, u in candidate_set, bits_per_id)
        for u in topology.nodes()
    }
    transport = (
        ReliableTransport(policy.transport) if policy.transport else None
    )
    wrapped, overhead_fn, window = wrap_network_args(
        transport, handlers, topology.adjacency
    )
    if integrity is not None:
        # Elections carry min-id floods: a flipped candidate id would
        # silently elect the wrong root, so they are authenticated too.
        wrapped = integrity.wrap(wrapped)
        overhead_fn = integrity.overhead_fn(overhead_fn)
    horizon = (policy.election_stretch * topology.diameter + 2) * window + (
        1 if transport else 0
    )
    network = Network(
        topology.adjacency,
        wrapped,
        crash_rounds=crash_rounds,
        injectors=injectors,
        overhead_fn=overhead_fn,
    )
    stats = network.run(horizon, stop_on_output=False)
    elected = min(candidate_set)
    failed = {u for u in topology.nodes() if not network.is_alive(u)}
    if elected in failed:
        agreed = False
    else:
        component = Topology(
            topology.adjacency, name=topology.name, root=elected
        ).alive_component(failed)
        agreed = all(handlers[u].best == elected for u in component)
    report = ElectionReport(
        old_root=topology.root,
        elected=elected,
        candidates=tuple(sorted(candidate_set)),
        rounds=stats.rounds_executed,
        agreed=agreed,
    )
    return report, stats


def _run_epoch(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: FailureSchedule,
    *,
    f: Optional[int],
    b: Optional[int],
    c: int,
    caaf,
    rng: Optional[random.Random],
    injectors: Sequence,
    monitors: Sequence,
    transport: Optional[ReliableTransport],
    integrity: Optional[IntegrityCoordinator] = None,
):
    from ..core.algorithm1 import run_algorithm1
    from ..core.unknown_f import run_unknown_f

    if protocol == "algorithm1":
        return run_algorithm1(
            topology,
            inputs,
            f=f if f is not None else 0,
            b=b if b is not None else 21 * c,
            schedule=schedule,
            c=c,
            caaf=caaf,
            rng=rng,
            injectors=injectors,
            monitors=monitors,
            transport=transport,
            integrity=integrity,
            allow_root_crash=True,
        )
    if protocol == "unknown_f":
        return run_unknown_f(
            topology,
            inputs,
            schedule=schedule,
            c=c,
            caaf=caaf,
            injectors=injectors,
            monitors=monitors,
            transport=transport,
            integrity=integrity,
            allow_root_crash=True,
        )
    raise ValueError(
        f"recovery supports protocols {RECOVERABLE_PROTOCOLS}, got {protocol!r}"
    )


def run_with_recovery(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    schedule: Optional[FailureSchedule] = None,
    *,
    f: Optional[int] = None,
    b: Optional[int] = None,
    c: int = 2,
    caaf=None,
    rng: Optional[random.Random] = None,
    injectors: Sequence = (),
    monitors: Sequence = (),
    policy: Optional[RecoveryPolicy] = None,
    integrity=None,
) -> RecoveryOutcome:
    """Run ``protocol`` under the self-healing runtime.

    Epochs run until the (current) root terminates with an output or the
    ``policy.max_epochs`` budget is exhausted; between epochs a dead root
    is replaced by the lowest-id live neighbour, elected by bounded
    flood.  The returned outcome's ``partial`` carries the certified
    coverage, bounds, and health status (see
    :mod:`repro.resilience.partial`).
    """
    from ..core.caaf import SUM

    caaf = caaf or SUM
    policy = policy or RecoveryPolicy.default()
    schedule = schedule or FailureSchedule()
    # One coordinator spans every epoch and election, so rejection
    # records accumulate against the (likewise run-long) corruption
    # injector ground truth.  An explicit coordinator argument (from a
    # caller that also wired it into monitors) wins over the policy's.
    integrity = as_integrity(integrity if integrity is not None else policy.integrity)

    combined = SimStats()
    epochs: List[EpochReport] = []
    elections: List[ElectionReport] = []
    transports: List[ReliableTransport] = []
    live_gap_count = 0

    topo, inp, sched = topology, dict(inputs), schedule
    value: Optional[int] = None
    reason = "clean"
    final_network: Optional[Network] = None
    final_topo = topo

    for epoch in range(1, policy.max_epochs + 1):
        transport = (
            ReliableTransport(policy.transport) if policy.transport else None
        )
        outcome = _run_epoch(
            protocol,
            topo,
            inp,
            sched,
            f=f,
            b=b,
            c=c,
            caaf=caaf,
            rng=rng,
            injectors=injectors,
            monitors=monitors,
            transport=transport,
            integrity=integrity,
        )
        network = outcome.network
        combined.absorb(outcome.stats)
        if transport is not None:
            transports.append(transport)
            # Quarantined links count as live gaps on purpose: the
            # receiver stopped listening, so any protocol frame starved
            # by the quarantine is real data loss and must decertify the
            # result (a quarantine never excuses a wrong answer into a
            # certified one).
            live_gap_count += len(transport.live_gaps(network.crash_rounds))
        root_crashed = not network.is_alive(topo.root)
        epochs.append(
            EpochReport(
                epoch=epoch,
                root=topo.root,
                n_nodes=topo.n_nodes,
                rounds=outcome.rounds,
                result=outcome.result,
                root_crashed=root_crashed,
            )
        )
        final_network, final_topo = network, topo

        if outcome.result is not None:
            value = outcome.result
            reason = "recovered" if epoch > 1 else "clean"
            break
        if not root_crashed:
            reason = "protocol produced no output"
            break
        if not policy.failover:
            reason = "root crashed (failover disabled)"
            break
        if epoch == policy.max_epochs:
            reason = "failover budget exhausted"
            break

        # ---- elect a replacement root among live neighbours ---------- #
        live = {u for u in topo.nodes() if network.is_alive(u)}
        candidates = [v for v in topo.adjacency[topo.root] if v in live]
        if not candidates:
            reason = "no live neighbour of the crashed root"
            break
        election_crashes = _shift_crash_map(
            network.crash_rounds, outcome.rounds, topo.nodes()
        )
        report, election_stats = _run_election(
            topo, election_crashes, candidates, injectors, policy, integrity
        )
        combined.absorb(election_stats, as_overhead=True)
        elections.append(report)

        # ---- rebuild the world around the elected root --------------- #
        elapsed = outcome.rounds + report.rounds
        still_live = {
            u
            for u in topo.nodes()
            if network.crash_rounds.get(u, float("inf")) > elapsed
        }
        if report.elected not in still_live:
            reason = "elected root crashed during election"
            break
        component = Topology(
            topo.adjacency, name=topo.name, root=report.elected
        ).alive_component(set(topo.nodes()) - still_live)
        sub_adjacency = {
            u: [v for v in topo.adjacency[u] if v in component]
            for u in component
        }
        topo = Topology(
            sub_adjacency,
            name=f"{topo.name}+failover{epoch}",
            root=report.elected,
        )
        inp = {u: inp[u] for u in component}
        sched = FailureSchedule(
            _shift_crash_map(network.crash_rounds, elapsed, component)
        )

    elected_root = elections[-1].elected if elections else None
    elections_agreed = all(e.agreed for e in elections)
    certified = value is not None and live_gap_count == 0 and elections_agreed
    if value is not None and not elections_agreed:
        reason += "; election diverged"
    if value is not None and live_gap_count:
        reason += f"; {live_gap_count} unexcused transport gap(s)"
    # Integrity ladder: any delivered corruption the integrity layer never
    # rejected clears the integrity-verified bit (certify() decertifies).
    corruption = corruption_sources(injectors)
    unresolved = (
        len(unresolved_corruptions(corruption, integrity)) if corruption else 0
    )
    extra = {"elections": len(elections)}
    if corruption:
        extra["delivered_corruptions"] = sum(
            len(s.delivered_corruptions) for s in corruption
        )
        extra["unresolved_corruptions"] = unresolved
    if integrity is not None:
        counters = integrity.counters()
        extra["integrity_rejected"] = counters["rejected"]
        extra["quarantined_links"] = sorted(integrity.quarantined_links)
        if counters.get("quarantined_nodes"):
            extra["quarantined_nodes"] = (
                integrity.quarantine.quarantined_node_ids()
            )

    if final_network is not None and final_network.is_alive(final_topo.root):
        failed = {
            u for u in final_topo.nodes() if not final_network.is_alive(u)
        }
        survivors = final_topo.alive_component(failed)
    else:
        survivors = set()
    partial = certify(
        value,
        all_nodes=topology.nodes(),
        covered=survivors,
        inputs=inputs,
        caaf=caaf,
        certified=certified,
        reason=reason,
        epochs=len(epochs),
        elected_root=elected_root,
        overhead_bits=combined.max_overhead_bits,
        live_gaps=live_gap_count,
        unresolved_corruptions=unresolved,
        extra=extra,
    )
    return RecoveryOutcome(
        partial=partial,
        stats=combined,
        rounds=combined.rounds_executed,
        epochs=epochs,
        elections=elections,
        transports=transports,
        network=final_network,
    )
