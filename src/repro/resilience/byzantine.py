"""Byzantine-tolerant aggregation: witness audit, eviction, influence bounds.

The integrity layer (PR 5) authenticates the *channel*: a MAC'd frame
proves who sent a claim, not that the claim is true.  A compromised node
signs lies with its own key — equivocating sub-aggregates, inflating its
contribution, replaying stale claims, or selectively omitting copies
(:class:`repro.sim.faults.ByzantineSchedule`).  This module is the
defence, in three pieces:

**Witness cross-validation.**  Every sub-aggregate claim a node delivers
is echoed (content digest + tag) to ``k`` deterministically elected
witnesses of the sender — its first ``k`` sorted neighbours, an election
every node computes locally from the adjacency it already knows.  Echoes
travel over the reliable broadcast layer and are booked as
``overhead_bits``, never protocol CC.  The
:class:`WitnessCoordinator` models the witnesses' pooled view: because
local broadcast reaches every neighbour and echoes are reliable, the
pool collectively sees every *delivered* copy of every claim.

**Accusation / conviction.**  From the pooled view, four sound checks —
no honest node can trip any of them under the Byzantine fault model
(which excludes message corruption, drops, and link flaps by
construction; see the CLI's fault-schedule validator):

* *same-round equivocation*: two delivered copies of one broadcast claim
  with different payloads are two authenticated contradictory frames —
  the classic equivocation proof;
* *flood/claim contradiction*: AGG finalizes ``psum`` in the node's
  phase-2 slot and floods the same field in phase 3
  (:class:`repro.core.agg.AggNode` never mutates it in between), so a
  self-flood differing from the node's aggregation claim of the same AGG
  instance is equally contradictory;
* *influence (delta) audit*: a node's claim minus the child claims it
  provably folded (the ``aggregation`` parts delivered to it in its slot
  round, restricted to acked children) is its own contribution, which
  for a sum-like CAAF must lie in ``[0, v_max]``;
* *selective omission*: a local broadcast reaches every live neighbour
  or none (a dead sender's copies all drop together), so a claim
  delivered to a strict non-empty subset of the sender's live neighbours
  was selectively suppressed.

A conviction drives **eviction** through the epoch discard-and-retry
machinery: the tainted epoch's bits are discarded (booked as overhead),
the convicted nodes are crashed at round 1 of a rerun, and the protocol
budget ``f`` is raised by their incident edges.  Under
``evict_policy="flag"`` convictions only decertify.

**Influence-bounded certification.**  Any lie that survives the audit is
a contribution still inside ``[0, v_max]``, i.e. per surviving
compromised node at most ``v_max`` of error, and errors add linearly for
sum-like CAAFs.  With declared budget ``b`` and ``e`` evicted nodes the
result therefore ships with the deterministic bound
``|error| <= (b - e) * v_max`` on the aggregate over its coverage —
the :class:`repro.resilience.partial.PartialAggregateResult` ladder's
new ``influence_bound`` rung.  A result is *exact* only when the
residual budget is zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..obs import metrics as _metrics
from ..obs import spans as _spans
from ..sim.faults import FaultInjector
from ..sim.message import TAG_BITS, id_bits
from ..sim.monitors import FBudgetMonitor
from ..sim.network import Network
from ..sim.stats import SimStats
from .failover import RECOVERABLE_PROTOCOLS, _run_epoch
from .partial import PartialAggregateResult, certify

#: Eviction policies: ``evict`` reruns without convicted nodes (the
#: discard-and-retry path); ``flag`` only decertifies.
EVICT_POLICIES = ("evict", "flag")

#: CAAFs the influence audit can invert (group aggregates with a known
#: per-node contribution range).
AUDITABLE_CAAFS = ("SUM", "COUNT")

#: Bits of the content digest carried by one witness echo frame.
ECHO_DIGEST_BITS = 32

#: Wire kinds that are first-person sub-aggregate claims (the flood kind
#: only when the payload's source *is* the sender — relays are someone
#: else's claim).
CLAIM_KINDS = ("aggregation", "flooded_psum")

#: Conviction reasons.
REASON_EQUIVOCATION = "equivocation"
REASON_INFLUENCE = "influence"
REASON_OMISSION = "omission"


@dataclass(frozen=True)
class ByzantineConfig:
    """What the witness/eviction defence is allowed to do.

    Attributes:
        witnesses: Echo fan-out ``k`` — every delivered claim is echoed
            to the sender's first ``k`` sorted neighbours.
        evict_policy: ``evict`` reruns without convicted nodes;
            ``flag`` records convictions and decertifies.
        max_epochs: Total protocol epochs (first run included) the
            eviction loop may spend.
    """

    witnesses: int = 2
    evict_policy: str = "evict"
    max_epochs: int = 3

    def __post_init__(self) -> None:
        if self.witnesses < 1:
            raise ValueError(f"witnesses must be >= 1, got {self.witnesses}")
        if self.evict_policy not in EVICT_POLICIES:
            raise ValueError(
                f"evict_policy must be one of {EVICT_POLICIES}, "
                f"got {self.evict_policy!r}"
            )
        if self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")

    def as_jsonable(self) -> Dict[str, object]:
        return {
            "witnesses": self.witnesses,
            "evict_policy": self.evict_policy,
            "max_epochs": self.max_epochs,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "ByzantineConfig":
        return cls(
            witnesses=int(data.get("witnesses", 2)),
            evict_policy=str(data.get("evict_policy", "evict")),
            max_epochs=int(data.get("max_epochs", 3)),
        )


@dataclass(frozen=True)
class Accusation:
    """One cross-validation finding, raised by an elected witness."""

    epoch: int
    gen: int
    round: Optional[int]
    accuser: int
    accused: int
    reason: str
    detail: str


@dataclass(frozen=True)
class Conviction:
    """An accusation backed by proof (two contradictory authenticated
    frames, an out-of-range contribution, or a partial delivery set)."""

    node: int
    epoch: int
    gen: int
    round: Optional[int]
    reason: str
    proof: str


class WitnessTap(FaultInjector):
    """Delivery observer feeding the :class:`WitnessCoordinator`.

    Models the pooled witness view: ``arrange_inbox`` logs every
    delivered envelope (and returns it untouched — the tap never
    modifies delivery content; ``modifies_delivery`` is set only so the
    network routes inboxes through it), ``end_round`` closes the round
    so partial-delivery checks see the complete picture.  The tap is
    attached *after* the Byzantine schedule, so it observes exactly what
    receivers observed.
    """

    modifies_delivery = True

    def __init__(self, coordinator: "WitnessCoordinator") -> None:
        super().__init__()
        self.coordinator = coordinator

    def attach(self, network: Network) -> None:
        super().attach(network)
        self.coordinator.begin_gen(network)

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        self.coordinator.observe_inbox(rnd, receiver, envelopes)
        return envelopes

    def end_round(self, rnd: int) -> None:
        self.coordinator.finish_round(rnd)


class WitnessCoordinator:
    """Pooled witness view: observation ledger, audits, convictions.

    One coordinator lives across all epochs of a
    :func:`run_with_byzantine` run.  Each network build (AGG/VERI pairs
    may build several per epoch) starts a new *generation* via the tap's
    ``attach``; each generation is audited independently — equivocation
    and omission as rounds close, the flood/claim and influence audits
    when the generation ends (claims from different generations never
    cross-contaminate an audit).
    """

    def __init__(
        self,
        topology: Topology,
        inputs: Dict[int, int],
        caaf,
        config: ByzantineConfig,
        budget: int,
        integrity=None,
    ) -> None:
        self.topology = topology
        self.caaf = caaf
        self.config = config
        #: Declared adversary budget b (certification assumption).
        self.budget = budget
        self.integrity = integrity
        self.root = topology.root
        self._adj = {
            u: tuple(sorted(vs)) for u, vs in topology.adjacency.items()
        }
        self._id_bits = id_bits(topology.n_nodes)
        #: Per-node honest contribution ceiling: COUNT contributes
        #: ``prepare(x) = 1``, SUM contributes ``prepare(x) = x``.
        self.v_max = (
            1
            if caaf.name == "COUNT"
            else max(inputs.values(), default=0)
        )
        self.gen = -1
        self.epoch = 0
        self._network: Optional[Network] = None
        #: Per-gen delivery ledger: ``(rnd, receiver, sender, kind,
        #: payload)`` for tree/claim kinds.
        self._deliveries: List[Tuple] = []
        #: Direct claims of the round in flight:
        #: ``{(sender, kind, source): {receiver: payload}}``.
        self._round_claims: Dict[Tuple, Dict[int, tuple]] = {}
        self.accusations: List[Accusation] = []
        self.convictions: Dict[int, Conviction] = {}
        self._fresh: Set[int] = set()
        #: Echo traffic per echoing node (overhead, never protocol CC).
        self.echo_bits: Dict[int, int] = {}
        self.echoes = 0

    # ---------------------------------------------------------------- #
    # Witness election.
    # ---------------------------------------------------------------- #

    def witnesses_of(self, sender: int) -> Tuple[int, ...]:
        """Deterministic election: the sender's first ``k`` sorted
        neighbours — computable by every node from local knowledge."""
        return self._adj.get(sender, ())[: self.config.witnesses]

    def _accuser_for(self, accused: int) -> int:
        witnesses = self.witnesses_of(accused)
        return witnesses[0] if witnesses else self.root

    # ---------------------------------------------------------------- #
    # Observation (fed by the tap).
    # ---------------------------------------------------------------- #

    def begin_gen(self, network: Network) -> None:
        """A new network build: audit the finished generation first."""
        self._finalize_gen()
        self.gen += 1
        self._network = network
        self._deliveries = []
        self._round_claims = {}

    def observe_inbox(self, rnd: int, receiver: int, envelopes) -> None:
        for env in envelopes:
            parts = self._unwrap(env.sender, env.part)
            for kind, payload in parts:
                if kind not in (
                    "aggregation",
                    "flooded_psum",
                    "ack",
                    "tree_construct",
                ):
                    continue
                self._deliveries.append(
                    (rnd, receiver, env.sender, kind, payload)
                )
                if self._is_direct_claim(env.sender, kind, payload):
                    source = payload[0] if kind == "flooded_psum" else None
                    self._round_claims.setdefault(
                        (env.sender, kind, source), {}
                    )[receiver] = payload
                    self._book_echo(env.sender, receiver)

    def _unwrap(self, sender: int, part) -> List[Tuple[str, tuple]]:
        """Peel an authenticated frame down to its inner parts.

        A frame whose tag does not verify is dropped by the integrity
        layer before the protocol sees it, so the witness pool ignores
        it too (under the Byzantine fault model every frame verifies —
        a compromised node re-signs its lies with its own key).
        """
        if part.kind != "integ_frame":
            return [(part.kind, part.payload)]
        try:
            seq, claimed_sender, inner, tag = part.payload
        except (TypeError, ValueError):
            return []
        if claimed_sender != sender:
            return []
        if self.integrity is not None:
            from ..integrity.frames import compute_tag

            if compute_tag(self.integrity, claimed_sender, seq, inner) != tag:
                return []
        return [(kind, payload) for kind, payload, _bits in inner]

    @staticmethod
    def _is_direct_claim(sender: int, kind: str, payload) -> bool:
        if kind == "aggregation":
            return True
        if kind == "flooded_psum":
            return bool(payload) and payload[0] == sender
        return False

    def _book_echo(self, sender: int, receiver: int) -> None:
        """One delivered claim -> one echo from the receiver to each
        elected witness of the sender (minus itself)."""
        fanout = sum(1 for w in self.witnesses_of(sender) if w != receiver)
        if not fanout:
            return
        frame = TAG_BITS + 2 * self._id_bits + ECHO_DIGEST_BITS
        self.echoes += fanout
        self.echo_bits[receiver] = (
            self.echo_bits.get(receiver, 0) + fanout * frame
        )

    # ---------------------------------------------------------------- #
    # Convictions.
    # ---------------------------------------------------------------- #

    def _convict(
        self,
        node: int,
        reason: str,
        proof: str,
        rnd: Optional[int] = None,
    ) -> None:
        accuser = self._accuser_for(node)
        self.accusations.append(
            Accusation(
                self.epoch, self.gen, rnd, accuser, node, reason, proof
            )
        )
        if _spans.enabled:
            _spans.active().event(
                "byz.accusation",
                cat="byzantine",
                tid=accuser,
                round=rnd or 0,
                accused=node,
                reason=reason,
            )
        if _metrics.enabled:
            _metrics.active().counter(
                "byz_accusations", "witness accusations raised"
            ).inc(reason=reason)
        if node in self.convictions:
            return
        self.convictions[node] = Conviction(
            node, self.epoch, self.gen, rnd, reason, proof
        )
        self._fresh.add(node)
        if _spans.enabled:
            _spans.active().event(
                "byz.conviction",
                cat="byzantine",
                tid=accuser,
                round=rnd or 0,
                accused=node,
                reason=reason,
            )
        if _metrics.enabled:
            _metrics.active().counter(
                "byz_convictions", "nodes convicted by the witness pool"
            ).inc(reason=reason)

    def take_new_convictions(self) -> Set[int]:
        """Convictions since the last call (the eviction loop's cue)."""
        fresh, self._fresh = self._fresh, set()
        return fresh

    # ---------------------------------------------------------------- #
    # Round-close checks: equivocation + selective omission.
    # ---------------------------------------------------------------- #

    def finish_round(self, rnd: int) -> None:
        network = self._network
        claims, self._round_claims = self._round_claims, {}
        for (sender, kind, source), seen in sorted(
            claims.items(), key=lambda kv: (kv[0][0], kv[0][1], str(kv[0][2]))
        ):
            if sender == self.root:
                continue
            variants = sorted(set(seen.values()))
            if len(variants) > 1:
                self._convict(
                    sender,
                    REASON_EQUIVOCATION,
                    f"round {rnd}: {kind} claim delivered as "
                    f"{variants[0]} and {variants[1]} — two authenticated "
                    "contradictory frames",
                    rnd,
                )
            if network is None:
                continue
            expected = {
                u
                for u in self._adj.get(sender, ())
                if network.is_alive(u, rnd)
            }
            missing = expected - set(seen)
            if missing and seen:
                self._convict(
                    sender,
                    REASON_OMISSION,
                    f"round {rnd}: {kind} claim reached "
                    f"{sorted(seen)} but was withheld from live "
                    f"neighbours {sorted(missing)}",
                    rnd,
                )

    # ---------------------------------------------------------------- #
    # Generation-close audits: flood/claim consistency + influence.
    # ---------------------------------------------------------------- #

    def finalize(self) -> None:
        """Audit the final (still open) generation."""
        self._finalize_gen()
        self._deliveries = []

    def _instances(self) -> List[List[Tuple]]:
        """Split a generation's deliveries into AGG instances.

        A ``tree_construct`` beacon arriving after claims were seen
        opens a new instance (Algorithm 1 embeds sequential AGG
        executions on one network; each starts with a construction
        wave).
        """
        instances: List[List[Tuple]] = [[]]
        saw_claims = False
        last_boundary = None
        for entry in sorted(self._deliveries, key=lambda e: e[0]):
            rnd, _receiver, _sender, kind, _payload = entry
            if kind == "tree_construct" and saw_claims:
                if last_boundary != rnd:
                    instances.append([])
                    saw_claims = False
                    last_boundary = rnd
            elif kind in CLAIM_KINDS:
                saw_claims = True
            instances[-1].append(entry)
        return instances

    def _finalize_gen(self) -> None:
        if not self._deliveries:
            return
        for instance in self._instances():
            self._audit_instance(instance)

    def _audit_instance(self, deliveries: Sequence[Tuple]) -> None:
        children: Dict[int, Set[int]] = {}
        #: sender -> (delivered_round, psum) of its aggregation claim.
        claim: Dict[int, Tuple[int, int]] = {}
        #: (receiver, round) -> {sender: psum} of delivered claims.
        folded_view: Dict[Tuple[int, int], Dict[int, int]] = {}
        floods: Dict[int, List[Tuple[int, int]]] = {}
        for rnd, receiver, sender, kind, payload in deliveries:
            if kind == "ack" and payload == (receiver,):
                children.setdefault(receiver, set()).add(sender)
            elif kind == "aggregation":
                psum = payload[0]
                claim.setdefault(sender, (rnd, psum))
                folded_view.setdefault((receiver, rnd), {})[sender] = psum
            elif kind == "flooded_psum" and payload[0] == sender:
                floods.setdefault(sender, []).append((rnd, payload[1]))

        for sender in sorted(set(claim) | set(floods)):
            if sender == self.root or sender in self.convictions:
                continue
            claimed = claim.get(sender)
            for rnd, flood_psum in floods.get(sender, ()):
                if claimed is not None and flood_psum != claimed[1]:
                    self._convict(
                        sender,
                        REASON_EQUIVOCATION,
                        f"flooded psum {flood_psum} contradicts the "
                        f"node's aggregation claim {claimed[1]} of the "
                        "same AGG instance (psum is final after the "
                        "phase-2 slot)",
                        rnd,
                    )
                    break
            if sender in self.convictions:
                continue
            if self.caaf.name not in AUDITABLE_CAAFS:
                continue
            if claimed is not None:
                rnd, psum = claimed
            elif floods.get(sender):
                # A node beyond tree depth cd floods its bare input
                # without ever folding (no phase-2 slot).
                rnd, psum = floods[sender][0]
            else:
                continue
            folded = folded_view.get((sender, rnd - 1), {})
            folded_sum = sum(
                p
                for child, p in folded.items()
                if child in children.get(sender, ())
            )
            contribution = psum - folded_sum
            if not 0 <= contribution <= self.v_max:
                self._convict(
                    sender,
                    REASON_INFLUENCE,
                    f"claimed psum {psum} minus the {len(folded)} folded "
                    f"child claims ({folded_sum}) leaves a contribution "
                    f"of {contribution}, outside [0, {self.v_max}]",
                    rnd,
                )

    # ---------------------------------------------------------------- #
    # Reporting.
    # ---------------------------------------------------------------- #

    @property
    def total_echo_bits(self) -> int:
        return sum(self.echo_bits.values())

    def counters(self) -> Dict[str, int]:
        return {
            "witnesses": self.config.witnesses,
            "echoes": self.echoes,
            "echo_bits": self.total_echo_bits,
            "accusations": len(self.accusations),
            "convictions": len(self.convictions),
        }


@dataclass
class ByzEpochReport:
    """One protocol epoch inside a Byzantine-defended run."""

    epoch: int
    rounds: int
    result: Optional[int]
    convicted: Tuple[int, ...]
    discarded: bool = False


@dataclass
class ByzantineOutcome:
    """Everything a Byzantine-defended run produced."""

    partial: PartialAggregateResult
    result: Optional[int]
    stats: SimStats
    rounds: int
    network: Optional[Network]
    epochs: List[ByzEpochReport]
    coordinator: WitnessCoordinator
    evicted: Tuple[int, ...]

    @property
    def convictions(self) -> Dict[int, Conviction]:
        return self.coordinator.convictions

    @property
    def accusations(self) -> List[Accusation]:
        return self.coordinator.accusations


def _merged_crashes(
    schedule: FailureSchedule, evicted: Set[int]
) -> FailureSchedule:
    crashes = dict(schedule.crash_rounds)
    for node in evicted:
        crashes[node] = min(1, crashes.get(node, 1))
    return FailureSchedule(crashes)


def run_with_byzantine(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    byz,
    schedule: Optional[FailureSchedule] = None,
    *,
    f: Optional[int] = None,
    b: Optional[int] = None,
    c: int = 2,
    caaf=None,
    rng: Optional[random.Random] = None,
    injectors: Sequence = (),
    monitors: Sequence = (),
    config: Optional[ByzantineConfig] = None,
    integrity=None,
) -> ByzantineOutcome:
    """Run ``protocol`` under a Byzantine schedule with the witness defence.

    The first epoch runs with the compromised nodes in place; every
    conviction (under ``evict_policy="evict"``) discards the tainted
    epoch — its bits become overhead — and reruns with the convicted
    nodes crashed at round 1 and the edge budget raised by their incident
    edges.  The final epoch's output is certified with the residual
    influence bound ``(b - evicted) * v_max``.
    """
    from ..core.caaf import SUM

    caaf = caaf or SUM
    config = config or ByzantineConfig()
    schedule = schedule or FailureSchedule()
    if protocol not in RECOVERABLE_PROTOCOLS:
        raise ValueError(
            f"byzantine defence supports protocols {RECOVERABLE_PROTOCOLS}, "
            f"got {protocol!r}"
        )
    if caaf.name not in AUDITABLE_CAAFS:
        raise ValueError(
            "influence-bounded certification needs an invertible sum-like "
            f"CAAF {AUDITABLE_CAAFS}, got {caaf.name!r} — the delta audit "
            "cannot bound a compromised node's pull on min/max-style "
            "aggregates"
        )
    byz.validate(topology)
    if integrity is not None:
        byz.integrity = integrity.config

    coordinator = WitnessCoordinator(
        topology,
        inputs,
        caaf,
        config,
        budget=byz.budget,
        integrity=integrity.config if integrity is not None else None,
    )
    all_nodes = sorted(topology.nodes())
    degree = {u: len(vs) for u, vs in topology.adjacency.items()}
    epoch_monitors = [
        m
        for m in monitors
        if getattr(m, "rule", None) not in ("oracle", "byzantine")
    ]

    combined = SimStats()
    reports: List[ByzEpochReport] = []
    evicted: Set[int] = set()
    elapsed = 0
    final_out = None
    final_epoch = 0

    for epoch in range(1, config.max_epochs + 1):
        coordinator.epoch = epoch
        tap = WitnessTap(coordinator)
        epoch_schedule = _merged_crashes(schedule, evicted)
        f_eff = (f if f is not None else 0) + sum(
            degree.get(u, 0) for u in evicted
        )
        if _spans.enabled:
            _spans.active().begin(
                f"byz.epoch[{epoch}]",
                cat="byzantine",
                tid=topology.root,
                round=elapsed,
                epoch=epoch,
                evicted=len(evicted),
            )
        out = _run_epoch(
            protocol,
            topology,
            inputs,
            epoch_schedule,
            f=f_eff if (f is not None or evicted) else f,
            b=b,
            c=c,
            caaf=caaf,
            rng=rng,
            injectors=(byz, tap) + tuple(injectors),
            monitors=epoch_monitors,
            transport=None,
            integrity=integrity,
        )
        coordinator.finalize()
        fresh = coordinator.take_new_convictions() - evicted
        elapsed += out.rounds
        if _spans.enabled:
            _spans.active().end(
                tid=topology.root,
                round=elapsed,
                rounds=out.rounds,
                convictions=len(fresh),
            )
        retry = (
            bool(fresh)
            and config.evict_policy == "evict"
            and epoch < config.max_epochs
        )
        reports.append(
            ByzEpochReport(
                epoch,
                out.rounds,
                out.result,
                tuple(sorted(fresh)),
                discarded=retry,
            )
        )
        if not retry:
            combined.absorb(out.stats)
            final_out = out
            final_epoch = epoch
            break
        # Discard-and-retry: the tainted epoch's bits are defence
        # overhead, never protocol CC; the rerun crashes the convicts.
        combined.absorb(out.stats, as_overhead=True)
        evicted |= fresh
        if _spans.enabled:
            _spans.active().event(
                "byz.eviction",
                cat="byzantine",
                tid=topology.root,
                round=elapsed,
                evicted=sorted(fresh),
            )
        if _metrics.enabled:
            _metrics.active().counter(
                "byz_evictions", "convicted nodes evicted via epoch retry"
            ).inc(len(fresh))
        for monitor in epoch_monitors:
            if isinstance(monitor, FBudgetMonitor):
                # The rerun re-fires scheduled crashes and adds the
                # convicts' incident edges — both sanctioned, so the
                # allowance grows accordingly.
                monitor.f += sum(degree.get(u, 0) for u in fresh) + sum(
                    degree.get(u, 0) for u in schedule.crash_rounds
                )

    # ---- influence-bounded certification ---------------------------- #
    for node, bits in coordinator.echo_bits.items():
        combined.overhead_bits[node] = (
            combined.overhead_bits.get(node, 0) + bits
        )
    residual_convicts = sorted(set(coordinator.convictions) - evicted)
    b_rem = max(0, byz.budget - len(evicted))
    value = final_out.result if final_out is not None else None
    # Coverage: provably included contributions only — the root's
    # surviving component of the final epoch (mid-run crashes may or may
    # not have folded in; the certificate's bounds bracket both).
    # Evicted nodes crash at round 1, so they fall out here naturally.
    if final_out is not None and final_out.network is not None:
        network = final_out.network
        failed = {
            u
            for u, r in network.crash_rounds.items()
            if r <= network.round
        }
        covered = sorted(topology.alive_component(failed))
    else:
        covered = [u for u in all_nodes if u not in evicted]
    if value is None:
        certified = False
        reason = f"epoch {final_epoch} produced no output"
    elif residual_convicts:
        certified = False
        reason = (
            f"convicted nodes {residual_convicts} still in the run "
            f"(evict_policy={config.evict_policy!r}, "
            f"epoch budget {config.max_epochs}): their influence is "
            "unbounded"
        )
    else:
        certified = True
        reason = (
            "byzantine-audited: exact (zero residual budget)"
            if b_rem == 0
            else f"byzantine-audited: |error| <= {b_rem} x v_max"
        )
    partial = certify(
        value,
        all_nodes,
        covered,
        inputs,
        caaf,
        certified=certified,
        reason=reason,
        epochs=len(reports),
        overhead_bits=combined.total_overhead_bits,
        byz_budget=byz.budget,
        convicted=tuple(sorted(coordinator.convictions)),
        influence_bound=(b_rem * coordinator.v_max) if certified else None,
        v_max=coordinator.v_max,
        extra={
            "echo_bits": coordinator.total_echo_bits,
            "accusations": len(coordinator.accusations),
            "convictions": len(coordinator.convictions),
            "evicted": len(evicted),
        },
    )
    return ByzantineOutcome(
        partial=partial,
        result=value,
        stats=combined,
        rounds=elapsed,
        network=final_out.network if final_out is not None else None,
        epochs=reports,
        coordinator=coordinator,
        evicted=tuple(sorted(evicted)),
    )
