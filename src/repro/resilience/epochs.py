"""Churn-tolerant epochs: exactly-once re-aggregation under crash-recovery.

:mod:`repro.resilience.failover` heals the run when the *root* dies; this
module heals it when ordinary nodes **come back**.  The paper's crash-stop
model has no rejoin — a crashed node is gone — so everything here is
opt-in, out-of-model machinery in the spirit of the crash-recovery /
anti-entropy literature (Flow Updating, gossip re-aggregation):

* An **epoch** is one full protocol run over the full topology, executed
  under a :class:`repro.sim.faults.ChurnSchedule` view rebased to the
  epoch's local clock (:meth:`~repro.sim.faults.ChurnSchedule.shifted` —
  the same shifting idiom failover uses between its epochs).  Nodes that
  crash mid-epoch fall silent exactly as the model prescribes; durable
  rejoiners resume with their persisted state, amnesiac rejoiners only
  heartbeat (:class:`repro.resilience.transport.AmnesiacInner`) until the
  next epoch boundary re-admits them.
* **Membership changes are detected, not assumed**: a
  :class:`HeartbeatTracker` injector watches physical broadcasts and
  flags a node down after ``heartbeat_gap`` silent transport windows, up
  again on its first frame.  The orchestrator decides re-aggregation
  from these observed transitions (falling back to network liveness when
  no transport — hence no heartbeat stream — is configured).
* **Exactly-once contribution accounting**: every booked leaf
  contribution carries a ``(node_id, incarnation)`` nonce in the
  :class:`ContributionLedger`.  An epoch's output is certified by
  matching it against aggregates over contributor subsets (the paper's
  footnote-6 machinery: survivors are required, churned nodes optional),
  and matched contributors are booked once; later epochs re-run the
  protocol with booked nodes' inputs **neutralized to the CAAF
  identity**, so a rejoined node is never double-counted — and never
  dropped, because it stays pending until booked or provably lost.
* **Amnesiac recovery** rides a neighbour anti-entropy
  :class:`SnapshotStore`: before epoch 1 every node announces its input
  to its neighbours over the reliable transport (a round-0 preprocessing
  broadcast); an amnesiac rejoiner re-fetches its contribution from any
  live neighbour still holding the snapshot via a bounded
  request/reply mini-run between epochs.  Announce and rejoin traffic is
  absorbed as ``overhead_bits`` — never protocol CC — exactly like
  failover's elections.  A contribution is *lost* only when no copy
  survived (all holders died or lost their own state), in which case the
  run degrades to a certified partial whose ``missing`` set names the
  node — never a silently wrong value.

The :class:`repro.sim.monitors.DoubleCountOracle` audits the final claim:
``double-count`` fires if any nonce was booked twice or the certified
value disagrees with its claimed coverage; ``lost-contribution`` fires if
a contribution with a surviving copy is missing from the coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from ..obs import spans as _spans
from ..sim.faults import (
    ChurnSchedule,
    FaultInjector,
    REJOIN_AMNESIAC,
)
from ..sim.message import Part, TAG_BITS, id_bits, value_bits
from ..sim.monitors import DoubleCountOracle
from ..sim.network import Network, ROOT_CRASH_ERROR
from ..sim.node import NodeHandler
from ..sim.stats import SimStats
from .failover import RECOVERABLE_PROTOCOLS, _run_epoch, _shift_crash_map
from .partial import PartialAggregateResult, certify
from .transport import ReliableTransport, TransportConfig, wrap_network_args

#: Wire kinds of the anti-entropy mini-protocols.
SNAP_KIND = "churn_snap"
SNAP_REQ_KIND = "churn_req"

#: Largest number of churned (hence coverage-optional) contributors per
#: epoch the subset-matching certifier will enumerate (2**16 subsets).
MAX_OPTIONAL_CONTRIBUTORS = 16


def neutral_input(caaf) -> int:
    """A raw input that a booked node can submit without contributing.

    Later epochs re-run the protocol with already-booked nodes'
    inputs replaced by this value; it must *prepare* to the CAAF's
    identity so the epoch aggregate only carries unbooked contributions.
    SUM/MAX/OR/XOR/GCD use 0, AND uses 1, MIN its sentinel — COUNT has no
    such input (every node prepares to 1) and cannot be re-aggregated
    across epochs.
    """
    candidate = caaf.identity
    try:
        ok = caaf.prepare(candidate) == caaf.identity
    except Exception:
        ok = False
    if not ok:
        raise ValueError(
            f"churn re-aggregation needs an input that prepares to the "
            f"{caaf.name} identity element; none exists (e.g. COUNT books "
            "every node as 1, so booked nodes cannot be neutralized)"
        )
    return candidate


@dataclass(frozen=True)
class ChurnPolicy:
    """What the churn-tolerant runtime is allowed to do.

    Attributes:
        transport: Reliable-transport config for every epoch and the
            anti-entropy mini-runs; ``None`` runs the raw network (then
            heartbeats are unavailable and membership falls back to
            network liveness).
        max_epochs: Total protocol epochs (first run included).
        heartbeat_gap: Transport windows of silence before the tracker
            presumes a node down.
        snapshots: Whether to run the round-0 anti-entropy announce that
            makes amnesiac contributions recoverable.
    """

    transport: Optional[TransportConfig] = None
    max_epochs: int = 4
    heartbeat_gap: int = 2
    snapshots: bool = True

    def __post_init__(self) -> None:
        if self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.heartbeat_gap < 1:
            raise ValueError(
                f"heartbeat_gap must be >= 1, got {self.heartbeat_gap}"
            )

    @classmethod
    def default(cls, retransmit_budget: int = 5) -> "ChurnPolicy":
        """The CLI's ``--churn`` stack: reliable transport + snapshots.

        The same retransmit budget as :meth:`RecoveryPolicy.default` —
        every observed frame loss at the chaos harness's reference rates
        stays recoverable, so certification failures mean churn, not
        transport noise.
        """
        return cls(transport=TransportConfig(retransmits=retransmit_budget))

    def as_jsonable(self) -> Dict[str, object]:
        return {
            "transport": self.transport.as_jsonable() if self.transport else None,
            "max_epochs": self.max_epochs,
            "heartbeat_gap": self.heartbeat_gap,
            "snapshots": self.snapshots,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "ChurnPolicy":
        transport = data.get("transport")
        return cls(
            transport=TransportConfig.from_jsonable(transport)
            if transport
            else None,
            max_epochs=int(data.get("max_epochs", 4)),
            heartbeat_gap=int(data.get("heartbeat_gap", 2)),
            snapshots=bool(data.get("snapshots", True)),
        )


class ContributionLedger:
    """Exactly-once booking of leaf contributions by nonce.

    One entry per node, keyed by ``(node_id, incarnation)``; a second
    booking attempt for the same node is *refused* and remembered in
    :attr:`double_booked` — the :class:`DoubleCountOracle` turns any such
    record into a ``double-count`` verdict.
    """

    def __init__(self) -> None:
        #: node -> (node, incarnation, prepared value), in booking order.
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        #: Refused second bookings, as ``(node, incarnation, value)``.
        self.double_booked: List[Tuple[int, int, int]] = []

    def book(self, node: int, incarnation: int, value: int) -> bool:
        """Book one contribution; False (and a record) if already booked."""
        if node in self._entries:
            self.double_booked.append((node, incarnation, value))
            return False
        self._entries[node] = (node, incarnation, value)
        return True

    def booked(self, node: int) -> bool:
        return node in self._entries

    @property
    def booked_nodes(self) -> Set[int]:
        return set(self._entries)

    def as_entries(self) -> List[Tuple[int, int, int]]:
        """All booked ``(node, incarnation, value)`` nonces, by node id."""
        return [self._entries[node] for node in sorted(self._entries)]

    def __len__(self) -> int:
        return len(self._entries)


class SnapshotStore:
    """Neighbour anti-entropy caches: who still holds whose contribution.

    Seeded by the round-0 announce; a holder that amnesiac-rejoins loses
    its whole cache (its memory died with the old incarnation).
    """

    def __init__(self) -> None:
        #: holder -> {node: raw input value}.
        self._caches: Dict[int, Dict[int, int]] = {}

    def seed(self, holder: int, node: int, value: int) -> None:
        self._caches.setdefault(holder, {})[node] = value

    def drop_holder(self, holder: int) -> None:
        """An amnesiac rejoin wipes the holder's cache."""
        self._caches.pop(holder, None)

    def cache_of(self, holder: int) -> Dict[int, int]:
        return dict(self._caches.get(holder, {}))

    def holders_of(self, node: int) -> List[int]:
        """Holders still caching ``node``'s contribution, by id."""
        return sorted(
            holder
            for holder, cache in self._caches.items()
            if node in cache
        )


class HeartbeatTracker(FaultInjector):
    """Observed membership: down after a silent gap, up on the next frame.

    Purely observational — it watches physical broadcasts (under the
    reliable transport every live node emits at least one frame per
    window, so silence is meaningful) and records deterministic
    transitions the epoch orchestrator uses instead of peeking at the
    fault schedule.
    """

    def __init__(self, gap_rounds: int) -> None:
        super().__init__()
        if gap_rounds < 1:
            raise ValueError(f"gap_rounds must be >= 1, got {gap_rounds}")
        self.gap_rounds = gap_rounds
        self._last_seen: Dict[int, int] = {}
        self._down: Set[int] = set()
        #: Observed transitions: ``(round, node, "down" | "up")``.
        self.transitions: List[Tuple[int, int, str]] = []

    def attach(self, network) -> None:
        super().attach(network)
        for node in network.adjacency:
            self._last_seen.setdefault(node, 0)

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        self._last_seen[node] = rnd
        if node in self._down:
            self._down.discard(node)
            self.transitions.append((rnd, node, "up"))

    def end_round(self, rnd: int) -> None:
        for node, seen in self._last_seen.items():
            if node not in self._down and rnd - seen >= self.gap_rounds:
                self._down.add(node)
                self.transitions.append((rnd, node, "down"))

    def down_now(self) -> Set[int]:
        """Nodes currently presumed down."""
        return set(self._down)

    def rejoins(self) -> List[int]:
        """Nodes observed to come back after a detected outage."""
        return sorted({n for _r, n, kind in self.transitions if kind == "up"})


class AnnounceNode(NodeHandler):
    """Round-0 anti-entropy announce: broadcast my input, cache theirs."""

    def __init__(self, node_id: int, value: int, bits: int) -> None:
        self.node_id = node_id
        self.value = value
        self.bits = bits
        #: Neighbour inputs heard: node -> raw value.
        self.heard: Dict[int, int] = {}

    def on_round(self, rnd: int, inbox) -> List[Part]:
        for envelope in inbox:
            if envelope.part.kind == SNAP_KIND:
                node, value = envelope.part.payload
                self.heard.setdefault(node, value)
        if rnd == 1:
            return [Part(SNAP_KIND, (self.node_id, self.value), self.bits)]
        return []

    def wants_to_stop(self) -> bool:
        return False


class RejoinNode(NodeHandler):
    """Rejoin handshake: amnesiac nodes request, cache holders reply.

    Requesters broadcast a ``SNAP_REQ`` naming themselves; every live
    neighbour still caching their snapshot replies with the value; the
    requester adopts the first reply (inbox order is deterministic).
    """

    def __init__(
        self,
        node_id: int,
        requesting: bool,
        cache: Dict[int, int],
        req_bits: int,
        reply_bits: int,
    ) -> None:
        self.node_id = node_id
        self.requesting = requesting
        self.cache = dict(cache)
        self.req_bits = req_bits
        self.reply_bits = reply_bits
        #: The recovered raw input (None until a reply lands).
        self.recovered: Optional[int] = None
        self._replies_due: List[Tuple[int, int]] = []

    def on_round(self, rnd: int, inbox) -> List[Part]:
        for envelope in inbox:
            part = envelope.part
            if part.kind == SNAP_REQ_KIND:
                (who,) = part.payload
                if who in self.cache:
                    self._replies_due.append((who, self.cache[who]))
            elif part.kind == SNAP_KIND:
                node, value = part.payload
                if (
                    node == self.node_id
                    and self.requesting
                    and self.recovered is None
                ):
                    self.recovered = value
        out: List[Part] = []
        if rnd == 1 and self.requesting:
            out.append(Part(SNAP_REQ_KIND, (self.node_id,), self.req_bits))
        due, self._replies_due = sorted(set(self._replies_due)), []
        for node, value in due:
            out.append(Part(SNAP_KIND, (node, value), self.reply_bits))
        return out

    def wants_to_stop(self) -> bool:
        return False


@dataclass
class ChurnEpochReport:
    """One protocol epoch inside a churn run."""

    epoch: int
    rounds: int
    result: Optional[int]
    booked: Tuple[int, ...]
    pending: Tuple[int, ...]
    rejoins_observed: Tuple[int, ...] = ()
    #: True when the epoch's output matched no contributor subset and the
    #: whole epoch was thrown away and rerun.  Nothing from a discarded
    #: epoch is booked, so the retry keeps re-aggregation exactly-once.
    discarded: bool = False


@dataclass
class ChurnOutcome:
    """Everything a churn-tolerant run produced."""

    partial: PartialAggregateResult
    stats: SimStats
    rounds: int
    epochs: List[ChurnEpochReport]
    ledger: ContributionLedger
    lost: Tuple[int, ...]
    recovered: Tuple[int, ...] = ()
    transports: List[ReliableTransport] = field(default_factory=list)
    network: Optional[Network] = None
    tracker: Optional[HeartbeatTracker] = None

    @property
    def result(self) -> Optional[int]:
        return self.partial.value


def _side_run(
    topology: Topology,
    handlers: Dict[int, NodeHandler],
    crash_rounds: Dict[int, int],
    policy: ChurnPolicy,
    logical_rounds: int,
) -> SimStats:
    """One anti-entropy mini-run (announce or rejoin handshake).

    Runs over the policy's reliable transport like failover's elections;
    the caller absorbs the stats with ``as_overhead=True`` so none of it
    touches protocol CC.
    """
    transport = (
        ReliableTransport(policy.transport) if policy.transport else None
    )
    wrapped, overhead_fn, window = wrap_network_args(
        transport, handlers, topology.adjacency
    )
    horizon = (logical_rounds + 1) * window + (1 if transport else 0)
    network = Network(
        topology.adjacency,
        wrapped,
        crash_rounds=crash_rounds,
        overhead_fn=overhead_fn,
    )
    return network.run(horizon, stop_on_output=False)


def _announce_snapshots(
    topology: Topology,
    inputs: Dict[int, int],
    policy: ChurnPolicy,
    store: SnapshotStore,
) -> SimStats:
    """Seed the anti-entropy store with every node's round-0 announce."""
    n = max(topology.nodes()) + 1
    bits = (
        TAG_BITS
        + id_bits(n)
        + value_bits(max(1, max(inputs.values(), default=1)))
    )
    handlers = {
        u: AnnounceNode(u, inputs[u], bits) for u in topology.nodes()
    }
    stats = _side_run(topology, handlers, {}, policy, logical_rounds=2)
    for holder in topology.nodes():
        for node, value in handlers[holder].heard.items():
            store.seed(holder, node, value)
    return stats


def _rejoin_handshake(
    topology: Topology,
    requesters: Sequence[int],
    down: Set[int],
    policy: ChurnPolicy,
    store: SnapshotStore,
    inputs: Dict[int, int],
) -> Tuple[Dict[int, int], SimStats]:
    """Run one rejoin handshake; returns ``{node: recovered value}``."""
    n = max(topology.nodes()) + 1
    req_bits = TAG_BITS + id_bits(n)
    reply_bits = req_bits + value_bits(
        max(1, max(inputs.values(), default=1))
    )
    requester_set = set(requesters)
    handlers = {
        u: RejoinNode(
            u,
            requesting=u in requester_set,
            cache=store.cache_of(u),
            req_bits=req_bits,
            reply_bits=reply_bits,
        )
        for u in topology.nodes()
    }
    crash_rounds = {u: 1 for u in down}
    stats = _side_run(topology, handlers, crash_rounds, policy, logical_rounds=3)
    recovered = {
        u: handlers[u].recovered
        for u in sorted(requester_set)
        if u not in down and handlers[u].recovered is not None
    }
    return recovered, stats


def _ever_down(network: Network, node: int, rounds: int) -> bool:
    """Whether ``node`` was down at any executed round of this epoch."""
    if network.crash_rounds.get(node, float("inf")) <= rounds:
        return True
    return any(
        start <= rounds
        for start, _end in network.down_intervals.get(node, ())
    )


def _match_contributors(
    caaf,
    value: int,
    required: Sequence[int],
    optional: Sequence[int],
    prepared: Dict[int, int],
) -> Optional[Tuple[int, ...]]:
    """Find contributors whose aggregate certifies ``value``.

    ``required`` nodes stayed up and root-connected all epoch, so a
    correct crash-tolerant protocol must have included them; ``optional``
    nodes churned mid-epoch and may or may not have landed.  Enumerates
    optional subsets largest-first (footnote-6 style) and returns the
    first — hence deterministic — match, or ``None``: no matching subset
    means the output cannot be certified against any honest coverage.
    """
    base = [prepared[u] for u in required]
    opts = sorted(optional)
    for k in range(len(opts), -1, -1):
        for extra in combinations(opts, k):
            if caaf.combine(base + [prepared[u] for u in extra]) == value:
                return tuple(sorted(set(required) | set(extra)))
    return None


def run_with_churn(
    protocol: str,
    topology: Topology,
    inputs: Dict[int, int],
    churn: ChurnSchedule,
    schedule: Optional[FailureSchedule] = None,
    *,
    f: Optional[int] = None,
    b: Optional[int] = None,
    c: int = 2,
    caaf=None,
    rng: Optional[random.Random] = None,
    injectors: Sequence = (),
    monitors: Sequence = (),
    policy: Optional[ChurnPolicy] = None,
    oracle: Optional[DoubleCountOracle] = None,
) -> ChurnOutcome:
    """Run ``protocol`` under crash-recovery churn with exactly-once booking.

    Epochs run until every live contribution is booked (or provably
    lost), the epoch budget runs out, or an epoch output defies
    certification.  The returned outcome's ``partial`` carries the union
    coverage of all booked contributions; its value is the CAAF-combine
    of the per-epoch outputs, which equals the aggregate over the
    coverage by construction of the nonce ledger.
    """
    from ..core.caaf import SUM

    caaf = caaf or SUM
    policy = policy or ChurnPolicy.default()
    schedule = schedule or FailureSchedule()
    if protocol not in RECOVERABLE_PROTOCOLS:
        raise ValueError(
            f"churn supports protocols {RECOVERABLE_PROTOCOLS}, "
            f"got {protocol!r}"
        )
    churn.validate(topology)
    if topology.root in churn.cycles and not churn.allow_root_crash:
        raise ValueError(ROOT_CRASH_ERROR)
    neutral = neutral_input(caaf)

    all_nodes = sorted(topology.nodes())
    prepared = {u: caaf.prepare(inputs[u]) for u in all_nodes}
    if oracle is None:
        oracle = next(
            (m for m in monitors if isinstance(m, DoubleCountOracle)), None
        )
    # The per-run termination oracle grades one full protocol execution
    # against the full input set; later epochs run on neutralized inputs,
    # so it (and the churn oracle itself) stays out of the epoch stack —
    # the ledger certification below is the churn-path authority.
    epoch_monitors = [
        m
        for m in monitors
        if getattr(m, "rule", None) not in ("oracle", "exactly-once")
    ]

    combined = SimStats()
    ledger = ContributionLedger()
    store = SnapshotStore()
    lost: Set[int] = set()
    recovered_all: Set[int] = set()
    epochs: List[ChurnEpochReport] = []
    transports: List[ReliableTransport] = []
    handshakes = 0
    epoch_values: List[int] = []
    elapsed = 0
    live_gap_count = 0
    certified = True
    reason = "clean"
    final_network: Optional[Network] = None
    tracker: Optional[HeartbeatTracker] = None

    if policy.snapshots:
        combined.absorb(
            _announce_snapshots(topology, inputs, policy, store),
            as_overhead=True,
        )

    # A fresh shifted view keeps the caller's schedule pristine (revive
    # logs and incarnation bases mutate per epoch).
    view = churn.shifted(0)
    budget_exhausted = False

    for epoch in range(1, policy.max_epochs + 1):
        eff_inputs = {
            u: (
                inputs[u]
                if not ledger.booked(u) and u not in lost
                else neutral
            )
            for u in all_nodes
        }
        transport = (
            ReliableTransport(policy.transport) if policy.transport else None
        )
        window = transport.window if transport else 1
        tracker = (
            HeartbeatTracker(policy.heartbeat_gap * window)
            if transport
            else None
        )
        epoch_injectors = (
            (view,)
            + ((tracker,) if tracker else ())
            + tuple(injectors)
        )
        epoch_schedule = FailureSchedule(
            _shift_crash_map(
                dict(schedule.crash_rounds), elapsed, all_nodes
            )
            if elapsed
            else dict(schedule.crash_rounds)
        )
        if _spans.enabled:
            _spans.active().begin(
                f"epoch[{epoch}]",
                cat="epoch",
                tid=topology.root,
                round=elapsed,
                epoch=epoch,
                contributors=sum(
                    1 for u in all_nodes if eff_inputs[u] != neutral
                ),
            )
        out = _run_epoch(
            protocol,
            topology,
            eff_inputs,
            epoch_schedule,
            f=f,
            b=b,
            c=c,
            caaf=caaf,
            rng=rng,
            injectors=epoch_injectors,
            monitors=epoch_monitors,
            transport=transport,
            integrity=None,
        )
        network = out.network
        combined.absorb(out.stats)
        final_network = network
        epoch_gaps = 0
        if transport is not None:
            transports.append(transport)
            epoch_gaps = len(transport.live_gaps_in(network))
        elapsed += out.rounds
        if _spans.enabled:
            _spans.active().end(
                tid=topology.root,
                round=elapsed,
                rounds=out.rounds,
                produced=out.result is not None,
            )
        v_e = out.result

        def _discard_and_retry() -> None:
            """Throw the tainted epoch away and set up a rerun.

            Nothing was booked from it, so the retry cannot double-count;
            its transport gaps are irrelevant because its value is gone.
            """
            for rnd_g, node, mode in churn.revive_events():
                if rnd_g <= elapsed and mode == REJOIN_AMNESIAC:
                    store.drop_holder(node)
            if _spans.enabled:
                _spans.active().event(
                    "epoch.discarded",
                    cat="epoch",
                    tid=topology.root,
                    round=elapsed,
                    epoch=epoch,
                )
            epochs.append(
                ChurnEpochReport(
                    epoch,
                    out.rounds,
                    v_e,
                    booked=(),
                    pending=(),
                    rejoins_observed=(
                        tuple(tracker.rejoins()) if tracker else ()
                    ),
                    discarded=True,
                )
            )

        if v_e is None:
            if epoch < policy.max_epochs:
                _discard_and_retry()
                view = view.shifted(out.rounds)
                continue
            certified = False
            reason = f"epoch {epoch} produced no output"
            epochs.append(
                ChurnEpochReport(epoch, out.rounds, None, (), ())
            )
            break

        # ---- certify the epoch output against contributor subsets ---- #
        contributors = [
            u for u in all_nodes if not ledger.booked(u) and u not in lost
        ]
        alive_end = {
            u for u in all_nodes if network.is_alive(u, out.rounds)
        }
        component = topology.alive_component(set(all_nodes) - alive_end)
        required = [
            u
            for u in contributors
            if not _ever_down(network, u, out.rounds) and u in component
        ]
        optional = [u for u in contributors if u not in required]
        if len(optional) > MAX_OPTIONAL_CONTRIBUTORS:
            certified = False
            reason = (
                f"epoch {epoch}: {len(optional)} churned contributors "
                f"exceed the {MAX_OPTIONAL_CONTRIBUTORS}-node "
                "certification cap"
            )
            epoch_values.append(v_e)
            epochs.append(
                ChurnEpochReport(epoch, out.rounds, v_e, (), ())
            )
            break
        matched = _match_contributors(
            caaf, v_e, required, optional, prepared
        )
        if matched is None:
            if epoch < policy.max_epochs:
                _discard_and_retry()
                view = view.shifted(out.rounds)
                continue
            certified = False
            reason = (
                f"epoch {epoch} output {v_e} matches no contributor "
                "subset (uncertifiable coverage)"
            )
            epoch_values.append(v_e)
            epochs.append(
                ChurnEpochReport(epoch, out.rounds, v_e, (), ())
            )
            break
        live_gap_count += epoch_gaps
        epoch_values.append(v_e)
        for u in matched:
            ledger.book(u, churn.incarnation_at(u, elapsed), prepared[u])
        if _spans.enabled:
            _spans.active().event(
                "epoch.booked",
                cat="epoch",
                tid=topology.root,
                round=elapsed,
                epoch=epoch,
                booked=len(matched),
            )

        # ---- decide whether another epoch is needed ------------------- #
        # Amnesiac rejoins (observed or enacted) void the holder's cache.
        for rnd_g, node, mode in churn.revive_events():
            if rnd_g <= elapsed and mode == REJOIN_AMNESIAC:
                store.drop_holder(node)
        down_end = (
            tracker.down_now()
            if tracker is not None
            else {u for u in all_nodes if not network.is_alive(u, out.rounds)}
        )
        unbooked = [
            u for u in all_nodes if not ledger.booked(u) and u not in lost
        ]
        pending_now = [u for u in unbooked if u not in down_end]
        view = view.shifted(out.rounds)
        pending_later = [
            u
            for u in unbooked
            if u in down_end
            and any(
                revive_r is not None
                for _c, revive_r, _m in view.cycles.get(u, ())
            )
        ]
        epochs.append(
            ChurnEpochReport(
                epoch,
                out.rounds,
                v_e,
                booked=matched,
                pending=tuple(sorted(pending_now + pending_later)),
                rejoins_observed=tuple(tracker.rejoins()) if tracker else (),
            )
        )
        if not pending_now and not pending_later:
            break
        if epoch == policy.max_epochs:
            budget_exhausted = True
            reason = "churn epoch budget exhausted"
            break

        # ---- rejoin handshake for amnesiac pending nodes -------------- #
        needs_recovery = [
            u
            for u in pending_now
            if u not in recovered_all
            and any(
                revive_r is not None
                and revive_r <= elapsed
                and mode == REJOIN_AMNESIAC
                for _c, revive_r, mode in churn.cycles.get(u, ())
            )
        ]
        if needs_recovery:
            handshakes += 1
            physically_down = {
                u for u in all_nodes if not network.is_alive(u, out.rounds)
            }
            recovered, hs_stats = _rejoin_handshake(
                topology,
                needs_recovery,
                physically_down,
                policy,
                store,
                inputs,
            )
            combined.absorb(hs_stats, as_overhead=True)
            elapsed += hs_stats.rounds_executed
            view = view.shifted(hs_stats.rounds_executed)
            recovered_all.update(recovered)
            for u in needs_recovery:
                if u not in recovered:
                    lost.add(u)

    # ------------------- final certification ------------------------- #
    value = caaf.combine(epoch_values) if epoch_values else None
    coverage = ledger.booked_nodes
    if value is not None and live_gap_count:
        certified = False
        reason += f"; {live_gap_count} unexcused transport gap(s)"
    if lost and certified:
        reason = (
            f"{reason}; {len(lost)} contribution(s) lost (no surviving "
            "snapshot copy)"
            if reason != "clean"
            else f"{len(lost)} contribution(s) lost (no surviving "
            "snapshot copy)"
        )
    extra: Dict[str, int] = {
        "epochs_discarded": sum(1 for e in epochs if e.discarded),
        "handshakes": handshakes,
        "snapshots_recovered": len(recovered_all),
        "contributions_lost": len(lost),
        "rejoins_durable": sum(t.rejoins_durable for t in transports),
        "rejoins_amnesiac": sum(t.rejoins_amnesiac for t in transports),
        "stale_nacks": sum(t.stale_nacks for t in transports),
    }
    partial = certify(
        value,
        all_nodes=all_nodes,
        covered=coverage,
        inputs=inputs,
        caaf=caaf,
        certified=certified,
        reason=reason,
        epochs=len(epochs),
        overhead_bits=combined.max_overhead_bits,
        live_gaps=live_gap_count,
        incarnations={
            node: inc for node, inc, _value in ledger.as_entries()
        },
        extra=extra,
    )

    # ------------------- oracle audit --------------------------------- #
    if oracle is not None:
        oracle.grade_ledger(ledger.as_entries(), ledger.double_booked)
        # A lost contribution with a surviving copy, or a live pending
        # node left unbooked while epochs remained, is a real violation;
        # a certified-partial after budget exhaustion is honest.
        recoverable: Set[int] = {
            u for u in lost if store.holders_of(u)
        }
        if not budget_exhausted and partial.certified:
            end_alive = {
                u
                for u in all_nodes
                if final_network is None
                or final_network.is_alive(u, final_network.round)
            }
            recoverable |= {
                u
                for u in all_nodes
                if not ledger.booked(u)
                and u not in lost
                and u in end_alive
            }
        oracle.grade_final(
            partial.value,
            partial.coverage,
            partial.certified,
            recoverable=recoverable,
        )

    return ChurnOutcome(
        partial=partial,
        stats=combined,
        rounds=combined.rounds_executed,
        epochs=epochs,
        ledger=ledger,
        lost=tuple(sorted(lost)),
        recovered=tuple(sorted(recovered_all)),
        transports=transports,
        network=final_network,
        tracker=tracker,
    )
