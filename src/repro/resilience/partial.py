"""Graceful degradation: certified partial aggregates instead of raising.

When recovery budgets are exhausted — the transport gave up on a live
sender, failover ran out of epochs, or no live neighbour of the dead root
existed — runners built on :mod:`repro.resilience` return a
:class:`PartialAggregateResult` instead of raising or silently returning a
wrong value.  The result carries:

* a **certified coverage set**: node ids provably included in the
  aggregate.  Coverage is conservative — it is only non-empty when every
  transport gap is excused by a real crash (the model's own silence) and
  the final epoch's root terminated with an output;
* **deterministic error bounds** on the true all-nodes aggregate, computed
  from the actual inputs: the aggregate over the coverage set is a lower
  bound and the aggregate over all nodes an upper bound (exact for
  monotone CAAFs such as SUM with non-negative inputs);
* a machine-readable **status** (``exact`` / ``partial`` / ``failed``) for
  harnesses and CI gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

#: The run produced the aggregate over *all* nodes.
STATUS_EXACT = "exact"
#: The run produced a value certified only for a subset of nodes.
STATUS_PARTIAL = "partial"
#: The run produced no usable value (or certification failed).
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class PartialAggregateResult:
    """Outcome of a run under recovery semantics.

    ``value`` is the aggregate the (possibly re-elected) root reported;
    ``coverage`` the certified included node ids; bounds bracket the true
    all-nodes aggregate.  ``certified`` is False whenever any recovery
    budget was exhausted against a live peer, in which case ``coverage``
    is empty and the value must be treated as best-effort.
    """

    value: Optional[int]
    coverage: Tuple[int, ...]
    missing: Tuple[int, ...]
    lower_bound: Optional[int]
    upper_bound: Optional[int]
    status: str
    certified: bool
    reason: str
    epochs: int = 1
    elected_root: Optional[int] = None
    overhead_bits: int = 0
    live_gaps: int = 0
    #: The integrity-verified bit of the certification ladder: False when
    #: any delivered corruption went unrejected by the integrity layer
    #: (or no layer was active to reject it).  ``certified`` — and hence
    #: ``exact`` — requires it.
    integrity_verified: bool = True
    #: Under crash-recovery churn: the ``(node_id, incarnation)`` nonce
    #: each covered contribution was booked under (empty outside churn
    #: runs and for incarnation-0-only coverage).
    incarnations: Tuple[Tuple[int, int], ...] = ()
    #: Byzantine certification rung: the declared adversary budget ``b``
    #: (0 outside Byzantine-defended runs), the nodes the witness pool
    #: convicted, and — when certified — the deterministic bound
    #: ``|value - aggregate(coverage)| <= influence_bound``
    #: (``= residual_budget * v_max``).  ``None`` means no bound is
    #: claimed; ``0`` means provably exact over the coverage.
    byz_budget: int = 0
    convicted: Tuple[int, ...] = ()
    influence_bound: Optional[int] = None
    v_max: Optional[int] = None
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def exact(self) -> bool:
        """Whether the result covers every node."""
        return self.status == STATUS_EXACT

    def as_dict(self) -> Dict[str, object]:
        """Row-friendly view (coverage reported as a count, not a list)."""
        row: Dict[str, object] = {
            "status": self.status,
            "certified": self.certified,
            "value": self.value,
            "coverage": len(self.coverage),
            "missing": len(self.missing),
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "reason": self.reason,
            "epochs": self.epochs,
            "elected_root": self.elected_root,
            "overhead_bits": self.overhead_bits,
            "live_gaps": self.live_gaps,
            "integrity_verified": self.integrity_verified,
        }
        if any(inc for _node, inc in self.incarnations):
            row["rejoined_coverage"] = sum(
                1 for _node, inc in self.incarnations if inc
            )
        if self.byz_budget or self.convicted or self.influence_bound is not None:
            row["byz_budget"] = self.byz_budget
            row["convicted"] = len(self.convicted)
            row["influence_bound"] = self.influence_bound
            row["v_max"] = self.v_max
        return row


def certify(
    value: Optional[int],
    all_nodes: Iterable[int],
    covered: Iterable[int],
    inputs: Dict[int, int],
    caaf,
    *,
    certified: bool,
    reason: str,
    epochs: int = 1,
    elected_root: Optional[int] = None,
    overhead_bits: int = 0,
    live_gaps: int = 0,
    unresolved_corruptions: int = 0,
    incarnations: Optional[Dict[int, int]] = None,
    byz_budget: int = 0,
    convicted: Tuple[int, ...] = (),
    influence_bound: Optional[int] = None,
    v_max: Optional[int] = None,
    extra: Optional[Dict[str, int]] = None,
) -> PartialAggregateResult:
    """Build a :class:`PartialAggregateResult` with derived bounds/status.

    ``covered`` is the candidate coverage (e.g. the surviving component of
    the final epoch); it is only honoured when ``certified`` is True —
    otherwise coverage collapses to the empty set and the status is
    ``failed`` unless a best-effort value is still reported.

    ``unresolved_corruptions`` is the count of delivered corruptions the
    integrity layer never rejected: any non-zero count clears the
    ``integrity_verified`` bit and forces decertification — an ``exact``
    claim requires zero unresolved corruption.

    ``incarnations`` maps covered node ids to the incarnation their
    contribution was booked under (crash-recovery churn); nodes absent
    from the map default to incarnation 0.
    """
    integrity_verified = unresolved_corruptions == 0
    if not integrity_verified:
        certified = False
        reason = (
            f"{reason}; {unresolved_corruptions} unresolved corruption(s)"
            if reason
            else f"{unresolved_corruptions} unresolved corruption(s)"
        )
    all_sorted = tuple(sorted(all_nodes))
    coverage = tuple(sorted(covered)) if certified and value is not None else ()
    missing = tuple(u for u in all_sorted if u not in set(coverage))
    lower = (
        caaf.aggregate_inputs([inputs[u] for u in coverage]) if coverage else None
    )
    upper = caaf.aggregate_inputs([inputs[u] for u in all_sorted])
    if value is None or not certified:
        status = STATUS_FAILED if value is None else STATUS_PARTIAL
    elif len(coverage) == len(all_sorted) and not influence_bound:
        # A non-zero influence bound means unconvicted compromised nodes
        # may still sit inside the coverage: the value is certified only
        # up to the bound, never claimed exact.
        status = STATUS_EXACT
    else:
        status = STATUS_PARTIAL
    return PartialAggregateResult(
        value=value,
        coverage=coverage,
        missing=missing,
        lower_bound=lower,
        upper_bound=upper,
        status=status,
        certified=bool(certified and value is not None),
        reason=reason,
        epochs=epochs,
        elected_root=elected_root,
        overhead_bits=overhead_bits,
        live_gaps=live_gaps,
        integrity_verified=integrity_verified,
        incarnations=tuple(
            (u, (incarnations or {}).get(u, 0)) for u in coverage
        ),
        byz_budget=byz_budget,
        convicted=tuple(sorted(convicted)),
        influence_bound=influence_bound,
        v_max=v_max,
        extra=dict(extra or {}),
    )
