"""Self-healing runtime: reliable transport, root failover, degradation.

Everything in this package runs *beyond* the paper's Section-2 model —
message loss and root crashes — and is strictly opt-in.  The in-model
simulator stays bit-exact when nothing here is enabled.

* :mod:`repro.resilience.transport` — windowed reliable local-broadcast
  shim (dedup, reorder buffering, NACK-driven retransmission with bounded
  exponential backoff); overhead booked separately from protocol CC.
* :mod:`repro.resilience.failover` — deterministic root failover: bounded
  min-id flood elects the lowest-id live neighbour of a dead root and the
  protocol restarts in a new epoch on the surviving component.
* :mod:`repro.resilience.partial` — graceful degradation to
  :class:`PartialAggregateResult`: certified coverage sets, deterministic
  error bounds, machine-readable health status.
* :mod:`repro.resilience.epochs` — churn-tolerant epochs: crash-recovery
  rejoins (durable / amnesiac), heartbeat membership detection, neighbour
  anti-entropy snapshots, and exactly-once re-aggregation booked under
  ``(node_id, incarnation)`` nonces.
* :mod:`repro.resilience.detector` — gray-failure detection: φ-accrual
  graded suspicion (trust / suspect / confirm) from frame inter-arrival
  samples, and per-link adaptive retransmission timeouts (EWMA RTT with
  Karn-style sample exclusion).
* :mod:`repro.resilience.byzantine` — Byzantine defense: witness-based
  cross-validation of sub-aggregate claims, accusation/conviction from
  authenticated contradictory frames, eviction through discard-and-retry
  epochs, and influence-bounded certification (|error| <= b * v_max).
"""

from .byzantine import (
    AUDITABLE_CAAFS,
    Accusation,
    ByzEpochReport,
    ByzantineConfig,
    ByzantineOutcome,
    Conviction,
    EVICT_POLICIES,
    WitnessCoordinator,
    WitnessTap,
    run_with_byzantine,
)

from .detector import (
    LEVEL_CONFIRM,
    LEVEL_SUSPECT,
    LEVEL_TRUST,
    LEVELS,
    AdaptiveRto,
    PhiAccrualDetector,
    PhiConfig,
    SuspicionEvent,
)
from .partial import (
    PartialAggregateResult,
    STATUS_EXACT,
    STATUS_FAILED,
    STATUS_PARTIAL,
    certify,
)
from .transport import (
    FRAME_KIND,
    HEDGE_KIND,
    NACK_KIND,
    RTO_MODES,
    TRANSPORT_KINDS,
    ReliableTransport,
    TransportConfig,
    TransportGap,
    TransportNode,
    as_transport,
    wrap_network_args,
)
from .failover import (
    ELECT_KIND,
    ElectionNode,
    ElectionReport,
    EpochReport,
    RECOVERABLE_PROTOCOLS,
    RecoveryOutcome,
    RecoveryPolicy,
    run_with_recovery,
)
from .epochs import (
    ChurnEpochReport,
    ChurnOutcome,
    ChurnPolicy,
    ContributionLedger,
    HeartbeatTracker,
    SNAP_KIND,
    SNAP_REQ_KIND,
    SnapshotStore,
    neutral_input,
    run_with_churn,
)

__all__ = [
    "AUDITABLE_CAAFS",
    "Accusation",
    "AdaptiveRto",
    "ByzEpochReport",
    "ByzantineConfig",
    "ByzantineOutcome",
    "Conviction",
    "EVICT_POLICIES",
    "WitnessCoordinator",
    "WitnessTap",
    "run_with_byzantine",
    "ChurnEpochReport",
    "ChurnOutcome",
    "ChurnPolicy",
    "ContributionLedger",
    "HeartbeatTracker",
    "SNAP_KIND",
    "SNAP_REQ_KIND",
    "SnapshotStore",
    "neutral_input",
    "run_with_churn",
    "ELECT_KIND",
    "ElectionNode",
    "ElectionReport",
    "EpochReport",
    "FRAME_KIND",
    "HEDGE_KIND",
    "LEVEL_CONFIRM",
    "LEVEL_SUSPECT",
    "LEVEL_TRUST",
    "LEVELS",
    "NACK_KIND",
    "PartialAggregateResult",
    "PhiAccrualDetector",
    "PhiConfig",
    "RECOVERABLE_PROTOCOLS",
    "RTO_MODES",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "ReliableTransport",
    "SuspicionEvent",
    "STATUS_EXACT",
    "STATUS_FAILED",
    "STATUS_PARTIAL",
    "TRANSPORT_KINDS",
    "TransportConfig",
    "TransportGap",
    "TransportNode",
    "as_transport",
    "certify",
    "run_with_recovery",
    "wrap_network_args",
]
