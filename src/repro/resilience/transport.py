"""Reliable local-broadcast transport over a lossy network.

The paper's model (Section 2) promises that a broadcast made in round ``r``
reaches every live neighbour in round ``r + 1``, exactly once, in sender
order.  :class:`repro.sim.faults.MessageFaults` breaks all three promises.
This module restores them *underneath* an unmodified protocol handler, so
AGG/VERI and the composed protocols run bit-identically to the in-model
execution as long as the retransmit budget holds out.

Mechanism — windowed logical rounds:

* Every **logical** protocol round spans a fixed **window** of ``W``
  physical network rounds.  At slot 1 of window ``r`` each live node hands
  its inner handler the (recovered) logical inbox of round ``r`` and wraps
  whatever the handler broadcasts into a single *frame* carrying the
  logical round number, an attempt counter, and the inner parts.  An empty
  broadcast still produces a heartbeat frame, so a missing frame is
  distinguishable from a silent node.
* Frames are deduplicated per ``(sender, logical round)`` — duplicate
  copies injected by the network are suppressed — and buffered per logical
  round, so arbitrary within-window reordering and delays are absorbed.
  The delivered inbox is sorted by sender id with per-frame part order
  preserved, which reproduces the exact-model delivery order.
* At fixed **NACK slots** inside the window a receiver that is still
  missing a frame broadcasts a NACK naming the missing senders; the named
  senders rebroadcast their frame (attempt > 0).  NACK slots follow a
  bounded exponential backoff: consecutive gaps start at 2 physical rounds
  (the minimum feasible NACK->retransmit cycle) and double up to
  ``backoff_cap``.  Each frame is retransmitted at most
  ``retransmits`` times.
* If a frame is still missing when its window closes, the receiver records
  a **gap** with the :class:`ReliableTransport` coordinator and presumes
  the sender dead (it stops NACKing it; any later frame revives it).  Gaps
  whose sender really had crashed by the deadline are the model's own
  silence and are *excused*; a gap from a live sender means delivery
  semantics were violated despite the budget, and poisons certification
  (see :mod:`repro.resilience.partial`).

All transport bits — frame headers, NACKs, and entire retransmitted
frames — are classified by :meth:`ReliableTransport.overhead_bits` and
booked under :attr:`repro.sim.stats.SimStats.overhead_bits`, so
``SimStats.max_bits`` keeps meaning the *protocol* CC and the paper's
envelope checks stay honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..obs import spans as _spans
from ..sim.message import Envelope, Part, TAG_BITS, id_bits
from ..sim.node import NodeHandler
from .detector import LEVEL_CONFIRM, PhiAccrualDetector, AdaptiveRto

#: Wire kinds used by the transport shim.
FRAME_KIND = "xport_frame"
NACK_KIND = "xport_nack"
#: A neighbour's relay of another sender's frame (hedged retransmission).
HEDGE_KIND = "xport_hedge"
TRANSPORT_KINDS = frozenset({FRAME_KIND, NACK_KIND, HEDGE_KIND})

#: Accepted retransmission-timing modes.
RTO_MODES = ("fixed", "adaptive")

#: Bits for a logical-round sequence number on the wire.
SEQ_BITS = 16
#: Bits for a frame's attempt counter.
ATTEMPT_BITS = 3
#: Bits for the incarnation stamp revived nodes append to frames and
#: NACKs (absent — and free — for incarnation 0, the pre-churn format).
INCARNATION_BITS = 4
#: Header cost of every frame: tag + sequence number + attempt counter.
FRAME_HEADER_BITS = TAG_BITS + SEQ_BITS + ATTEMPT_BITS


@dataclass(frozen=True)
class TransportConfig:
    """Tuning knobs for the reliable transport.

    Attributes:
        retransmits: Maximum retransmissions of any single frame (the
            per-frame recovery budget).  0 disables recovery and leaves
            only framing + dedup + reorder buffering.
        backoff_cap: Upper bound, in physical rounds, on the gap between
            consecutive NACK slots.  The gap sequence is 2, 4, 8, ...
            capped here; ``backoff_cap=2`` forces linear (every other
            slot) NACKing.
        rto: Retransmission-timing mode.  ``"fixed"`` keeps the
            historical schedule (NACKs at the precomputed slots, windows
            of exactly :attr:`window` rounds) and is bit-identical to
            pre-gray builds.  ``"adaptive"`` times NACKs per link from an
            EWMA RTT estimator (:class:`repro.resilience.detector.AdaptiveRto`)
            and lets the coordinator close a logical round early once
            every live node reports a complete inbox — clean stretches
            run 2-round windows instead of :attr:`window`-round ones,
            while degraded links stretch back up to the fixed cap.
        hedge: Enable hedged retransmission: a neighbour holding a copy
            of a frame a receiver has NACKed twice relays it on the
            alternative path (booked entirely as overhead).  On clean
            runs no NACK is ever repeated, so hedging changes nothing.
    """

    retransmits: int = 2
    backoff_cap: int = 8
    rto: str = "fixed"
    hedge: bool = False

    def __post_init__(self) -> None:
        if self.retransmits < 0:
            raise ValueError(
                f"retransmits must be >= 0, got {self.retransmits}"
            )
        if self.backoff_cap < 2:
            raise ValueError(
                f"backoff_cap must be >= 2, got {self.backoff_cap}"
            )
        if self.rto not in RTO_MODES:
            raise ValueError(
                f"rto must be one of {RTO_MODES}, got {self.rto!r}"
            )

    @property
    def adaptive(self) -> bool:
        """Whether per-link adaptive RTO replaces the fixed schedule."""
        return self.rto == "adaptive"

    @property
    def detecting(self) -> bool:
        """Whether the φ-accrual detector runs (adaptive RTO or hedging)."""
        return self.adaptive or self.hedge

    @property
    def nack_slots(self) -> Tuple[int, ...]:
        """Window slots at which receivers NACK missing frames."""
        slots: List[int] = []
        slot, gap = 2, 2
        for _ in range(self.retransmits):
            slots.append(slot)
            gap = min(gap, self.backoff_cap)
            slot += gap
            gap *= 2
        return tuple(slots)

    @property
    def window(self) -> int:
        """Physical rounds per logical round.

        Sized so the retransmission triggered by the last NACK slot still
        arrives before the logical round is finalized (frames arriving at
        slot 1 of the next window are absorbed before delivery).
        """
        slots = self.nack_slots
        return (slots[-1] + 1) if slots else 2

    def as_jsonable(self) -> Dict[str, int]:
        # rto/hedge are emitted only when non-default so pre-gray (v3 and
        # older) bundle bytes are unchanged for fixed-schedule configs.
        out: Dict[str, object] = {
            "retransmits": self.retransmits,
            "backoff_cap": self.backoff_cap,
        }
        if self.rto != "fixed":
            out["rto"] = self.rto
        if self.hedge:
            out["hedge"] = True
        return out

    @classmethod
    def from_jsonable(cls, data: Dict[str, int]) -> "TransportConfig":
        return cls(
            retransmits=int(data["retransmits"]),
            backoff_cap=int(data.get("backoff_cap", 8)),
            rto=str(data.get("rto", "fixed")),
            hedge=bool(data.get("hedge", False)),
        )


class TransportGap(NamedTuple):
    """A frame that never arrived: receiver gave up on sender for a round."""

    logical_round: int
    sender: int
    receiver: int
    #: Last physical round at which the frame could still have arrived.
    deadline: int


class ReliableTransport:
    """Shared coordinator for one network's worth of :class:`TransportNode`.

    Holds the config, the retransmit-budget ledger, fault-recovery counters
    and the gap log; also serves as the network's overhead classifier via
    :meth:`overhead_bits`.
    """

    def __init__(self, config: Optional[TransportConfig] = None) -> None:
        self.config = config or TransportConfig()
        self.n_nodes = 0
        #: Retransmissions used, per ``(sender, logical_round)``.
        self.retx_used: Dict[Tuple[int, int], int] = {}
        self.frames = 0
        self.retransmissions = 0
        self.nacks = 0
        self.duplicates_suppressed = 0
        self.stale_frames = 0
        self.revivals = 0
        #: NACKs discarded because they referenced a seq window from a
        #: peer's *previous incarnation* (crash-recovery churn): the
        #: rebooted peer re-syncs at the next window boundary, so
        #: retransmitting against its ghost NACK would only burn budget.
        self.stale_nacks = 0
        #: Rejoins enacted through the ``on_churn_revive`` hook, by mode.
        self.rejoins_durable = 0
        self.rejoins_amnesiac = 0
        #: Frames/NACKs whose payload did not have the expected shape
        #: (possible under corruption injection without an integrity
        #: layer); dropped rather than crashing the decoder.
        self.malformed = 0
        self.gaps: List[TransportGap] = []
        #: Hedged relays sent / hedged copies that filled a missing slot.
        self.hedges = 0
        self.hedge_deliveries = 0
        #: Per-link retransmission audit: attempts granted and budget-cap
        #: hits, keyed ``(frame sender, NACKing receiver)`` — the
        #: aggregate counters above stay, but per-link RTO adaptation is
        #: only auditable with the link-level split.
        self.link_attempts: Dict[Tuple[int, int], int] = {}
        self.link_cap_hits: Dict[Tuple[int, int], int] = {}
        #: φ-accrual suspicion and per-link RTO state (adaptive / hedge
        #: modes only; ``None`` keeps the fixed path untouched).
        self.detector: Optional[PhiAccrualDetector] = (
            PhiAccrualDetector() if self.config.detecting else None
        )
        self.rtos: Dict[Tuple[int, int], AdaptiveRto] = {}
        #: Hedge claims already granted, per ``(origin, lr, receiver)``.
        self._hedge_claims: set = set()
        # Adaptive-window state: start round of the current logical round
        # plus the sealed history (lr -> start round).  Fixed mode never
        # touches these; slot arithmetic stays closed-form.
        self._cur_lr = 1
        self._cur_start = 1
        self._starts: Dict[int, int] = {1: 1}
        #: Per-round missing-frame reports: round -> node -> count.
        self._reports: Dict[int, Dict[int, int]] = {}

    @property
    def window(self) -> int:
        return self.config.window

    def wrap(self, handlers: Dict[int, NodeHandler], adjacency) -> Dict[int, "TransportNode"]:
        """Wrap every handler in a :class:`TransportNode` bound to this coordinator."""
        self.n_nodes = max(self.n_nodes, len(adjacency))
        # A new network's rounds restart at 1 (failover epochs): reset the
        # window tracker and the detector's arrival clocks, keeping the
        # learned inter-arrival history and RTO estimators.
        self._cur_lr = 1
        self._cur_start = 1
        self._starts = {1: 1}
        self._reports = {}
        if self.detector is not None:
            self.detector._last = {}
            self.detector._level = {}
        return {
            u: TransportNode(self, u, handlers[u], adjacency[u])
            for u in handlers
        }

    # ------------------------------------------------------------------ #
    # Adaptive windows (rto="adaptive" only).
    # ------------------------------------------------------------------ #

    def locate(self, rnd: int) -> Tuple[int, int]:
        """The ``(logical round, slot)`` physical round ``rnd`` falls in.

        Fixed mode is closed-form arithmetic.  Adaptive mode seals window
        boundaries lazily: the first ``locate`` call for a round decides —
        from the previous round's missing-frame reports only, so the
        decision is identical no matter which node asks first — whether
        the current logical round closes here.  A window closes when
        every reporting node had a complete inbox (earliest possible:
        after slot 2), or at the fixed cap :attr:`window`.
        """
        if not self.config.adaptive:
            window = self.config.window
            return (rnd - 1) // window + 1, (rnd - 1) % window + 1
        slot = rnd - self._cur_start + 1
        if slot >= 3 and self._should_close(slot):
            self._cur_lr += 1
            self._cur_start = rnd
            self._starts[self._cur_lr] = rnd
            slot = 1
        return self._cur_lr, slot

    def _should_close(self, slot: int) -> bool:
        if slot > self.config.window:
            return True
        reports = self._reports.get(self._cur_start + slot - 2)
        return bool(reports) and all(v == 0 for v in reports.values())

    def window_start(self, logical_round: int) -> int:
        """First physical round of ``logical_round``'s window."""
        if not self.config.adaptive:
            return (logical_round - 1) * self.config.window + 1
        return self._starts.get(
            logical_round, (logical_round - 1) * self.config.window + 1
        )

    def report_missing(self, node: int, rnd: int, missing: int) -> None:
        """One node's end-of-round count of still-missing frames."""
        self._reports.setdefault(rnd, {})[node] = missing
        for old in [r for r in self._reports if r < rnd - 2]:
            del self._reports[old]

    # ------------------------------------------------------------------ #
    # Detection and per-link timing (adaptive / hedge modes).
    # ------------------------------------------------------------------ #

    def rto_of(self, receiver: int, sender: int) -> AdaptiveRto:
        """The receiver's RTO estimator for frames from ``sender``."""
        key = (receiver, sender)
        estimator = self.rtos.get(key)
        if estimator is None:
            estimator = self.rtos[key] = AdaptiveRto()
        return estimator

    def note_arrival(
        self, receiver: int, sender: int, frame_lr: int, rnd: int
    ) -> None:
        """Feed one first-attempt frame arrival to detector and RTO.

        Karn-style exclusion: links with any retransmission outstanding
        for this frame contribute no RTT sample (an original-vs-retransmit
        ambiguity would poison the estimator); the φ-accrual arrival clock
        still advances — a frame is a heartbeat however it got here.
        """
        if self.detector is None:
            return
        self.detector.observe(receiver, sender, frame_lr)
        if self.retx_used.get((sender, frame_lr), 0) == 0:
            rtt = max(1, rnd - self.window_start(frame_lr))
            self.rto_of(receiver, sender).sample(rtt)

    def claim_hedge(self, origin: int, logical_round: int, receiver: int) -> bool:
        """First-claimant election for one hedged relay (deterministic:
        nodes run in a fixed order, so the same neighbour wins on replay)."""
        key = (origin, logical_round, receiver)
        if key in self._hedge_claims:
            return False
        self._hedge_claims.add(key)
        self.hedges += 1
        if _spans.enabled:
            _spans.active().event(
                "transport.hedge",
                cat="transport",
                tid=origin,
                round=logical_round,
                receiver=receiver,
            )
        return True

    # ------------------------------------------------------------------ #
    # Bit accounting.
    # ------------------------------------------------------------------ #

    def nack_bits(self, n_missing: int) -> int:
        """Wire cost of a NACK naming ``n_missing`` senders."""
        return TAG_BITS + SEQ_BITS + n_missing * id_bits(max(self.n_nodes, 2))

    def overhead_bits(self, part: Part) -> int:
        """How many of ``part``'s bits are transport overhead.

        First-attempt frames cost their header — including the
        incarnation stamp a revived sender appends, which is transport
        framing, not protocol payload (the wrapped protocol parts inside
        are the only protocol bits); retransmitted frames and NACKs are
        overhead in full; protocol parts cost nothing here.
        """
        if part.kind == FRAME_KIND:
            attempt = part.payload[1]
            if attempt > 0:
                return part.bits
            header = FRAME_HEADER_BITS
            if len(part.payload) > 3:
                header += INCARNATION_BITS
            return header
        if part.kind == NACK_KIND:
            return part.bits
        if part.kind == HEDGE_KIND:
            # A relayed copy of another node's frame: repair traffic in
            # full, exactly like a retransmission.
            return part.bits
        return 0

    # ------------------------------------------------------------------ #
    # Budget ledger and gap log.
    # ------------------------------------------------------------------ #

    def try_consume_retransmit(self, sender: int, logical_round: int) -> Optional[int]:
        """Reserve one retransmission; returns the attempt number or None."""
        used = self.retx_used.get((sender, logical_round), 0)
        if used >= self.config.retransmits:
            return None
        self.retx_used[(sender, logical_round)] = used + 1
        self.retransmissions += 1
        return used + 1

    def consume_retransmit(
        self, sender: int, logical_round: int, requesters
    ) -> Optional[int]:
        """Like :meth:`try_consume_retransmit`, with per-link attribution.

        ``requesters`` are the receivers whose NACKs triggered this
        attempt; each ``(sender, requester)`` link is charged one attempt
        (or one cap hit when the budget is already spent), making per-link
        RTO adaptation auditable in traces.
        """
        attempt = self.try_consume_retransmit(sender, logical_round)
        ledger = self.link_attempts if attempt is not None else self.link_cap_hits
        requesters = tuple(requesters)
        for requester in requesters:
            key = (sender, requester)
            ledger[key] = ledger.get(key, 0) + 1
        if _spans.enabled:
            _spans.active().event(
                "transport.retransmit"
                if attempt is not None
                else "transport.cap_hit",
                cat="transport",
                tid=sender,
                round=logical_round,
                attempt=attempt,
                requesters=len(requesters),
            )
        return attempt

    def link_counters(self) -> Dict[str, Dict[str, object]]:
        """Per-link retransmit/RTO audit, JSON-ready (``"s->r"`` keys)."""
        out: Dict[str, Dict[str, object]] = {
            "attempts": {
                f"{s}->{r}": n
                for (s, r), n in sorted(self.link_attempts.items())
            },
            "cap_hits": {
                f"{s}->{r}": n
                for (s, r), n in sorted(self.link_cap_hits.items())
            },
            "budget": self.config.retransmits,
        }
        if self.rtos:
            out["rto"] = {
                f"{r}->{s}": est.as_dict()
                for (r, s), est in sorted(self.rtos.items())
                if est.samples
            }
        return out

    def record_gap(
        self, logical_round: int, sender: int, receiver: int, deadline: int
    ) -> None:
        self.gaps.append(TransportGap(logical_round, sender, receiver, deadline))

    def budget_overruns(self) -> List[Tuple[int, int, int]]:
        """``(sender, logical_round, used)`` entries exceeding the budget.

        The transport enforces the budget itself, so a non-empty result
        means the ledger was corrupted — watched by
        :class:`repro.sim.monitors.RetransmitBudgetMonitor`.
        """
        return [
            (sender, lr, used)
            for (sender, lr), used in sorted(self.retx_used.items())
            if used > self.config.retransmits
        ]

    def live_gaps(self, crash_rounds: Dict[int, float]) -> List[TransportGap]:
        """Gaps whose sender was still alive at the recovery deadline.

        These are unexcused delivery failures (the retransmit budget was
        exhausted against a live sender) and void result certification.
        A gap from a sender that had crashed by the deadline is the
        model's own silence, not a transport failure.
        """
        return [
            g
            for g in self.gaps
            if crash_rounds.get(g.sender, float("inf")) > g.deadline
        ]

    def counters(self) -> Dict[str, int]:
        """Plain-dict counter snapshot for reports and run rows."""
        out = {
            "frames": self.frames,
            "retransmissions": self.retransmissions,
            "nacks": self.nacks,
            "duplicates_suppressed": self.duplicates_suppressed,
            "stale_frames": self.stale_frames,
            "stale_nacks": self.stale_nacks,
            "revivals": self.revivals,
            "rejoins_durable": self.rejoins_durable,
            "rejoins_amnesiac": self.rejoins_amnesiac,
            "malformed": self.malformed,
            "gaps": len(self.gaps),
        }
        if self.config.hedge:
            out["hedges"] = self.hedges
            out["hedge_deliveries"] = self.hedge_deliveries
        if self.detector is not None:
            out.update(self.detector.counters())
        return out

    def live_gaps_in(self, network) -> List[TransportGap]:
        """Like :meth:`live_gaps`, judged against a churn-aware network.

        Under crash-recovery churn a gap is the model's own silence — not
        a transport failure — in three additional cases, all excused:

        * the **sender** was down at any point of the logical round's
          window (it never emitted, or could not retransmit, the frame);
        * the **receiver** was down at any point of the window (a revived
          node charges itself a gap for every frame it slept through);
        * the **link was flapped** during the window (an edge failure,
          which the paper's model sanctions and the f-budget monitor
          counts — see :class:`repro.sim.monitors.FBudgetMonitor`).

        :meth:`repro.sim.network.Network.is_alive` consults downtime
        intervals and :meth:`~repro.sim.network.Network.link_up` the flap
        windows, so all three checks are churn-aware.
        """
        link_up = getattr(network, "link_up", None)
        out = []
        for g in self.gaps:
            start = self.window_start(g.logical_round)
            span = range(start, g.deadline + 1)
            if any(not network.is_alive(g.sender, r) for r in span):
                continue
            if any(not network.is_alive(g.receiver, r) for r in span):
                continue
            if link_up is not None and any(
                not link_up(g.sender, g.receiver, r) for r in span
            ):
                continue
            out.append(g)
        return out


class TransportNode(NodeHandler):
    """Per-node transport shim wrapping an inner protocol handler.

    Unknown attributes (``result``, ``done``, ``state``, ...) delegate to
    the inner handler, so monitors and outcome extraction that read the
    handler directly keep working on wrapped nodes.
    """

    def __init__(
        self,
        transport: ReliableTransport,
        node_id: int,
        inner: NodeHandler,
        neighbours,
    ) -> None:
        self.transport = transport
        self.node_id = node_id
        self.inner = inner
        self.neighbours = tuple(neighbours)
        #: Neighbours presumed alive (still expected to send frames).
        self._expected = set(self.neighbours)
        #: Buffered frame contents: logical round -> sender -> parts tuple.
        self._buf: Dict[int, Dict[int, tuple]] = {}
        #: Highest logical round already delivered to the inner handler.
        self._delivered = 0
        #: Contents of my own current frame, kept for retransmission.
        self._outbox: tuple = ()
        self._outbox_round = 0
        #: My incarnation (bumped by the churn injector's revive hook);
        #: 0 keeps the pre-churn wire format bit-identical.
        self._incarnation = 0
        #: Highest incarnation observed per peer, learned from frames.
        self._peer_inc: Dict[int, int] = {}
        #: Adaptive mode: slot of my last NACK, per ``(lr, sender)``.
        self._last_nack: Dict[Tuple[int, int], int] = {}
        #: Hedge mode: NACKs seen, per ``(lr, origin, requester)``.
        self._nack_seen: Dict[Tuple[int, int, int], int] = {}

    # -- delegation ---------------------------------------------------- #

    def __getattr__(self, name):
        # Only called when normal lookup fails; never for our own fields.
        inner = object.__getattribute__(self, "inner")
        return getattr(inner, name)

    def wants_to_stop(self) -> bool:
        return self.inner.wants_to_stop()

    # -- churn ---------------------------------------------------------- #

    def on_churn_revive(self, mode: str, incarnation: int, rnd: int) -> None:
        """Rejoin hook called by :class:`repro.sim.faults.ChurnSchedule`.

        *Durable* rejoins keep everything: the local value, the outbox and
        the seq/buffer state all survived on persistent storage.
        *Amnesiac* rejoins lose it all — the transport re-syncs its seq
        state to the current window (so pre-crash frames are recognized as
        stale) and the inner protocol handler is replaced by an inert
        :class:`AmnesiacInner` that only heartbeats until the epoch
        manager re-admits the node at the next epoch boundary.
        """
        self._incarnation = incarnation
        if mode == "amnesiac":
            self.transport.rejoins_amnesiac += 1
            lr_now = self.transport.locate(rnd)[0]
            self._buf = {}
            self._outbox = ()
            self._outbox_round = 0
            self._delivered = lr_now - 1
            self._expected = set(self.neighbours)
            self._peer_inc = {}
            self.inner = AmnesiacInner(self.node_id, self.inner)
        else:
            self.transport.rejoins_durable += 1

    # -- round machinery ----------------------------------------------- #

    def on_round(self, rnd: int, inbox) -> List[Part]:
        cfg = self.transport.config
        lr, slot = self.transport.locate(rnd)

        requesters, hedge_relays = self._absorb(lr, slot, rnd, inbox)
        out: List[Part] = []

        if slot == 1:
            out.append(self._advance_logical_round(lr, rnd))
        elif requesters and self._outbox_round == lr:
            attempt = self.transport.consume_retransmit(
                self.node_id, lr, sorted(requesters)
            )
            if attempt is not None:
                out.append(self._frame(lr, attempt))

        for origin, parts in hedge_relays:
            out.append(self._hedge(lr, origin, parts))

        missing = sorted(self._expected - set(self._buf.get(lr, {})))
        if cfg.adaptive:
            due = [m for m in missing if self._nack_due(lr, m, slot)]
            if due:
                self.transport.nacks += 1
                for m in due:
                    self._last_nack[(lr, m)] = slot
                payload = (lr, tuple(due))
                bits = self.transport.nack_bits(len(due))
                if self._incarnation:
                    payload += (self._incarnation,)
                    bits += INCARNATION_BITS
                out.append(Part(NACK_KIND, payload, bits))
            self.transport.report_missing(self.node_id, rnd, len(missing))
        elif slot in cfg.nack_slots and missing:
            self.transport.nacks += 1
            payload = (lr, tuple(missing))
            bits = self.transport.nack_bits(len(missing))
            if self._incarnation:
                payload += (self._incarnation,)
                bits += INCARNATION_BITS
            out.append(Part(NACK_KIND, payload, bits))
        return out

    def _nack_due(self, lr: int, sender: int, slot: int) -> bool:
        """Adaptive NACK pacing: wait out the link's RTO before nagging.

        The first NACK for a missing frame waits ``rto + 1`` slots past
        the broadcast slot (one round for the frame, ``rto`` for the path
        it usually takes); re-NACKs back off by at least the RTO so a
        congested link is not hammered with requests it cannot honour.
        """
        rto = self.transport.rto_of(self.node_id, sender).rto
        last = self._last_nack.get((lr, sender))
        if last is None:
            return slot >= rto + 2
        return slot >= last + max(2, rto)

    def _hedge(self, lr: int, origin: int, parts: tuple) -> Part:
        """Relay a buffered copy of ``origin``'s frame (hedged repair)."""
        payload_bits = sum(bits for _k, _p, bits in parts)
        header = FRAME_HEADER_BITS + id_bits(max(self.transport.n_nodes, 2))
        return Part(HEDGE_KIND, (lr, origin, parts), header + payload_bits)

    def _absorb(self, lr: int, slot: int, rnd: int, inbox):
        """File incoming frames, NACKs and hedges.

        Returns ``(requesters, hedge_relays)``: the set of neighbours
        whose NACKs named me this round, and ``(origin, parts)`` pairs I
        won the hedge election for and must relay.
        """
        transport = self.transport
        requesters: set = set()
        hedge_relays: List[tuple] = []
        for envelope in inbox:
            sender, part = envelope.sender, envelope.part
            if part.kind == FRAME_KIND:
                # Defensive decode: under corruption injection with no
                # integrity layer a frame payload can be truncated or
                # have a flipped field — drop it instead of crashing
                # (the NACK path then recovers the logical frame).
                # Incarnation-0 frames keep the historical 3-field shape
                # so pre-churn recordings replay bit-identically; revived
                # senders append their incarnation as a 4th field.
                payload = part.payload
                if (
                    not isinstance(payload, tuple)
                    or len(payload) not in (3, 4)
                    or not isinstance(payload[0], int)
                    or not isinstance(payload[2], tuple)
                    or (len(payload) == 4 and not isinstance(payload[3], int))
                ):
                    transport.malformed += 1
                    continue
                frame_inc = payload[3] if len(payload) == 4 else 0
                if frame_inc > self._peer_inc.get(sender, 0):
                    self._peer_inc[sender] = frame_inc
                frame_lr = payload[0]
                if frame_lr <= self._delivered:
                    transport.stale_frames += 1
                    continue
                buf = self._buf.setdefault(frame_lr, {})
                if sender in buf:
                    transport.duplicates_suppressed += 1
                    continue
                buf[sender] = payload[2]
                if payload[1] == 0:
                    transport.note_arrival(self.node_id, sender, frame_lr, rnd)
                if sender not in self._expected and sender in self.neighbours:
                    self._expected.add(sender)
                    transport.revivals += 1
            elif part.kind == HEDGE_KIND:
                # A neighbour relaying another node's buffered frame on my
                # behalf.  Hedges never feed the detector or the RTO — the
                # relay path's timing says nothing about the origin link.
                payload = part.payload
                if (
                    not isinstance(payload, tuple)
                    or len(payload) != 3
                    or not isinstance(payload[0], int)
                    or not isinstance(payload[1], int)
                    or not isinstance(payload[2], tuple)
                ):
                    transport.malformed += 1
                    continue
                hedge_lr, origin, parts = payload
                if hedge_lr <= self._delivered:
                    transport.stale_frames += 1
                    continue
                buf = self._buf.setdefault(hedge_lr, {})
                if origin in buf:
                    transport.duplicates_suppressed += 1
                    continue
                buf[origin] = parts
                transport.hedge_deliveries += 1
                if origin not in self._expected and origin in self.neighbours:
                    self._expected.add(origin)
                    transport.revivals += 1
            elif part.kind == NACK_KIND:
                payload = part.payload
                if (
                    not isinstance(payload, tuple)
                    or len(payload) not in (2, 3)
                    or not isinstance(payload[0], int)
                    or not isinstance(payload[1], tuple)
                    or (len(payload) == 3 and not isinstance(payload[2], int))
                ):
                    transport.malformed += 1
                    continue
                nack_lr, missing = payload[0], payload[1]
                # Stale-NACK guard: a NACK stamped with an incarnation
                # older than the sender's latest observed one references
                # a seq window from before its crash.  The rebooted peer
                # re-syncs at the next window boundary on its own, so
                # retransmitting against the ghost request would only
                # burn per-frame budget needed for real losses.
                nack_inc = payload[2] if len(payload) == 3 else 0
                if nack_inc < self._peer_inc.get(sender, 0):
                    transport.stale_nacks += 1
                    continue
                if nack_lr == lr and slot > 1 and self.node_id in missing:
                    requesters.add(sender)
                if transport.config.hedge and nack_lr == lr:
                    # Hedged retransmission: on the *second* NACK I see
                    # from the same requester for the same missing origin,
                    # the primary path is presumed degraded — if I hold a
                    # buffered copy, stand for the relay election.
                    for origin in missing:
                        if origin == self.node_id:
                            continue
                        key = (lr, origin, sender)
                        seen = self._nack_seen.get(key, 0) + 1
                        self._nack_seen[key] = seen
                        parts = self._buf.get(lr, {}).get(origin)
                        if parts is None or seen < 2:
                            continue
                        if transport.claim_hedge(origin, lr, sender):
                            hedge_relays.append((origin, parts))
            else:  # non-transport part: a mixed network; pass through.
                buf = self._buf.setdefault(lr, {})
                existing = buf.get(sender, ())
                buf[sender] = existing + ((part.kind, part.payload, part.bits),)
        return requesters, hedge_relays

    def _advance_logical_round(self, lr: int, rnd: int) -> Part:
        """Finalize round ``lr - 1``, feed the inner handler, emit frame ``lr``."""
        transport = self.transport
        if lr > 1:
            arrived = self._buf.pop(lr - 1, {})
            detector = transport.detector
            for sender in sorted(self._expected - set(arrived)):
                transport.record_gap(lr - 1, sender, self.node_id, rnd)
                # Graded eviction: with a φ-accrual detector a missing
                # frame alone does not kill the peer — only a *confirmed*
                # suspicion (φ past the confirm threshold) stops expecting
                # it, so stragglers stay in the membership.
                if (
                    detector is None
                    or detector.level(self.node_id, sender, lr, rnd)
                    == LEVEL_CONFIRM
                ):
                    self._expected.discard(sender)
            self._last_nack = {
                k: v for k, v in self._last_nack.items() if k[0] >= lr
            }
            self._nack_seen = {
                k: v for k, v in self._nack_seen.items() if k[0] >= lr
            }
            logical_inbox = [
                Envelope(sender, Part(kind, payload, bits))
                for sender in sorted(arrived)
                for kind, payload, bits in arrived[sender]
            ]
        else:
            logical_inbox = []
        self._delivered = lr - 1
        inner_parts = tuple(self.inner.on_round(lr, logical_inbox))
        self._outbox = tuple((p.kind, p.payload, p.bits) for p in inner_parts)
        self._outbox_round = lr
        transport.frames += 1
        return self._frame(lr, attempt=0)

    def _frame(self, lr: int, attempt: int) -> Part:
        payload_bits = sum(bits for _, _, bits in self._outbox)
        payload = (lr, attempt, self._outbox)
        header = FRAME_HEADER_BITS
        if self._incarnation:
            payload += (self._incarnation,)
            header += INCARNATION_BITS
        return Part(FRAME_KIND, payload, header + payload_bits)


class AmnesiacInner(NodeHandler):
    """Inner handler of an amnesiac-rejoined node.

    All protocol state died with the previous incarnation; until the
    epoch manager re-admits the node at the next epoch boundary it only
    sustains the transport heartbeat (empty frames) so neighbours detect
    the rejoin.  ``result`` intentionally resolves to ``None``: a node
    that lost its state cannot vouch for an output.
    """

    def __init__(self, node_id: int, lost: Optional[NodeHandler] = None):
        self.node_id = node_id
        #: The pre-crash handler, kept for forensics only (never run).
        self.lost = lost
        self.result = None

    def on_round(self, rnd: int, inbox) -> List[Part]:
        return []

    def wants_to_stop(self) -> bool:
        return False


def wrap_network_args(
    transport: Optional[ReliableTransport],
    handlers: Dict[int, NodeHandler],
    adjacency,
) -> Tuple[Dict[int, NodeHandler], Optional[object], int]:
    """Helper for protocol runners: wrap handlers if a transport is given.

    Returns ``(handlers, overhead_fn, window)`` — with no transport the
    originals come back with ``window == 1``.
    """
    if transport is None:
        return handlers, None, 1
    return (
        transport.wrap(handlers, adjacency),
        transport.overhead_bits,
        transport.window,
    )


def as_transport(spec) -> Optional[ReliableTransport]:
    """Coerce ``None`` / :class:`TransportConfig` / :class:`ReliableTransport`."""
    if spec is None:
        return None
    if isinstance(spec, ReliableTransport):
        return spec
    if isinstance(spec, TransportConfig):
        return ReliableTransport(spec)
    raise TypeError(
        f"expected TransportConfig or ReliableTransport, got {type(spec).__name__}"
    )
