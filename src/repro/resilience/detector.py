"""φ-accrual failure suspicion and adaptive retransmission timing.

Binary timeouts cannot tell a *slow* node from a *dead* one — the exact
confusion gray failures exploit.  This module provides the two graded
estimators the reliable transport uses instead of fixed schedules:

* :class:`PhiAccrualDetector` — Hayashibara et al.'s φ-accrual failure
  detector.  Every observer keeps, per peer, a sliding window of frame
  inter-arrival gaps (measured in *logical* rounds: the transport emits
  exactly one frame per logical round, so a healthy peer's gap is 1).
  The suspicion level for a silent peer is

  .. math:: \\varphi = -\\log_{10} P(\\text{gap} > \\text{elapsed})

  under a normal fit of the observed gaps (standard deviation floored at
  ``min_std`` so a perfectly regular history does not produce infinite
  confidence).  φ *accrues* continuously as silence lengthens, so
  callers get a graded signal — ``trust`` / ``suspect`` / ``confirm`` —
  instead of a binary verdict.  Only a **confirmable** suspicion
  (φ ≥ ``confirm_threshold``, roughly "one in 10^8 that the peer is
  merely slow") may drive eviction or failover; a limping node hovers in
  ``suspect`` and is left alive.

* :class:`AdaptiveRto` — per-link retransmission timeout: EWMA of the
  observed RTT plus four mean deviations (the classic TCP estimator,
  RFC 6298 coefficients), with Karn-style sample exclusion handled by
  the caller (only first-attempt, non-hedged frames are sampled).  The
  RTO never falls below the minimum RTT ever observed on the link, so a
  burst of fast samples cannot make the timer fire before a physically
  possible reply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Graded suspicion levels, in increasing order of confidence.
LEVEL_TRUST = "trust"
LEVEL_SUSPECT = "suspect"
LEVEL_CONFIRM = "confirm"
LEVELS = (LEVEL_TRUST, LEVEL_SUSPECT, LEVEL_CONFIRM)


@dataclass(frozen=True)
class PhiConfig:
    """Tuning knobs for the φ-accrual detector.

    Attributes:
        window_size: Inter-arrival samples kept per (observer, peer).
        min_std: Floor on the fitted standard deviation, in logical
            rounds; prevents a perfectly regular history from yielding
            infinite φ after one late frame.
        suspect_threshold: φ at which a peer becomes ``suspect``
            (φ = 1: a gap this long happens one time in 10).
        confirm_threshold: φ at which a suspicion is *confirmable* and
            may drive eviction/failover (φ = 8: one time in 10^8).
        min_samples: Gaps required before the observed history replaces
            the prior (mean 1 logical round — the healthy cadence).
            Must be at least 2: the variance of a single inter-arrival
            sample is identically zero, so a one-sample "fit" would rest
            entirely on the ``min_std`` floor while claiming to be
            observed history.
    """

    window_size: int = 16
    min_std: float = 1.0
    suspect_threshold: float = 1.0
    confirm_threshold: float = 8.0
    min_samples: int = 3

    def __post_init__(self) -> None:
        if self.window_size < 2:
            raise ValueError(
                f"window_size must be >= 2, got {self.window_size}"
            )
        if self.min_std <= 0:
            raise ValueError(f"min_std must be > 0, got {self.min_std}")
        if not 0 < self.suspect_threshold < self.confirm_threshold:
            raise ValueError(
                "thresholds must satisfy 0 < suspect < confirm, got "
                f"{self.suspect_threshold} / {self.confirm_threshold}"
            )
        if self.min_samples < 2:
            raise ValueError(
                "min_samples must be >= 2 (one sample has zero variance "
                f"— no history to fit), got {self.min_samples}"
            )


@dataclass(frozen=True)
class SuspicionEvent:
    """One suspicion-level transition, for the straggler oracle."""

    round: int
    logical_round: int
    observer: int
    peer: int
    phi: float
    level: str


class PhiAccrualDetector:
    """Shared φ-accrual state for one transport's worth of observers."""

    def __init__(self, config: Optional[PhiConfig] = None) -> None:
        self.config = config or PhiConfig()
        #: Per (observer, peer): recent inter-arrival gaps (logical rounds).
        self._gaps: Dict[Tuple[int, int], List[int]] = {}
        #: Per (observer, peer): logical round of the last arrival.
        self._last: Dict[Tuple[int, int], int] = {}
        #: Per (observer, peer): last level announced (transition dedup).
        self._level: Dict[Tuple[int, int], str] = {}
        #: Level *rises* in order of occurrence (falls reset silently).
        self.events: List[SuspicionEvent] = []
        self.suspects = 0
        self.confirms = 0

    def observe(self, observer: int, peer: int, logical_round: int) -> None:
        """Record a frame arrival from ``peer`` for ``logical_round``."""
        key = (observer, peer)
        last = self._last.get(key)
        if last is not None and logical_round > last:
            gaps = self._gaps.setdefault(key, [])
            gaps.append(logical_round - last)
            if len(gaps) > self.config.window_size:
                del gaps[: len(gaps) - self.config.window_size]
        if last is None or logical_round > last:
            self._last[key] = logical_round
        if self._level.get(key, LEVEL_TRUST) != LEVEL_TRUST:
            self._level[key] = LEVEL_TRUST

    def phi(self, observer: int, peer: int, logical_round: int) -> float:
        """φ for ``peer`` as seen by ``observer`` at ``logical_round``."""
        key = (observer, peer)
        last = self._last.get(key)
        if last is None:
            # Never heard from: treat the run start as the last arrival.
            last = 0
        elapsed = logical_round - last
        if elapsed <= 0:
            return 0.0
        gaps = self._gaps.get(key, ())
        # Defense in depth against the cold-start hazard: even if the
        # config's min_samples guard is bypassed, never fit fewer than
        # two gaps — a single sample's variance is identically zero and
        # the whole suspicion would rest on the floor alone.
        if len(gaps) >= max(2, self.config.min_samples):
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            var = max(self.config.min_std ** 2, var)
            std = math.sqrt(var)
        else:
            # Prior: a healthy transport delivers one frame per logical
            # round.
            mean, std = 1.0, self.config.min_std
        p_later = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2)))
        if p_later <= 0.0:
            return float("inf")
        return -math.log10(p_later)

    def level(
        self,
        observer: int,
        peer: int,
        logical_round: int,
        rnd: Optional[int] = None,
    ) -> str:
        """Graded suspicion; logs each level *rise* as an event."""
        phi = self.phi(observer, peer, logical_round)
        if phi >= self.config.confirm_threshold:
            level = LEVEL_CONFIRM
        elif phi >= self.config.suspect_threshold:
            level = LEVEL_SUSPECT
        else:
            level = LEVEL_TRUST
        key = (observer, peer)
        previous = self._level.get(key, LEVEL_TRUST)
        if LEVELS.index(level) > LEVELS.index(previous):
            self._level[key] = level
            if level == LEVEL_SUSPECT:
                self.suspects += 1
            else:
                self.confirms += 1
                if previous == LEVEL_TRUST:
                    # Jumped straight past suspect: count both rises.
                    self.suspects += 1
            self.events.append(
                SuspicionEvent(
                    round=rnd if rnd is not None else logical_round,
                    logical_round=logical_round,
                    observer=observer,
                    peer=peer,
                    phi=phi,
                    level=level,
                )
            )
        elif LEVELS.index(level) < LEVELS.index(previous):
            self._level[key] = level
        return level

    def suspected_peers(self, min_level: str = LEVEL_SUSPECT) -> set:
        """Peers that ever reached ``min_level`` by any observer."""
        floor = LEVELS.index(min_level)
        return {
            e.peer
            for e in self.events
            if LEVELS.index(e.level) >= floor
        }

    def counters(self) -> Dict[str, int]:
        """Plain-dict counter snapshot for reports and run rows."""
        return {"suspects": self.suspects, "confirms": self.confirms}


class AdaptiveRto:
    """Per-link retransmission timeout from EWMA RTT + mean deviation.

    Units are physical rounds.  ``sample`` must only be fed Karn-clean
    RTTs (first-attempt, non-hedged frames on links with no outstanding
    retransmission); the caller enforces that exclusion.
    """

    #: RFC 6298 smoothing coefficients.
    ALPHA = 1 / 8
    BETA = 1 / 4
    #: RTO before any sample: one round (the model's clean latency).
    INITIAL_RTO = 1

    def __init__(self) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rtt: Optional[int] = None
        self.samples = 0

    def sample(self, rtt: int) -> None:
        """Fold one Karn-clean RTT measurement into the estimator."""
        if rtt < 0:
            raise ValueError(f"rtt must be >= 0, got {rtt}")
        rtt = max(1, rtt)
        self.samples += 1
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = float(rtt)
            self.rttvar = rtt / 2
        else:
            err = abs(self.srtt - rtt)
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * err
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        return None

    @property
    def rto(self) -> int:
        """Current timeout, floored at the minimum observed RTT."""
        if self.srtt is None:
            return self.INITIAL_RTO
        raw = math.ceil(self.srtt + 4 * self.rttvar)
        return max(self.min_rtt, raw, 1)

    def as_dict(self) -> Dict[str, float]:
        """Estimator snapshot for per-link audit trails."""
        return {
            "rto": self.rto,
            "srtt": round(self.srtt, 3) if self.srtt is not None else None,
            "rttvar": (
                round(self.rttvar, 3) if self.rttvar is not None else None
            ),
            "min_rtt": self.min_rtt,
            "samples": self.samples,
        }
