"""Top-k queries via repeated selection (a further Patt-Shamir-style use).

``distributed_topk`` returns the ``k`` largest inputs by running the
COUNT-binary-search selection of :mod:`repro.extensions.quantiles` for the
top ranks.  A small optimization halves the probe count in practice: the
binary search for rank ``r`` starts from the previous rank's value (top
values cluster), and exact ties are expanded without extra probes using a
final threshold count.

Cost: ``O(k log(domain))`` fault-tolerant COUNT executions in the worst
case — each zero-error, so the returned multiset is exact when no
failures occur and rank-consistent (bracketed between the survivor
population and the full population) under crashes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from .quantiles import QueryOutcome, _ProbeRunner, COUNT_INDICATOR


@dataclass
class TopKOutcome:
    """Result of a top-k query."""

    values: List[int]
    probes: int
    total_rounds: int
    cc_bits: int


def distributed_topk(
    topology: Topology,
    inputs: Dict[int, int],
    k: int,
    f: int,
    b: Optional[int] = None,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    rng: Optional[random.Random] = None,
    protocol: str = "algorithm1",
) -> TopKOutcome:
    """The ``k`` largest inputs, descending, via threshold COUNT probes.

    Strategy: the root works from COUNT queries only (it never sees raw
    inputs).  The rank-``r`` value is the smallest threshold ``m`` with
    ``count(> m) < r``; each rank is binary-searched, and thresholds
    already probed are memoized, so runs over clustered top values reuse
    most probes.  Worst case ``O(k log domain)`` COUNT executions.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    population = len(inputs)
    if k > population:
        raise ValueError(f"k={k} exceeds the population {population}")
    runner = _ProbeRunner(topology, f, b, schedule, c, rng, protocol)
    memo: Dict[int, int] = {}

    def count_above(threshold: int) -> int:
        if threshold not in memo:
            indicator = {u: 1 if inputs[u] > threshold else 0 for u in inputs}
            memo[threshold] = runner.run(
                f"count(> {threshold})", COUNT_INDICATOR, indicator
            )
        return memo[threshold]

    domain_hi = max(inputs.values())
    values: List[int] = []
    for rank in range(1, k + 1):
        lo, hi = -1, domain_hi
        # Smallest m with count_above(m) < rank: that m is the rank value.
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if count_above(mid) >= rank:
                lo = mid
            else:
                hi = mid
        # hi is the smallest m with count_above(m) < rank, i.e. the rank-th
        # largest value: at least `rank` inputs are >= hi, fewer exceed it.
        values.append(hi)
        domain_hi = hi  # ranks are non-increasing: narrow later searches

    totals: Dict[int, int] = {}
    for probe in runner.probes:
        for node, bits in probe.cc_bits_per_node.items():
            totals[node] = totals.get(node, 0) + bits
    return TopKOutcome(
        values=values,
        probes=len(runner.probes),
        total_rounds=sum(p.rounds for p in runner.probes),
        cc_bits=max(totals.values(), default=0),
    )
