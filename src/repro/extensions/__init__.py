"""Extensions built on the paper's protocols: quantiles and monitoring."""

from .histogram import (
    Bucket,
    HistogramOutcome,
    distributed_histogram,
    equi_width_buckets,
    exact_histogram,
)
from .monitoring import (
    EpochResult,
    MonitoringOutcome,
    constant_inputs,
    drifting_inputs,
    run_monitoring,
)
from .quantiles import (
    QueryOutcome,
    distributed_average,
    distributed_median,
    distributed_select,
    probe_budget,
)
from .topk import TopKOutcome, distributed_topk

__all__ = [
    "Bucket",
    "EpochResult",
    "HistogramOutcome",
    "distributed_histogram",
    "equi_width_buckets",
    "exact_histogram",
    "MonitoringOutcome",
    "QueryOutcome",
    "TopKOutcome",
    "constant_inputs",
    "distributed_topk",
    "distributed_average",
    "distributed_median",
    "distributed_select",
    "drifting_inputs",
    "probe_budget",
    "run_monitoring",
]
