"""SELECTION, MEDIAN, and AVERAGE on top of fault-tolerant COUNT/SUM.

Section 2 of the paper: "MEDIAN and SELECTION can be solved using COUNT by
doing a binary search over the output domain" (citing Patt-Shamir).  This
module implements exactly that, with Algorithm 1 (or the brute-force
protocol) as the fault-tolerant COUNT/SUM substrate:

* each probe asks every node for the indicator ``input <= m`` and runs a
  zero-error COUNT;
* binary search over the value domain finds the smallest ``m`` whose
  rank-count reaches ``k``;
* AVERAGE composes one SUM probe and one COUNT probe.

Failure semantics: each probe individually satisfies the paper's
correctness definition for its execution window (probes run back-to-back
on a shared timeline, so a node that crashes in probe 3 is gone for probe
4 onward).  When no failures occur, the result is the exact k-th smallest
input.  Under failures, the returned value is exact for *some* node
population bracketed between the final survivors and the initial
membership — the natural lift of the paper's interval semantics to
multi-round queries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..adversary.schedule import FailureSchedule
from ..baselines.bruteforce import run_bruteforce
from ..core.algorithm1 import run_algorithm1
from ..core.caaf import CAAF, COUNT, SUM
from ..graphs.topology import Topology


@dataclass
class ProbeRecord:
    """One COUNT/SUM probe in a composite query."""

    description: str
    result: int
    rounds: int
    cc_bits_per_node: Dict[int, int] = field(default_factory=dict)


@dataclass
class QueryOutcome:
    """Result of a composite (multi-probe) distributed query."""

    value: Optional[float]
    probes: List[ProbeRecord]

    @property
    def probe_count(self) -> int:
        return len(self.probes)

    @property
    def total_rounds(self) -> int:
        """Rounds across all probes (probes run back-to-back)."""
        return sum(p.rounds for p in self.probes)

    @property
    def cc_bits(self) -> int:
        """Bottleneck-node bits summed across all probes."""
        totals: Dict[int, int] = {}
        for probe in self.probes:
            for node, bits in probe.cc_bits_per_node.items():
                totals[node] = totals.get(node, 0) + bits
        return max(totals.values(), default=0)


class _ProbeRunner:
    """Runs successive aggregate probes on a shared failure timeline."""

    def __init__(
        self,
        topology: Topology,
        f: int,
        b: Optional[int],
        schedule: Optional[FailureSchedule],
        c: int,
        rng: Optional[random.Random],
        protocol: str,
    ) -> None:
        if protocol not in ("algorithm1", "bruteforce"):
            raise ValueError(f"unsupported substrate protocol {protocol!r}")
        if protocol == "algorithm1" and b is None:
            raise ValueError("algorithm1 substrate needs a time budget b")
        self.topology = topology
        self.f = f
        self.b = b
        self.schedule = schedule or FailureSchedule()
        self.schedule.validate(topology)
        self.c = c
        self.rng = rng or random.Random()
        self.protocol = protocol
        self.elapsed_rounds = 0
        self.probes: List[ProbeRecord] = []

    def _shifted_schedule(self) -> FailureSchedule:
        shifted = FailureSchedule()
        for node, rnd in self.schedule.crash_rounds.items():
            shifted.add(node, max(1, rnd - self.elapsed_rounds))
        return shifted

    def run(self, description: str, caaf: CAAF, inputs: Dict[int, int]) -> int:
        """Run one aggregate probe; returns its (correct) result."""
        schedule = self._shifted_schedule()
        if self.protocol == "algorithm1":
            out = run_algorithm1(
                self.topology,
                inputs,
                f=self.f,
                b=self.b,
                schedule=schedule,
                c=self.c,
                caaf=caaf,
                rng=self.rng,
            )
            rounds, stats = out.rounds, out.stats
        else:
            out = run_bruteforce(
                self.topology, inputs, schedule=schedule, c=self.c, caaf=caaf
            )
            rounds, stats = out.rounds, out.stats
        self.elapsed_rounds += rounds
        record = ProbeRecord(
            description=description,
            result=out.result,
            rounds=rounds,
            cc_bits_per_node=dict(stats.bits_sent),
        )
        self.probes.append(record)
        return out.result


def distributed_select(
    topology: Topology,
    inputs: Dict[int, int],
    k: int,
    f: int,
    b: Optional[int] = None,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    rng: Optional[random.Random] = None,
    protocol: str = "algorithm1",
) -> QueryOutcome:
    """Find the k-th smallest input (1-based) via COUNT binary search.

    Uses ``ceil(log2(domain))`` COUNT probes; each probe is a full
    fault-tolerant aggregation, so the total cost is the probe count times
    the substrate's CC/TC — matching the Patt-Shamir reduction the paper
    cites.
    """
    if k < 1:
        raise ValueError("k must be >= 1 (1-based rank)")
    runner = _ProbeRunner(topology, f, b, schedule, c, rng, protocol)
    lo, hi = 0, max(inputs.values())
    while lo < hi:
        mid = (lo + hi) // 2
        indicator = {u: 1 if inputs[u] <= mid else 0 for u in inputs}
        rank = runner.run(f"count(<= {mid})", COUNT_INDICATOR, indicator)
        if rank >= k:
            hi = mid
        else:
            lo = mid + 1
    return QueryOutcome(value=lo, probes=runner.probes)


def distributed_median(
    topology: Topology,
    inputs: Dict[int, int],
    f: int,
    b: Optional[int] = None,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    rng: Optional[random.Random] = None,
    protocol: str = "algorithm1",
) -> QueryOutcome:
    """The median input: one COUNT probe for n, then a rank selection."""
    runner = _ProbeRunner(topology, f, b, schedule, c, rng, protocol)
    ones = {u: 1 for u in inputs}
    population = runner.run("count(all)", COUNT_INDICATOR, ones)
    k = max(1, (population + 1) // 2)
    remaining = FailureSchedule()
    for node, rnd in (schedule.crash_rounds if schedule else {}).items():
        remaining.add(node, max(1, rnd - runner.elapsed_rounds))
    selection = distributed_select(
        topology,
        inputs,
        k,
        f,
        b=b,
        schedule=remaining,
        c=c,
        rng=rng,
        protocol=protocol,
    )
    return QueryOutcome(value=selection.value, probes=runner.probes + selection.probes)


def distributed_average(
    topology: Topology,
    inputs: Dict[int, int],
    f: int,
    b: Optional[int] = None,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    rng: Optional[random.Random] = None,
    protocol: str = "algorithm1",
) -> QueryOutcome:
    """The mean input: one SUM probe over values, one COUNT probe.

    AVERAGE is not itself a CAAF (Section 2), but it is the ratio of two,
    which is exactly how the paper suggests handling it.
    """
    runner = _ProbeRunner(topology, f, b, schedule, c, rng, protocol)
    total = runner.run("sum(values)", SUM, dict(inputs))
    count = runner.run("count(all)", COUNT_INDICATOR, {u: 1 for u in inputs})
    value = total / count if count else None
    return QueryOutcome(value=value, probes=runner.probes)


#: COUNT over indicator inputs: nodes holding 0 must not be counted, so the
#: operator sums the indicators instead of counting participants.
COUNT_INDICATOR = CAAF(
    "COUNT_INDICATOR",
    lambda a, b: a + b,
    0,
    monotone=True,
    domain_bits=COUNT.domain_bits,
)


def probe_budget(topology: Topology, max_input: int) -> int:
    """Worst-case number of COUNT probes a selection needs."""
    return max(1, math.ceil(math.log2(max(2, max_input + 1))))
