"""Distributed histograms from per-bucket COUNT probes.

Another query the paper's COUNT machinery buys for free: the root learns
the distribution of readings by running one fault-tolerant COUNT per
bucket.  Each probe is zero-error, so every bucket count individually
satisfies the correctness bracket, and the histogram total telescopes to
a COUNT of the population.

Cost: ``k`` COUNT executions for ``k`` buckets — compared against the
obvious alternative (brute-force shipping all values: ``O(N logN)`` per
node), the histogram wins once ``k << N / polylog``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..adversary.schedule import FailureSchedule
from ..graphs.topology import Topology
from .quantiles import COUNT_INDICATOR, _ProbeRunner


@dataclass(frozen=True)
class Bucket:
    """A half-open value bucket ``[lo, hi)`` (the last bucket is closed)."""

    lo: int
    hi: int

    def contains(self, value: int, last: bool = False) -> bool:
        """Whether ``value`` falls in the bucket."""
        if last:
            return self.lo <= value <= self.hi
        return self.lo <= value < self.hi

    def label(self) -> str:
        return f"[{self.lo}, {self.hi})"


@dataclass
class HistogramOutcome:
    """The measured histogram."""

    buckets: List[Bucket]
    counts: List[int]
    probes: int
    total_rounds: int
    cc_bits: int

    @property
    def total(self) -> int:
        return sum(self.counts)

    def as_rows(self) -> List[Dict[str, object]]:
        """Table rows for rendering."""
        return [
            {"bucket": b.label(), "count": c}
            for b, c in zip(self.buckets, self.counts)
        ]


def equi_width_buckets(max_value: int, k: int) -> List[Bucket]:
    """``k`` equal-width buckets covering ``[0, max_value]``."""
    if k < 1:
        raise ValueError("need at least one bucket")
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    width = max(1, (max_value + 1 + k - 1) // k)
    buckets = []
    lo = 0
    for _ in range(k):
        hi = lo + width
        buckets.append(Bucket(lo, hi))
        lo = hi
        if lo > max_value:
            break
    # Close the final bucket at max_value for the inclusive edge.
    last = buckets[-1]
    buckets[-1] = Bucket(last.lo, max(last.hi, max_value))
    return buckets


def distributed_histogram(
    topology: Topology,
    inputs: Dict[int, int],
    buckets: Sequence[Bucket],
    f: int,
    b: Optional[int] = None,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    rng: Optional[random.Random] = None,
    protocol: str = "algorithm1",
) -> HistogramOutcome:
    """One fault-tolerant COUNT per bucket; returns the bucket counts."""
    if not buckets:
        raise ValueError("need at least one bucket")
    runner = _ProbeRunner(topology, f, b, schedule, c, rng, protocol)
    counts: List[int] = []
    for index, bucket in enumerate(buckets):
        last = index == len(buckets) - 1
        indicator = {
            u: 1 if bucket.contains(inputs[u], last=last) else 0
            for u in inputs
        }
        counts.append(
            runner.run(f"count{bucket.label()}", COUNT_INDICATOR, indicator)
        )
    totals: Dict[int, int] = {}
    for probe in runner.probes:
        for node, bits in probe.cc_bits_per_node.items():
            totals[node] = totals.get(node, 0) + bits
    return HistogramOutcome(
        buckets=list(buckets),
        counts=counts,
        probes=len(runner.probes),
        total_rounds=sum(p.rounds for p in runner.probes),
        cc_bits=max(totals.values(), default=0),
    )


def exact_histogram(
    inputs: Dict[int, int], buckets: Sequence[Bucket]
) -> List[int]:
    """Ground truth for tests: centralized bucket counts."""
    counts = []
    for index, bucket in enumerate(buckets):
        last = index == len(buckets) - 1
        counts.append(
            sum(1 for v in inputs.values() if bucket.contains(v, last=last))
        )
    return counts
