"""Periodic aggregation: the sensor-network monitoring loop.

The paper's motivating deployments don't aggregate once — a base station
re-reads the field forever.  This module runs Algorithm 1 (or brute force)
in back-to-back *epochs* over one shared failure timeline: crashes persist
across epochs, inputs may change every epoch (fresh sensor readings), and
every epoch's result individually satisfies the paper's correctness
definition for its window.

The interesting systems question it answers: how does the per-epoch cost
evolve as the network loses nodes?  (It shrinks — fewer live nodes, fewer
floods — while staying correct throughout.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..adversary.schedule import FailureSchedule
from ..baselines.bruteforce import run_bruteforce
from ..core.algorithm1 import run_algorithm1
from ..core.caaf import CAAF, SUM
from ..core.correctness import is_correct_result, surviving_nodes
from ..graphs.topology import Topology

#: Supplies epoch inputs: ``inputs_fn(epoch_index) -> {node: value}``.
InputsFn = Callable[[int], Dict[int, int]]


@dataclass
class EpochResult:
    """One monitoring epoch's outcome."""

    epoch: int
    result: Optional[int]
    correct: bool
    cc_bits: int
    rounds: int
    start_round: int
    survivors: int


@dataclass
class MonitoringOutcome:
    """The whole monitoring run."""

    epochs: List[EpochResult] = field(default_factory=list)

    @property
    def all_correct(self) -> bool:
        return all(e.correct for e in self.epochs)

    @property
    def results(self) -> List[Optional[int]]:
        return [e.result for e in self.epochs]

    @property
    def total_rounds(self) -> int:
        return sum(e.rounds for e in self.epochs)

    def cc_bits_of_bottleneck(self) -> int:
        """Max per-epoch bottleneck (epochs have disjoint executions)."""
        return max((e.cc_bits for e in self.epochs), default=0)


def run_monitoring(
    topology: Topology,
    inputs_fn: InputsFn,
    epochs: int,
    f: int,
    b: Optional[int] = None,
    schedule: Optional[FailureSchedule] = None,
    c: int = 2,
    caaf: CAAF = SUM,
    protocol: str = "algorithm1",
    rng: Optional[random.Random] = None,
) -> MonitoringOutcome:
    """Run ``epochs`` back-to-back aggregations on one failure timeline.

    ``schedule`` crash rounds are absolute over the whole run; each epoch
    sees the suffix of the schedule shifted to its local clock.  ``f`` is
    the per-run edge-failure budget (validated against the full schedule).
    """
    if epochs < 1:
        raise ValueError("need at least one epoch")
    if protocol not in ("algorithm1", "bruteforce"):
        raise ValueError(f"unsupported protocol {protocol!r}")
    if protocol == "algorithm1" and b is None:
        raise ValueError("algorithm1 monitoring needs a per-epoch budget b")
    schedule = schedule or FailureSchedule()
    schedule.validate(topology, f=f)
    rng = rng or random.Random()

    outcome = MonitoringOutcome()
    elapsed = 0
    for epoch in range(epochs):
        inputs = dict(inputs_fn(epoch))
        shifted = FailureSchedule()
        for node, rnd in schedule.crash_rounds.items():
            shifted.add(node, max(1, rnd - elapsed))
        if protocol == "algorithm1":
            run = run_algorithm1(
                topology,
                inputs,
                f=f,
                b=b,
                schedule=shifted,
                c=c,
                caaf=caaf,
                rng=rng,
            )
            result, stats, rounds = run.result, run.stats, run.rounds
        else:
            run = run_bruteforce(
                topology, inputs, schedule=shifted, c=c, caaf=caaf
            )
            result, stats, rounds = run.result, run.stats, run.rounds
        correct = is_correct_result(
            result, caaf, topology, inputs, shifted, rounds
        )
        outcome.epochs.append(
            EpochResult(
                epoch=epoch,
                result=result,
                correct=correct,
                cc_bits=stats.max_bits,
                rounds=rounds,
                start_round=elapsed + 1,
                survivors=len(surviving_nodes(topology, shifted, rounds)),
            )
        )
        elapsed += rounds
    return outcome


def constant_inputs(inputs: Dict[int, int]) -> InputsFn:
    """Every epoch reads the same values."""
    return lambda _epoch: inputs


def drifting_inputs(
    base: Dict[int, int], rng: random.Random, jitter: int = 3
) -> InputsFn:
    """Fresh readings per epoch: base values plus bounded random drift."""

    def fn(epoch: int) -> Dict[int, int]:
        local = random.Random(rng.randrange(1 << 30) + epoch)
        return {
            u: max(0, v + local.randint(-jitter, jitter))
            for u, v in base.items()
        }

    return fn
