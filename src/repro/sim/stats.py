"""Execution statistics: per-node bit counters and round accounting.

The paper defines a protocol's communication complexity (CC) as the maximum,
over nodes, of the number of bits the node sends (locally broadcasts), and
its time complexity (TC) in *flooding rounds* — blocks of ``d`` rounds where
``d`` is the diameter of the topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SimStats:
    """Counters accumulated by :class:`repro.sim.network.Network`."""

    bits_sent: Dict[int, int] = field(default_factory=dict)
    parts_sent: Dict[int, int] = field(default_factory=dict)
    broadcasts: Dict[int, int] = field(default_factory=dict)
    rounds_executed: int = 0

    def record_broadcast(self, node: int, n_parts: int, bits: int) -> None:
        """Record one physical broadcast of ``n_parts`` parts totalling ``bits``."""
        self.bits_sent[node] = self.bits_sent.get(node, 0) + bits
        self.parts_sent[node] = self.parts_sent.get(node, 0) + n_parts
        self.broadcasts[node] = self.broadcasts.get(node, 0) + 1

    @property
    def max_bits(self) -> int:
        """The bottleneck-node bit count — the paper's CC for one execution."""
        return max(self.bits_sent.values(), default=0)

    @property
    def total_bits(self) -> int:
        """Bits sent by all nodes combined (not the paper's CC; informational)."""
        return sum(self.bits_sent.values())

    def bits_of(self, node: int) -> int:
        """Bits sent by one node."""
        return self.bits_sent.get(node, 0)

    def flooding_rounds(self, diameter: int) -> int:
        """Rounds executed, expressed in flooding rounds of ``diameter`` rounds."""
        if diameter < 1:
            raise ValueError(f"diameter must be >= 1, got {diameter}")
        return math.ceil(self.rounds_executed / diameter)

    def top_senders(self, k: int = 5) -> List[tuple]:
        """The ``k`` nodes that sent the most bits, as ``(node, bits)`` pairs."""
        ranked = sorted(self.bits_sent.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:k]
