"""Execution statistics: per-node bit counters and round accounting.

The paper defines a protocol's communication complexity (CC) as the maximum,
over nodes, of the number of bits the node sends (locally broadcasts), and
its time complexity (TC) in *flooding rounds* — blocks of ``d`` rounds where
``d`` is the diameter of the topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..obs.metrics import merge_counter_tree


@dataclass
class SimStats:
    """Counters accumulated by :class:`repro.sim.network.Network`."""

    bits_sent: Dict[int, int] = field(default_factory=dict)
    parts_sent: Dict[int, int] = field(default_factory=dict)
    broadcasts: Dict[int, int] = field(default_factory=dict)
    #: Bits spent on recovery machinery (transport framing, NACKs,
    #: retransmissions, elections) — accounted separately so ``max_bits``
    #: keeps meaning the *protocol* CC and envelope checks stay honest.
    overhead_bits: Dict[int, int] = field(default_factory=dict)
    #: Per-link retransmission/RTO audit from the reliable transport
    #: (``{"attempts": {"s->r": n}, "cap_hits": {...}, "budget": k,
    #: "rto": {...}}``) — empty when no transport ran.  The aggregate
    #: retransmission counter lives in the transport's own counters;
    #: this split makes per-link timing adaptation auditable in traces.
    link_stats: Dict[str, Dict] = field(default_factory=dict)
    rounds_executed: int = 0

    def record_broadcast(
        self, node: int, n_parts: int, bits: int, overhead: int = 0
    ) -> None:
        """Record one physical broadcast of ``n_parts`` parts totalling ``bits``.

        ``overhead`` names the portion of ``bits`` that is recovery-layer
        overhead rather than protocol payload; it is booked under
        :attr:`overhead_bits` and excluded from :attr:`bits_sent`.
        """
        if overhead:
            if not 0 <= overhead <= bits:
                raise ValueError(
                    f"overhead {overhead} outside [0, {bits}] for node {node}"
                )
            self.overhead_bits[node] = self.overhead_bits.get(node, 0) + overhead
        self.bits_sent[node] = self.bits_sent.get(node, 0) + bits - overhead
        self.parts_sent[node] = self.parts_sent.get(node, 0) + n_parts
        self.broadcasts[node] = self.broadcasts.get(node, 0) + 1

    def absorb(self, other: "SimStats", as_overhead: bool = False) -> None:
        """Merge counters from ``other`` (a later epoch / auxiliary phase).

        Rounds add up; per-node counters add up.  With ``as_overhead`` the
        other execution's protocol bits are booked as overhead here — used
        for election rounds, which are recovery cost, not protocol CC.
        """
        for node, bits in other.bits_sent.items():
            if as_overhead:
                self.overhead_bits[node] = self.overhead_bits.get(node, 0) + bits
            else:
                self.bits_sent[node] = self.bits_sent.get(node, 0) + bits
        for node, bits in other.overhead_bits.items():
            self.overhead_bits[node] = self.overhead_bits.get(node, 0) + bits
        for node, n in other.parts_sent.items():
            self.parts_sent[node] = self.parts_sent.get(node, 0) + n
        for node, n in other.broadcasts.items():
            self.broadcasts[node] = self.broadcasts.get(node, 0) + n
        # Link attribution merges through the observability registry's
        # single counter-tree rule (numeric leaves add, anything else is
        # overwritten) instead of a hand-rolled copy of it.
        merge_counter_tree(self.link_stats, other.link_stats)
        self.rounds_executed += other.rounds_executed

    @property
    def max_bits(self) -> int:
        """The bottleneck-node bit count — the paper's CC for one execution."""
        return max(self.bits_sent.values(), default=0)

    @property
    def total_bits(self) -> int:
        """Bits sent by all nodes combined (not the paper's CC; informational)."""
        return sum(self.bits_sent.values())

    @property
    def max_overhead_bits(self) -> int:
        """The bottleneck-node recovery overhead (same max-over-nodes shape as CC)."""
        return max(self.overhead_bits.values(), default=0)

    @property
    def total_overhead_bits(self) -> int:
        """Recovery overhead summed over all nodes."""
        return sum(self.overhead_bits.values())

    def bits_of(self, node: int) -> int:
        """Bits sent by one node."""
        return self.bits_sent.get(node, 0)

    def flooding_rounds(self, diameter: int) -> int:
        """Rounds executed, expressed in flooding rounds of ``diameter`` rounds."""
        if diameter < 1:
            raise ValueError(f"diameter must be >= 1, got {diameter}")
        return math.ceil(self.rounds_executed / diameter)

    def top_senders(self, k: int = 5) -> List[tuple]:
        """The ``k`` nodes that sent the most bits, as ``(node, bits)`` pairs."""
        ranked = sorted(self.bits_sent.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:k]
