"""Deterministic replay of recorded repro bundles, with divergence detection.

A bundle (:class:`repro.sim.recorder.ExecutionRecord`) pins down one
execution completely: configuration, protocol-RNG state, and every fault
decision the chaos layer actually took.  :class:`ReplayInjector` re-applies
those decisions *positionally* — no injector RNG is re-rolled — so a replay
is bit- and stats-identical to the recording, or loudly not:

* per-round **digest checks** (broadcast and delivered-envelope counts
  and bits) raise
  :class:`ReplayDivergence` naming the first round where the live
  execution departs from the recording;
* a recorded decision whose transmission never shows up (or an inbox whose
  size changed) is likewise a divergence, pinned to its round;
* after the run, :func:`replay_bundle` compares the final outcome (result,
  correctness grade, CC bits, rounds, monitor violations) against the
  bundle's ``expected`` block.

``strict=False`` turns the injector into a best-effort re-applier with no
divergence checks — the mode :mod:`repro.adversary.shrink` uses to probe
deliberately modified bundles.
"""

from __future__ import annotations

import ast
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .faults import FaultInjector
from .message import Part
from .recorder import ExecutionRecord, part_key


class ReplayDivergence(RuntimeError):
    """A replayed execution departed from its recording.

    Attributes:
        epoch: Network epoch (0-based; ``agg_veri`` has two) of the first
            divergent event.
        round: Round of the first divergent event (None: final outcome).
        detail: Human-readable description of the mismatch.
    """

    def __init__(
        self, detail: str, epoch: Optional[int] = None, rnd: Optional[int] = None
    ) -> None:
        self.epoch = epoch
        self.round = rnd
        at = ""
        if rnd is not None:
            at = f" at round {rnd}" + (
                f" (epoch {epoch})" if epoch is not None else ""
            )
        super().__init__(f"replay diverged{at}: {detail}")


class ReplayInjector(FaultInjector):
    """Re-apply a recording's fault decisions instead of rolling RNG.

    Decisions are keyed by ``(epoch, due/round, sender, receiver, part,
    occurrence)``; anything without a recorded decision passes through
    untouched, mirroring the recorder (which only stores deviations from
    passthrough).  With ``strict=True`` every recorded decision must be
    consumed in its round and every round's digest must match.
    """

    def __init__(self, record: ExecutionRecord, strict: bool = True) -> None:
        super().__init__()
        self.record = record
        self.strict = strict
        #: The first divergence raised (the runner converts in-run
        #: exceptions into error rows; replay_bundle re-raises this).
        self.divergence: Optional[ReplayDivergence] = None
        self.modifies_delivery = record.faulty_delivery
        self.epoch = -1
        # Static per-epoch indices over the recording.
        self._transmits: Dict[int, Dict[Tuple, List[int]]] = {}
        self._transmit_due: Dict[int, Dict[int, int]] = {}
        self._reorders: Dict[int, Dict[Tuple[int, int], List[int]]] = {}
        self._reorder_rounds: Dict[int, Dict[int, int]] = {}
        self._crashes: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}
        self._digests: Dict[int, Dict[int, Tuple[int, int]]] = {}
        for t in record.transmits:
            key = (t["due"], t["s"], t["r"], t["part"][0], t["part"][1],
                   t["part"][2], t["occ"])
            # v2 entries with content rewrites carry the full delivered
            # (due, part_key) list in "outp"; plain decisions only dues.
            if t.get("outp") is not None:
                # v2 entries: [due, part_key] or [due, part_key, "stale"].
                out = [
                    (e[0], tuple(e[1]), e[2] if len(e) > 2 else None)
                    for e in t["outp"]
                ]
            else:
                out = [(d, None, None) for d in t["out"]]
            self._transmits.setdefault(t["e"], {})[key] = out
            dues = self._transmit_due.setdefault(t["e"], {})
            dues[t["due"]] = dues.get(t["due"], 0) + 1
        for r in record.reorders:
            self._reorders.setdefault(r["e"], {})[(r["round"], r["r"])] = list(
                r["perm"]
            )
            rounds = self._reorder_rounds.setdefault(r["e"], {})
            rounds[r["round"]] = rounds.get(r["round"], 0) + 1
        for c in record.crashes:
            self._crashes.setdefault(c["e"], {}).setdefault(c["at"], []).append(
                (c["node"], c["round"])
            )
        for epoch, rows in record.digests.items():
            self._digests[int(epoch)] = {
                row[0]: tuple(row[1:]) for row in rows
            }
        # Live per-epoch state.
        self._occ: Dict[Tuple, int] = {}
        self._consumed_due: Dict[int, int] = {}
        self._consumed_reorders: Dict[int, int] = {}
        self._live_digest: Dict[int, List[int]] = {}
        # Content rewrites re-applied so far, mirrored from the recording:
        # lets the replay rebuild the same delivered-corruption ground
        # truth the original corruption injector produced (split into
        # content corruptions vs stale replays exactly as recorded), so
        # the silent-corruption oracle monitor grades replays identically.
        self._corrupt: Dict[Tuple, str] = {}
        self.delivered_corruptions: List[Tuple] = []
        self.delivered_stales: List[Tuple] = []

    @property
    def has_rewrites(self) -> bool:
        """Whether the recording contains any content rewrites (corruption).

        Byzantine-marked rewrites don't count: they are re-applied but
        belong to the schedule's taint ledger, not the corruption oracle.
        """
        return any(
            pk is not None and not (mode or "").startswith("byz:")
            for per_epoch in self._transmits.values()
            for out in per_epoch.values()
            for _, pk, mode in out
        )

    # -- lifecycle ------------------------------------------------------ #

    def attach(self, network) -> None:
        """Advance to the next recorded epoch and reset live tallies."""
        super().attach(network)
        self.epoch += 1
        self._occ = {}
        self._consumed_due = {}
        self._consumed_reorders = {}
        self._live_digest = {}

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        digest = self._live_digest.setdefault(rnd, [0, 0, 0, 0])
        digest[0] += 1
        digest[1] += bits

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Apply the recorded decision for this copy, if one exists."""
        base = (due, sender, receiver, part.kind, repr(part.payload), part.bits)
        occ = self._occ.get(base, 0)
        self._occ[base] = occ + 1
        out = self._transmits.get(self.epoch, {}).get(base + (occ,))
        if out is None:
            return [(due, part)]
        self._consumed_due[due] = self._consumed_due.get(due, 0) + 1
        deliveries: List[Tuple[int, Part]] = []
        own_key = part_key(part)
        for d, pk, mode in out:
            if pk is None or list(pk) == own_key:
                deliveries.append((d, part))
            else:
                rebuilt = self._rebuild_part(pk, due)
                deliveries.append((d, rebuilt))
                mode = mode or "content"
                if mode.startswith("byz:"):
                    # Forensic Byzantine markers: the lie is re-applied
                    # but never booked as corruption — the taint ledger
                    # belongs to the (deterministic, re-run) schedule,
                    # not the corruption oracle.
                    continue
                key = (sender, receiver, rebuilt.content_key)
                if mode == "content" or key not in self._corrupt:
                    self._corrupt[key] = mode
        return deliveries

    def _rebuild_part(self, pk, due: int) -> Part:
        """Reconstruct a recorded rewritten part from its part_key."""
        kind, payload_repr, bits = pk
        try:
            payload = ast.literal_eval(payload_repr)
        except (ValueError, SyntaxError) as exc:
            self._diverge(
                f"recorded rewritten payload {payload_repr!r} cannot be "
                f"reconstructed: {exc}",
                due,
                cause=exc,
            )
            raise  # pragma: no cover — _diverge always raises
        return Part(kind, payload, bits)

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Apply the recorded permutation for this inbox, if one exists."""
        digest = self._live_digest.setdefault(rnd, [0, 0, 0, 0])
        digest[2] += len(envelopes)
        digest[3] += sum(e.part.bits for e in envelopes)
        if self._corrupt:
            for envelope in envelopes:
                key = (envelope.sender, receiver, envelope.part.content_key)
                mode = self._corrupt.get(key)
                if mode is not None:
                    ledger = (
                        self.delivered_corruptions
                        if mode == "content"
                        else self.delivered_stales
                    )
                    ledger.append(
                        (self.epoch, rnd, envelope.sender, receiver,
                         envelope.part.content_key)
                    )
        perm = self._reorders.get(self.epoch, {}).get((rnd, receiver))
        if perm is None:
            return envelopes
        if len(perm) != len(envelopes):
            if self.strict:
                self._diverge(
                    f"recorded reorder for node {receiver} permutes "
                    f"{len(perm)} envelopes but the live inbox has "
                    f"{len(envelopes)}",
                    rnd,
                )
            return envelopes
        self._consumed_reorders[rnd] = self._consumed_reorders.get(rnd, 0) + 1
        return [envelopes[i] for i in perm]

    def end_round(self, rnd: int) -> None:
        """Re-apply online crashes, then verify this round against the record."""
        for node, crash_round in self._crashes.get(self.epoch, {}).get(rnd, ()):
            try:
                self.network.schedule_crash(node, crash_round)
            except ValueError as exc:
                if self.strict:
                    self._diverge(
                        f"recorded crash of node {node} (round {crash_round}) "
                        f"cannot be re-applied: {exc}",
                        rnd,
                        cause=exc,
                    )
        if not self.strict:
            return
        expected = self._digests.get(self.epoch, {}).get(rnd, (0, 0, 0, 0))
        live = tuple(self._live_digest.get(rnd, (0, 0, 0, 0)))
        if live != expected:
            self._diverge(
                f"expected {expected[0]} broadcast(s) / {expected[1]} bits "
                f"and {expected[2]} delivered envelope(s) / {expected[3]} "
                f"bits, saw {live[0]} / {live[1]} and {live[2]} / {live[3]}",
                rnd,
            )
        recorded = self._transmit_due.get(self.epoch, {}).get(rnd + 1, 0)
        consumed = self._consumed_due.get(rnd + 1, 0)
        if consumed != recorded:
            self._diverge(
                f"{recorded - consumed} recorded fault decision(s) for "
                f"deliveries due round {rnd + 1} never matched a live "
                f"transmission",
                rnd,
            )
        recorded = self._reorder_rounds.get(self.epoch, {}).get(rnd, 0)
        consumed = self._consumed_reorders.get(rnd, 0)
        if consumed != recorded:
            self._diverge(
                f"{recorded - consumed} recorded inbox reorder(s) never "
                f"matched a live inbox",
                rnd,
            )

    def _diverge(
        self, detail: str, rnd: Optional[int], cause: Optional[Exception] = None
    ) -> None:
        """Record and raise the first divergence (later ones keep the first)."""
        exc = ReplayDivergence(detail, self.epoch, rnd)
        if self.divergence is None:
            self.divergence = exc
        raise exc from cause


@dataclass
class ReplayOutcome:
    """Result of replaying one bundle.

    ``mismatches`` lists human-readable ``field: expected vs got`` lines
    for every divergence between the bundle's ``expected`` block and the
    replayed run; empty means the replay reproduced the recording exactly.
    """

    record: Any
    expected: Dict[str, Any]
    mismatches: List[str] = field(default_factory=list)

    @property
    def reproduced(self) -> bool:
        """Whether the replay matched the recorded outcome exactly."""
        return not self.mismatches


def _compare_outcome(expected: Dict[str, Any], record) -> List[str]:
    """Field-by-field outcome comparison, bundle-expected vs replayed."""
    from .recorder import expected_outcome

    got = expected_outcome(record)
    mismatches = []
    for key in sorted(set(expected) | set(got)):
        if expected.get(key) != got.get(key):
            mismatches.append(
                f"{key}: recorded {expected.get(key)!r}, replayed "
                f"{got.get(key)!r}"
            )
    return mismatches


def replay_bundle(
    bundle,
    strict: bool = True,
    check_outcome: bool = True,
) -> ReplayOutcome:
    """Re-execute a repro bundle and verify it reproduces the recording.

    ``bundle`` is an :class:`ExecutionRecord` or a path to a bundle file.
    The protocol RNG is restored from the recorded state (falling back to
    ``random.Random(seed)`` for hand-written bundles), the declared crash
    schedule is re-applied, and a :class:`ReplayInjector` re-applies every
    recorded fault decision.

    With ``strict=True`` any departure — per-round digest, unmatched
    decision, or (when ``check_outcome``) final-outcome field — raises
    :class:`ReplayDivergence`.  With ``strict=False`` the injector is
    best-effort and the outcome comparison is returned, not raised (the
    shrinker's probing mode).
    """
    if isinstance(bundle, str):
        bundle = ExecutionRecord.load(bundle)
    topology = bundle.build_topology()
    inputs = bundle.build_inputs()
    schedule = bundle.build_schedule()
    rng = random.Random(bundle.seed or 0)
    if bundle.rng_state is not None:
        rng.setstate(_rng_state_from_jsonable(bundle.rng_state))
    injector = ReplayInjector(bundle, strict=strict)

    # Imported lazily: repro.analysis imports repro.sim at package load.
    from ..analysis.runner import safe_run_protocol
    from ..core.caaf import SUM, by_name
    from .monitors import standard_monitors, violations_of

    params = bundle.params
    caaf = by_name(params["caaf"]) if params.get("caaf") else SUM
    # Resilience configuration, when the capture ran under it: rebuild the
    # transport / recovery objects so the replay takes the same code path
    # (window size, failover epochs) as the recording.
    transport = None
    recovery = None
    integrity = None
    allow_root_crash = bool(params.get("allow_root_crash"))
    if params.get("transport"):
        from ..resilience.transport import TransportConfig

        transport = TransportConfig.from_jsonable(params["transport"])
    if params.get("recovery"):
        from ..resilience.failover import RecoveryPolicy

        recovery = RecoveryPolicy.from_jsonable(params["recovery"])
    if params.get("integrity"):
        from ..integrity.frames import IntegrityConfig, as_integrity

        # Coerce to a coordinator here so the monitor stack below and the
        # run share one instance (same rule as run_protocol).
        integrity = as_integrity(
            IntegrityConfig.from_jsonable(params["integrity"])
        )
    if integrity is None and recovery is not None:
        from ..integrity.frames import as_integrity

        integrity = as_integrity(recovery.integrity)
    churn = None
    churn_policy = None
    if params.get("churn"):
        from .faults import ChurnSchedule

        churn = ChurnSchedule.from_jsonable(params["churn"])
    if params.get("churn_policy"):
        from ..resilience.epochs import ChurnPolicy

        churn_policy = ChurnPolicy.from_jsonable(params["churn_policy"])
    gray = None
    if params.get("gray"):
        from .faults import GrayFailureSchedule

        # Rebuilt for the straggler oracle's ground-truth ledger only:
        # the replay injector re-applies the recorded delivery shifts, so
        # run_protocol must not (and does not) attach the schedule again.
        gray = GrayFailureSchedule.from_jsonable(params["gray"])
    byz = None
    byz_config = None
    if params.get("byz"):
        from .faults import ByzantineSchedule

        # Unlike gray, the Byzantine schedule is re-run live: it holds no
        # RNG, so replaying it reproduces the recorded lies *and* rebuilds
        # the ground-truth taint ledger the ByzantineOracle grades against.
        byz = ByzantineSchedule.from_jsonable(params["byz"])
    if params.get("byz_config"):
        from ..resilience.byzantine import ByzantineConfig

        byz_config = ByzantineConfig.from_jsonable(params["byz_config"])
    if gray is not None and transport is not None:
        from ..resilience.transport import as_transport

        # Coerce here so the oracle watches the same detector the run
        # uses (run_protocol's own as_transport passes it through).
        transport = as_transport(transport)
    # Mirror the capture-time monitor configuration: "strict" reproduces
    # the run_protocol strict-monitors path (including its post-run oracle
    # raise); "record" re-attaches the standard stack in record mode —
    # recovery-aware when the capture allowed a root crash, so recorded
    # ``recovery-safe`` violations match on replay.
    monitors = None
    if bundle.monitor_mode == "record":
        monitors = standard_monitors(
            topology,
            inputs,
            f=params.get("f"),
            caaf=caaf,
            mode="record",
            recovery=allow_root_crash or recovery is not None,
            # The replay injector re-applies recorded content rewrites, so
            # it stands in for the original corruption injector as the
            # silent-corruption oracle's ground truth.
            corruption=[injector] if injector.has_rewrites else (),
            integrity=integrity,
            churn=churn is not None,
            gray=gray,
            transport=transport if gray is not None else None,
            byz=byz if byz is not None and byz.has_events else None,
        )
    record = safe_run_protocol(
        bundle.protocol,
        topology,
        inputs,
        schedule=schedule,
        seed=bundle.seed,
        rng=rng,
        f=params.get("f"),
        b=params.get("b"),
        t=params.get("t"),
        c=params.get("c", 2),
        caaf=caaf,
        strict=bundle.strict_model,
        injectors=(injector,),
        monitors=monitors,
        strict_monitors=bundle.monitor_mode == "strict",
        transport=transport,
        recovery=recovery,
        integrity=integrity,
        churn=churn,
        churn_policy=churn_policy,
        gray=gray,
        byz=byz,
        byz_config=byz_config,
        allow_root_crash=allow_root_crash,
    )
    if strict and injector.divergence is not None:
        # The runner converted the in-run divergence into an error row;
        # surface the original exception (it names the first divergent
        # round) instead of a generic outcome mismatch.
        raise injector.divergence
    if monitors and not record.failed:
        events = violations_of(monitors)
        if events:
            record.extra.setdefault("violations", [str(e) for e in events])
    mismatches = (
        _compare_outcome(bundle.expected, record)
        if check_outcome and bundle.expected
        else []
    )
    if strict and mismatches:
        raise ReplayDivergence(
            "final outcome mismatch: " + "; ".join(mismatches)
        )
    return ReplayOutcome(record=record, expected=dict(bundle.expected),
                         mismatches=mismatches)


def _rng_state_from_jsonable(state) -> tuple:
    """Rebuild the nested-tuple form ``random.setstate`` expects."""

    def tupleize(value):
        if isinstance(value, list):
            return tuple(tupleize(v) for v in value)
        return value

    return tupleize(state)
