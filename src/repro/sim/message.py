"""Message representation and bit accounting for the synchronous simulator.

The paper measures communication complexity (CC) in *bits locally broadcast*
per node.  Every logical message ("part") therefore carries an explicit size
in bits.  Several parts emitted by one node in the same round are combined
into a single physical broadcast (as the paper's pseudo-code caption allows);
the physical broadcast costs the sum of its parts' bits.

Ids are ``ceil(log2 N)`` bits, matching the paper's ``log N``-bit node ids.
Small constant *tags* distinguish message kinds on the wire.
"""

from __future__ import annotations

import math
from typing import Hashable, NamedTuple

#: Number of bits charged for a message-kind tag.  The paper's budget
#: expressions use small additive constants (e.g. ``log N + 5``); a 5-bit tag
#: keeps our accounting aligned with those expressions.
TAG_BITS = 5


def id_bits(n_nodes: int) -> int:
    """Number of bits in a node id for a system of ``n_nodes`` nodes.

    The paper assumes each node has a unique id of ``log N`` bits.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    return max(1, math.ceil(math.log2(n_nodes))) if n_nodes > 1 else 1


def value_bits(max_value: int) -> int:
    """Number of bits needed to encode an integer in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return max(1, math.ceil(math.log2(max_value + 1)))


class Part(NamedTuple):
    """One logical message part.

    Attributes:
        kind: Message-kind name, e.g. ``"tree_construct"``.
        payload: Hashable payload tuple.  For flooded parts the pair
            ``(kind, payload)`` is the *content* used for de-duplication:
            a node forwards each distinct content at most once.
        bits: Size of this part in bits (including the sender-id overhead
            the paper attaches to every message).
    """

    kind: str
    payload: Hashable
    bits: int

    @property
    def content_key(self) -> tuple:
        """De-duplication key: the part's kind and payload (not its size)."""
        return (self.kind, self.payload)


class Envelope(NamedTuple):
    """A part together with the id of the node that physically sent it."""

    sender: int
    part: Part


def total_bits(parts) -> int:
    """Sum of the bit sizes of an iterable of :class:`Part`."""
    return sum(p.bits for p in parts)
