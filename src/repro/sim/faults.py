"""Fault-injection middleware for the simulator's delivery path.

The paper's model (Section 2) admits only *oblivious crash* failures: a
schedule fixed before the protocol flips any coins, killing whole nodes.
Theorems 1, 5 and 7 are stated for exactly that adversary.  This module
generalizes the simulator so experiments can also probe behaviour *outside*
the model — message drops, duplications, delays, reorderings, and crashes
chosen adaptively from observed traffic — without touching protocol code.

A :class:`FaultInjector` is middleware on :class:`repro.sim.network.Network`
round execution:

* :meth:`FaultInjector.begin_round` / :meth:`FaultInjector.end_round`
  bracket each round; adaptive adversaries use ``end_round`` to pick
  crashes online via :meth:`repro.sim.network.Network.schedule_crash`.
* :meth:`FaultInjector.on_broadcast` observes every physical broadcast.
* :meth:`FaultInjector.on_transmit` rewrites one scheduled per-link
  delivery into zero or more ``(due_round, part)`` copies — dropping,
  duplicating or delaying it.  Only injectors with
  ``modifies_delivery = True`` are consulted, so crash-only middleware
  keeps the exact-model delivery path (and its bit-exact determinism).
* :meth:`FaultInjector.arrange_inbox` may permute one receiver's inbox.

The oblivious crash schedule itself is the :class:`ScheduledCrashes`
injector — ``Network(..., crash_rounds=...)`` is sugar for prepending one —
so in-model and out-of-model failures flow through a single interface.

All randomized decisions use a private ``random.Random(seed)`` so fault
sequences are reproducible per seed, and every fault type takes an
explicit budget cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .message import Part
from .network import ROOT_CRASH_ERROR


class FaultInjector:
    """Base middleware: observes everything, changes nothing.

    Subclasses override the hooks they need.  ``modifies_delivery`` must
    be True for injectors that rewrite transmissions or inbox order; it
    routes the network onto the scheduled-delivery path.
    """

    #: Whether this injector rewrites deliveries (drop/dup/delay/reorder).
    modifies_delivery = False

    def __init__(self) -> None:
        self.network = None

    def attach(self, network) -> None:
        """Bind to a network; called once from ``Network.__init__``."""
        self.network = network

    def begin_round(self, rnd: int) -> None:
        """Hook: round ``rnd`` is about to deliver and compute."""

    def on_broadcast(self, rnd: int, node: int, parts, bits: int) -> None:
        """Hook: ``node`` physically broadcast ``parts`` in round ``rnd``."""

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Rewrite one scheduled delivery; default passes it through.

        ``due`` is the round the copy is currently scheduled to arrive.
        Return ``[]`` to drop, multiple tuples to duplicate, or later due
        rounds to delay.
        """
        return [(due, part)]

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Hook: final chance to permute one receiver's round inbox."""
        return envelopes

    def end_round(self, rnd: int) -> None:
        """Hook: round ``rnd`` finished computing and broadcasting."""


class ScheduledCrashes(FaultInjector):
    """The paper's oblivious crash schedule, as an injector.

    Seeds the network's crash map at attach time — semantically identical
    to the historical ``Network(crash_rounds=...)`` behaviour (which now
    delegates here), and composable with chaos injectors.

    The root may never crash (Section 2): an explicit ``root`` argument is
    checked at construction, and a network-declared root
    (``Network(..., root=...)``) at attach time — both reject with the
    same :data:`repro.sim.network.ROOT_CRASH_ERROR` as
    :meth:`repro.adversary.schedule.FailureSchedule.validate`.  The
    :mod:`repro.resilience` failover layer opts out of this strict mode
    with ``allow_root_crash=True`` (a network that sets its own
    ``allow_root_crash`` flag opts out at attach time as well).
    """

    def __init__(
        self,
        crash_rounds,
        root: Optional[int] = None,
        allow_root_crash: bool = False,
    ) -> None:
        super().__init__()
        # Accept a plain mapping or a FailureSchedule-like object.
        rounds = getattr(crash_rounds, "crash_rounds", crash_rounds)
        self.crash_rounds: Dict[int, float] = dict(rounds or {})
        self.allow_root_crash = allow_root_crash
        if (
            root is not None
            and root in self.crash_rounds
            and not allow_root_crash
        ):
            raise ValueError(ROOT_CRASH_ERROR)

    def attach(self, network) -> None:
        """Seed the network's crash map (earliest round wins per node)."""
        super().attach(network)
        if (
            network.root is not None
            and network.root in self.crash_rounds
            and not self.allow_root_crash
            and not getattr(network, "allow_root_crash", False)
        ):
            raise ValueError(ROOT_CRASH_ERROR)
        for node, rnd in self.crash_rounds.items():
            current = network.crash_rounds.get(node)
            network.crash_rounds[node] = (
                rnd if current is None else min(current, rnd)
            )


@dataclass
class FaultCounts:
    """Tally of injected faults, for reporting alongside run results."""

    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    reorders: int = 0

    @property
    def total(self) -> int:
        """All injected faults combined."""
        return self.drops + self.duplicates + self.delays + self.reorders

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for tables and JSON rows."""
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "delays": self.delays,
            "reorders": self.reorders,
        }


class MessageFaults(FaultInjector):
    """Drop / duplicate / delay / reorder in-flight messages.

    Faults are decided independently per scheduled (sender, receiver,
    part) copy with the given probabilities, using a deterministic
    per-``seed`` RNG, under explicit budget caps:

    Args:
        drop: Probability a delivery copy is silently lost.
        duplicate: Probability a copy is delivered twice (the duplicate
            arrives 1..``max_delay`` rounds later).
        delay: Probability a copy is postponed by 1..``max_delay`` rounds.
        max_delay: Largest injected postponement, in rounds.
        reorder: Probability a receiver's round inbox is shuffled.
        seed: Seed of the private fault RNG.
        max_drops / max_duplicates / max_delays / max_reorders: Hard caps
            per fault type; ``None`` means unlimited.
        protect: Node ids whose incident deliveries are never faulted
            (e.g. the root, to keep the root-safety assumption).
    """

    modifies_delivery = True

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        max_delay: int = 3,
        reorder: float = 0.0,
        seed: int = 0,
        max_drops: Optional[int] = None,
        max_duplicates: Optional[int] = None,
        max_delays: Optional[int] = None,
        max_reorders: Optional[int] = None,
        protect: Iterable[int] = (),
    ) -> None:
        super().__init__()
        for name, rate in (
            ("drop", drop),
            ("duplicate", duplicate),
            ("delay", delay),
            ("reorder", reorder),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {max_delay}")
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.max_delay = max_delay
        self.reorder = reorder
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_drops = max_drops
        self.max_duplicates = max_duplicates
        self.max_delays = max_delays
        self.max_reorders = max_reorders
        self.protect = frozenset(protect)
        self.counts = FaultCounts()

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "key=value[,key=value...] with keys drop, dup|duplicate, delay, "
        "reorder (rates in [0, 1]) and max_delay (integer rounds >= 1)"
    )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0, **kwargs) -> "MessageFaults":
        """Build from a CLI spec like ``drop=0.1,dup=0.05,delay=0.1,reorder=0.2``.

        Keys: ``drop``, ``dup``/``duplicate``, ``delay``, ``reorder``
        (rates) and ``max_delay`` (rounds).  Unknown keys, missing ``=``,
        non-numeric values, and repeated keys all raise ``ValueError``
        naming the offending token and :data:`SPEC_GRAMMAR`.
        """
        keys = {
            "drop": "drop",
            "dup": "duplicate",
            "duplicate": "duplicate",
            "delay": "delay",
            "reorder": "reorder",
            "max_delay": "max_delay",
        }

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad fault spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        values: Dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, raw = item.partition("=")
            key = key.strip().replace("-", "_")
            if not eq:
                raise reject(item, "needs key=value")
            if key not in keys:
                raise reject(item, f"unknown fault key {key!r}")
            canonical = keys[key]
            if canonical in values:
                raise reject(item, f"key {canonical!r} given more than once")
            raw = raw.strip()
            try:
                values[canonical] = (
                    int(raw) if canonical == "max_delay" else float(raw)
                )
            except ValueError:
                expected = (
                    "an integer" if canonical == "max_delay" else "a number"
                )
                raise reject(item, f"value {raw!r} is not {expected}") from None
        values.update(kwargs)
        return cls(seed=seed, **values)

    def _budget_left(self, used: int, cap: Optional[int]) -> bool:
        return cap is None or used < cap

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Apply drop, then delay, then duplication to one delivery copy."""
        if sender in self.protect or receiver in self.protect:
            return [(due, part)]
        rng = self.rng
        if (
            self.drop
            and self._budget_left(self.counts.drops, self.max_drops)
            and rng.random() < self.drop
        ):
            self.counts.drops += 1
            return []
        if (
            self.delay
            and self._budget_left(self.counts.delays, self.max_delays)
            and rng.random() < self.delay
        ):
            self.counts.delays += 1
            due += rng.randint(1, self.max_delay)
        deliveries = [(due, part)]
        if (
            self.duplicate
            and self._budget_left(self.counts.duplicates, self.max_duplicates)
            and rng.random() < self.duplicate
        ):
            self.counts.duplicates += 1
            deliveries.append((due + rng.randint(1, self.max_delay), part))
        return deliveries

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Shuffle one receiver's inbox with probability ``reorder``."""
        if (
            self.reorder
            and len(envelopes) > 1
            and receiver not in self.protect
            and self._budget_left(self.counts.reorders, self.max_reorders)
            and self.rng.random() < self.reorder
        ):
            self.counts.reorders += 1
            shuffled = list(envelopes)
            self.rng.shuffle(shuffled)
            return shuffled
        return envelopes

    def __repr__(self) -> str:
        return (
            f"MessageFaults(drop={self.drop}, duplicate={self.duplicate}, "
            f"delay={self.delay}, reorder={self.reorder}, seed={self.seed})"
        )


@dataclass
class CorruptionCounts:
    """Tally of injected corruptions, for reporting alongside run results."""

    bitflips: int = 0
    truncations: int = 0
    stale_replays: int = 0

    @property
    def total(self) -> int:
        """All injected corruptions combined."""
        return self.bitflips + self.truncations + self.stale_replays

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for tables and JSON rows."""
        return {
            "bitflips": self.bitflips,
            "truncations": self.truncations,
            "stale_replays": self.stale_replays,
        }


def flip_int_leaf(payload, rng: random.Random):
    """Flip one random bit in one random int leaf of a payload tree.

    Returns the rewritten payload, or ``None`` when the payload holds no
    int leaves to corrupt (e.g. the empty ``()`` of an abort part).  The
    result is built only from tuples, ints, strs and ``None``, so its
    ``repr`` round-trips through ``ast.literal_eval`` — the property the
    record/replay layer relies on to replay corrupted runs bit-exactly.
    """
    leaves: List[Tuple] = []

    def walk(value, path):
        if isinstance(value, bool):
            return
        if isinstance(value, int):
            leaves.append(path)
        elif isinstance(value, tuple):
            for i, item in enumerate(value):
                walk(item, path + (i,))

    walk(payload, ())
    if not leaves:
        return None
    path = leaves[rng.randrange(len(leaves))]

    def rewrite(value, path):
        if not path:
            bit = rng.randrange(max(1, value.bit_length() + 1))
            return value ^ (1 << bit)
        i = path[0]
        return tuple(
            rewrite(item, path[1:]) if j == i else item
            for j, item in enumerate(value)
        )

    return rewrite(payload, path)


class MessageCorruption(FaultInjector):
    """Silently corrupt in-flight message content.

    Unlike :class:`MessageFaults` (which loses, duplicates or postpones
    otherwise-correct copies), this injector rewrites a copy's *payload* —
    the silent-data-corruption class the paper's crash-only model excludes.
    Three modes, each rolled independently per scheduled delivery copy
    (first hit wins):

    * ``bitflip`` — XOR one random bit of one random int leaf of the
      payload (the classic flipped-bit on the wire);
    * ``truncate`` — drop the payload's last field (a short read);
    * ``stale`` — replace the copy with the previous part the same link
      carried (a replayed old frame: authentic content, wrong time).

    Rates apply per copy; ``link_scale`` multiplies them on selected
    ``(sender, receiver)`` links so tests can make one link persistently
    corrupt (the quarantine trigger).  Every corruption is remembered as
    ``(sender, receiver, content_key)``, and :meth:`arrange_inbox`
    matches delivered envelopes against that set out-of-band — the
    :class:`repro.sim.monitors.CorruptionOracleMonitor` compares this
    ground truth with the integrity layer's rejection log to flag any run
    that silently *accepted* a corrupted frame.

    Corrupted payloads stay within tuples/ints/strs/``None`` so recorded
    runs replay bit-exactly (see :func:`flip_int_leaf`).
    """

    modifies_delivery = True

    def __init__(
        self,
        bitflip: float = 0.0,
        truncate: float = 0.0,
        stale: float = 0.0,
        seed: int = 0,
        max_bitflips: Optional[int] = None,
        max_truncations: Optional[int] = None,
        max_stales: Optional[int] = None,
        protect: Iterable[int] = (),
        link_scale: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> None:
        super().__init__()
        for name, rate in (
            ("bitflip", bitflip),
            ("truncate", truncate),
            ("stale", stale),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        self.bitflip = bitflip
        self.truncate = truncate
        self.stale = stale
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_bitflips = max_bitflips
        self.max_truncations = max_truncations
        self.max_stales = max_stales
        self.protect = frozenset(protect)
        self.link_scale = dict(link_scale or {})
        self.counts = CorruptionCounts()
        #: Epoch counter, kept in lock-step with the integrity
        #: coordinator's (both advance once per network build) so
        #: delivered-corruption records match rejection records even when
        #: failover runs several networks per logical run.
        self.epoch = -1
        #: Corrupted deliveries created: ``{(sender, receiver,
        #: content_key): mode}`` with mode ``"content"`` (bitflip /
        #: truncate) or ``"stale"`` (replayed authentic content).
        self._corrupt: Dict[Tuple, str] = {}
        #: Content corruptions actually *seen by a receiver*, as
        #: ``(epoch, round, sender, receiver, content_key)`` — the oracle
        #: monitor's ground truth.  Stale replays land in
        #: :attr:`delivered_stales` instead: an accepted replay whose
        #: fresher copy was never accepted is authentic content one round
        #: late — indistinguishable from an honest delay, so it is not
        #: silent corruption.
        self.delivered_corruptions: List[Tuple] = []
        #: Replayed-but-authentic deliveries seen by a receiver.
        self.delivered_stales: List[Tuple] = []
        # Per-link memory of the previous part, for stale replays.
        self._history: Dict[Tuple[int, int], Part] = {}

    #: The accepted ``from_spec`` grammar, quoted verbatim in every
    #: rejection so a CLI typo comes back with the fix attached.
    SPEC_GRAMMAR = (
        "mode:rate[,mode:rate...] with modes bitflip, truncate, stale "
        "and rates in [0, 1] (e.g. 'bitflip:0.02,stale:0.01')"
    )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0, **kwargs) -> "MessageCorruption":
        """Build from a CLI spec like ``bitflip:0.02,truncate:0.01``.

        Modes: ``bitflip``, ``truncate``, ``stale`` with per-copy rates.
        Unknown modes, missing rates, non-numeric rates, and repeated
        modes all raise ``ValueError`` naming the offending token and
        :data:`SPEC_GRAMMAR`.  ``=`` is accepted as a separator alongside
        ``:`` for symmetry with the fault spec grammar.
        """
        modes = ("bitflip", "truncate", "stale")

        def reject(token: str, why: str) -> ValueError:
            return ValueError(
                f"bad corruption spec fragment {token!r}: {why} "
                f"(accepted grammar: {cls.SPEC_GRAMMAR})"
            )

        values: Dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            sep = ":" if ":" in item else "="
            mode, found, raw = item.partition(sep)
            mode = mode.strip()
            if not found:
                raise reject(item, "needs mode:rate")
            if mode not in modes:
                raise reject(item, f"unknown corruption mode {mode!r}")
            if mode in values:
                raise reject(item, f"mode {mode!r} given more than once")
            raw = raw.strip()
            try:
                values[mode] = float(raw)
            except ValueError:
                raise reject(item, f"rate {raw!r} is not a number") from None
        values.update(kwargs)
        return cls(seed=seed, **values)

    def attach(self, network) -> None:
        """Bind to a network; each attach starts a new epoch."""
        super().attach(network)
        self.epoch += 1
        self._history = {}

    def _budget_left(self, used: int, cap: Optional[int]) -> bool:
        return cap is None or used < cap

    def _record(
        self, sender: int, receiver: int, part: Part, mode: str = "content"
    ) -> None:
        key = (sender, receiver, part.content_key)
        # "content" wins a collision: if the same bytes were ever a
        # content corruption, acceptance is never excusable.
        if mode == "content" or key not in self._corrupt:
            self._corrupt[key] = mode

    def corruption_mode(
        self, sender: int, receiver: int, part: Part
    ) -> Optional[str]:
        """How ``part`` on this link was corrupted (``"content"`` /
        ``"stale"``), or None — the recorder annotates bundles with this
        so replays rebuild the same split ground truth."""
        return self._corrupt.get((sender, receiver, part.content_key))

    def on_transmit(
        self, due: int, sender: int, receiver: int, part: Part
    ) -> List[Tuple[int, Part]]:
        """Maybe corrupt one delivery copy (bitflip, truncate or stale)."""
        link = (sender, receiver)
        previous = self._history.get(link)
        self._history[link] = part
        if sender in self.protect or receiver in self.protect:
            return [(due, part)]
        scale = self.link_scale.get(link, 1.0)
        rng = self.rng
        if (
            self.bitflip
            and self._budget_left(self.counts.bitflips, self.max_bitflips)
            and rng.random() < min(1.0, self.bitflip * scale)
        ):
            flipped = flip_int_leaf(part.payload, rng)
            if flipped is not None:
                self.counts.bitflips += 1
                corrupted = Part(part.kind, flipped, part.bits)
                self._record(sender, receiver, corrupted)
                return [(due, corrupted)]
        if (
            self.truncate
            and isinstance(part.payload, tuple)
            and part.payload
            and self._budget_left(self.counts.truncations, self.max_truncations)
            and rng.random() < min(1.0, self.truncate * scale)
        ):
            self.counts.truncations += 1
            corrupted = Part(part.kind, part.payload[:-1], part.bits)
            self._record(sender, receiver, corrupted)
            return [(due, corrupted)]
        if (
            self.stale
            and previous is not None
            and previous != part
            and self._budget_left(self.counts.stale_replays, self.max_stales)
            and rng.random() < min(1.0, self.stale * scale)
        ):
            self.counts.stale_replays += 1
            self._record(sender, receiver, previous, mode="stale")
            return [(due, previous)]
        return [(due, part)]

    def arrange_inbox(self, rnd: int, receiver: int, envelopes: List) -> List:
        """Observe (never modify) the inbox: log delivered corruptions."""
        for envelope in envelopes:
            key = (envelope.sender, receiver, envelope.part.content_key)
            mode = self._corrupt.get(key)
            if mode is not None:
                ledger = (
                    self.delivered_corruptions
                    if mode == "content"
                    else self.delivered_stales
                )
                ledger.append(
                    (self.epoch, rnd, envelope.sender, receiver,
                     envelope.part.content_key)
                )
        return envelopes

    def __repr__(self) -> str:
        return (
            f"MessageCorruption(bitflip={self.bitflip}, "
            f"truncate={self.truncate}, stale={self.stale}, seed={self.seed})"
        )


def corruption_sources(injectors) -> List:
    """Injectors (flattening recorder/replay wrappers) that track delivered
    corruptions — anything exposing a ``delivered_corruptions`` list."""
    sources: List = []
    for injector in injectors or ():
        if hasattr(injector, "delivered_corruptions"):
            sources.append(injector)
        inner = getattr(injector, "inner", None)
        if isinstance(inner, (list, tuple)):
            sources.extend(
                i for i in inner if hasattr(i, "delivered_corruptions")
            )
    return sources
